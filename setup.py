"""Legacy setup shim.

The offline environment ships setuptools without the ``wheel`` package, so
PEP 660 editable installs (``pip install -e .``) cannot build; this shim
keeps ``python setup.py develop`` working as a fallback.  Configuration
lives in ``pyproject.toml``.
"""

from setuptools import setup

setup()
