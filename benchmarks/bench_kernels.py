#!/usr/bin/env python
"""Kernel micro-benchmarks with a persisted perf-regression gate.

Times the engine's four hot kernels on synthetic workloads —

* **warp**        — ``time_warp`` over 10k messages (plain and combiner),
                    against the retained per-partition reference sweep;
* **state**       — ``PartitionedState.set_many`` bulk updates, against
                    sequential ``set()`` calls;
* **scatter**     — ``merge_join_partitioned`` slice×piece pairing, against
                    the nested-intersection reference;
* **encode**      — message codec round-trip (no reference; tracked as
                    time normalised by a pure-Python calibration loop so
                    the number is comparable across machines);
* **engine**      — a full interval-centric run (~10k messages) under the
                    parallel executor (peer-to-peer exchange topology)
                    against the serial executor, after asserting both
                    return identical states.  The speedup depends on
                    physical cores, so the result records the core count:
                    the acceptance floor only binds on ≥4-core machines,
                    and baseline comparisons are *refused out loud* when
                    the baseline came from a different core count.  A
                    committed baseline that predates the peer data plane
                    (no ``exchange`` key) must additionally be beaten
                    ≥1.25× wall-clock on a comparable ≥4-core host;
* **checkpoint**  — the same engine workload with barrier checkpointing
                    (``checkpoint_every=4``) against the plain run, after
                    asserting identical states.  The gated metric is the
                    *overhead ratio* (checkpointed / plain wall-clock),
                    hardware-independent like a speedup; full mode enforces
                    a hard <15% ceiling.
* **observability** — the same engine workload fully instrumented (JSON-lines
                    trace writer + in-memory event observer) against the
                    uninstrumented run, after asserting identical states.
                    Gated like checkpointing, with a hard <10% ceiling in
                    full mode: structured events are emitted per superstep,
                    not per message, so tracing must stay near-free.
* **span_overhead** — the engine workload on the *parallel* executor,
                    fully instrumented (per-worker ``worker_span`` phase
                    records, trace writer flushing per event) against the
                    bare parallel run, after asserting identical states
                    and untouched modeled metrics.  Hard <10% ceiling in
                    full mode: per-worker tracing must stay near-free.
* **partition**     — the locality synthetic graph under greedy (LDG) and
                    interval-greedy partitioning against Giraph-style hash
                    partitioning (paper Sec. VII-A4), after asserting
                    bit-identical states across every partitioner and both
                    executors.  The gated metric is the deterministic
                    remote-barrier-byte ratio hash/greedy (a "speedup":
                    higher is better, hardware-independent); both greedy
                    variants must cut remote bytes ≥30% vs hash.
* **exchange**      — sender-side combining on the peer-to-peer barrier
                    data plane: the min-combiner flood on the locality
                    graph, combined vs uncombined wire.  Deterministic
                    byte counts, no wall-clock; ``exchange_raw_bytes``
                    (what an uncombined wire would carry) must be
                    invariant, and the gated ratio uncombined/combined
                    must show a ≥25% real-byte cut (floor 1.33×).
* **serve_cache**   — the ``repro.serve`` result cache: a PageRank query
                    answered cold (engine run) then again from cache,
                    both byte-identical to a direct ``api.run``.  Wall
                    times are reported but the gate is the deterministic
                    modeled ratio (run ``modeled_makespan`` vs a probe +
                    payload-shipping hit cost), floor 5×, so it binds on
                    any host.

Results are written to ``BENCH_kernels.json`` at the repository root: a
committed **baseline** plus a bounded run **history**, so the repo carries
its own perf trajectory.  On every run the script compares against the
baseline and **fails loudly (exit 1) on a >20% regression**.  Speedup-based
metrics (optimised vs reference implementation) are hardware-independent,
which is what makes the gate meaningful on CI machines that never produced
the baseline.

Usage::

    PYTHONPATH=src python benchmarks/bench_kernels.py            # full gate
    PYTHONPATH=src python benchmarks/bench_kernels.py --smoke    # CI-sized
    PYTHONPATH=src python benchmarks/bench_kernels.py --update-baseline
"""

from __future__ import annotations

import argparse
import json
import os
import random
import shutil
import sys
import tempfile
import time
from datetime import datetime, timezone
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))
sys.path.insert(0, str(REPO_ROOT))  # for tests.core._reference_impls

from repro import api  # noqa: E402
from repro.core.interval import Interval  # noqa: E402
from repro.core.messages import IntervalMessage  # noqa: E402
from repro.core.program import IntervalProgram  # noqa: E402
from repro.core.combiner import min_combiner  # noqa: E402
from repro.core.state import PartitionedState  # noqa: E402
from repro.core.warp import merge_join_partitioned, time_warp  # noqa: E402
from repro.graph.builder import TemporalGraphBuilder  # noqa: E402
from repro.obs.exporters import render_summary  # noqa: E402
from repro.obs.observers import InMemoryEvents, JsonlTraceWriter  # noqa: E402
from repro.obs.registry import RUN_METRICS  # noqa: E402
from repro.runtime.cluster import SimulatedCluster  # noqa: E402
from repro.runtime.encoding import decode_message, encode_message  # noqa: E402

from tests.core._reference_impls import (  # noqa: E402
    reference_join_partitioned,
    reference_set_sequence,
    reference_time_warp,
)

RESULTS_PATH = REPO_ROOT / "BENCH_kernels.json"
# Fail on regression vs the baseline: 20% in full mode; smoke runs are
# short and live on noisy shared CI runners, so they get a wider band —
# the smoke gate is a sanity check, the full gate is the contract.
REGRESSION_TOLERANCE = {"full": 0.20, "smoke": 0.50}
HISTORY_LIMIT = 50
SPEEDUP_FLOOR = {
    "warp_10k": 3.0,
    "engine_parallel": 1.7,
    # ≥30% remote-byte reduction vs hash ⇒ hash/greedy ratio ≥ 1/0.7.
    "partition_quality": 1.43,
    # ≥25% real-wire byte cut from sender-side combining ⇒ ratio ≥ 1/0.75.
    # Deterministic byte counts (no "cores" key), so this binds on any host.
    "exchange_bytes": 1.33,
    # A serving-tier cache hit must be ≥5× cheaper than re-running the
    # engine.  Gated on the deterministic modeled ratio (modeled run
    # makespan vs modeled hit cost), not wall-clock, so it binds anywhere.
    "serve_cache": 5.0,
    # mmap-loading a compact image must be ≥5× faster than decoding the
    # v1 object stream of the same 10k-vertex graph — the point of the
    # columnar format is that a restarted daemon is queryable while the
    # object decoder would still be allocating.
    "compact_load": 5.0,
}  # acceptance bars
#: One-shot wall-clock gate for the peer-exchange optimisation: while the
#: committed ``engine_parallel`` baseline predates the peer data plane (its
#: entry has no "exchange" key), a full run on a comparable ≥4-core host
#: must beat the baseline ``opt_s`` by this factor before re-adoption.
IMPROVEMENT_FLOOR = {"engine_parallel": 1.25}
#: Hard ceiling on overhead-style metrics (instrumented / plain wall-clock).
#: The checkpoint cadence of 4 must cost <15% on the 10k-message workload;
#: full observability instrumentation must cost <10% on the same workload.
#: ``span_overhead`` caps the worker_span event emission + per-event trace
#: flush on the parallel executor at <10% — per-worker tracing must stay
#: near-free or nobody will leave it on.
OVERHEAD_CAP = {
    "checkpoint_overhead": 1.15,
    "observability_overhead": 1.10,
    "span_overhead": 1.10,
}
#: Parallel-executor floors only bind when this many cores are available —
#: below that the speedup is physically out of reach.
FLOOR_MIN_CORES = 4

SIZES = {
    "full": dict(
        warp_messages=10_000, warp_partitions=64, warp_span=20_000,
        state_updates=5_000, state_span=20_000,
        scatter_slices=512, scatter_pieces=256, scatter_span=8_192,
        encode_messages=20_000, repeats=3,
        engine_vertices=160, engine_fanout=7, engine_span=64,
        engine_supersteps=4, engine_shards=4, engine_procs=4,
        locality_scale=1.0,
        compact_vertices=10_000, compact_fanout=4, compact_span=1_000,
    ),
    "smoke": dict(
        warp_messages=3_000, warp_partitions=48, warp_span=3_000,
        state_updates=1_000, state_span=4_000,
        scatter_slices=128, scatter_pieces=64, scatter_span=2_048,
        encode_messages=4_000, repeats=3,
        engine_vertices=60, engine_fanout=5, engine_span=32,
        engine_supersteps=4, engine_shards=4, engine_procs=2,
        locality_scale=0.5,
        compact_vertices=2_000, compact_fanout=3, compact_span=500,
    ),
}


def best_of(fn, repeats: int) -> float:
    """Minimum wall-clock over ``repeats`` runs (noise-robust)."""
    best = float("inf")
    for _ in range(repeats):
        t0 = time.perf_counter()
        fn()
        elapsed = time.perf_counter() - t0
        if elapsed < best:
            best = elapsed
    return best


def calibration_seconds() -> float:
    """A fixed pure-Python workload; normalising by it makes absolute
    timings roughly comparable across machines and interpreters."""
    def loop():
        acc = 0
        for i in range(2_000_00):
            acc += i % 7
        return acc
    return best_of(loop, 3)


# -- synthetic workloads -------------------------------------------------------


def make_partitions(rng, n, span):
    bounds = sorted(rng.sample(range(1, span), n - 1))
    cuts = [0, *bounds, span]
    return [
        (Interval(lo, hi), i % 5)
        for i, (lo, hi) in enumerate(zip(cuts, cuts[1:]))
    ]


def make_messages(rng, m, span, max_len=60):
    out = []
    for _ in range(m):
        start = rng.randrange(span)
        out.append((Interval(start, start + rng.randint(1, max_len)), rng.randrange(100)))
    return out


def make_updates(rng, u, span, max_len=12):
    out = []
    for _ in range(u):
        start = rng.randrange(span - max_len)
        out.append((Interval(start, start + rng.randint(1, max_len)), rng.randrange(8)))
    return out


# -- kernels -------------------------------------------------------------------


def bench_warp(sizes, repeats):
    rng = random.Random(0xC0FFEE)
    outer = make_partitions(rng, sizes["warp_partitions"], sizes["warp_span"])
    inner = make_messages(rng, sizes["warp_messages"], sizes["warp_span"] - 100)
    sanity_new = time_warp(outer, inner)
    sanity_ref = reference_time_warp(outer, inner)
    assert sanity_new == sanity_ref, "warp kernel diverged from its oracle"
    opt = best_of(lambda: time_warp(outer, inner), repeats)
    ref = best_of(lambda: reference_time_warp(outer, inner), repeats)
    return {"opt_s": opt, "ref_s": ref, "speedup": ref / opt}


def bench_warp_combine(sizes, repeats):
    rng = random.Random(0xBEEF)
    outer = make_partitions(rng, sizes["warp_partitions"], sizes["warp_span"])
    inner = make_messages(rng, sizes["warp_messages"], sizes["warp_span"] - 100)
    assert time_warp(outer, inner, min) == reference_time_warp(outer, inner, min)
    opt = best_of(lambda: time_warp(outer, inner, min), repeats)
    ref = best_of(lambda: reference_time_warp(outer, inner, min), repeats)
    return {"opt_s": opt, "ref_s": ref, "speedup": ref / opt}


def bench_state(sizes, repeats):
    rng = random.Random(0xDEAD)
    span = sizes["state_span"]
    updates = make_updates(rng, sizes["state_updates"], span)

    def bulk():
        state = PartitionedState(Interval(0, span), 0)
        state.set_many(updates)
        return state

    def sequential():
        state = PartitionedState(Interval(0, span), 0)
        reference_set_sequence(state, updates)
        return state

    from repro.core.state import states_equal_pointwise
    assert states_equal_pointwise(bulk(), sequential()), (
        "bulk state kernel diverged from sequential sets"
    )
    opt = best_of(bulk, repeats)
    ref = best_of(sequential, repeats)
    return {"opt_s": opt, "ref_s": ref, "speedup": ref / opt}


def bench_scatter(sizes, repeats):
    rng = random.Random(0xF00D)
    span = sizes["scatter_span"]
    slices = make_partitions(rng, sizes["scatter_slices"], span)
    pieces = make_partitions(rng, sizes["scatter_pieces"], span)
    assert set(merge_join_partitioned(slices, pieces)) == set(
        reference_join_partitioned(slices, pieces)
    )
    opt = best_of(lambda: merge_join_partitioned(slices, pieces), repeats)
    ref = best_of(lambda: reference_join_partitioned(slices, pieces), repeats)
    return {"opt_s": opt, "ref_s": ref, "speedup": ref / opt}


def bench_encode(sizes, repeats, calib):
    rng = random.Random(0xFEED)
    msgs = [
        IntervalMessage(
            Interval(t, t + rng.randint(1, 9)),
            (rng.randrange(1000), f"v{t % 37}"),
        )
        for t in range(sizes["encode_messages"])
    ]

    def roundtrip():
        for m in msgs:
            decode_message(encode_message(m))

    opt = best_of(roundtrip, repeats)
    return {"opt_s": opt, "normalized": opt / calib}


class _FloodMin(IntervalProgram):
    """Fixed-superstep label flood: every vertex computes and scatters each
    round, so the message volume is ``supersteps × edge-overlaps`` and both
    executors get a dense, evenly spread workload."""

    name = "bench-flood"

    def __init__(self, supersteps: int):
        self.fixed_supersteps = supersteps

    def init(self, ctx):
        # Deterministic label derived from the "v<i>" id (hash() is salted
        # per interpreter, which would break cross-run reproducibility).
        ctx.set_state(ctx.lifespan, (int(ctx.vertex_id[1:]) * 31) % 977)

    def compute(self, ctx, interval, state, messages):
        best = min(messages) if messages else state
        ctx.set_state(interval, min(state, best) if state is not None else best)

    def scatter(self, ctx, edge, interval, state):
        return [(interval, state)]


class _FloodMinCombined(_FloodMin):
    """The flood with a selective min combiner and full-lifespan messages.

    Every sender process folds duplicate (destination, interval) pairs
    before they reach the wire, making the combined/uncombined byte split
    big enough to gate — ``_FloodMin``'s per-edge clipped intervals almost
    never coincide, which would leave the sender-side combiner nothing to
    fold and the bench vacuous.
    """

    name = "bench-flood-min"

    def __init__(self, supersteps: int):
        super().__init__(supersteps)
        self.combiner = min_combiner()

    def scatter(self, ctx, edge, interval, state):
        return [(ctx.lifespan, state)]


def _build_engine_workload(sizes):
    rng = random.Random(0xACE5)
    span = sizes["engine_span"]
    n = sizes["engine_vertices"]
    builder = TemporalGraphBuilder()
    builder.add_vertices([f"v{i}" for i in range(n)], 0, span)
    for i in range(n):
        for _ in range(sizes["engine_fanout"]):
            j = rng.randrange(n)
            if j == i:
                continue
            start = rng.randrange(span - 2)
            builder.add_edge(f"v{i}", f"v{j}", start, rng.randint(start + 1, span))
    return builder.build()


def bench_engine_parallel(sizes, repeats):
    graph = _build_engine_workload(sizes)
    shards = sizes["engine_shards"]
    supersteps = sizes["engine_supersteps"]

    def run(executor, processes=None):
        # The parallel run exercises the production data plane: peer
        # topology (workers exchange batches directly, the master only
        # sees barrier reports) with sender-side combining on.
        return api.run(
            graph, _FloodMin(supersteps), cluster=SimulatedCluster(shards),
            options={
                "executor": executor,
                "executor_processes": processes,
                "exchange": "peer",
            },
        )

    serial = run("serial")
    parallel = run("parallel", sizes["engine_procs"])
    assert {v: list(s) for v, s in serial.states.items()} == \
           {v: list(s) for v, s in parallel.states.items()}, (
        "parallel engine run diverged from serial"
    )

    serial_s = best_of(lambda: run("serial"), repeats)
    parallel_s = best_of(lambda: run("parallel", sizes["engine_procs"]), repeats)
    try:
        cores = len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux
        cores = os.cpu_count() or 1
    return {
        "opt_s": parallel_s,
        "ref_s": serial_s,
        "speedup": serial_s / parallel_s,
        "cores": cores,
        "processes": sizes["engine_procs"],
        "exchange": "peer",
        "messages": serial.metrics.messages_sent,
    }


def bench_checkpoint_overhead(sizes, repeats):
    """Barrier checkpointing (cadence 4) vs the plain serial run.

    The ratio is hardware-independent: both runs execute the identical
    superstep schedule, so the quotient isolates the snapshot + encode +
    fsync-free atomic-rename cost of `repro.runtime.checkpoint`.
    """
    graph = _build_engine_workload(sizes)
    shards = sizes["engine_shards"]
    supersteps = sizes["engine_supersteps"]

    def run(checkpoint_dir=None):
        return api.run(
            graph, _FloodMin(supersteps), cluster=SimulatedCluster(shards),
            options={
                "executor": "serial",
                # 0 disables checkpointing outright (immune to env knobs).
                "checkpoint_every": 4 if checkpoint_dir else 0,
                "checkpoint_dir": checkpoint_dir,
            },
        )

    ckpt_dir = tempfile.mkdtemp(prefix="bench-ckpt-")
    try:
        plain = run()
        ckpt = run(ckpt_dir)
        assert {v: list(s) for v, s in plain.states.items()} == \
               {v: list(s) for v, s in ckpt.states.items()}, (
            "checkpointed engine run diverged from the plain run"
        )
        assert ckpt.metrics.recovery.checkpoints_written > 0, (
            "checkpoint cadence never fired on the bench workload"
        )
        plain_s = best_of(run, repeats)
        ckpt_s = best_of(lambda: run(ckpt_dir), repeats)
    finally:
        shutil.rmtree(ckpt_dir, ignore_errors=True)
    return {
        "opt_s": ckpt_s,
        "ref_s": plain_s,
        "overhead": ckpt_s / plain_s,
        "checkpoints": ckpt.metrics.recovery.checkpoints_written,
        "checkpoint_bytes": ckpt.metrics.recovery.checkpoint_bytes,
        "messages": plain.metrics.messages_sent,
    }


def bench_observability_overhead(sizes, repeats):
    """Fully instrumented engine run vs the bare run, same workload.

    "Fully instrumented" means both shipping observers at once: the
    JSON-lines trace writer (I/O per event) and the in-memory collector.
    Events are superstep-granular, so the quotient bounds the cost of the
    whole `repro.obs` layer, not of one exporter.
    """
    graph = _build_engine_workload(sizes)
    shards = sizes["engine_shards"]
    supersteps = sizes["engine_supersteps"]

    def run(observe=None):
        return api.run(
            graph, _FloodMin(supersteps), cluster=SimulatedCluster(shards),
            options={"executor": "serial", "checkpoint_every": 0},
            observe=observe,
        )

    trace_dir = tempfile.mkdtemp(prefix="bench-obs-")
    trace_path = os.path.join(trace_dir, "bench.trace")

    def instrumented():
        return run(observe=[InMemoryEvents(), JsonlTraceWriter(trace_path)])

    try:
        plain = run()
        events = InMemoryEvents()
        observed = run(observe=[events, JsonlTraceWriter(trace_path)])
        assert {v: list(s) for v, s in plain.states.items()} == \
               {v: list(s) for v, s in observed.states.items()}, (
            "instrumented engine run diverged from the plain run"
        )
        assert events.records, "instrumented run emitted no events"
        modeled = RUN_METRICS.names(modeled=True)
        assert all(
            getattr(plain.metrics, f) == getattr(observed.metrics, f)
            for f in modeled
        ), "observation perturbed the modeled metrics"
        # Benchmark logs share the CLI's metric renderer (one code path).
        print(render_summary(observed.metrics))
        plain_s = best_of(run, repeats)
        instrumented_s = best_of(instrumented, repeats)
    finally:
        shutil.rmtree(trace_dir, ignore_errors=True)
    return {
        "opt_s": instrumented_s,
        "ref_s": plain_s,
        "overhead": instrumented_s / plain_s,
        "events": len(events.records),
        "messages": plain.metrics.messages_sent,
    }


def bench_span_overhead(sizes, repeats):
    """Per-worker phase spans (schema v5) on the *parallel* executor:
    fully instrumented run vs the bare parallel run, same workload.

    The span machinery has two cost sites — the unconditional in-worker
    phase timers (perf_counter pairs around scatter/encode/exchange,
    present in both runs) and the observer-side ``worker_span`` event
    emission with its per-event trace flush (instrumented run only).
    The gated quotient bounds the second; the first is bounded by the
    ``engine_parallel`` speedup floor staying green.
    """
    graph = _build_engine_workload(sizes)
    shards = sizes["engine_shards"]
    supersteps = sizes["engine_supersteps"]
    procs = sizes["engine_procs"]

    def run(observe=None):
        return api.run(
            graph, _FloodMin(supersteps), cluster=SimulatedCluster(shards),
            options={
                "executor": "parallel",
                "executor_processes": procs,
                "checkpoint_every": 0,
            },
            observe=observe,
        )

    trace_dir = tempfile.mkdtemp(prefix="bench-span-")
    trace_path = os.path.join(trace_dir, "bench.trace")

    def instrumented():
        return run(observe=[InMemoryEvents(), JsonlTraceWriter(trace_path)])

    try:
        plain = run()
        events = InMemoryEvents()
        observed = run(observe=[events, JsonlTraceWriter(trace_path)])
        assert {v: list(s) for v, s in plain.states.items()} == \
               {v: list(s) for v, s in observed.states.items()}, (
            "span-instrumented parallel run diverged from the plain run"
        )
        spans = events.of_type("worker_span")
        assert spans, "parallel run emitted no worker_span events"
        workers = {s["data"]["worker"] for s in spans}
        assert workers == set(range(procs)), (
            f"expected spans from workers {set(range(procs))}, got {workers}"
        )
        for span in spans:
            wall = span["wall"]
            for phase in span["data"]["phases"]:
                assert 0.0 <= wall[f"{phase}_s"] <= wall["total_s"] + 1e-12, (
                    f"span phase {phase} out of bounds: {wall}"
                )
        modeled = RUN_METRICS.names(modeled=True)
        assert all(
            getattr(plain.metrics, f) == getattr(observed.metrics, f)
            for f in modeled
        ), "span capture perturbed the modeled metrics"
        plain_s = best_of(run, repeats)
        instrumented_s = best_of(instrumented, repeats)
    finally:
        shutil.rmtree(trace_dir, ignore_errors=True)
    return {
        "opt_s": instrumented_s,
        "ref_s": plain_s,
        "overhead": instrumented_s / plain_s,
        "events": len(events.records),
        "spans": len(spans),
        "processes": procs,
        "messages": plain.metrics.messages_sent,
    }


def bench_partition_quality(sizes):
    """Remote barrier-exchange bytes under each partitioner (Sec. VII-A4).

    Runs the flood workload on the community-structured ``locality``
    surrogate with 4 workers.  Every quantity gated here is *modeled* and
    therefore deterministic — no repeats, no wall-clock — which is what
    lets CI enforce the ≥30% remote-byte reduction exactly.  Results must
    be bit-identical across all partitioners (placement moves messages,
    never changes states) and across executors under the greedy placement.
    """
    from repro.datasets.synthetic import locality

    graph = locality(sizes["locality_scale"])
    supersteps = sizes["engine_supersteps"]
    workers = 4

    def run(partitioner, executor="serial", processes=None):
        return api.run(
            graph, _FloodMin(supersteps), cluster=SimulatedCluster(workers),
            options={
                "partitioner": partitioner,
                "executor": executor,
                "executor_processes": processes,
                "checkpoint_every": 0,
            },
        )

    runs = {kind: run(kind) for kind in ("hash", "greedy", "interval_greedy")}
    greedy_parallel = run("greedy", "parallel", 2)

    def states_of(result):
        return {v: list(s) for v, s in result.states.items()}

    reference = states_of(runs["hash"])
    for kind, result in runs.items():
        assert states_of(result) == reference, (
            f"partitioner {kind} changed the computed states"
        )
    assert states_of(greedy_parallel) == reference, (
        "parallel greedy run diverged from serial"
    )
    assert (
        greedy_parallel.metrics.remote_message_bytes
        == runs["greedy"].metrics.remote_message_bytes
    ), "executors disagree on remote barrier bytes under greedy partitioning"

    hash_bytes = runs["hash"].metrics.remote_message_bytes
    for kind in ("greedy", "interval_greedy"):
        kind_bytes = runs[kind].metrics.remote_message_bytes
        assert kind_bytes <= 0.7 * hash_bytes, (
            f"{kind} cut remote bytes only "
            f"{1 - kind_bytes / hash_bytes:.1%} vs hash (need >=30%)"
        )

    greedy_bytes = runs["greedy"].metrics.remote_message_bytes
    return {
        "speedup": hash_bytes / greedy_bytes,
        "hash_remote_bytes": hash_bytes,
        "greedy_remote_bytes": greedy_bytes,
        "interval_greedy_remote_bytes":
            runs["interval_greedy"].metrics.remote_message_bytes,
        "hash_edge_cut": runs["hash"].metrics.partition_edge_cut,
        "greedy_edge_cut": runs["greedy"].metrics.partition_edge_cut,
        "interval_greedy_edge_cut":
            runs["interval_greedy"].metrics.partition_edge_cut,
        "workers": workers,
    }


def bench_exchange_bytes(sizes):
    """Real wire bytes with sender-side combining on vs off (peer topology).

    Runs the min-combiner flood on the ``locality`` surrogate under the
    peer-to-peer exchange with combining enabled and disabled.  Everything
    gated here is a deterministic byte count — no repeats, no wall-clock:
    ``exchange_raw_bytes`` (the bytes an uncombined wire would carry, the
    count-preserving invariant behind the charging discipline) must be
    bit-identical across both runs, and the gated "speedup" is the
    real-wire ratio uncombined/combined.  The 1.33× floor is the ≥25%
    remote-byte cut the combining layer promises.
    """
    from repro.datasets.synthetic import locality

    graph = locality(sizes["locality_scale"])
    supersteps = sizes["engine_supersteps"]
    workers = 4

    def run(executor="parallel", combine=True):
        return api.run(
            graph, _FloodMinCombined(supersteps), cluster=SimulatedCluster(workers),
            options={
                "executor": executor,
                "executor_processes": 2 if executor == "parallel" else None,
                "exchange": "peer",
                "exchange_combine": combine,
                "checkpoint_every": 0,
            },
        )

    def states_of(result):
        return {v: list(s) for v, s in result.states.items()}

    serial = run("serial")
    combined = run()
    plain = run(combine=False)
    reference = states_of(serial)
    assert states_of(combined) == reference, (
        "combined peer run diverged from serial"
    )
    assert states_of(plain) == reference, (
        "uncombined peer run diverged from serial"
    )
    assert combined.metrics.exchange_raw_bytes == plain.metrics.exchange_raw_bytes, (
        "combining changed the raw (uncombined-equivalent) wire accounting"
    )
    modeled = RUN_METRICS.names(modeled=True)
    assert all(
        getattr(combined.metrics, f) == getattr(plain.metrics, f) for f in modeled
    ), "sender-side combining perturbed the modeled metrics"

    return {
        "speedup": plain.metrics.exchange_bytes / combined.metrics.exchange_bytes,
        "plain_bytes": plain.metrics.exchange_bytes,
        "combined_bytes": combined.metrics.exchange_bytes,
        "raw_bytes": combined.metrics.exchange_raw_bytes,
        "workers": workers,
        "processes": 2,
    }


def bench_serve_cache(sizes, repeats):
    """Serving-tier cache hit vs a cold engine run (``repro.serve``).

    Stands up an in-process ``GraphService`` over the locality surrogate,
    answers a PageRank query cold (engine run, cache miss), then answers
    the identical query again from the interval-aware result cache.
    Correctness first: both answers must be byte-identical to a direct
    ``api.run`` over the same graph — that is the cache's contract.

    Wall-clock for the cold and hit paths is reported for the curious,
    but the *gated* "speedup" is a deterministic modeled ratio so the
    5× floor binds on any host: modeled cold cost is the run's
    ``modeled_makespan`` under the paper's cluster cost model, modeled
    hit cost is a dictionary probe plus shipping the canonical payload
    (1 µs + response bytes × 1 ns/B).  If a hit is not ≥5× cheaper than
    re-running the engine, the cache is not paying its way.
    """
    import io as io_mod

    from repro.algorithms.ti.pagerank import TemporalPageRank
    from repro.core.results_io import export_states_json
    from repro.datasets.synthetic import locality

    graph = locality(sizes["locality_scale"])
    workers = 4

    direct = api.run(
        graph, TemporalPageRank(graph),
        cluster=SimulatedCluster(workers), graph_name="locality",
    )
    doc = export_states_json(direct, io_mod.StringIO())
    expected = json.dumps(doc, sort_keys=True, separators=(",", ":"),
                          default=str)

    service = api.serve(graph, graph_name="locality", workers=workers)
    try:
        t0 = time.perf_counter()
        cold = service.query("PR")
        cold_s = time.perf_counter() - t0
        assert not cold.cache_hit
        assert cold.payload == expected, (
            "serving answer diverged from the direct run"
        )
        hit_s = best_of(lambda: service.query("PR"), repeats)
        warm = service.query("PR")
        assert warm.cache_hit and warm.payload == expected, (
            "cache hit diverged from the cold answer"
        )
        assert service.metrics.cache_hits >= repeats
    finally:
        service.close()

    response_bytes = len(cold.payload.encode("utf-8"))
    modeled_cold = direct.metrics.modeled_makespan
    modeled_hit = 1e-6 + response_bytes * 1e-9
    return {
        "speedup": modeled_cold / modeled_hit,
        "modeled_cold_s": modeled_cold,
        "modeled_hit_s": modeled_hit,
        "wall_cold_s": cold_s,
        "wall_hit_s": hit_s,
        "response_bytes": response_bytes,
        "workers": workers,
    }



def _build_compact_workload(sizes):
    """A property-bearing temporal graph at compact-benchmark scale.

    Every edge carries a two-entry ``w`` timeline so the compact image's
    property columns and piece-cut tables are exercised, not just the
    topology arrays.
    """
    rng = random.Random(0x5EED)
    span = sizes["compact_span"]
    n = sizes["compact_vertices"]
    builder = TemporalGraphBuilder()
    builder.add_vertices([f"v{i}" for i in range(n)], 0, span)
    for i in range(n):
        for _ in range(sizes["compact_fanout"]):
            j = rng.randrange(n)
            if j == i:
                continue
            start = rng.randrange(span - 4)
            end = rng.randint(start + 2, span)
            mid = rng.randint(start + 1, end - 1)
            builder.add_edge(
                f"v{i}", f"v{j}", start, end,
                props={"w": [(start, mid, rng.randrange(50)),
                             (mid, end, rng.randrange(50))]},
            )
    return builder.build()


def bench_compact_build(sizes, repeats, calib):
    """Freezing a heap graph into the compact columnar image.

    Correctness first: the frozen graph must carry the same checkpoint
    fingerprint as its heap source (the bit-identity contract).  The
    gated metric is build wall-clock normalised by the calibration loop
    (host-robust); resident bytes of both stores ride along for the
    record.
    """
    from repro.graph.compact import CompactGraph
    from repro.graph.stats import resident_bytes
    from repro.runtime.checkpoint import graph_fingerprint

    graph = _build_compact_workload(sizes)
    compact = CompactGraph.from_temporal(graph)
    assert graph_fingerprint(compact) == graph_fingerprint(graph), (
        "compact graph fingerprint diverged from its heap source"
    )
    opt = best_of(lambda: CompactGraph.from_temporal(graph), repeats)
    return {
        "opt_s": opt,
        "normalized": opt / calib,
        "heap_bytes": resident_bytes(graph),
        "resident_bytes": compact.nbytes,
        "vertices": graph.num_vertices,
        "edges": graph.num_edges,
    }


def bench_compact_load(sizes, repeats):
    """mmap-loading the compact image vs decoding the v1 object stream.

    Dumps the same graph in both on-disk formats, then times
    ``CompactGraph.load`` (header parse + id table, pages faulted lazily)
    against ``load_graph_binary`` (rebuilds every vertex/edge/interval/
    property object).  The compact load must reproduce the source's
    checkpoint fingerprint exactly — unlike v1, which re-sorts
    enumeration order on round-trip, the compact image preserves it —
    and the v1 load is checked structurally.
    """
    import tempfile

    from repro.graph.binary_io import dump_graph_binary, load_graph_binary
    from repro.graph.compact import CompactGraph
    from repro.runtime.checkpoint import graph_fingerprint

    graph = _build_compact_workload(sizes)
    want = graph_fingerprint(graph)
    with tempfile.TemporaryDirectory(prefix="bench_compact_") as tmp:
        v1_path = os.path.join(tmp, "graph.itgr")
        v2_path = os.path.join(tmp, "graph.itgr2")
        dump_graph_binary(graph, v1_path)
        CompactGraph.from_temporal(graph).dump(v2_path)

        loaded_v1 = load_graph_binary(v1_path)
        loaded_v2 = CompactGraph.load(v2_path)
        assert graph_fingerprint(loaded_v2) == want, "compact round-trip diverged"
        assert (loaded_v1.num_vertices, loaded_v1.num_edges) == (
            graph.num_vertices, graph.num_edges
        ), "v1 round-trip diverged"
        loaded_v2.close()

        def load_compact():
            g = CompactGraph.load(v2_path)
            g.close()

        ref = best_of(lambda: load_graph_binary(v1_path), repeats)
        opt = best_of(load_compact, repeats)
        v1_bytes = os.path.getsize(v1_path)
        v2_bytes = os.path.getsize(v2_path)
    return {
        "opt_s": opt,
        "ref_s": ref,
        "speedup": ref / opt,
        "v1_bytes": v1_bytes,
        "v2_bytes": v2_bytes,
        "vertices": graph.num_vertices,
        "edges": graph.num_edges,
    }


# -- gate ----------------------------------------------------------------------


def gate_metric(kernel: str, result: dict) -> tuple[str, float, bool]:
    """(metric name, value, higher_is_better) used for regression checks."""
    if "overhead" in result:
        return "overhead", result["overhead"], False
    if "speedup" in result:
        return "speedup", result["speedup"], True
    return "normalized", result["normalized"], False


def check_regressions(results: dict, baseline: dict, mode: str) -> list[str]:
    failures = []
    tolerance = REGRESSION_TOLERANCE[mode]
    for kernel, result in results.items():
        metric, value, higher_better = gate_metric(kernel, result)
        cap = OVERHEAD_CAP.get(kernel)
        if cap is not None and metric == "overhead" and mode == "full" and value > cap:
            failures.append(
                f"{kernel}: overhead {value:.3f}x above the {cap:.2f}x hard ceiling"
            )
        floor = SPEEDUP_FLOOR.get(kernel)
        if floor is not None and metric == "speedup" and mode == "full" and value < floor:
            if result.get("cores", FLOOR_MIN_CORES) < FLOOR_MIN_CORES:
                print(
                    f"  note: {kernel} floor ({floor:.1f}x) not enforced on "
                    f"{result['cores']}-core machine"
                )
            else:
                failures.append(
                    f"{kernel}: speedup {value:.2f}x below the {floor:.1f}x acceptance floor"
                )
        base = baseline.get(kernel)
        if not base or metric not in base:
            continue
        if base.get("cores") is not None and base.get("cores") != result.get("cores"):
            # Parallel speedups track physical cores; a baseline from a
            # different machine shape says nothing about a regression here.
            # Refuse the comparison out loud — a silently skipped gate reads
            # as a pass it never was.
            print(
                f"  refusing {kernel} baseline comparison: baseline recorded "
                f"on a {base['cores']}-core host, this host has "
                f"{result.get('cores')} cores "
                f"(rerun --update-baseline on this core class)"
            )
            continue
        gain_floor = IMPROVEMENT_FLOOR.get(kernel)
        if (
            gain_floor is not None
            and mode == "full"
            and "exchange" in result
            and "exchange" not in base
            and "opt_s" in base
            and result.get("cores", 0) >= FLOOR_MIN_CORES
        ):
            # The committed baseline predates the peer exchange data plane
            # (its entry carries no "exchange" key): the optimisation must
            # demonstrably beat it on a comparable host before re-adoption.
            gain = base["opt_s"] / result["opt_s"]
            if gain < gain_floor:
                failures.append(
                    f"{kernel}: peer exchange only {gain:.2f}x faster than the "
                    f"pre-peer baseline opt_s {base['opt_s'] * 1e3:.1f} ms "
                    f"(need >={gain_floor:.2f}x)"
                )
        ref = base[metric]
        pct = int(tolerance * 100)
        if higher_better:
            limit = ref * (1.0 - tolerance)
            if value < limit:
                failures.append(
                    f"{kernel}: {metric} {value:.2f} regressed >{pct}% vs baseline "
                    f"{ref:.2f} (limit {limit:.2f})"
                )
        else:
            limit = ref * (1.0 + tolerance)
            if value > limit:
                failures.append(
                    f"{kernel}: {metric} {value:.3f} regressed >{pct}% vs baseline "
                    f"{ref:.3f} (limit {limit:.3f})"
                )
    return failures


def load_store() -> dict:
    if RESULTS_PATH.exists():
        try:
            return json.loads(RESULTS_PATH.read_text(encoding="utf-8"))
        except json.JSONDecodeError:
            print(f"warning: {RESULTS_PATH} is corrupt; starting fresh", file=sys.stderr)
    return {"schema": 1, "baseline": {}, "history": []}


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--smoke", action="store_true",
                        help="CI-sized workloads (single repeat)")
    parser.add_argument("--update-baseline", action="store_true",
                        help="record this run as the new baseline for its mode")
    parser.add_argument("--no-write", action="store_true",
                        help="measure and gate only; leave BENCH_kernels.json alone")
    args = parser.parse_args(argv)
    mode = "smoke" if args.smoke else "full"
    sizes = SIZES[mode]
    repeats = sizes["repeats"]

    print(f"bench_kernels [{mode}] — warp/state/scatter/encode")
    calib = calibration_seconds()
    print(f"  calibration loop: {calib * 1e3:8.2f} ms")

    results = {}
    for name, fn in (
        ("warp_10k", lambda: bench_warp(sizes, repeats)),
        ("warp_combine_10k", lambda: bench_warp_combine(sizes, repeats)),
        ("state_bulk_update", lambda: bench_state(sizes, repeats)),
        ("scatter_merge_join", lambda: bench_scatter(sizes, repeats)),
        ("encode_roundtrip", lambda: bench_encode(sizes, repeats, calib)),
        ("engine_parallel", lambda: bench_engine_parallel(sizes, repeats)),
        ("checkpoint_overhead", lambda: bench_checkpoint_overhead(sizes, repeats)),
        ("observability_overhead",
         lambda: bench_observability_overhead(sizes, repeats)),
        ("span_overhead", lambda: bench_span_overhead(sizes, repeats)),
        ("partition_quality", lambda: bench_partition_quality(sizes)),
        ("exchange_bytes", lambda: bench_exchange_bytes(sizes)),
        ("serve_cache", lambda: bench_serve_cache(sizes, repeats)),
        ("compact_build", lambda: bench_compact_build(sizes, repeats, calib)),
        ("compact_load", lambda: bench_compact_load(sizes, repeats)),
    ):
        result = fn()
        results[name] = result
        if "combined_bytes" in result:
            print(
                f"  {name:20s} plain {result['plain_bytes']:6d} B   "
                f"combined {result['combined_bytes']:6d} B   "
                f"raw {result['raw_bytes']:6d} B   "
                f"ratio {result['speedup']:5.2f}x"
            )
        elif "hash_remote_bytes" in result:
            print(
                f"  {name:20s} hash {result['hash_remote_bytes']:6d} B   "
                f"greedy {result['greedy_remote_bytes']:6d} B   "
                f"ival {result['interval_greedy_remote_bytes']:6d} B   "
                f"ratio {result['speedup']:5.2f}x   "
                f"(cut {result['hash_edge_cut']:.2f}→{result['greedy_edge_cut']:.2f})"
            )
        elif "modeled_hit_s" in result:
            print(
                f"  {name:20s} wall cold {result['wall_cold_s'] * 1e3:7.2f} ms   "
                f"wall hit {result['wall_hit_s'] * 1e6:7.1f} us   "
                f"modeled ratio {result['speedup']:9.1f}x   "
                f"({result['response_bytes']} B)"
            )
        elif "resident_bytes" in result:
            print(
                f"  {name:20s} opt {result['opt_s'] * 1e3:8.2f} ms   "
                f"normalized {result['normalized']:.3f}   "
                f"({result['resident_bytes']} B compact vs "
                f"{result['heap_bytes']} B heap-modeled, "
                f"{result['edges']} edges)"
            )
        elif "overhead" in result:
            if "checkpoints" in result:
                extra = (f"({result['checkpoints']} ckpts, "
                         f"{result['checkpoint_bytes']} bytes)")
            else:
                extra = f"({result['events']} events)"
            print(
                f"  {name:20s} opt {result['opt_s'] * 1e3:8.2f} ms   "
                f"ref {result['ref_s'] * 1e3:9.2f} ms   "
                f"overhead {result['overhead']:5.3f}x   "
                f"{extra}"
            )
        elif "speedup" in result:
            extra = (
                f"   ({result['processes']} procs / {result['cores']} cores, "
                f"{result['messages']} msgs)"
                if "cores" in result else ""
            )
            print(
                f"  {name:20s} opt {result['opt_s'] * 1e3:8.2f} ms   "
                f"ref {result['ref_s'] * 1e3:9.2f} ms   "
                f"speedup {result['speedup']:6.2f}x{extra}"
            )
        else:
            print(
                f"  {name:20s} opt {result['opt_s'] * 1e3:8.2f} ms   "
                f"normalized {result['normalized']:.3f}"
            )

    store = load_store()
    baseline = store.get("baseline", {}).get(mode, {})
    failures = [] if args.update_baseline else check_regressions(results, baseline, mode)

    if not args.no_write:
        store.setdefault("baseline", {})
        if args.update_baseline or not store["baseline"].get(mode):
            store["baseline"][mode] = results
            print(f"  baseline[{mode}] {'updated' if args.update_baseline else 'recorded'}")
        else:
            # Adopt kernels the committed baseline has never seen (a newly
            # added bench case) without disturbing the existing numbers.
            for kernel, result in results.items():
                if kernel not in store["baseline"][mode]:
                    store["baseline"][mode][kernel] = result
                    print(f"  baseline[{mode}] adopted new kernel {kernel}")
        store.setdefault("history", []).append(
            {
                "timestamp": datetime.now(timezone.utc).isoformat(timespec="seconds"),
                "mode": mode,
                "python": ".".join(map(str, sys.version_info[:3])),
                "results": results,
                "calibration_s": calib,
            }
        )
        store["history"] = store["history"][-HISTORY_LIMIT:]
        RESULTS_PATH.write_text(
            json.dumps(store, indent=2, sort_keys=True) + "\n", encoding="utf-8"
        )
        print(f"  wrote {RESULTS_PATH.relative_to(REPO_ROOT)}")

    if failures:
        print("\nPERF REGRESSION GATE FAILED:", file=sys.stderr)
        for failure in failures:
            print(f"  ✗ {failure}", file=sys.stderr)
        return 1
    print(f"  gate: ok (tolerance ±{int(REGRESSION_TOLERANCE[mode] * 100)}% vs committed baseline)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
