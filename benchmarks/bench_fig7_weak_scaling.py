"""Fig. 7 — weak scaling of GRAPHITE.

The paper fixes the per-machine load (≈10M vertices / 100M edges per
machine) and grows machines m ∈ {1, 2, 4, 8, 10} with an LDBC-generated,
LinkBench-perturbed graph; the makespan stays nearly constant (95–106%
scaling efficiency).

Here the LDBC-style generator produces ``m × per-machine`` load, the
simulated cluster gets ``m`` workers, and efficiency is measured on the
modeled makespan (per-worker compute is the scaling-relevant term: it
stays constant per machine when scaling is ideal).

Next to the modeled series, each point is re-run under the *parallel
executor* (``m`` simulated workers mapped onto real worker processes) and
its measured wall clock is reported.  The measured series is informational
— it tracks the host's core count and load, so no assertion binds it.
"""

import os

from harness import format_table, once, save_result

from repro.algorithms.runners import default_source
from repro.algorithms.td.eat import TemporalEAT
from repro.algorithms.td.reach import TemporalReachability
from repro.algorithms.ti.bfs import TemporalBFS
from repro.algorithms.ti.wcc import TemporalWCC, make_undirected
from repro.core.engine import IntervalCentricEngine
from repro.datasets import ldbc_graph
from repro.runtime.cluster import SimulatedCluster

MACHINES = (1, 2, 4, 8, 10)


def build_fig7() -> tuple[str, dict]:
    algorithms = {
        "BFS": lambda g: (g, TemporalBFS(default_source(g))),
        "WCC": lambda g: (make_undirected(g), TemporalWCC()),
        "EAT": lambda g: (g, TemporalEAT(default_source(g))),
        "RH": lambda g: (g, TemporalReachability(default_source(g))),
    }
    makespans: dict[str, tuple[dict[int, float], dict[int, int]]] = {
        name: ({}, {}) for name in algorithms
    }
    measured: dict[str, dict[int, float]] = {name: {} for name in algorithms}
    try:
        cores = len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux
        cores = os.cpu_count() or 1
    for m in MACHINES:
        graph = ldbc_graph(m)
        for name, prepare in algorithms.items():
            run_graph, program = prepare(graph)
            engine = IntervalCentricEngine(
                run_graph, program, cluster=SimulatedCluster(m), graph_name=f"ldbc-{m}m"
            )
            result = engine.run()
            makespans[name][0][m] = result.metrics.modeled_makespan
            makespans[name][1][m] = result.metrics.supersteps
            # Measured counterpart: the same run through real worker
            # processes (capped at the host's cores; the modeled series
            # above is what carries the scaling claim).
            run_graph2, program2 = prepare(graph)
            wall = IntervalCentricEngine(
                run_graph2, program2, cluster=SimulatedCluster(m),
                graph_name=f"ldbc-{m}m", executor="parallel",
                executor_processes=min(m, cores),
            ).run()
            measured[name][m] = wall.metrics.makespan

    rows = []
    efficiencies: dict[str, dict[int, float]] = {}
    per_step_eff: dict[str, dict[int, float]] = {}
    for name, (series, steps) in makespans.items():
        base = series[MACHINES[0]]
        base_per_step = base / steps[MACHINES[0]]
        efficiencies[name] = {m: base / series[m] for m in MACHINES}
        per_step_eff[name] = {
            m: base_per_step / (series[m] / steps[m]) for m in MACHINES
        }
        rows.append([
            name,
            *(f"{series[m] * 1e3:.2f}" for m in MACHINES),
            *(f"{measured[name][m] * 1e3:.1f}" for m in MACHINES),
            *(f"{efficiencies[name][m] * 100:.0f}%" for m in MACHINES[1:]),
            *(f"{per_step_eff[name][m] * 100:.0f}%" for m in MACHINES[1:]),
        ])
    headers = ["Alg", *(f"{m}M (ms)" for m in MACHINES),
               *(f"wall@{m}M" for m in MACHINES),
               *(f"eff@{m}M" for m in MACHINES[1:]),
               *(f"step-eff@{m}M" for m in MACHINES[1:])]
    table = format_table(
        headers, rows,
        title="Fig 7: weak scaling — fixed per-machine load, m machines\n"
              "paper: makespan ≈ constant, efficiency 95–106%.\n"
              "step-eff normalises by superstep count: at surrogate scale\n"
              "traversal depth still grows noticeably with graph size\n"
              "(200→2000 vertices), which the paper's 10M+/machine sizes\n"
              "do not exhibit.\n"
              f"wall@mM: measured wall clock (ms) of the same run under the\n"
              f"parallel executor with min(m, {os.cpu_count()}) worker\n"
              "processes — informational, host-dependent, unasserted.",
    )
    return table, (efficiencies, per_step_eff, measured)


def test_fig7_weak_scaling(benchmark):
    table, (efficiencies, per_step_eff, measured) = once(benchmark, build_fig7)
    save_result("fig7_weak_scaling.txt", table)
    # Near-constant per-superstep cost: the BSP machinery weak-scales.
    for name, series in per_step_eff.items():
        for m, eff in series.items():
            assert eff > 0.6, (name, m, eff)
    # Raw efficiency still stays reasonable despite depth growth.
    for name, series in efficiencies.items():
        for m, eff in series.items():
            assert eff > 0.45, (name, m, eff)
    # Measured walls exist for every point; their values are host-dependent
    # (core count, load) so nothing further is asserted about them.
    for name, series in measured.items():
        assert set(series) == set(MACHINES)
        assert all(wall > 0 for wall in series.values()), (name, series)
