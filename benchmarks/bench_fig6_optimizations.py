"""Fig. 6 — GRAPHITE optimisations and memory footprint.

(a) In-memory size of each graph representation: interval (GRAPHITE),
    transformed (TGB), largest snapshot (MSB) and per-batch (Chlonos).
(b) Inline warp-combiner benefit on the long-lifespan MAG surrogate
    (paper: compute time −17..25%, makespan 1.2–1.5×).
(c) Warp-suppression benefit on unit-lifespan GPlus (paper: makespan
    −25..40%, leaving GRAPHITE within ≈7% of the baselines).
"""

from harness import (
    DATASETS,
    NUM_WORKERS,
    bench_graph,
    format_table,
    once,
    save_result,
)

from repro.algorithms.td.eat import TemporalEAT
from repro.algorithms.td.lcc import TemporalLCC
from repro.algorithms.td.sssp import TemporalSSSP
from repro.algorithms.td.tc import TemporalTC
from repro.algorithms.td.tmst import TemporalTMST
from repro.algorithms.ti.bfs import TemporalBFS
from repro.algorithms.runners import default_source
from repro.core.engine import IntervalCentricEngine
from repro.graph.stats import memory_footprint
from repro.runtime.cluster import SimulatedCluster


def build_fig6a() -> tuple[str, dict]:
    sizes = {}
    rows = []
    for name in DATASETS:
        footprint = memory_footprint(bench_graph(name))
        sizes[name] = footprint
        rows.append([
            name,
            footprint["interval"],
            footprint["transformed"],
            footprint["largest_snapshot"],
            footprint["multi_snapshot_total"],
        ])
    table = format_table(
        ["Graph", "interval(B)", "transformed(B)", "largest snap(B)", "multi-snap total(B)"],
        rows,
        title="Fig 6a: modeled in-memory footprint per representation",
    )
    return table, sizes


def test_fig6a_memory(benchmark):
    table, sizes = once(benchmark, build_fig6a)
    save_result("fig6a_memory.txt", table)
    # Long-lived graphs: transformed graph dwarfs the interval graph
    # (the paper's MAG/WebUK DNL cases); unit-lifespan GPlus stays modest.
    for name in ("usrn", "twitter", "mag"):
        assert sizes[name]["transformed"] > 2.5 * sizes[name]["interval"], name
    assert sizes["gplus"]["transformed"] < 4 * sizes["gplus"]["interval"]


def _run_icm(graph, program, **options):
    engine = IntervalCentricEngine(
        graph, program, cluster=SimulatedCluster(NUM_WORKERS), **options
    )
    return engine.run().metrics


def build_fig6b() -> tuple[str, list]:
    graph = bench_graph("mag")
    source = default_source(graph)
    rows = []
    measurements = []
    for name, program_factory in [
        ("SSSP", lambda: TemporalSSSP(source)),
        ("EAT", lambda: TemporalEAT(source)),
        ("TMST", lambda: TemporalTMST(source)),
    ]:
        # Only the *inline warp* combiner is toggled, as in the paper's
        # ablation.  Our engine additionally eliminates dominated messages
        # receiver-side (which pre-folds most groups); the ablation runs
        # with that pass disabled so the inline combiner's effect on group
        # scanning is visible, mirroring the paper's configuration, and
        # once realistically with every optimisation on.
        base = _run_icm(graph, program_factory(), enable_dominated_elimination=False,
                        enable_warp_combiner=False)
        folded = _run_icm(graph, program_factory(), enable_dominated_elimination=False)
        realistic = _run_icm(graph, program_factory())
        compute_drop = 1 - folded.modeled_compute_time / base.modeled_compute_time
        speedup = base.modeled_makespan / folded.modeled_makespan
        measurements.append((name, compute_drop, speedup))
        rows.append([
            name,
            f"{base.modeled_compute_time * 1e3:.3f}",
            f"{folded.modeled_compute_time * 1e3:.3f}",
            f"{compute_drop * 100:.1f}%",
            f"{speedup:.2f}x",
            f"{realistic.modeled_compute_time * 1e3:.3f}",
        ])
    table = format_table(
        ["Alg", "compute w/o comb (ms)", "compute w/ comb (ms)",
         "compute drop", "makespan speedup", "compute, all opts (ms)"],
        rows,
        title="Fig 6b: inline warp-combiner benefit (MAG surrogate)\n"
              "paper: compute −17..25%, makespan 1.2–1.5x",
    )
    return table, measurements


def test_fig6b_combiner(benchmark):
    table, measurements = once(benchmark, build_fig6b)
    save_result("fig6b_combiner.txt", table)
    for name, compute_drop, speedup in measurements:
        assert compute_drop > 0.05, name
        assert speedup > 1.0, name


def build_fig6c() -> tuple[str, list]:
    graph = bench_graph("gplus")
    source = default_source(graph)
    rows = []
    measurements = []
    # Suppression pays off where warp has no sharing to exploit AND the
    # message groups cannot be pre-folded: the combiner-less clustering
    # algorithms (LCC, TC) are the showcase; BFS's unit messages are
    # already collapsed by its receiver combiner, so its saving is small.
    for name, program_factory in [
        ("LCC", TemporalLCC),
        ("TC", TemporalTC),
        ("BFS", lambda: TemporalBFS(source)),
    ]:
        with_suppression = _run_icm(graph, program_factory())
        without = _run_icm(graph, program_factory(), enable_warp_suppression=False)
        drop = 1 - with_suppression.modeled_makespan / without.modeled_makespan
        measurements.append((name, drop, with_suppression.warp_suppressed_vertices))
        rows.append([
            name,
            f"{without.modeled_makespan * 1e3:.3f}",
            f"{with_suppression.modeled_makespan * 1e3:.3f}",
            f"{drop * 100:.1f}%",
            with_suppression.warp_suppressed_vertices,
        ])
    table = format_table(
        ["Alg", "makespan w/o suppr (ms)", "makespan w/ suppr (ms)",
         "drop", "suppressed vertices"],
        rows,
        title="Fig 6c: warp suppression on unit-lifespan GPlus\n"
              "paper: makespan −25..40%",
    )
    return table, measurements


def test_fig6c_suppression(benchmark):
    table, measurements = once(benchmark, build_fig6c)
    save_result("fig6c_suppression.txt", table)
    for name, drop, suppressed in measurements:
        assert suppressed > 0, name
        assert drop >= 0.0, name
    # The combiner-less algorithms show the substantial saving.
    assert measurements[0][1] > 0.05  # LCC
    assert measurements[1][1] > 0.05  # TC
