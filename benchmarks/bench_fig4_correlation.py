"""Fig. 4 — correlation of operation counts with time contributions.

The paper's scatter plots relate, over every (platform, graph, algorithm)
run, the count of compute calls to the compute+ time (R² = 0.80) and the
messages sent to the exclusive messaging time (R² = 0.95), establishing
that platform performance follows the primitives' behaviour rather than
engineering accidents.

Here both relations are computed over the full run matrix on log-log axes
with scipy.  Because our worker compute time is *modeled* from the same
per-operation costs (see ``ComputeModel``), the correlations come out
higher than the paper's measured ones; the reproduction target is that
both are strong and that messaging correlates more tightly than compute
(group sizes vary per call; bytes per message vary less).
"""

import math

from harness import DATASETS, format_table, once, run_matrix, save_result

from scipy import stats as scipy_stats


def _log_r2(xs, ys) -> float:
    pairs = [(math.log10(x), math.log10(y)) for x, y in zip(xs, ys) if x > 0 and y > 0]
    lx, ly = zip(*pairs)
    result = scipy_stats.linregress(lx, ly)
    return result.rvalue**2


def build_fig4() -> tuple[str, float, float]:
    outcomes = run_matrix(DATASETS)
    calls = [o.metrics.compute_calls for o in outcomes]
    compute_time = [o.metrics.modeled_compute_time for o in outcomes]
    messages = [o.metrics.total_messages for o in outcomes]
    messaging_time = [o.metrics.messaging_time for o in outcomes]

    r2_compute = _log_r2(calls, compute_time)
    r2_messaging = _log_r2(messages, messaging_time)

    rows = [
        ["compute calls vs compute+ time", len(outcomes), f"{r2_compute:.3f}", "0.80"],
        ["messages vs messaging time", len(outcomes), f"{r2_messaging:.3f}", "0.95"],
    ]
    table = format_table(
        ["relation (log-log)", "points", "R² (ours)", "R² (paper)"],
        rows,
        title="Fig 4: operation counts vs time contributions",
    )
    return table, r2_compute, r2_messaging


def test_fig4(benchmark):
    table, r2_compute, r2_messaging = once(benchmark, build_fig4)
    save_result("fig4_correlation.txt", table)
    # Strong correlations, with messaging at least as tight as compute.
    assert r2_compute > 0.7
    assert r2_messaging > 0.8
    assert r2_messaging >= r2_compute - 0.05
