"""Micro-benchmarks of the core kernels.

Unlike the table/figure benches, these use pytest-benchmark's repeated
timing directly: they measure the warp operator (the paper implements it
as an ``O(m log m)`` merge-sort aggregation), partitioned-state updates,
and the message codec — the inner loops everything else sits on.
"""

import random

from repro.core.interval import FOREVER, Interval
from repro.core.messages import IntervalMessage
from repro.core.state import PartitionedState
from repro.core.warp import time_join, time_warp
from repro.runtime.encoding import decode_message, encode_message

RNG = random.Random(1234)


def _random_messages(m, span=1000, max_len=60):
    out = []
    for _ in range(m):
        start = RNG.randrange(span)
        out.append((Interval(start, start + RNG.randint(1, max_len)), RNG.randrange(100)))
    return out


def _partitioned_states(n, span=1000):
    bounds = sorted(RNG.sample(range(1, span), n - 1))
    cuts = [0, *bounds, span]
    return [(Interval(lo, hi), f"s{i}") for i, (lo, hi) in enumerate(zip(cuts, cuts[1:]))]


class TestWarpKernel:
    def test_warp_100_messages(self, benchmark):
        outer = _partitioned_states(8)
        inner = _random_messages(100)
        result = benchmark(time_warp, outer, inner)
        assert result

    def test_warp_1000_messages(self, benchmark):
        outer = _partitioned_states(8)
        inner = _random_messages(1000)
        result = benchmark(time_warp, outer, inner)
        assert result

    def test_warp_with_inline_combiner(self, benchmark):
        outer = _partitioned_states(8)
        inner = _random_messages(1000)
        result = benchmark(time_warp, outer, inner, min)
        assert all(len(group) == 1 for _, _, group in result)

    def test_time_join_1000(self, benchmark):
        outer = _partitioned_states(16)
        inner = _random_messages(1000)
        assert benchmark(time_join, outer, inner)

    def test_warp_scaling_is_near_linear(self, benchmark):
        """The merge-sort aggregation claim: doubling m should not blow up
        superlinearly (allowing generous constant noise)."""
        import time

        def measure():
            outer = _partitioned_states(8)
            timings = {}
            for m in (2000, 4000, 8000):
                inner = _random_messages(m)
                t0 = time.perf_counter()
                for _ in range(3):
                    time_warp(outer, inner)
                timings[m] = (time.perf_counter() - t0) / 3
            return timings

        timings = benchmark.pedantic(measure, rounds=1, iterations=1)
        # 4x the input should cost well under 16x (i.e. far from quadratic).
        assert timings[8000] < 10 * timings[2000]


class TestStateKernel:
    def test_random_updates(self, benchmark):
        updates = [
            (Interval(s := RNG.randrange(990), s + RNG.randint(1, 10)), RNG.randrange(5))
            for _ in range(200)
        ]

        def run():
            state = PartitionedState(Interval(0, 1000), 0)
            for iv, value in updates:
                state.set(iv, value)
            return state

        state = benchmark(run)
        state.check_invariants()

    def test_slices(self, benchmark):
        state = PartitionedState(Interval(0, 1000), 0)
        for _ in range(300):
            s = RNG.randrange(990)
            state.set(Interval(s, s + RNG.randint(1, 10)), RNG.randrange(5))
        windows = [Interval(i * 10, i * 10 + 50) for i in range(90)]
        benchmark(lambda: [state.slices(w) for w in windows])


class TestCodecKernel:
    MESSAGES = [
        IntervalMessage(Interval(t, t + 1 if t % 3 else FOREVER), (t % 7, f"v{t % 50}"))
        for t in range(500)
    ]

    def test_encode(self, benchmark):
        benchmark(lambda: [encode_message(m) for m in self.MESSAGES])

    def test_roundtrip(self, benchmark):
        encoded = [encode_message(m) for m in self.MESSAGES]
        decoded = benchmark(lambda: [decode_message(raw) for raw in encoded])
        assert decoded == self.MESSAGES
