"""Table 2 — ratio of baseline makespan over GRAPHITE, averaged per class.

The paper's headline comparison: for each graph, the mean over the TI
algorithms of ``makespan(MSB)/makespan(GRAPHITE)`` and
``makespan(Chlonos)/makespan(GRAPHITE)``, and over the TD algorithms for
TGB and GoFFish.  >1 means GRAPHITE is faster.

Paper values (real graphs): GRAPHITE wins by 2.3–24.8× on the large,
long-lived graphs (Twitter, MAG, WebUK) and is within ≈5% on the
unit-lifespan worst cases (GPlus, USRN ≈ 1).  The reproduction target is
that ordering, at surrogate scale, on the modeled distributed makespan.
"""

from harness import (
    DATASETS,
    format_table,
    fmt_ratio,
    makespan_of,
    once,
    run_cell,
    save_result,
)

from repro.algorithms.runners import TD_ALGORITHMS, TI_ALGORITHMS

TI_BASELINES = ("MSB", "Chlonos")
TD_BASELINES = ("TGB", "GoFFish")


def _mean_ratio(graph_name: str, algorithms, baseline: str) -> float:
    ratios = []
    for algorithm in algorithms:
        ours = makespan_of(run_cell(graph_name, algorithm, "GRAPHITE").metrics)
        theirs = makespan_of(run_cell(graph_name, algorithm, baseline).metrics)
        ratios.append(theirs / ours)
    return sum(ratios) / len(ratios)


def build_table2() -> tuple[str, dict]:
    ratios: dict[tuple[str, str], float] = {}
    for graph_name in DATASETS:
        for baseline in TI_BASELINES:
            ratios[(baseline, graph_name)] = _mean_ratio(graph_name, TI_ALGORITHMS, baseline)
        for baseline in TD_BASELINES:
            ratios[(baseline, graph_name)] = _mean_ratio(graph_name, TD_ALGORITHMS, baseline)
    headers = ["Baseline", *DATASETS]
    rows = []
    for baseline in (*TI_BASELINES, *TD_BASELINES):
        rows.append([baseline, *(fmt_ratio(ratios[(baseline, g)]) for g in DATASETS)])
    table = format_table(
        headers, rows,
        title=("Table 2: baseline makespan / GRAPHITE makespan "
               "(modeled; >1 = GRAPHITE faster)\n"
               "rows 1-2 averaged over TI algorithms, rows 3-4 over TD"),
    )
    return table, ratios


def test_table2(benchmark):
    table, ratios = once(benchmark, build_table2)
    save_result("table2_speedup.txt", table)

    # Shape assertions mirroring the paper's reading of Table 2:
    # GRAPHITE clearly wins on the long-lifespan graphs...
    for baseline in ("MSB", "Chlonos", "GoFFish"):
        for graph_name in ("twitter", "mag"):
            assert ratios[(baseline, graph_name)] > 1.5, (baseline, graph_name)
    # ...and is at worst comparable (not catastrophically slower) on the
    # unit-lifespan worst cases.
    for baseline in ("MSB", "Chlonos"):
        assert ratios[(baseline, "gplus")] > 0.7, baseline
