"""Fig. 5 — per-algorithm makespan split and operation counts.

For every graph, the paper plots each algorithm's makespan on every
platform, split into compute+ time and exclusive messaging time (barrier /
GC indicated when large), along with the number of compute calls and
messages sent.  This bench prints the same series: one block per graph,
one row per (algorithm, platform).
"""

from harness import (
    DATASETS,
    fmt_count,
    format_table,
    once,
    run_cell,
    save_result,
)

from repro.algorithms import platforms_for
from repro.algorithms.runners import ALL_ALGORITHMS


def build_fig5() -> str:
    blocks = []
    for graph_name in DATASETS:
        rows = []
        for algorithm in ALL_ALGORITHMS:
            for platform in platforms_for(algorithm):
                m = run_cell(graph_name, algorithm, platform).metrics
                rows.append([
                    algorithm,
                    platform,
                    f"{m.modeled_makespan * 1e3:.2f}",
                    f"{m.modeled_compute_time * 1e3:.2f}",
                    f"{m.messaging_time * 1e3:.2f}",
                    f"{m.barrier_time * 1e3:.2f}",
                    fmt_count(m.compute_calls),
                    fmt_count(m.total_messages),
                    m.supersteps,
                ])
        blocks.append(format_table(
            ["Alg", "Platform", "makespan(ms)", "compute+(ms)",
             "messaging(ms)", "barrier(ms)", "calls", "msgs", "supersteps"],
            rows,
            title=f"Fig 5 ({graph_name}): makespan split and operation counts",
        ))
    return "\n\n".join(blocks)


def test_fig5(benchmark):
    report = once(benchmark, build_fig5)
    save_result("fig5_makespan.txt", report)

    # Spot-check the paper's reading of Fig 5 on the long-lived graphs:
    # GRAPHITE needs fewer compute calls and messages than every baseline
    # for the sharing-friendly algorithms.
    for graph_name in ("twitter", "mag"):
        for algorithm in ("BFS", "WCC", "EAT", "RH", "TMST"):
            ours = run_cell(graph_name, algorithm, "GRAPHITE").metrics
            for platform in platforms_for(algorithm):
                if platform == "GRAPHITE":
                    continue
                theirs = run_cell(graph_name, algorithm, platform).metrics
                assert ours.compute_calls < theirs.compute_calls, (
                    graph_name, algorithm, platform)
                assert ours.messages_sent < theirs.total_messages, (
                    graph_name, algorithm, platform)

    # "EAT and FAST are omitted in Fig. 5 for brevity. They perform
    # similar to SSSP": on GRAPHITE, EAT stays within the same order of
    # magnitude as SSSP everywhere.
    for graph_name in ("twitter", "mag", "webuk"):
        sssp = run_cell(graph_name, "SSSP", "GRAPHITE").metrics
        eat = run_cell(graph_name, "EAT", "GRAPHITE").metrics
        assert eat.modeled_makespan < 4 * sssp.modeled_makespan
        assert sssp.modeled_makespan < 4 * eat.modeled_makespan
