"""Table 1 — dataset characteristics.

Regenerates the paper's dataset table for the six surrogates: snapshot
count, largest snapshot size, interval / transformed / multi-snapshot
representation sizes, and average vertex / edge / property lifespans.
The paper's numbers are at real-graph scale; the *relationships* between
columns (e.g. transformed ≫ interval for long-lived graphs, edge lifespan
≈ 1 for GPlus) are the reproduction target.
"""

from harness import DATASETS, bench_graph, format_table, once, save_result

from repro.graph.stats import dataset_stats


def build_table1() -> str:
    headers = [
        "Graph", "#Snap", "Largest|V|", "Largest|E|", "Interval|V|",
        "Interval|E|", "Transf|V|", "Transf|E|", "Multi|V|", "Multi|E|",
        "V-life", "E-life", "Prop-life",
    ]
    rows = []
    for name in DATASETS:
        stats = dataset_stats(bench_graph(name), name)
        rows.append(list(stats.row()))
    return format_table(headers, rows, title="Table 1: dataset characteristics (surrogates)")


def test_table1(benchmark):
    table = once(benchmark, build_table1)
    save_result("table1_datasets.txt", table)

    # The surrogates must preserve Table 1's qualitative column relations.
    gplus = dataset_stats(bench_graph("gplus"), "gplus")
    twitter = dataset_stats(bench_graph("twitter"), "twitter")
    usrn = dataset_stats(bench_graph("usrn"), "usrn")
    # GPlus: unit lifespans → nothing spans snapshots (ICM worst case).
    assert gplus.avg_edge_lifespan == 1.0
    # Twitter: edges span the lifetime → multi-snapshot ≫ interval.
    assert twitter.multi_snapshot_e > 8 * twitter.interval_e
    # USRN: static topology → largest snapshot equals the interval graph.
    assert usrn.largest_snapshot_e == usrn.interval_e
    # Property lifespans never exceed their edge lifespans.
    for name in DATASETS:
        stats = dataset_stats(bench_graph(name), name)
        assert stats.avg_property_lifespan <= stats.avg_edge_lifespan + 1e-9
