"""Pytest wiring for the benchmark harness."""

import sys
from pathlib import Path

# Make `import harness` work regardless of how pytest sets rootdir.
sys.path.insert(0, str(Path(__file__).parent))
