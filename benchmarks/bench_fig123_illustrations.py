"""Figs. 1–3 — the paper's illustrative figures, regenerated as text.

* **Fig. 1** — the transit network in its three representations: interval
  graph (1a), transformed graph (1b) and multi-snapshot graph (1c),
  including the intro's headline unit counts (the interval-centric view is
  a fraction of the transformed one).
* **Fig. 2** — the superstep-by-superstep SSSP execution, rendered from
  the engine's tracer (states, warp groups, scatters, messages).
* **Fig. 3** — the detailed warp example: three partitioned states,
  five messages, and the output triples.
"""

from harness import format_table, once, save_result

from repro.algorithms.td.sssp import TemporalSSSP
from repro.core.engine import IntervalCentricEngine
from repro.core.interval import Interval
from repro.core.tracing import ExecutionTracer
from repro.core.warp import time_warp
from repro.api import load_graph
from repro.graph.snapshots import snapshot_sizes
from repro.graph.transform import CHAIN, build_transformed_graph


def build_fig1() -> tuple[str, dict]:
    graph = load_graph("transit")
    horizon = 10
    transformed = build_transformed_graph(graph, horizon=horizon)
    app_edges = sum(1 for e in transformed.edges() if not e.get(CHAIN))
    chain_edges = transformed.num_edges - app_edges
    sizes = snapshot_sizes(graph, horizon)

    lines = ["Fig 1a: interval graph (vertices perpetual, edges = departure windows)"]
    for edge in sorted(graph.edges(), key=lambda e: str(e.eid)):
        costs = ", ".join(
            f"{iv}:cost {v}" for iv, v in edge.properties.timeline("travel-cost")
        )
        lines.append(f"  {edge.src} -> {edge.dst}  departs {edge.lifespan}  ({costs})")

    lines.append("")
    lines.append("Fig 1b: transformed graph (replicas per active time-point)")
    lines.append(f"  {transformed.num_vertices} replicas, "
                 f"{app_edges} application edges + {chain_edges} chain edges")

    lines.append("")
    lines.append("Fig 1c: multi-snapshot graph")
    for t, nv, ne in sizes:
        lines.append(f"  S{t}: {nv} vertices, {ne} edges")

    counts = {
        "interval": (graph.num_vertices, graph.num_edges),
        "transformed": (transformed.num_vertices, transformed.num_edges),
        "multi_snapshot": (sum(nv for _, nv, _ in sizes), sum(ne for _, _, ne in sizes)),
    }
    return "\n".join(lines), counts


def test_fig1_views(benchmark):
    text, counts = once(benchmark, build_fig1)
    save_result("fig1_views.txt", text)
    # The intro's size story: interval ≪ transformed ≪/≈ multi-snapshot.
    assert counts["interval"][0] < counts["transformed"][0]
    assert counts["interval"][1] < counts["transformed"][1]
    assert counts["interval"][0] < counts["multi_snapshot"][0]


def build_fig2() -> tuple[str, int]:
    tracer = ExecutionTracer()
    engine = IntervalCentricEngine(
        load_graph("transit"), TemporalSSSP("A"),
        tracer=tracer, enable_warp_combiner=False,
    )
    result = engine.run()
    header = ("Fig 2: SSSP execution on the transit network (source A, "
              "travel time 1)\n")
    states = ["final partitioned states:"]
    for vid in "ABCDEF":
        states.append(f"  {vid}: {result.states[vid]}")
    return header + tracer.render() + "\n\n" + "\n".join(states), result.metrics.supersteps


def test_fig2_trace(benchmark):
    text, supersteps = once(benchmark, build_fig2)
    save_result("fig2_trace.txt", text)
    assert supersteps == 3
    # The paper's traced warp groups appear verbatim in the render.
    assert "compute 'B' @ [4, 6)" in text
    assert "compute 'E' @ [9, inf)" in text
    assert "msgs=[7]" in text  # E's [6,9) group


def build_fig3() -> str:
    states = [(Interval(0, 5), "s1"), (Interval(5, 9), "s2"), (Interval(9, 10), "s3")]
    messages = [
        (Interval(0, 4), "m1"), (Interval(2, 7), "m2"), (Interval(7, 9), "m3"),
        (Interval(9, 10), "m4"), (Interval(5, 7), "m5"),
    ]
    triples = time_warp(states, messages)
    rows = [[str(iv), s, "{" + ", ".join(sorted(group)) + "}"]
            for iv, s, group in triples]
    return format_table(
        ["interval", "state", "message group"],
        rows,
        title="Fig 3: time-warp of 3 partitioned states with 5 messages\n"
              "(boundaries 0,2,4,5,7,9,10 — one compute call per row)",
    )


def test_fig3_warp_example(benchmark):
    table = once(benchmark, build_fig3)
    save_result("fig3_warp.txt", table)
    assert "{m1, m2}" in table
    assert table.count("s1") == 3  # s1 split across three groups