"""Benchmarks for the future-work extensions (paper Sec. VIII).

* streaming/incremental recomputation vs from-scratch reruns,
* greedy edge-cut partitioning vs hashing (message locality),
* binary vs text storage size.
"""

import io
import random

from harness import NUM_WORKERS, bench_graph, format_table, once, save_result

from repro.algorithms.runners import default_source
from repro.algorithms.td.sssp import TemporalSSSP
from repro.core.engine import IntervalCentricEngine
from repro.graph.binary_io import dump_graph_binary
from repro.graph.io import dump_graph
from repro.runtime.cluster import SimulatedCluster
from repro.runtime.partitioner import GreedyEdgeCutPartitioner
from repro.streaming import StreamingIntervalEngine


def build_streaming_bench() -> tuple[str, float]:
    """Cost of keeping SSSP fresh over an edge stream: incremental vs
    scratch recomputation after every batch."""
    rng = random.Random(99)
    n, horizon = 60, 16
    stream = StreamingIntervalEngine(
        TemporalSSSP("v0"), cluster=SimulatedCluster(NUM_WORKERS)
    )
    for i in range(n):
        stream.add_vertex(f"v{i}", 0, horizon)

    def random_edge():
        src, dst = rng.randrange(n), rng.randrange(n)
        if dst == src:
            dst = (dst + 1) % n
        start = rng.randrange(horizon - 1)
        return (f"v{src}", f"v{dst}", start, rng.randint(start + 1, horizon))

    for _ in range(300):
        src, dst, s, e = random_edge()
        stream.add_edge(src, dst, s, e, props={"travel-cost": rng.randint(1, 3),
                                               "travel-time": 1})
    stream.compute()  # initial full run

    incremental_calls = 0
    scratch_calls = 0
    batches = 10
    for _ in range(batches):
        for _ in range(3):
            src, dst, s, e = random_edge()
            stream.add_edge(src, dst, s, e, props={"travel-cost": rng.randint(1, 3),
                                                   "travel-time": 1})
        refreshed = stream.compute()
        incremental_calls += refreshed.metrics.compute_calls
        scratch = IntervalCentricEngine(
            stream.graph, TemporalSSSP("v0"), cluster=SimulatedCluster(NUM_WORKERS)
        ).run()
        scratch_calls += scratch.metrics.compute_calls

    saving = 1 - incremental_calls / scratch_calls
    table = format_table(
        ["strategy", f"compute calls over {batches} refreshes"],
        [["from scratch", scratch_calls],
         ["incremental (streaming)", incremental_calls],
         ["saving", f"{saving * 100:.1f}%"]],
        title="Extension: incremental SSSP over an edge stream",
    )
    return table, saving


def test_streaming_incremental(benchmark):
    table, saving = once(benchmark, build_streaming_bench)
    save_result("ext_streaming.txt", table)
    assert saving > 0.4


def build_partitioning_bench() -> tuple[str, dict]:
    graph = bench_graph("usrn")
    source = default_source(graph)
    results = {}
    rows = []
    for name, partitioner in [
        ("hash", None),
        ("greedy edge-cut", GreedyEdgeCutPartitioner(NUM_WORKERS, graph)),
    ]:
        cluster = SimulatedCluster(NUM_WORKERS, partitioner=partitioner)
        metrics = IntervalCentricEngine(
            graph, TemporalSSSP(source), cluster=cluster
        ).run().metrics
        remote_fraction = metrics.remote_messages / max(
            1, metrics.remote_messages + metrics.local_messages
        )
        results[name] = remote_fraction
        rows.append([
            name, metrics.local_messages, metrics.remote_messages,
            f"{remote_fraction * 100:.1f}%",
            f"{metrics.modeled_makespan * 1e3:.3f}",
        ])
    table = format_table(
        ["partitioner", "local", "remote", "remote fraction", "makespan (ms)"],
        rows,
        title="Extension: partitioning strategy vs message locality (USRN road grid)",
    )
    return table, results


def test_partitioning_strategies(benchmark):
    table, results = once(benchmark, build_partitioning_bench)
    save_result("ext_partitioning.txt", table)
    assert results["greedy edge-cut"] < results["hash"]


def build_storage_bench() -> tuple[str, dict]:
    rows = []
    ratios = {}
    for name in ("gplus", "twitter", "mag"):
        graph = bench_graph(name)
        text = io.StringIO()
        dump_graph(graph, text)
        text_bytes = len(text.getvalue().encode("utf-8"))
        binary = io.BytesIO()
        binary_bytes = dump_graph_binary(graph, binary)
        ratios[name] = binary_bytes / text_bytes
        rows.append([name, text_bytes, binary_bytes, f"{ratios[name] * 100:.1f}%"])
    table = format_table(
        ["graph", "text (B)", "binary (B)", "binary/text"],
        rows,
        title="Extension: varint binary storage vs text format",
    )
    return table, ratios


def test_storage_format(benchmark):
    table, ratios = once(benchmark, build_storage_bench)
    save_result("ext_storage.txt", table)
    assert all(ratio < 0.5 for ratio in ratios.values())
