"""Ablations of GRAPHITE's design choices beyond the paper's own figures.

* varint vs fixed-width interval messages (Sec. VI claims a 59–78% drop in
  message sizes);
* Chlonos batch-size sweep (memory-pressure model behind Table 2);
* warp-suppression threshold sweep (the 70% default of Sec. VI);
* hash vs contiguous-range partitioning (message locality; the paper notes
  hash partitioning left 70% of TGB's messages on half the partitions).
"""

from harness import (
    NUM_WORKERS,
    bench_graph,
    format_table,
    once,
    save_result,
)

from repro.algorithms.runners import default_source
from repro.algorithms.td.sssp import TemporalSSSP
from repro.algorithms.ti.bfs import SnapshotBFS, TemporalBFS
from repro.baselines.chlonos import run_chlonos
from repro.core.engine import IntervalCentricEngine
from repro.runtime.cluster import SimulatedCluster
from repro.runtime.partitioner import RangePartitioner


def build_varint_ablation() -> tuple[str, float]:
    graph = bench_graph("mag")
    source = default_source(graph)
    sizes = {}
    for varint in (True, False):
        cluster = SimulatedCluster(NUM_WORKERS, varint_encoding=varint)
        result = IntervalCentricEngine(graph, TemporalSSSP(source), cluster=cluster).run()
        sizes[varint] = result.metrics.message_bytes
    drop = 1 - sizes[True] / sizes[False]
    table = format_table(
        ["encoding", "message bytes"],
        [["fixed-width (2 longs + 8B payload)", sizes[False]],
         ["varint + unit/∞ flags", sizes[True]],
         ["size drop", f"{drop * 100:.1f}%"]],
        title="Ablation: interval-message encoding (paper: 59–78% drop)",
    )
    return table, drop


def test_varint_encoding(benchmark):
    table, drop = once(benchmark, build_varint_ablation)
    save_result("ablation_varint.txt", table)
    assert 0.5 < drop < 0.95


def build_batch_sweep() -> tuple[str, list]:
    graph = bench_graph("twitter")
    source = default_source(graph)
    horizon = graph.time_horizon()
    rows = []
    series = []
    for batch_size in (1, 2, 4, 8, None):
        res = run_chlonos(
            graph, lambda t: SnapshotBFS(source), batch_size=batch_size,
            cluster=SimulatedCluster(NUM_WORKERS), graph_name="twitter",
        )
        label = batch_size if batch_size is not None else horizon
        series.append((label, res.metrics.messages_sent, res.metrics.modeled_makespan))
        rows.append([
            label,
            res.num_batches,
            res.metrics.messages_sent,
            res.metrics.shared_messages,
            f"{res.metrics.modeled_makespan * 1e3:.2f}",
        ])
    table = format_table(
        ["batch size", "batches", "messages", "shared", "makespan (ms)"],
        rows,
        title="Ablation: Chlonos batch size on Twitter surrogate\n"
              "(bigger batches share more adjacent-snapshot messages)",
    )
    return table, series


def test_chlonos_batch_sweep(benchmark):
    table, series = once(benchmark, build_batch_sweep)
    save_result("ablation_chlonos_batch.txt", table)
    # Messages decrease monotonically as batches grow.
    messages = [msgs for _, msgs, _ in series]
    assert messages == sorted(messages, reverse=True)
    # batch=1 degenerates to MSB: no sharing at all.
    assert series[0][1] > series[-1][1]


def build_suppression_sweep() -> tuple[str, list]:
    graph = bench_graph("gplus")
    source = default_source(graph)
    rows = []
    series = []
    from repro.algorithms.td.lcc import TemporalLCC

    for threshold in (0.0, 0.3, 0.5, 0.7, 0.9, 1.01):
        engine = IntervalCentricEngine(
            graph, TemporalLCC(), cluster=SimulatedCluster(NUM_WORKERS),
            warp_suppression_threshold=threshold,
        )
        metrics = engine.run().metrics
        series.append((threshold, metrics.warp_suppressed_vertices, metrics.modeled_makespan))
        rows.append([
            threshold,
            metrics.warp_suppressed_vertices,
            metrics.warp_calls,
            f"{metrics.modeled_makespan * 1e3:.3f}",
        ])
    table = format_table(
        ["threshold", "suppressed", "warped", "makespan (ms)"],
        rows,
        title="Ablation: warp-suppression threshold on GPlus (default 0.70)",
    )
    return table, series


def test_suppression_threshold_sweep(benchmark):
    table, series = once(benchmark, build_suppression_sweep)
    save_result("ablation_suppression_threshold.txt", table)
    # Lower thresholds suppress at least as many vertices.
    suppressed = [s for _, s, _ in series]
    assert suppressed == sorted(suppressed, reverse=True)
    # On a unit-lifespan graph, an always-suppress policy beats never.
    assert series[0][2] <= series[-1][2]


def build_domination_ablation() -> tuple[str, dict]:
    """Dominated-message elimination on/off (our receiver-combiner
    extension): the pre-folding that keeps warp groups coarse for
    monotone algorithms."""
    from repro.algorithms.td.eat import TemporalEAT

    graph = bench_graph("mag")
    source = default_source(graph)
    rows = []
    reductions = {}
    for name, program_factory in [
        ("SSSP", lambda: TemporalSSSP(source)),
        ("EAT", lambda: TemporalEAT(source)),
    ]:
        with_elim = IntervalCentricEngine(
            graph, program_factory(), cluster=SimulatedCluster(NUM_WORKERS)
        ).run().metrics
        without = IntervalCentricEngine(
            graph, program_factory(), cluster=SimulatedCluster(NUM_WORKERS),
            enable_dominated_elimination=False,
        ).run().metrics
        reductions[name] = (
            1 - with_elim.compute_calls / without.compute_calls,
            1 - with_elim.messages_sent / without.messages_sent,
        )
        rows.append([
            name,
            without.compute_calls, with_elim.compute_calls,
            without.messages_sent, with_elim.messages_sent,
            f"{reductions[name][0] * 100:.0f}% / {reductions[name][1] * 100:.0f}%",
        ])
    table = format_table(
        ["Alg", "calls w/o", "calls w/", "msgs w/o", "msgs w/", "drop (calls/msgs)"],
        rows,
        title="Ablation: dominated-message elimination (MAG surrogate)",
    )
    return table, reductions


def test_dominated_elimination(benchmark):
    table, reductions = once(benchmark, build_domination_ablation)
    save_result("ablation_domination.txt", table)
    for name, (call_drop, msg_drop) in reductions.items():
        assert call_drop > 0.1, name
        assert msg_drop > 0.1, name


def build_partitioner_ablation() -> tuple[str, dict]:
    graph = bench_graph("twitter")
    source = default_source(graph)
    results = {}
    rows = []
    for name, make_cluster in [
        ("hash", lambda: SimulatedCluster(NUM_WORKERS)),
        ("range", lambda: SimulatedCluster(
            NUM_WORKERS,
            partitioner=RangePartitioner(NUM_WORKERS, graph.vertex_ids()),
        )),
    ]:
        result = IntervalCentricEngine(
            graph, TemporalBFS(source), cluster=make_cluster()
        ).run()
        m = result.metrics
        local_fraction = m.local_messages / max(1, m.local_messages + m.remote_messages)
        results[name] = local_fraction
        rows.append([name, m.local_messages, m.remote_messages, f"{local_fraction * 100:.1f}%"])
    table = format_table(
        ["partitioner", "local msgs", "remote msgs", "local fraction"],
        rows,
        title="Ablation: vertex partitioning vs message locality",
    )
    return table, results


def test_partitioner_locality(benchmark):
    table, results = once(benchmark, build_partitioner_ablation)
    save_result("ablation_partitioner.txt", table)
    # Hash partitioning of a power-law graph keeps most messages remote
    # (the locality problem the paper observes for TGB's skewed traffic).
    assert results["hash"] < 0.4
