"""Sec. VII-B8 — lines of user-logic code per algorithm and platform.

The paper reports GRAPHITE algorithms at 19–114 LoC (TI) and 27–80 LoC
(TD), marginally higher than MSB (exactly 3 extra API lines) and
substantially lower than TGB and GoFFish once their replica-forwarding /
state-passing scaffolding is charged to the user.

We count the executable lines of each program class (docstrings, comments
and blanks stripped).  TGB programs inherit ``ChainForwardingProgram``,
whose replica-forwarding logic is algorithm scaffolding a TGB user must
own, so its lines are charged to every TGB program.
"""

import inspect

from harness import format_table, once, save_result

from repro.algorithms.td import eat, fast, lcc, ld, reach, sssp, tc, tmst
from repro.algorithms.ti import bfs, pagerank, scc, wcc
from repro.baselines.tgb import ChainForwardingProgram


def count_loc(cls) -> int:
    """Executable LoC of a class body: no blanks, comments or docstrings."""
    source = inspect.getsource(cls)
    import ast

    tree = ast.parse(source.lstrip())
    lines = set()
    for node in ast.walk(tree):
        if isinstance(node, (ast.Expr,)) and isinstance(node.value, ast.Constant) \
                and isinstance(node.value.value, str):
            continue  # docstring expression
        if hasattr(node, "lineno") and not isinstance(node, ast.Module):
            lines.add(node.lineno)
    # Remove docstring line ranges.
    for node in ast.walk(tree):
        if isinstance(node, ast.Expr) and isinstance(node.value, ast.Constant) \
                and isinstance(node.value.value, str):
            for ln in range(node.lineno, node.end_lineno + 1):
                lines.discard(ln)
    return len(lines)


PROGRAMS = {
    "BFS": {"GRAPHITE": bfs.TemporalBFS, "MSB": bfs.SnapshotBFS},
    "WCC": {"GRAPHITE": wcc.TemporalWCC, "MSB": wcc.SnapshotWCC},
    "SCC": {"GRAPHITE": scc.MinLabelPass, "MSB": scc.SnapshotMinLabelPass},
    "PR": {"GRAPHITE": pagerank.TemporalPageRank, "MSB": pagerank.SnapshotPageRank},
    "SSSP": {"GRAPHITE": sssp.TemporalSSSP, "TGB": sssp.TgbSSSP, "GoFFish": sssp.GoffishSSSP},
    "EAT": {"GRAPHITE": eat.TemporalEAT, "TGB": eat.TgbEAT, "GoFFish": eat.GoffishEAT},
    "FAST": {"GRAPHITE": fast.TemporalFAST, "TGB": fast.TgbFAST, "GoFFish": fast.GoffishFAST},
    "LD": {"GRAPHITE": ld.TemporalLD, "TGB": ld.TgbLD, "GoFFish": ld.GoffishLD},
    "TMST": {"GRAPHITE": tmst.TemporalTMST, "TGB": tmst.TgbTMST, "GoFFish": tmst.GoffishTMST},
    "RH": {"GRAPHITE": reach.TemporalReachability, "TGB": reach.TgbReachability,
           "GoFFish": reach.GoffishReachability},
    "LCC": {"GRAPHITE": lcc.TemporalLCC, "TGB": lcc.SnapshotLCC, "GoFFish": lcc.GoffishLCC},
    "TC": {"GRAPHITE": tc.TemporalTC, "TGB": tc.SnapshotTC, "GoFFish": tc.GoffishTC},
}


def build_loc_table() -> tuple[str, dict]:
    chain_loc = count_loc(ChainForwardingProgram)
    counts: dict[tuple[str, str], int] = {}
    rows = []
    for algorithm, variants in PROGRAMS.items():
        row = [algorithm]
        for platform in ("GRAPHITE", "MSB", "TGB", "GoFFish"):
            cls = variants.get(platform)
            if cls is None:
                row.append("-")
                continue
            loc = count_loc(cls)
            if platform == "TGB" and issubclass(cls, ChainForwardingProgram):
                loc += chain_loc
            counts[(algorithm, platform)] = loc
            row.append(loc)
        rows.append(row)
    table = format_table(
        ["Alg", "GRAPHITE", "MSB", "TGB", "GoFFish"],
        rows,
        title="Sec VII-B8: executable LoC of user logic per platform\n"
              "(TGB includes the replica chain-forwarding scaffolding)",
    )
    return table, counts


def test_loc(benchmark):
    table, counts = once(benchmark, build_loc_table)
    save_result("loc_user_logic.txt", table)
    # The paper's qualitative claims at our granularity:
    for algorithm in ("SSSP", "EAT", "RH", "TMST"):
        ours = counts[(algorithm, "GRAPHITE")]
        # Concise TD programs (paper: 27–80 LoC for TD algorithms).
        assert ours <= 80, algorithm
        # Fewer lines than the TGB formulation with its scaffolding.
        assert ours < counts[(algorithm, "TGB")], algorithm
