"""Querying a temporal graph and an ICM result with the timeline algebra.

An analyst slices an evolving collaboration network to business hours,
tracks how connectivity evolves, and interrogates a shortest-path result:
when is each answer valid, who is cheapest to reach at closing time, and
how does total reachability grow over the day?

Run:  python examples/temporal_queries.py
"""

from repro.algorithms.td.closeness import most_central, temporal_closeness
from repro.algorithms.td.sssp import INFINITY, TemporalSSSP
from repro.core.engine import IntervalCentricEngine
from repro.core.interval import Interval
from repro.datasets import reddit
from repro.query import (
    degree_timeline,
    edge_count_timeline,
    state_timeline,
    temporal_slice,
    top_k_at,
    total_over_time,
    when_stable,
)


def main() -> None:
    network = reddit(scale=0.4, seed=11)
    horizon = network.time_horizon()
    print(f"Collaboration network: {network.num_vertices} people, "
          f"{network.num_edges} interactions over {horizon} hours")

    print("\nInteractions alive per hour:")
    for iv, count in edge_count_timeline(network):
        print(f"  {iv}: {count}")

    busy = temporal_slice(network, Interval(4, 12))
    print(f"\nBusiness-hours slice [4,12): {busy.num_vertices} people, "
          f"{busy.num_edges} interactions")

    closeness, _ = temporal_closeness(network, sources=network.vertex_ids()[:10])
    top, score = most_central(closeness, 1)[0]
    print(f"\nMost temporally central of the first ten: {top} "
          f"(harmonic closeness {score:.2f})")
    print(f"{top}'s out-degree over time: "
          + ", ".join(f"{iv}:{d}" for iv, d in degree_timeline(network, top)))

    result = IntervalCentricEngine(network, TemporalSSSP(top)).run()

    print(f"\nCheapest reachable people from {top} at closing time (t={horizon - 1}):")
    for vid, cost in top_k_at(result, horizon - 1, k=4, reverse=False):
        label = "∞" if cost >= INFINITY else cost
        print(f"  {vid}: cost {label}")

    someone = next(vid for vid in network.vertex_ids()
                   if vid != top and min(v for _, v in result.states[vid]) < INFINITY)
    print(f"\nHow long each answer for {someone} stays valid:")
    for iv in when_stable(result, someone):
        value = state_timeline(result, someone).value_at(iv.start)
        label = "unreachable" if value >= INFINITY else f"cost {value}"
        print(f"  {iv}: {label}")

    reachable = total_over_time(
        result, lambda values: sum(1 for v in values if v < INFINITY)
    )
    print(f"\nPeople reachable from {top} over time: "
          + ", ".join(f"{iv}:{n}" for iv, n in reachable))


if __name__ == "__main__":
    main()
