"""Spotting monetary routing patterns in a transaction network.

The paper's introduction motivates temporal motifs: "feed-forward
triangles in transaction networks let us identify monetary routing
patterns".  A compliance analyst watches an account graph where payment
channels open and close; channels that form a *concurrently open cycle*
allow money to be routed back to its origin — a layering red flag.

We build a transaction network with an embedded routing ring, locate the
concurrent cycles with temporal triangle counting (TC), confirm the
window with timeline queries, and enumerate the actual routing journeys.

Run:  python examples/fraud_motifs.py
"""

import random

from repro.algorithms.td.tc import TemporalTC, global_triangles, tc_count
from repro.core.engine import IntervalCentricEngine
from repro.core.interval import Interval
from repro.graph.builder import TemporalGraphBuilder
from repro.query import Timeline, find_journeys

HORIZON = 20


def build_network():
    rng = random.Random(7)
    b = TemporalGraphBuilder()
    accounts = [f"acct{i}" for i in range(12)] + ["shellA", "shellB", "shellC"]
    for acct in accounts:
        b.add_vertex(acct, 0, HORIZON)
    # Legitimate traffic: short-lived one-way payment channels.
    for _ in range(40):
        src, dst = rng.sample(accounts[:12], 2)
        start = rng.randrange(HORIZON - 2)
        b.add_edge(src, dst, start, start + rng.randint(1, 3))
    # The routing ring: three shell accounts with channels that are all
    # open together during [8, 13) — money can circulate.
    b.add_edge("shellA", "shellB", 6, 14)
    b.add_edge("shellB", "shellC", 8, 16)
    b.add_edge("shellC", "shellA", 5, 13)
    return b.build()


def main() -> None:
    network = build_network()
    print(f"Transaction network: {network.num_vertices} accounts, "
          f"{network.num_edges} payment channels over {HORIZON} days")

    result = IntervalCentricEngine(network, TemporalTC(), graph_name="ledger").run()

    counts = Timeline(
        [(Interval(t, t + 1), global_triangles(result.states, t))
         for t in range(HORIZON)]
    ).coalesced()
    print("\nConcurrently-open payment cycles per day:")
    for interval, count in counts:
        flag = "  ← routing possible!" if count else ""
        print(f"  {interval}: {count}{flag}")

    suspicious_windows = counts.when(lambda c: c > 0)
    print(f"\nSuspicious window(s): {suspicious_windows}")

    ringleaders = sorted(
        vid for vid in network.vertex_ids()
        if any(tc_count(v) > 0 for _, v in result.states[vid])
    )
    print(f"Accounts closing cycles: {ringleaders}")

    window = suspicious_windows[0]
    loops = find_journeys(
        network, "shellA", "shellA",
        window=Interval(window.start, min(window.end + 3, HORIZON)),
        max_legs=3, allow_revisits=True,
    )
    print(f"\nActual routing journeys returning funds to shellA:")
    for journey in loops:
        print(f"  {journey}  (round trip in {journey.duration} days)")


if __name__ == "__main__":
    main()
