"""Quickstart: temporal SSSP on the paper's transit network (Fig. 1a).

Builds the running example from the paper — a transit network whose
connections exist only during departure windows and whose costs change over
time — and finds the cheapest time-respecting journey from stop A to every
other stop, per interval of arrival.

Run:  python examples/quickstart.py
"""

from repro import api
from repro.algorithms.td.sssp import INFINITY, TemporalSSSP
from repro.core.interval import format_time


def main() -> None:
    graph = api.load_graph("transit")
    print(f"Transit network: {graph.num_vertices} stops, {graph.num_edges} connections")
    print("Connections (departure window, cost):")
    for edge in sorted(graph.edges(), key=lambda e: str(e.eid)):
        costs = ", ".join(
            f"{iv}→cost {value}"
            for iv, value in edge.properties.timeline("travel-cost")
        )
        print(f"  {edge.src} → {edge.dst}  departs {edge.lifespan}  ({costs})")

    program = TemporalSSSP(source="A")
    result = api.run(graph, program, graph_name="transit")

    print("\nCheapest time-respecting cost from A, per interval of arrival:")
    for vid in sorted(graph.vertex_ids()):
        parts = []
        for interval, cost in result.states[vid]:
            label = "unreachable" if cost >= INFINITY else f"cost {cost}"
            parts.append(f"{interval}: {label}")
        print(f"  {vid}: " + "; ".join(parts))

    m = result.metrics
    print(
        f"\nConverged in {m.supersteps} supersteps with {m.compute_calls} "
        f"compute calls and {m.messages_sent} messages."
    )
    print(
        "Note how B and E are each reachable during two intervals with "
        "different minimal costs — the answer a snapshot-based system "
        "cannot produce — and how F is unreachable purely for temporal "
        "reasons (its only incoming connection expires before any journey "
        "can get there)."
    )


if __name__ == "__main__":
    main()
