"""Journey planning on a synthetic city transit network.

The scenario the paper's introduction motivates: a commuter wants to know,
for a morning window on a transit network with time-varying service,

* the earliest they can arrive downtown (EAT),
* the latest they can leave home and still make a 9:00 meeting (LD), and
* the shortest door-to-door trip duration if they can choose when to
  leave (FAST).

The network is a ring of suburbs around a downtown hub, with commuter
lines whose frequencies and travel costs change between off-peak and rush
hour.  One time unit = 15 minutes, t=0 is 06:00.

Run:  python examples/transit_routing.py
"""

from repro.algorithms.td.eat import TemporalEAT, earliest_arrival
from repro.algorithms.td.fast import TemporalFAST, fastest_duration
from repro.algorithms.td.ld import TemporalLD, latest_departure
from repro.core.engine import IntervalCentricEngine
from repro.graph.builder import TemporalGraphBuilder

HORIZON = 16  # 06:00 .. 10:00 in 15-minute steps


def clock(t: int) -> str:
    minutes = 6 * 60 + t * 15
    return f"{minutes // 60:02d}:{minutes % 60:02d}"


def build_city():
    """Suburbs S0..S5 on a ring, all connected to DOWNTOWN via lines with
    rush-hour-dependent travel times."""
    b = TemporalGraphBuilder()
    suburbs = [f"S{i}" for i in range(6)]
    for stop in (*suburbs, "DOWNTOWN", "AIRPORT"):
        b.add_vertex(stop, 0, HORIZON)
    for i, stop in enumerate(suburbs):
        nxt = suburbs[(i + 1) % len(suburbs)]
        # Ring line: every period, both directions, full service window.
        for src, dst in ((stop, nxt), (nxt, stop)):
            b.add_edge(src, dst, 0, HORIZON,
                       props={"travel-time": 1, "travel-cost": 1})
        # Commuter line to downtown: only from 06:30 (t=2), slower and
        # pricier during rush hour 07:30–09:00 (t in [6, 12)).
        b.add_edge(stop, "DOWNTOWN", 2, HORIZON, props={
            "travel-time": [(2, 6, 1), (6, 12, 2), (12, HORIZON, 1)],
            "travel-cost": [(2, 6, 2), (6, 12, 4), (12, HORIZON, 2)],
        })
        b.add_edge("DOWNTOWN", stop, 2, HORIZON, props={
            "travel-time": [(2, 6, 1), (6, 12, 2), (12, HORIZON, 1)],
            "travel-cost": [(2, 6, 2), (6, 12, 4), (12, HORIZON, 2)],
        })
    # Airport shuttle: runs only before rush hour.
    b.add_edge("DOWNTOWN", "AIRPORT", 0, 6, props={"travel-time": 2, "travel-cost": 5})
    return b.build()


def main() -> None:
    city = build_city()
    home = "S3"
    print(f"City transit network: {city.num_vertices} stops, {city.num_edges} lines")
    print(f"Commuter lives at {home}; one time unit = 15 min, t=0 is {clock(0)}\n")

    eat = IntervalCentricEngine(city, TemporalEAT(home), graph_name="city").run()
    print("Earliest arrivals starting from home at 06:00:")
    for stop in ("DOWNTOWN", "AIRPORT", "S0"):
        arrival = earliest_arrival(eat.states[stop])
        label = clock(arrival) if arrival is not None else "unreachable"
        print(f"  {stop:9s} {label}")

    # The 9:00 meeting is at t=12; run LD on the reversed graph.
    deadline = 12
    ld = IntervalCentricEngine(
        city.reversed(), TemporalLD("DOWNTOWN", deadline), graph_name="city"
    ).run()
    departure = latest_departure(ld.states[home])
    print(f"\nLatest departure from {home} to reach DOWNTOWN by {clock(deadline)}: "
          f"{clock(departure) if departure is not None else 'impossible'}")

    fast = IntervalCentricEngine(
        city, TemporalFAST(home, horizon=HORIZON), graph_name="city"
    ).run()
    duration = fastest_duration(fast.states["DOWNTOWN"])
    print(f"Shortest possible {home}→DOWNTOWN trip (choosing departure freely): "
          f"{duration * 15} minutes")

    airport = fastest_duration(fast.states["AIRPORT"])
    if airport is None:
        print("The airport shuttle stops before any onward connection — no trip today.")
    else:
        print(f"Shortest {home}→AIRPORT trip: {airport * 15} minutes "
              "(the shuttle only runs before rush hour!)")


if __name__ == "__main__":
    main()
