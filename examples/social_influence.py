"""Influence analysis on an evolving social network.

A marketing team seeds a campaign at the most-followed account of an
evolving follower graph and asks:

* who can the campaign reach through time-respecting shares (RH),
* how fast does it reach them (EAT),
* how does each account's PageRank drift as the graph evolves (PR), and
* how clique-ish are communities over time (concurrent triangles, TC)?

Run:  python examples/social_influence.py
"""

from repro.algorithms.runners import default_source
from repro.algorithms.td.eat import TemporalEAT, earliest_arrival
from repro.algorithms.td.reach import TemporalReachability, is_reachable
from repro.algorithms.td.tc import TemporalTC, global_triangles
from repro.algorithms.ti.pagerank import TemporalPageRank
from repro.core.engine import IntervalCentricEngine
from repro.datasets import reddit


def main() -> None:
    network = reddit(scale=0.6, seed=11)
    horizon = network.time_horizon()
    seed_account = default_source(network)
    print(f"Follower network: {network.num_vertices} accounts, "
          f"{network.num_edges} follow events over {horizon} days")
    print(f"Campaign seeded at the most-followed account: {seed_account}\n")

    reach = IntervalCentricEngine(
        network, TemporalReachability(seed_account), graph_name="social"
    ).run()
    reached = [vid for vid in network.vertex_ids() if is_reachable(reach.states[vid])]
    print(f"Time-respecting reach: {len(reached)}/{network.num_vertices} accounts")

    eat = IntervalCentricEngine(
        network, TemporalEAT(seed_account), graph_name="social"
    ).run()
    arrivals = []
    for vid in reached:
        arrival = earliest_arrival(eat.states[vid])
        if arrival is not None:
            arrivals.append((arrival, vid))
    arrivals.sort()
    print("First five accounts the campaign reaches:")
    for arrival, vid in arrivals[:5]:
        print(f"  day {arrival:2d}: {vid}")

    pr = IntervalCentricEngine(
        network, TemporalPageRank(network), graph_name="social"
    ).run()
    print("\nPageRank drift of the seed account (per day):")
    drift = [f"{pr.value_at(seed_account, t):.4f}" for t in range(0, horizon, 4)]
    print("  day 0/4/8/12:", "  ".join(drift))
    # Which account gains the most rank over the campaign window?
    def gain(vid):
        return pr.value_at(vid, horizon - 1) - pr.value_at(vid, 0)
    climber = max(network.vertex_ids(), key=gain)
    print(f"  fastest climber: {climber} ({gain(climber):+.4f})")

    tc = IntervalCentricEngine(network, TemporalTC(), graph_name="social").run()
    print("\nConcurrent follow-triangles per day (community tightness):")
    counts = [global_triangles(tc.states, t) for t in range(horizon)]
    print("  " + " ".join(f"{c:3d}" for c in counts))
    peak = max(range(horizon), key=lambda t: counts[t])
    print(f"  peak cliquishness on day {peak} with {counts[peak]} triangles")


if __name__ == "__main__":
    main()
