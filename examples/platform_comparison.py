"""Compare GRAPHITE against the baseline platforms on one workload.

A miniature of the paper's Table 2 / Fig. 5: run temporal SSSP (TD) and
BFS (TI) on the Twitter surrogate across every applicable platform and
print the operation counts and modeled makespans side by side.

Run:  python examples/platform_comparison.py
"""

from repro.algorithms import platforms_for, run_algorithm
from repro.datasets import twitter


def show(algorithm: str, graph, graph_name: str) -> None:
    print(f"\n{algorithm} on {graph_name} "
          f"({graph.num_vertices} vertices, {graph.num_edges} edges, "
          f"{graph.time_horizon()} snapshots)")
    header = f"  {'platform':10s} {'calls':>8s} {'msgs':>8s} {'sys-msgs':>8s} " \
             f"{'supersteps':>10s} {'makespan':>10s}"
    print(header)
    baseline = None
    for platform in platforms_for(algorithm):
        metrics = run_algorithm(algorithm, platform, graph, graph_name=graph_name).metrics
        if platform == "GRAPHITE":
            baseline = metrics.modeled_makespan
        ratio = f"({metrics.modeled_makespan / baseline:.1f}x)" if baseline else ""
        print(f"  {platform:10s} {metrics.compute_calls:8d} "
              f"{metrics.messages_sent:8d} {metrics.system_messages:8d} "
              f"{metrics.supersteps:10d} {metrics.modeled_makespan * 1e3:7.2f}ms {ratio}")


def main() -> None:
    graph = twitter(scale=0.6)
    print("GRAPHITE vs baselines — interval sharing on a long-lived graph.")
    show("BFS", graph, "twitter")
    show("SSSP", graph, "twitter")
    print(
        "\nGRAPHITE's one interval run answers every snapshot at once: the "
        "baselines re-compute (MSB, GoFFish), re-send (Chlonos only shares "
        "messages), or blow the graph up into per-time-point replicas (TGB "
        "— note its extra system messages for replica state transfer)."
    )


if __name__ == "__main__":
    main()
