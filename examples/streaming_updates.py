"""Keeping shortest paths fresh as a transit network evolves.

The operations team adds new transit connections during the day; instead
of recomputing every journey from scratch, the streaming engine resumes
the previous answer and propagates only the consequences of the new
connections (the paper's future-work "streaming temporal graphs").

Run:  python examples/streaming_updates.py
"""

from repro.algorithms.td.sssp import INFINITY, TemporalSSSP
from repro.core.engine import IntervalCentricEngine
from repro.streaming import StreamingIntervalEngine

HORIZON = 20


def describe(result, stops):
    parts = []
    for stop in stops:
        cost = min(v for _, v in result.states[stop])
        parts.append(f"{stop}={'∞' if cost >= INFINITY else cost}")
    return "  ".join(parts)


def main() -> None:
    stream = StreamingIntervalEngine(TemporalSSSP("HUB"), graph_name="live-transit")
    stops = ["HUB", "NORTH", "EAST", "SOUTH", "WEST"]
    for stop in stops:
        stream.add_vertex(stop, 0, HORIZON)

    print("06:00 — initial network: HUB connects NORTH and EAST")
    stream.add_edge("HUB", "NORTH", 0, HORIZON, props={"travel-cost": 3, "travel-time": 1})
    stream.add_edge("HUB", "EAST", 0, HORIZON, props={"travel-cost": 5, "travel-time": 1})
    result = stream.compute()
    print(f"  best costs: {describe(result, stops)}")
    print(f"  full run: {result.metrics.compute_calls} compute calls")

    print("\n09:00 — new line EAST→SOUTH enters service")
    stream.add_edge("EAST", "SOUTH", 4, HORIZON, props={"travel-cost": 2, "travel-time": 1})
    result = stream.compute()
    print(f"  best costs: {describe(result, stops)}")
    print(f"  incremental refresh: {result.metrics.compute_calls} compute calls")

    print("\n11:00 — express NORTH→EAST undercuts the direct line")
    stream.add_edge("NORTH", "EAST", 2, 9, props={"travel-cost": 1, "travel-time": 1})
    result = stream.compute()
    print(f"  best costs: {describe(result, stops)}")
    print(f"  incremental refresh: {result.metrics.compute_calls} compute calls")
    print("  EAST is now cheaper via NORTH (3+1=4), and SOUTH inherits the saving.")

    scratch = IntervalCentricEngine(stream.graph, TemporalSSSP("HUB")).run()
    agree = all(
        stream._states[vid].partitions() == scratch.states[vid].partitions()
        for vid in stops
    )
    print(f"\nSanity: incremental result matches a from-scratch run: {agree}")
    print(f"Total compute calls spent (initial + 2 refreshes): "
          f"{stream.total_metrics.compute_calls}; one scratch rerun alone costs "
          f"{scratch.metrics.compute_calls}.")


if __name__ == "__main__":
    main()
