#!/usr/bin/env python
"""Lint: the `repro.api` facade is the only front door.

The api_redesign contract routes every in-tree engine construction AND
every graph load through the :mod:`repro.api` facade so configuration,
environment resolution, format sniffing and observability stay on one
code path.  This script greps ``src/repro`` for:

* direct ``IntervalCentricEngine(`` construction outside ``repro.api``;
* direct graph-loader calls (``load_graph_binary``,
  ``load_snap_edgelist``, ``load_contact_sequence``) outside
  ``repro.api`` and the ``repro.graph`` storage package itself — callers
  go through :func:`repro.api.load_graph`.

Tests are exempt — they exercise the internal entry points on purpose.

Usage: ``python scripts/lint_engine_construction.py [repo-root]``
"""

from __future__ import annotations

import re
import sys
from pathlib import Path


def _call(name: str) -> re.Pattern:
    """A call site: ``name`` followed by ``(``, not preceded by a quote
    (deprecation-warning text spells legacy calls inside string literals),
    a dot (method / re-export references), or a longer identifier."""
    return re.compile(r"""(?<!["'.\w])""" + name + r"\(")


#: (pattern, allowed files / directory prefixes, remedy) — one row per rule.
RULES: tuple = (
    (
        _call("IntervalCentricEngine"),
        ("src/repro/api.py",),
        "build engines via repro.api.build_engine / api.run instead",
    ),
    (
        _call("load_graph_binary"),
        ("src/repro/api.py", "src/repro/graph/"),
        "load graphs via repro.api.load_graph instead",
    ),
    (
        _call("load_snap_edgelist"),
        ("src/repro/api.py", "src/repro/graph/"),
        "load graphs via repro.api.load_graph(..., format='snap') instead",
    ),
    (
        _call("load_contact_sequence"),
        ("src/repro/api.py", "src/repro/graph/"),
        "load graphs via repro.api.load_graph(..., format='contacts') instead",
    ),
)


def _allowed(rel: str, allowed: tuple) -> bool:
    return any(
        rel == entry or (entry.endswith("/") and rel.startswith(entry))
        for entry in allowed
    )


def violations(root: Path) -> list[str]:
    found = []
    for path in sorted((root / "src" / "repro").rglob("*.py")):
        rel = path.relative_to(root).as_posix()
        lines = path.read_text(encoding="utf-8").splitlines()
        for pattern, allowed, remedy in RULES:
            if _allowed(rel, allowed):
                continue
            for lineno, line in enumerate(lines, start=1):
                if pattern.search(line):
                    found.append(f"{rel}:{lineno}: {line.strip()}  [{remedy}]")
    return found


def main(argv: list[str]) -> int:
    root = Path(argv[1]) if len(argv) > 1 else Path(__file__).resolve().parent.parent
    found = violations(root)
    if found:
        print("facade-contract violations (construct/load via repro.api):")
        for hit in found:
            print(f"  {hit}")
        return 1
    print("facade lint: clean")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
