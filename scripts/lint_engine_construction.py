#!/usr/bin/env python
"""Lint: `IntervalCentricEngine` may only be constructed in `repro.api`.

The api_redesign contract routes every in-tree engine construction
through the :mod:`repro.api` facade so configuration, environment
resolution and observability stay on one code path.  This script greps
``src/repro`` for direct ``IntervalCentricEngine(`` construction and
fails (exit 1) on any hit outside the allowlist.  Tests are exempt —
they exercise the legacy shim on purpose.

Usage: ``python scripts/lint_engine_construction.py [repo-root]``
"""

from __future__ import annotations

import re
import sys
from pathlib import Path

#: Files allowed to construct the engine directly.
ALLOWED = {"src/repro/api.py"}

#: A call site: the class name followed by ``(``, not preceded by a quote
#: (deprecation-warning text in config.py spells the legacy call inside a
#: string literal) and not part of a longer identifier.
CALL = re.compile(r"""(?<!["'\w])IntervalCentricEngine\(""")


def violations(root: Path) -> list[str]:
    found = []
    for path in sorted((root / "src" / "repro").rglob("*.py")):
        rel = path.relative_to(root).as_posix()
        if rel in ALLOWED:
            continue
        for lineno, line in enumerate(
            path.read_text(encoding="utf-8").splitlines(), start=1
        ):
            if CALL.search(line):
                found.append(f"{rel}:{lineno}: {line.strip()}")
    return found


def main(argv: list[str]) -> int:
    root = Path(argv[1]) if len(argv) > 1 else Path(__file__).resolve().parent.parent
    found = violations(root)
    if found:
        print("direct IntervalCentricEngine construction outside repro.api:")
        for hit in found:
            print(f"  {hit}")
        print("build engines via repro.api.build_engine / api.run instead")
        return 1
    print("engine-construction lint: clean")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
