#!/usr/bin/env python
"""Diff two run traces on their logical event sequences.

The observability contract says serial and parallel executions of the
same run emit identical *logical* event sequences — type, superstep and
``data`` payload — differing only in ``wall`` facts (durations, paths,
executor names).  CI records one algorithm under both executors with
``repro run --trace-out`` and feeds the files here; exit 1 means the
executors disagreed about what logically happened.

Usage: ``python scripts/diff_traces.py A.trace B.trace``
"""

from __future__ import annotations

import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.obs.exporters import logical_sequence, read_trace  # noqa: E402


def main(argv: list[str]) -> int:
    if len(argv) != 3:
        print(__doc__.strip().splitlines()[-1])
        return 2
    left_path, right_path = argv[1], argv[2]
    left = logical_sequence(read_trace(left_path))
    right = logical_sequence(read_trace(right_path))
    if left == right:
        print(f"traces logically identical ({len(left)} events)")
        return 0
    print(f"traces differ: {left_path} has {len(left)} logical events, "
          f"{right_path} has {len(right)}")
    for i, (a, b) in enumerate(zip(left, right)):
        if a != b:
            print(f"  first divergence at event {i}:")
            print(f"    {left_path}: {a}")
            print(f"    {right_path}: {b}")
            break
    else:
        longer, path = (left, left_path) if len(left) > len(right) else (right, right_path)
        print(f"  {path} continues with: {longer[min(len(left), len(right))]}")
    return 1


if __name__ == "__main__":
    sys.exit(main(sys.argv))
