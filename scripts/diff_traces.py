#!/usr/bin/env python
"""Diff two run traces on their logical event sequences and wire bytes.

The observability contract says serial and parallel executions of the
same run emit identical *logical* event sequences — type, superstep and
``data`` payload (which for ``barrier_exchange`` includes the
local/remote message *and byte* split) — differing only in ``wall``
facts (durations, paths, executor names).  CI records one algorithm
under both executors with ``repro run --trace-out`` and feeds the files
here; exit 1 means the executors disagreed about what logically
happened.

On top of the logical diff, the ``barrier_exchange`` wall facts carry
the data plane's real wire accounting: ``exchange_bytes`` (bytes
actually shipped, post sender-side combining) and
``exchange_raw_bytes`` (what an uncombined wire would have carried).
Both totals are printed per trace, and when *both* traces moved real
wire traffic (e.g. parallel star vs parallel peer), their raw totals
must agree — raw bytes are a count-preserving invariant of the run, not
of the topology or of combining.  A serial trace has no wire, so its
zero raw total is reported but never compared.

Usage: ``python scripts/diff_traces.py A.trace B.trace``
"""

from __future__ import annotations

import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.obs.exporters import logical_sequence, read_trace  # noqa: E402


def wire_totals(records) -> dict[str, int]:
    """Summed ``barrier_exchange`` byte fields of one trace.

    ``local``/``remote`` come from the logical ``data`` payload (modeled,
    executor-independent); ``shipped``/``raw`` from ``wall`` (real wire
    facts — zero for serial runs, which have no wire).
    """
    totals = {"local": 0, "remote": 0, "shipped": 0, "raw": 0}
    for record in records:
        if record["type"] != "barrier_exchange":
            continue
        totals["local"] += record["data"]["local_bytes"]
        totals["remote"] += record["data"]["remote_bytes"]
        totals["shipped"] += record["wall"].get("exchange_bytes", 0)
        totals["raw"] += record["wall"].get("exchange_raw_bytes", 0)
    return totals


def main(argv: list[str]) -> int:
    if len(argv) != 3:
        print(__doc__.strip().splitlines()[-1])
        return 2
    left_path, right_path = argv[1], argv[2]
    left_records = read_trace(left_path)
    right_records = read_trace(right_path)
    left = logical_sequence(left_records)
    right = logical_sequence(right_records)

    failed = False
    if left == right:
        print(f"traces logically identical ({len(left)} events)")
    else:
        failed = True
        print(f"traces differ: {left_path} has {len(left)} logical events, "
              f"{right_path} has {len(right)}")
        for i, (a, b) in enumerate(zip(left, right)):
            if a != b:
                print(f"  first divergence at event {i}:")
                print(f"    {left_path}: {a}")
                print(f"    {right_path}: {b}")
                break
        else:
            longer, path = (left, left_path) if len(left) > len(right) else (right, right_path)
            print(f"  {path} continues with: {longer[min(len(left), len(right))]}")

    left_wire = wire_totals(left_records)
    right_wire = wire_totals(right_records)
    for path, wire in ((left_path, left_wire), (right_path, right_wire)):
        print(
            f"  {path}: barrier bytes local {wire['local']} / "
            f"remote {wire['remote']} (modeled), wire shipped "
            f"{wire['shipped']} / raw {wire['raw']}"
        )
    if left_wire["raw"] and right_wire["raw"] and left_wire["raw"] != right_wire["raw"]:
        failed = True
        print(
            f"  raw wire bytes disagree: {left_path} carried "
            f"{left_wire['raw']}, {right_path} carried {right_wire['raw']} — "
            f"the uncombined-equivalent byte count must be invariant across "
            f"topologies and combining"
        )
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
