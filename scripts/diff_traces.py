#!/usr/bin/env python
"""Diff two run traces on their logical event sequences and wire bytes.

The observability contract says serial and parallel executions of the
same run emit identical *logical* event sequences — type, superstep and
``data`` payload (which for ``barrier_exchange`` includes the
local/remote message *and byte* split) — differing only in ``wall``
facts (durations, paths, executor names).  CI records one algorithm
under both executors with ``repro run --trace-out`` and feeds the files
here; exit 1 means the executors disagreed about what logically
happened.

On top of the logical diff, the ``barrier_exchange`` wall facts carry
the data plane's real wire accounting: ``exchange_bytes`` (bytes
actually shipped, post sender-side combining) and
``exchange_raw_bytes`` (what an uncombined wire would have carried).
Both totals are printed per trace, and when *both* traces moved real
wire traffic (e.g. parallel star vs parallel peer), their raw totals
must agree — raw bytes are a count-preserving invariant of the run, not
of the topology or of combining.  A serial trace has no wire, so its
zero raw total is reported but never compared.

``worker_span`` records (schema v5) are excluded from the logical diff —
their *count* is a property of the executor shape (one span per worker
per superstep), so serial vs parallel traces legitimately differ there.
They get their own check instead: when both traces were produced by the
same executor shape (identical worker-id sets), the per-superstep
sequence of logical span facts — worker id, superstep, phase list —
must match exactly; star vs peer topologies at the same process count
may not disagree about which workers ran which supersteps.  Wall
durations are never compared.  When the shapes differ (serial vs
parallel, different process counts) the check prints a note and is
skipped.

Usage: ``python scripts/diff_traces.py A.trace B.trace``
"""

from __future__ import annotations

import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.obs.exporters import logical_sequence, read_trace  # noqa: E402


def wire_totals(records) -> dict[str, int]:
    """Summed ``barrier_exchange`` byte fields of one trace.

    ``local``/``remote`` come from the logical ``data`` payload (modeled,
    executor-independent); ``shipped``/``raw`` from ``wall`` (real wire
    facts — zero for serial runs, which have no wire).
    """
    totals = {"local": 0, "remote": 0, "shipped": 0, "raw": 0}
    for record in records:
        if record["type"] != "barrier_exchange":
            continue
        totals["local"] += record["data"]["local_bytes"]
        totals["remote"] += record["data"]["remote_bytes"]
        totals["shipped"] += record["wall"].get("exchange_bytes", 0)
        totals["raw"] += record["wall"].get("exchange_raw_bytes", 0)
    return totals


def span_facts(records) -> list[tuple[int, int, tuple[str, ...]]]:
    """The logical facts of every ``worker_span`` record, in emission
    order: (superstep, worker id, phase tuple).  Wall durations excluded."""
    return [
        (r["superstep"], r["data"]["worker"], tuple(r["data"]["phases"]))
        for r in records
        if r["type"] == "worker_span"
    ]


def diff_spans(left, right, left_path: str, right_path: str) -> bool:
    """Compare worker_span logical facts; returns True on failure.

    Only comparable when both traces come from the same executor shape
    (identical worker-id sets) — star vs peer at equal process counts
    must agree; serial vs parallel is skipped with a note.
    """
    left_workers = {w for _, w, _ in left}
    right_workers = {w for _, w, _ in right}
    if not left or not right:
        print("  worker spans: absent from at least one trace "
              "(pre-v5 or span-free run) — span check skipped")
        return False
    if left_workers != right_workers:
        print(f"  worker spans: different executor shapes "
              f"({sorted(left_workers)} vs {sorted(right_workers)}) — "
              f"span check skipped (serial vs parallel is expected to differ)")
        return False
    if left == right:
        print(f"  worker spans logically identical "
              f"({len(left)} spans, {len(left_workers)} worker(s))")
        return False
    print(f"  worker spans disagree: {left_path} has {len(left)}, "
          f"{right_path} has {len(right)}")
    for i, (a, b) in enumerate(zip(left, right)):
        if a != b:
            print(f"    first divergence at span {i}:")
            print(f"      {left_path}: superstep={a[0]} worker={a[1]} "
                  f"phases={a[2]}")
            print(f"      {right_path}: superstep={b[0]} worker={b[1]} "
                  f"phases={b[2]}")
            break
    else:
        longer, path = (
            (left, left_path) if len(left) > len(right) else (right, right_path)
        )
        extra = longer[min(len(left), len(right))]
        print(f"    {path} continues with: superstep={extra[0]} "
              f"worker={extra[1]}")
    return True


def main(argv: list[str]) -> int:
    if len(argv) != 3:
        print(__doc__.strip().splitlines()[-1])
        return 2
    left_path, right_path = argv[1], argv[2]
    left_records = read_trace(left_path)
    right_records = read_trace(right_path)
    left = logical_sequence(left_records)
    right = logical_sequence(right_records)

    failed = False
    if left == right:
        print(f"traces logically identical ({len(left)} events)")
    else:
        failed = True
        print(f"traces differ: {left_path} has {len(left)} logical events, "
              f"{right_path} has {len(right)}")
        for i, (a, b) in enumerate(zip(left, right)):
            if a != b:
                print(f"  first divergence at event {i}:")
                print(f"    {left_path}: {a}")
                print(f"    {right_path}: {b}")
                break
        else:
            longer, path = (left, left_path) if len(left) > len(right) else (right, right_path)
            print(f"  {path} continues with: {longer[min(len(left), len(right))]}")

    left_wire = wire_totals(left_records)
    right_wire = wire_totals(right_records)
    for path, wire in ((left_path, left_wire), (right_path, right_wire)):
        print(
            f"  {path}: barrier bytes local {wire['local']} / "
            f"remote {wire['remote']} (modeled), wire shipped "
            f"{wire['shipped']} / raw {wire['raw']}"
        )
    if diff_spans(
        span_facts(left_records), span_facts(right_records),
        left_path, right_path,
    ):
        failed = True
    if left_wire["raw"] and right_wire["raw"] and left_wire["raw"] != right_wire["raw"]:
        failed = True
        print(
            f"  raw wire bytes disagree: {left_path} carried "
            f"{left_wire['raw']}, {right_path} carried {right_wire['raw']} — "
            f"the uncombined-equivalent byte count must be invariant across "
            f"topologies and combining"
        )
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
