#!/usr/bin/env python
"""End-to-end smoke test for the ``repro.serve`` daemon — the CI leg.

Spawns a real ``python -m repro serve`` daemon subprocess (concurrency 1,
queue depth 0, so backpressure is forced deterministically), then drives
it over the Unix socket through the real wire client:

1. wait for the socket and ``ping``;
2. a cold query (engine run, cache miss);
3. the identical query again — must be a cache hit with a byte-identical
   payload, and the daemon's stats counter must read exactly one hit;
4. a held query (``hold_s``) pinning the single lane while a concurrent
   query is rejected with the typed ``queue_full`` backpressure error;
5. a different-interval query — a distinct cache key, answered cold;
6. a live scrape of the ``--metrics-port`` HTTP endpoint: valid
   Prometheus text carrying the serve counters, the query-latency
   histogram series and the per-lane heartbeat gauges;
7. a clean ``shutdown`` frame: the daemon exits 0 and removes its socket.

Exits non-zero (via assert) on any violation.  No third-party deps.

Usage::

    PYTHONPATH=src python scripts/serve_smoke.py
"""

from __future__ import annotations

import os
import socket
import subprocess
import sys
import tempfile
import threading
import urllib.request
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.serve import QueueFullError  # noqa: E402
from repro.serve.client import QueryClient  # noqa: E402


def _free_port() -> int:
    with socket.socket() as sock:
        sock.bind(("127.0.0.1", 0))
        return sock.getsockname()[1]


def main() -> int:
    tmp = tempfile.mkdtemp(prefix="repro-serve-smoke-")
    socket_path = os.path.join(tmp, "repro.sock")
    metrics_port = _free_port()
    env = dict(os.environ, PYTHONPATH=str(REPO_ROOT / "src"))
    daemon = subprocess.Popen(
        [sys.executable, "-m", "repro", "serve", "--socket", socket_path,
         "--dataset", "transit", "--workers", "4",
         "--max-concurrency", "1", "--queue-depth", "0",
         "--metrics-port", str(metrics_port)],
        env=env, stdout=subprocess.PIPE, stderr=subprocess.STDOUT, text=True,
    )
    try:
        with QueryClient.connect(socket_path, timeout_s=30.0) as client:
            assert client.ping(), "daemon did not answer ping"
            print("ping: ok")

            cold = client.query("SSSP", params={"source": "A"})
            assert not cold.cache_hit, "first query must be a cache miss"
            assert cold.doc["vertices"], "cold answer carried no vertices"
            print(f"cold query: ok ({cold.latency_s * 1e3:.1f} ms)")

            warm = client.query("SSSP", params={"source": "A"})
            assert warm.cache_hit, "repeat query must be a cache hit"
            assert warm.payload == cold.payload, (
                "cache hit diverged from the cold answer"
            )
            stats = client.stats()
            assert stats["cache_hits"] == 1, (
                f"expected exactly 1 cache hit, stats say "
                f"{stats['cache_hits']}"
            )
            print(f"cache hit: ok ({warm.latency_s * 1e6:.0f} us, "
                  f"counter == 1)")

            # Pin the single lane with a held query on a second
            # connection; with queue depth 0 a concurrent query must be
            # rejected with the typed backpressure error.
            with QueryClient.connect(socket_path) as holder:
                held = threading.Thread(
                    target=lambda: holder.query(
                        "BFS", params={"source": "B"},
                        options={"hold_s": 2.0, "no_cache": True}))
                held.start()
                rejected = False
                try:
                    import time

                    time.sleep(0.5)  # let the held query take the lane
                    client.query("PR", options={"no_cache": True})
                except QueueFullError as exc:
                    rejected = True
                    assert exc.code == "queue_full"
                finally:
                    held.join()
            assert rejected, "queue-full rejection never fired"
            print("backpressure: ok (typed queue_full rejection)")

            sliced = client.query("SSSP", params={"source": "A"},
                                  interval=(0, 3))
            assert not sliced.cache_hit, (
                "a different interval must be a distinct cache key"
            )
            assert sliced.payload != cold.payload, (
                "interval slice answered with the full-horizon payload"
            )
            print("interval query: ok (distinct cache key)")

            # Scrape the live metrics endpoint while the daemon serves.
            with urllib.request.urlopen(
                f"http://127.0.0.1:{metrics_port}/metrics", timeout=10
            ) as response:
                assert response.status == 200
                body = response.read().decode("utf-8")
            for needle in (
                "# TYPE repro_queries_served_total counter",
                "repro_queries_served_total",
                "# TYPE repro_query_latency_seconds histogram",
                'repro_query_latency_seconds_bucket',
                'le="+Inf"',
                "repro_query_latency_seconds_count",
                "# TYPE repro_serve_lane_idle_seconds gauge",
                'repro_serve_lane_queries_total{lane="0"}',
                'repro_serve_lane_idle_seconds{lane="0"',
            ):
                assert needle in body, f"metrics scrape missing {needle!r}"
            served = next(
                line for line in body.splitlines()
                if line.startswith("repro_queries_served_total")
            )
            assert int(served.rsplit(" ", 1)[1]) >= 4, (
                f"served counter too low in scrape: {served}"
            )
            print(f"metrics scrape: ok ({len(body.splitlines())} lines "
                  f"from port {metrics_port})")

            client.shutdown()
        daemon.wait(timeout=30)
        assert daemon.returncode == 0, (
            f"daemon exited {daemon.returncode}, expected 0"
        )
        assert not os.path.exists(socket_path), (
            "daemon left its socket file behind"
        )
        print("shutdown: ok (exit 0, socket removed)")
    finally:
        if daemon.poll() is None:
            daemon.kill()
            daemon.wait()
        out = daemon.stdout.read() if daemon.stdout else ""
        if out:
            print("--- daemon output ---")
            print(out, end="")
    print("serve smoke: all checks passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
