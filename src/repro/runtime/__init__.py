"""Simulated distributed runtime: partitioning, transport, metrics."""

from .cluster import SimulatedCluster
from .encoding import (
    decode_interval,
    decode_message,
    decode_payload,
    decode_varint,
    encode_interval,
    encode_message,
    encode_payload,
    encode_varint,
    encoded_message_size,
    interval_size,
    payload_size,
    varint_size,
)
from .checkpoint import (
    CheckpointError,
    ExecutorSnapshot,
    LoadedCheckpoint,
    latest_checkpoint,
    load_checkpoint,
    write_checkpoint,
)
from .faults import FaultAction, FaultPlan, UnrecoverableRunError, WorkerDiedError
from .metrics import (
    ComputeModel,
    NetworkModel,
    RecoveryMetrics,
    RunMetrics,
    SuperstepMetrics,
)
from .partitioner import GreedyEdgeCutPartitioner, HashPartitioner, RangePartitioner

__all__ = [
    "SimulatedCluster",
    "NetworkModel",
    "ComputeModel",
    "RunMetrics",
    "RecoveryMetrics",
    "SuperstepMetrics",
    "CheckpointError",
    "ExecutorSnapshot",
    "LoadedCheckpoint",
    "write_checkpoint",
    "load_checkpoint",
    "latest_checkpoint",
    "FaultPlan",
    "FaultAction",
    "WorkerDiedError",
    "UnrecoverableRunError",
    "HashPartitioner",
    "RangePartitioner",
    "GreedyEdgeCutPartitioner",
    "encode_varint",
    "decode_varint",
    "varint_size",
    "encode_interval",
    "decode_interval",
    "interval_size",
    "encode_payload",
    "decode_payload",
    "payload_size",
    "encode_message",
    "decode_message",
    "encoded_message_size",
]
