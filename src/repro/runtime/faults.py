"""Deterministic fault injection and the failure taxonomy for parallel runs.

Giraph's durability story is *checkpoint + restart*: worker state and
in-flight messages are checkpointed at BSP barriers, a failed worker is
detected by the master, and the computation restarts from the last
checkpoint.  `repro.runtime.checkpoint` provides the checkpoints; this
module provides the failures — on purpose, so the recovery path is
exercised by tests and CI rather than waiting for a real crash.

A :class:`FaultPlan` is a list of "kill worker-process *w* at superstep
*s*" actions.  The :class:`~repro.runtime.executor.ParallelExecutor`
consults the plan at the top of every superstep and delivers a real
``SIGKILL`` to the victim — not an exception, not a mock: the process dies
mid-run and the master discovers it through the broken pipe, exactly as it
would a genuine crash.  Each action fires at most once so that the replay
after recovery does not re-kill the respawned worker.

Failure taxonomy
----------------
``WorkerDiedError``
    A worker *process* vanished (nonzero exit / killed / pipe EOF).  Raised
    by the executor with the worker id, last superstep and exit code;
    recoverable when checkpointing gives the engine somewhere to roll back
    to (the engine also recovers checkpoint-less runs by replaying from
    superstep 1).
``UnrecoverableRunError``
    Recovery was attempted and exhausted (retry limit) or is impossible;
    carries the final underlying failure as ``__cause__``.

User-program exceptions are *not* faults: they travel back from workers as
the original exception (wrapped in ``IcmProgramError`` by the processor)
and are never retried — a deterministic program bug would fail identically
on every replay.
"""

from __future__ import annotations

import os
import random
import signal
from dataclasses import dataclass, field
from typing import Optional

__all__ = [
    "FaultAction",
    "FaultPlan",
    "UnrecoverableRunError",
    "WorkerDiedError",
]


class WorkerDiedError(RuntimeError):
    """A parallel worker process died (crash, kill, or silent nonzero exit).

    Distinct from a user-program exception: those are pickled back over the
    pipe and re-raised as themselves.  This error means the *process* is
    gone and its partition state with it.
    """

    code = "worker_died"  # stable string code (see repro.errors)

    def __init__(self, worker: int, superstep: int, exitcode: Optional[int] = None,
                 detail: str = ""):
        suffix = f" (exit code {exitcode})" if exitcode is not None else ""
        extra = f": {detail}" if detail else ""
        super().__init__(
            f"parallel worker {worker} died at superstep {superstep}{suffix}{extra}"
        )
        self.worker = worker
        self.superstep = superstep
        self.exitcode = exitcode

    def __reduce__(self):
        return (WorkerDiedError, (self.worker, self.superstep, self.exitcode))


class UnrecoverableRunError(RuntimeError):
    """Worker failure that recovery could not (or was not allowed to) absorb."""

    code = "unrecoverable_run"  # stable string code (see repro.errors)


@dataclass
class FaultAction:
    """Kill worker-process ``worker`` at the start of ``superstep``.

    ``worker`` indexes the executor's *processes* (0-based); plans written
    against more processes than a run actually has wrap via modulo, so a
    seeded plan stays meaningful at any scale.

    ``phase`` refines *when* within the superstep the kill lands: the
    default ``""`` is the historical top-of-superstep SIGKILL from the
    master; ``"exchange"`` makes the victim kill itself mid barrier
    exchange — after its batches are encoded and (in the peer topology)
    its first peer frame is already on the wire, the hardest moment for
    recovery to get right.
    """

    worker: int
    superstep: int
    phase: str = ""
    fired: bool = field(default=False, compare=False)


class FaultPlan:
    """A deterministic schedule of worker kills.

    Parameters
    ----------
    actions:
        The kill schedule.  Each action fires at most once per plan
        instance — recovery replays the killed superstep, and re-killing
        the respawned worker forever would make every plan unrecoverable.
    """

    def __init__(self, actions: list[FaultAction]):
        self.actions = list(actions)

    @classmethod
    def kill(cls, worker: int, superstep: int) -> "FaultPlan":
        """Single-kill plan: ``kill worker <worker> at superstep <superstep>``."""
        return cls([FaultAction(worker, superstep)])

    @classmethod
    def seeded(cls, seed: int, *, kills: int = 1, max_superstep: int = 6) -> "FaultPlan":
        """A reproducible random plan (chaos testing's coin, minted once).

        Draws ``kills`` distinct supersteps in ``[2, max_superstep]`` (the
        first superstep is the init flood; killing later exercises real
        rollback) and a worker rank for each from ``random.Random(seed)``.
        """
        rng = random.Random(seed)
        hi = max(2, max_superstep)
        steps = rng.sample(range(2, hi + 1), min(kills, hi - 1))
        return cls([FaultAction(rng.randrange(64), s) for s in sorted(steps)])

    @classmethod
    def parse(cls, spec: str) -> "FaultPlan":
        """Parse the ``REPRO_FAULT_PLAN`` environment syntax.

        ``"kill:1@3"`` kills worker 1 at superstep 3 (comma-separate for
        several), ``"kill:1@3:exchange"`` kills it mid barrier exchange
        instead of at the top of the superstep, ``"seed:42"`` builds
        :meth:`seeded` with that seed.
        """
        kind, sep, rest = spec.partition(":")
        if not sep:
            raise ValueError(
                f"invalid fault plan {spec!r} (expected 'kill:W@S[,W@S...]' or 'seed:N')"
            )
        if kind == "seed":
            try:
                return cls.seeded(int(rest))
            except ValueError:
                raise ValueError(
                    f"invalid fault plan seed {rest!r} in {spec!r} (expected an integer)"
                ) from None
        if kind == "kill":
            actions = []
            for part in rest.split(","):
                worker_s, sep, step_s = part.partition("@")
                step_s, _, phase = step_s.partition(":")
                try:
                    if not sep or phase not in ("", "exchange"):
                        raise ValueError
                    actions.append(FaultAction(int(worker_s), int(step_s), phase))
                except ValueError:
                    raise ValueError(
                        f"invalid kill spec {part!r} in {spec!r} "
                        "(expected 'W@S' or 'W@S:exchange')"
                    ) from None
            return cls(actions)
        raise ValueError(
            f"unknown fault plan kind {kind!r} in {spec!r} (expected 'kill' or 'seed')"
        )

    def victims(self, superstep: int, num_procs: int, phase: str = "") -> list[int]:
        """Worker-process indexes to kill at ``superstep`` in ``phase``;
        marks them fired."""
        out = []
        for action in self.actions:
            if (
                action.fired
                or action.superstep != superstep
                or action.phase != phase
            ):
                continue
            action.fired = True
            out.append(action.worker % num_procs)
        return sorted(set(out))

    def pending(self) -> int:
        """Actions that have not fired yet."""
        return sum(1 for a in self.actions if not a.fired)

    def __repr__(self) -> str:
        inner = ", ".join(
            f"{a.worker}@{a.superstep}"
            f"{':' + a.phase if a.phase else ''}{'*' if a.fired else ''}"
            for a in self.actions
        )
        return f"FaultPlan({inner})"


def kill_process(pid: int) -> None:
    """Deliver an uncatchable SIGKILL — the injected fault is a real death."""
    os.kill(pid, signal.SIGKILL)
