"""Run metrics: the quantities the paper's evaluation reasons about.

Every platform run produces a :class:`RunMetrics`:

* **compute calls** and **messages sent** — intrinsic to the programming
  model ("matching these across billions of calls and messages helps assert
  that we are comparing the primitives and not just the platforms",
  Sec. VII-B1);
* **compute+ time** — wall time of the compute (and scatter) phase,
  interleaved with message production, per Sec. VII-A4;
* **exclusive messaging time** — wall time spent delivering and (simulated)
  transmitting messages after compute is done in a superstep;
* **makespan** — from the first user superstep to the last, excluding graph
  loading (as the paper reports it);
* **modeled makespan** — a deterministic cluster-cost model (max per-worker
  compute + network transfer + barrier) used where wall-clock noise on a
  single machine would obscure the distributed story.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional


@dataclass
class SuperstepMetrics:
    """Per-superstep accounting."""

    superstep: int
    compute_calls: int = 0
    scatter_calls: int = 0
    messages: int = 0
    bytes: int = 0
    #: Modeled bytes that stayed on their worker (``bytes`` is the remote
    #: side of the same split).
    local_bytes: int = 0
    compute_time: float = 0.0
    messaging_time: float = 0.0
    max_worker_compute_time: float = 0.0
    #: *Measured* wall-clock per executor worker for this superstep's
    #: compute phase (one entry for the serial executor); complements the
    #: modeled ``max_worker_compute_time``.
    worker_wall_times: list[float] = field(default_factory=list)
    #: Per-worker phase spans (schema v5): one dict per executor worker,
    #: keyed by `repro.obs.events.WORKER_SPAN_PHASES` — measured seconds
    #: in compute / scatter / encode / exchange_wait / barrier_wait.
    #: List index is the worker id; one entry for the serial executor.
    worker_spans: list[dict[str, float]] = field(default_factory=list)
    #: Measured wall-clock the barrier exchange spent moving messages
    #: between worker processes (0 for the serial executor).
    exchange_time: float = 0.0
    #: Real bytes crossing process boundaries at the barrier (0 serial).
    exchange_bytes: int = 0
    #: Bytes the same exchange would have shipped without sender-side
    #: combining (0 serial; equals ``exchange_bytes`` when nothing folded).
    exchange_raw_bytes: int = 0


@dataclass
class RecoveryMetrics:
    """Durability-layer accounting: what checkpointing and recovery cost.

    Kept separate from the modeled/counted fields because none of it exists
    in an uninterrupted run's model — a recovered run must report the *same*
    counters and modeled makespan as an uninterrupted one (that is the whole
    correctness claim), with the operational story told here instead.
    """

    #: Checkpoints written during the run.
    checkpoints_written: int = 0
    #: Total bytes of all shard/manifest files written.
    checkpoint_bytes: int = 0
    #: Wall-clock spent snapshotting + writing checkpoints.
    checkpoint_seconds: float = 0.0
    #: Worker-process deaths the master recovered from.
    restarts: int = 0
    #: Supersteps re-executed during recovery replays (work lost to crashes).
    replayed_supersteps: int = 0
    #: Wall-clock spent tearing down, reloading and respawning after crashes.
    recovery_seconds: float = 0.0

    def merge(self, other: "RecoveryMetrics") -> None:
        self.checkpoints_written += other.checkpoints_written
        self.checkpoint_bytes += other.checkpoint_bytes
        self.checkpoint_seconds += other.checkpoint_seconds
        self.restarts += other.restarts
        self.replayed_supersteps += other.replayed_supersteps
        self.recovery_seconds += other.recovery_seconds


@dataclass
class RunMetrics:
    """Aggregated metrics for one algorithm run on one platform."""

    platform: str = ""
    algorithm: str = ""
    graph: str = ""
    #: Which executor ran the supersteps ("serial" or "parallel").
    executor: str = "serial"

    compute_calls: int = 0
    scatter_calls: int = 0
    messages_sent: int = 0
    message_bytes: int = 0
    local_messages: int = 0
    remote_messages: int = 0
    local_message_bytes: int = 0
    #: The barrier-exchange traffic partitioning exists to cut
    #: (Sec. VII-A4 locality).
    remote_message_bytes: int = 0
    #: Replica state-transfer traffic (TGB chain edges) counted separately,
    #: mirroring the paper's "special messages" discussion.
    system_messages: int = 0
    supersteps: int = 0

    warp_calls: int = 0
    warp_suppressed_vertices: int = 0
    combiner_reductions: int = 0
    #: Messages avoided by interval sharing (Chlonos adjacent-snapshot
    #: dedup; GRAPHITE's saving shows up directly in ``messages_sent``).
    shared_messages: int = 0

    compute_plus_time: float = 0.0
    #: Modeled distributed compute time: Σ per-superstep max-worker cost.
    modeled_compute_time: float = 0.0
    #: *Measured* compute wall-time: Σ per-superstep max worker wall-clock
    #: (equals ``compute_plus_time`` for the serial executor).
    worker_wall_time: float = 0.0
    #: Measured wall-time of the parallel barrier exchange (0 serial).
    exchange_time: float = 0.0
    #: Real bytes shipped between worker processes (0 serial).
    exchange_bytes: int = 0
    #: What the exchange would have shipped uncombined (0 serial).
    exchange_raw_bytes: int = 0
    messaging_time: float = 0.0
    barrier_time: float = 0.0
    load_time: float = 0.0
    makespan: float = 0.0
    modeled_makespan: float = 0.0

    peak_inflight_messages: int = 0
    #: Placement quality of the partitioner this run executed under
    #: (gauges, not counters: multi-snapshot merges keep the worst case).
    partition_edge_cut: float = 0.0
    partition_imbalance: float = 0.0
    supersteps_detail: list[SuperstepMetrics] = field(default_factory=list)
    #: Checkpoint/recovery costs (`repro.runtime.checkpoint` / `.faults`).
    recovery: RecoveryMetrics = field(default_factory=RecoveryMetrics)

    def merge(self, other: "RunMetrics") -> None:
        """Accumulate another run (e.g. one snapshot of a multi-snapshot
        execution) into this one."""
        self.compute_calls += other.compute_calls
        self.scatter_calls += other.scatter_calls
        self.messages_sent += other.messages_sent
        self.message_bytes += other.message_bytes
        self.local_messages += other.local_messages
        self.remote_messages += other.remote_messages
        self.local_message_bytes += other.local_message_bytes
        self.remote_message_bytes += other.remote_message_bytes
        self.system_messages += other.system_messages
        self.supersteps += other.supersteps
        self.warp_calls += other.warp_calls
        self.warp_suppressed_vertices += other.warp_suppressed_vertices
        self.combiner_reductions += other.combiner_reductions
        self.shared_messages += other.shared_messages
        self.compute_plus_time += other.compute_plus_time
        self.modeled_compute_time += other.modeled_compute_time
        self.worker_wall_time += other.worker_wall_time
        self.exchange_time += other.exchange_time
        self.exchange_bytes += other.exchange_bytes
        self.exchange_raw_bytes += other.exchange_raw_bytes
        self.messaging_time += other.messaging_time
        self.barrier_time += other.barrier_time
        self.load_time += other.load_time
        self.makespan += other.makespan
        self.modeled_makespan += other.modeled_makespan
        self.peak_inflight_messages = max(
            self.peak_inflight_messages, other.peak_inflight_messages
        )
        self.partition_edge_cut = max(
            self.partition_edge_cut, other.partition_edge_cut
        )
        self.partition_imbalance = max(
            self.partition_imbalance, other.partition_imbalance
        )
        self.supersteps_detail.extend(other.supersteps_detail)
        self.recovery.merge(other.recovery)

    @property
    def total_messages(self) -> int:
        """Application plus system (replica/state-transfer) messages."""
        return self.messages_sent + self.system_messages

    def summary(self) -> str:
        return (
            f"{self.platform}/{self.algorithm}/{self.graph}: "
            f"makespan={self.makespan:.3f}s modeled={self.modeled_makespan:.3f}s "
            f"supersteps={self.supersteps} compute_calls={self.compute_calls} "
            f"messages={self.messages_sent} (+{self.system_messages} sys) "
            f"bytes={self.message_bytes}"
        )


@dataclass
class ComputeModel:
    """Deterministic per-operation compute costs for the simulated cluster.

    A single-process Python run cannot measure what a Giraph worker would
    spend per call (Python's per-object overheads dwarf the user logic), so
    worker compute time is *modeled*: every platform is charged the same
    per-operation costs, making call/message counts the driver of the
    modeled makespan — which is precisely the relationship the paper
    establishes empirically (Fig. 4: R² 0.80/0.95 between counts and time).

    The defaults are calibrated so the warp path costs ≈40% more per
    message than the time-point path (warp suppression recovers the
    paper's 25–40%, Fig. 6c) and inline combining saves the group-scan
    term (Fig. 6b's 17–25%).
    """

    #: Framework + user-logic overhead per compute invocation.
    per_compute_call_s: float = 2e-6
    #: Scanning one message value inside compute.
    per_message_scan_s: float = 5e-7
    #: Pushing one message through the warp's merge-sort aggregation.
    per_warp_item_s: float = 1e-6
    #: One scatter invocation (message construction included).
    per_scatter_call_s: float = 1e-6


@dataclass
class NetworkModel:
    """Deterministic cost model for the simulated 1 GbE cluster.

    ``modeled_makespan`` per superstep =
    ``max_worker_compute + remote_bytes / bandwidth + messages * per_message
    + barrier_latency``.  Bandwidth follows the paper's testbed (1 Gigabit
    Ethernet).  Giraph's barrier costs ≈40 ms; our datasets are scaled down
    by roughly three orders of magnitude versus the paper's, so the default
    barrier latency is scaled likewise (0.1 ms) to keep the
    barrier-vs-compute balance representative: barriers only dominate on
    large-diameter, many-superstep runs (the paper's USRN discussion).
    Pass ``0.040`` to mimic the paper's absolute barrier costs.
    """

    bandwidth_bytes_per_s: float = 125e6  # 1 GbE per machine
    per_message_overhead_s: float = 5e-7
    barrier_latency_s: float = 0.0001

    def transfer_time(
        self, remote_bytes: int, remote_messages: int, num_workers: int = 1
    ) -> float:
        """Transfer time for one superstep's traffic.

        Every machine has its own NIC and cores, so aggregate bandwidth
        and per-message handling scale with the worker count — without
        this, weak scaling (Fig. 7) would be impossible by construction.
        """
        workers = max(1, num_workers)
        return (
            remote_bytes / (self.bandwidth_bytes_per_s * workers)
            + remote_messages * self.per_message_overhead_s / workers
        )
