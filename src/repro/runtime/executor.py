"""Superstep executors: serial and shared-nothing parallel execution.

The engine's driver loop (`IntervalCentricEngine.run`) delegates each
superstep to an executor:

* :class:`SerialExecutor` — the historical behaviour: one process walks the
  active vertices in canonical order and messages move through
  ``SimulatedCluster.send``.
* :class:`ParallelExecutor` — a Giraph-shaped runtime on one machine: each
  worker process owns a fixed subset of the simulated workers' vertex
  partitions (shared-nothing — no state is shared after fork), runs its
  actives concurrently with the other processes, and exchanges cross-process
  messages at the BSP barrier as varint-encoded routed batches
  (`repro.runtime.encoding`).  Worker-local messages never leave the
  process.

Two exchange topologies move the batches (``ExchangeConfig.topology``):

* ``star`` — batches ride the worker's step report to the master, which
  redistributes them with the next step command (the historical layout);
* ``peer`` — every worker pair shares a duplex pipe and batch bytes cross
  the wire exactly once, framed with ``send_bytes``/``recv_bytes`` into
  reusable buffers (no pickling); the master still owns the barrier,
  aggregates, and fault supervision.

Cross-process batches are **combined at the sender** when the program's
combiner is selective (min/max/or — order-insensitive folds): messages to
the same (destination, interval) pre-fold into one wire entry that carries
the raw message count and the modeled scan charge it replaced.  The
receiver reconstructs the raw inbox size from those counts and charges the
receiver pass with one integer-times-float multiply — exactly the serial
expression — so modeled compute, ``combiner_reductions`` and every state
stay bit-identical to serial under any partitioner, while the wire carries
fewer bytes.  Aggregating combiners (sum — float addition is not
associative bitwise) are never pre-folded.

Determinism: both executors process active vertices in the canonical global
vertex order (graph enumeration order, ``engine._seq``), every message
carries its sender's sequence number so receivers restore the serial
delivery order with one stable sort, aggregate contributions are folded at
the master in (sender, call) order, and modeled per-worker compute is summed
in the same per-shard order serial would use — so parallel runs return
results identical to serial runs, which the equivalence tests assert
algorithm by algorithm.

Simulated workers ("shards", ``cluster.num_workers``) are decoupled from
worker *processes*: shards are assigned round-robin to however many
processes are available, so an 8-worker simulation keeps its metrics
identical whether it runs on 1, 2 or 8 cores.
"""

from __future__ import annotations

import multiprocessing as mp
import os
import pickle
import signal
import threading
import time
import traceback
from dataclasses import dataclass, field
from multiprocessing.connection import wait as _conn_wait
from typing import Any, Optional

from repro.core.config import ExchangeConfig, _env_exchange_topology, _env_int
from repro.core.context import VertexContext
from repro.core.engine import VertexProcessor
from repro.core.interval import Interval
from repro.core.messages import IntervalMessage
from repro.obs.registry import RUN_METRICS

from .checkpoint import ExecutorSnapshot
from .encoding import (
    _decode_routed_entries,
    decode_routed_batch,
    encode_routed_batch,
    encode_routed_batch_into,
    encoded_message_size,
    routed_entry_size,
)
from .faults import FaultPlan, WorkerDiedError, kill_process
from .metrics import RunMetrics

#: Counters each worker process accumulates locally and the master folds at
#: the barrier — the registry's ``worker_field`` slice, in declaration
#: order (`repro.obs.registry.RUN_METRICS`).
_COUNT_FIELDS = RUN_METRICS.names(worker_field=True)


def _env_fault_plan() -> Optional[FaultPlan]:
    """Parse ``REPRO_FAULT_PLAN`` (chaos CI knob) with a clear failure mode."""
    env = os.environ.get("REPRO_FAULT_PLAN")
    if not env:
        return None
    try:
        return FaultPlan.parse(env)
    except ValueError as exc:
        raise ValueError(f"invalid REPRO_FAULT_PLAN: {exc}") from None


def resolve_executor(
    spec: Any = None,
    processes: Optional[int] = None,
    *,
    tracer=None,
    fault_plan: Any = None,
    from_env: bool = False,
    exchange: Optional[ExchangeConfig] = None,
):
    """Turn an executor spec into an executor instance.

    ``spec`` may be ``"serial"``, ``"parallel"``, an executor instance, or
    ``None`` (read the ``REPRO_EXECUTOR`` environment variable, default
    serial).  ``processes=None`` reads ``REPRO_EXECUTOR_PROCESSES``.
    ``fault_plan`` arms the parallel executor: a
    :class:`~repro.runtime.faults.FaultPlan` is used as-is, a spec string
    (``EngineConfig`` stores the validated string so one frozen config can
    arm many runs) is parsed into a fresh plan, and ``None`` falls back to
    ``REPRO_FAULT_PLAN`` (chaos CI knob).  ``from_env=True`` marks a
    ``spec`` string that itself came from ``REPRO_EXECUTOR``
    (``EngineConfig.from_env`` resolves the variable eagerly and carries
    the provenance here).  ``exchange`` configures the parallel barrier
    data plane (:class:`~repro.core.config.ExchangeConfig`); ``None``
    falls back to ``REPRO_EXCHANGE``.  All environment variables are
    validated eagerly — a typo fails loudly, naming the variable, instead
    of silently running the wrong configuration.
    """
    if spec is not None and not isinstance(spec, str):
        executor = spec
    else:
        env_sourced = spec is None or from_env
        name = spec or os.environ.get("REPRO_EXECUTOR", "serial")
        if tracer is not None and env_sourced:
            # Tracing is in-process only.  An *environment*-forced parallel
            # executor falls back to serial so traced runs keep working
            # under REPRO_EXECUTOR=parallel test sweeps; explicitly asking
            # for parallel with a tracer still errors below.
            name = "serial"
        if name not in ("serial", "parallel"):
            source = (
                f"REPRO_EXECUTOR={name!r}" if env_sourced else f"executor {name!r}"
            )
            raise ValueError(
                f"unknown executor in {source} (expected 'serial' or 'parallel')"
            )
        if processes is None:
            processes = _env_int(
                os.environ, "REPRO_EXECUTOR_PROCESSES", minimum=1
            )
        if name == "serial":
            executor = SerialExecutor()
        else:
            if fault_plan is None:
                plan = _env_fault_plan()
            elif isinstance(fault_plan, str):
                plan = FaultPlan.parse(fault_plan)
            else:
                plan = fault_plan
            if exchange is None:
                exchange = ExchangeConfig(
                    topology=_env_exchange_topology(os.environ) or "star"
                )
            executor = ParallelExecutor(
                processes=processes, fault_plan=plan, exchange=exchange
            )
    if tracer is not None and executor.name != "serial":
        raise ValueError(
            "the parallel executor cannot host an ExecutionTracer "
            "(trace events happen in worker processes); use the serial executor"
        )
    return executor


def _default_process_count() -> int:
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux
        return os.cpu_count() or 1


class SerialExecutor:
    """Single-process execution — the reference the parallel path must match."""

    name = "serial"

    def start(self, engine, states, fresh, rescatter, warm: bool) -> None:
        self._engine = engine
        self._fresh = fresh
        self._rescatter = rescatter
        self._warm = warm
        graph = engine.graph
        self._contexts = {
            vid: VertexContext(graph.vertex(vid), state, engine)
            for vid, state in states.items()
        }

    def has_pending(self) -> bool:
        return self._engine.cluster.has_pending_messages()

    def run_superstep(self, superstep: int, metrics: RunMetrics) -> int:
        engine = self._engine
        cluster = engine.cluster
        processor = engine._processor
        processor.superstep = superstep
        contexts = self._contexts

        inboxes = cluster.begin_superstep(superstep)
        # Non-empty only on the first superstep after resuming a checkpoint
        # whose pending entries were sender-side combined: per-destination
        # counts of the raw messages folded into them, charged below so the
        # resumed run's modeled compute matches the uninterrupted one.
        extra_raw = cluster.take_seeded_extra()
        if superstep == 1:
            if not self._warm:
                active = list(contexts)
            else:
                active = [
                    vid for vid in contexts
                    if vid in self._fresh or vid in self._rescatter
                ]
        elif engine.program.fixed_supersteps is not None:
            active = list(contexts)
        else:
            seq = engine._seq
            active = sorted(
                (vid for vid in inboxes if vid in contexts), key=seq.__getitem__
            )

        tracer = engine.tracer

        def send(src: Any, dst: Any, msg: IntervalMessage) -> None:
            if tracer is not None:
                tracer.on_send(superstep, src, dst, msg.interval, msg.value)
            cluster.send(src, dst, msg, metrics)

        calls_before = metrics.compute_calls
        scatter_before = metrics.scatter_calls
        processor.scatter_wall = 0.0
        t0 = time.perf_counter()
        for vid in active:
            ctx = contexts[vid]
            if superstep == 1 and self._warm and vid not in self._fresh:
                cost = processor.rescatter(ctx, self._rescatter[vid], metrics, send)
            else:
                cost = processor.process(
                    ctx, inboxes.get(vid, []), metrics, send,
                    extra_raw.get(vid, 0),
                )
            cluster.add_compute_time(vid, cost)
        compute_wall = time.perf_counter() - t0
        metrics.compute_plus_time += compute_wall
        metrics.worker_wall_time += compute_wall

        step = cluster.end_superstep(metrics)
        step.compute_time = compute_wall
        step.worker_wall_times = [compute_wall]
        # One span for the single in-process "worker": compute and the
        # scatter time-join are measured; the wire/barrier phases do not
        # exist serially and report 0.
        step.worker_spans = [{
            "compute": max(0.0, compute_wall - processor.scatter_wall),
            "scatter": processor.scatter_wall,
            "encode": 0.0,
            "exchange_wait": 0.0,
            "barrier_wait": 0.0,
        }]
        step.compute_calls = metrics.compute_calls - calls_before
        step.scatter_calls = metrics.scatter_calls - scatter_before
        return len(active)

    def collect_states(self) -> dict[Any, Any]:
        return {vid: ctx._state for vid, ctx in self._contexts.items()}

    def snapshot(self) -> ExecutorSnapshot:
        """Barrier-time snapshot: all states plus the undelivered messages."""
        return ExecutorSnapshot(
            states=self.collect_states(),
            pending=self._engine.cluster.pending_entries(),
            carried_reductions=0,
        )

    def restore_pending(self, entries) -> None:
        """Seed the cluster inbox from a checkpoint's pending entries."""
        self._engine.cluster.seed_pending(entries)

    def close(self) -> None:
        """No-op (and therefore idempotent): ``start`` rebuilds all
        per-run state, so one serial executor instance can be reused for
        any number of runs — the serving tier relies on this."""

    def abort(self) -> None:
        pass


# -- parallel execution -------------------------------------------------------


@dataclass
class _ShardPayload:
    """Everything one worker process needs to run its vertex partitions.

    Shipped at fork time (copy-on-write under the fork start method, pickled
    under spawn); nothing here is shared with the master afterwards.
    """

    graph: Any
    program: Any
    compute_model: Any
    partitioner: Any
    seq: dict[Any, int]
    shard_to_proc: list[int]
    proc_index: int
    states: dict[Any, Any]
    fresh: set
    rescatter: dict[Any, list[Interval]]
    warm: bool
    model_network: bool
    varint: bool
    processor_args: dict[str, Any] = field(default_factory=dict)
    #: Sender-side combining enabled (``ExchangeConfig.combine``) — still
    #: gated per program on a selective combiner at runtime.
    combine: bool = True
    #: Direct pipe ends to sibling workers (``{peer_index: Connection}``)
    #: under ``topology=peer``; ``None`` keeps the star exchange.
    peer_conns: Optional[dict[int, Any]] = None
    #: Pipe ends belonging to *other* worker pairs, inherited through
    #: fork — closed at worker startup so peer death surfaces as EOF.
    close_conns: Any = None


class _PeerDied(Exception):
    """A peer pipe hit EOF mid-exchange: that worker process is gone."""

    def __init__(self, peer: int):
        super().__init__(f"peer worker {peer} died during barrier exchange")
        self.peer = peer


class _WorkerRuntime:
    """One worker process's world: its contexts, inbox, and send routing.

    Doubles as the engine-protocol host for its :class:`VertexContext`s
    (``superstep`` / ``graph`` / ``send_direct`` / aggregator services).
    """

    def __init__(self, payload: _ShardPayload):
        self.graph = payload.graph
        self.program = payload.program
        self.partitioner = payload.partitioner
        self.seq = payload.seq
        self.shard_to_proc = payload.shard_to_proc
        self.proc_index = payload.proc_index
        self.warm = payload.warm
        self.fresh = payload.fresh
        self.rescatter_windows = payload.rescatter
        self.model_network = payload.model_network
        self.varint = payload.varint
        self.fixed = payload.program.fixed_supersteps
        self.processor = VertexProcessor(
            payload.graph,
            payload.program,
            payload.compute_model,
            **payload.processor_args,
        )
        self._aggregator_names = set(payload.program.aggregators())
        self.superstep = 0
        self._aggregates: dict[str, Any] = {}
        self.vids = list(payload.states)  # canonical (seq) order
        self.contexts = {
            vid: VertexContext(payload.graph.vertex(vid), state, self)
            for vid, state in payload.states.items()
        }
        #: Messages routed to this process, awaiting next superstep.
        self._pending: list[tuple] = []
        self._cur_seq = 0
        self._contrib_idx = 0
        self._contribs: list[tuple[int, int, str, Any]] = []
        # Sender-side combining: only selective combiners (min/max/or —
        # folds that *choose* an operand) fold exactly under regrouping;
        # sum must see every raw message, so it is never pre-folded.  The
        # gate mirrors the receiver pass (enable_receiver_combiner): with
        # the receiver pass off, the serial inbox stays raw and so must
        # the wire.
        combiner = payload.program.combiner
        self._fold = (
            combiner
            if (
                payload.combine
                and combiner is not None
                and combiner.selective
                and self.processor.enable_receiver_combiner
            )
            else None
        )
        self._scan_s = payload.compute_model.per_message_scan_s
        #: Idle wall-clock before the current step command arrived, set by
        #: ``_worker_main`` around ``conn.recv()``; superstep 1 includes
        #: the process-boot wait, which is exactly the straggler signal a
        #: slow-forking worker should show.
        self.barrier_wait = 0.0
        # Per-superstep phase timers (reset at the top of ``step``).
        self._encode_s = 0.0
        self._exchange_wait_s = 0.0
        # Peer exchange plumbing (empty/no-op under the star topology).
        self.peer_conns = payload.peer_conns or {}
        self._peer_ids = sorted(self.peer_conns)
        self._send_bufs = {q: bytearray() for q in self._peer_ids}
        self._recv_buf = bytearray(1 << 16)
        #: Decoded per-peer entry lists received at the last exchange,
        #: awaiting the next superstep (peer topology only).
        self._peer_parts: list[list[tuple]] = []

    # -- engine protocol for VertexContext -----------------------------------

    def send_direct(self, src_vid: Any, dst_vid: Any, interval: Interval, value: Any) -> None:
        self._send(src_vid, dst_vid, IntervalMessage(interval, value))

    def contribute_aggregate(self, name: str, value: Any) -> None:
        if name not in self._aggregator_names:
            raise KeyError(f"no aggregator registered under {name!r}")
        self._contribs.append((self._cur_seq, self._contrib_idx, name, value))
        self._contrib_idx += 1

    def read_aggregate(self, name: str, default: Any = None) -> Any:
        return self._aggregates.get(name, default)

    # -- message routing ------------------------------------------------------

    def _send(self, src: Any, dst: Any, msg: IntervalMessage) -> None:
        self._app += 1
        src_shard = self.partitioner.worker_of(src)
        dst_shard = self.partitioner.worker_of(dst)
        local = src_shard == dst_shard
        if local:
            self._local += 1
        else:
            self._remote += 1
        if self.model_network:
            # Modeled wire size accumulated per send — the same integer sum
            # the old end-of-superstep batch re-encode produced, without
            # keeping every sent message alive for a second pass.
            size = encoded_message_size(msg, varint=self.varint)
            self._bytes_total += size
            if not local:
                self._bytes_remote += size
        seq = self._cur_seq
        dest_proc = self.shard_to_proc[dst_shard]
        if dest_proc == self.proc_index:
            self._pending.append((seq, dst, msg))
            return
        # Crossing a process boundary: account the raw wire footprint, then
        # pre-fold into an open combined entry when the combiner allows it.
        self._raw_wire += routed_entry_size(seq, dst, msg)
        fold = self._fold
        if fold is None:
            self._out.setdefault(dest_proc, []).append((seq, dst, msg))
            return
        key = (dst, msg.interval)
        index = self._out_index.setdefault(dest_proc, {})
        pos = index.get(key)
        if pos is None:
            lst = self._out.setdefault(dest_proc, [])
            index[key] = len(lst)
            lst.append((seq, dst, msg))
            return
        # Fold in place.  The entry keeps the FIRST folded message's seq
        # and list position, so the receiver's stable sort sees each
        # (destination, interval) group exactly where serial delivery
        # would first meet it; the count metadata preserves the raw
        # message count and the modeled scan charge (count x scan, one
        # multiply) the fold replaced.
        lst = self._out[dest_proc]
        prev = lst[pos]
        if len(prev) == 3:
            seq0, _dst0, msg0 = prev
            count = 2
        else:
            seq0, _dst0, msg0 = prev[0], prev[1], prev[2]
            count = prev[3] + 1
        lst[pos] = (
            seq0,
            dst,
            IntervalMessage(msg0.interval, fold(msg0.value, msg.value)),
            count,
            count * self._scan_s,
        )

    # -- superstep ------------------------------------------------------------

    def step(
        self,
        superstep: int,
        aggregates: dict[str, Any],
        batches,
        die_in_exchange: bool = False,
    ) -> dict[str, Any]:
        self.superstep = superstep
        self.processor.superstep = superstep
        self._aggregates = aggregates

        wire_s = 0.0
        t_wire = time.perf_counter()
        # Gather the delivery sources: worker-local pending, master-routed
        # batches (star topology and checkpoint restores), and the entry
        # lists already decoded off the peer pipes at the last exchange.
        # Every source is nondecreasing in sender seq (actives run in seq
        # order at their sender; batches preserve send order), so a single
        # non-empty source is *provably* already in serial delivery order
        # and the per-superstep sort can be skipped outright.
        parts: list[list[tuple]] = []
        if self._pending:
            parts.append(self._pending)
        self._pending = []
        for buf in batches:
            decoded = decode_routed_batch(buf)
            if decoded:
                parts.append(decoded)
        parts.extend(self._peer_parts)
        self._peer_parts = []
        if not parts:
            entries: list[tuple] = []
        elif len(parts) == 1:
            entries = parts[0]
        else:
            entries = [e for part in parts for e in part]
            # Restore the serial delivery order: stable sort by sender
            # sequence (per-sender order is already correct within each
            # source list).
            entries.sort(key=lambda e: e[0])
        wire_s += time.perf_counter() - t_wire

        inboxes: dict[Any, list[IntervalMessage]] = {}
        # Raw messages folded away by sender-side combining, per receiving
        # vertex — the receiver pass charges for them as if they arrived.
        extra_raw: dict[Any, int] = {}
        for e in entries:
            dst = e[1]
            if len(e) > 3:
                extra_raw[dst] = extra_raw.get(dst, 0) + e[3] - 1
            inboxes.setdefault(dst, []).append(e[2])

        if superstep == 1:
            if not self.warm:
                active = self.vids
            else:
                active = [
                    vid for vid in self.vids
                    if vid in self.fresh or vid in self.rescatter_windows
                ]
        elif self.fixed is not None:
            active = self.vids
        else:
            active = [vid for vid in self.vids if vid in inboxes]

        counts = RunMetrics()  # counter bag for this superstep's deltas
        self._app = 0
        self._local = 0
        self._remote = 0
        self._bytes_total = 0
        self._bytes_remote = 0
        self._raw_wire = 0
        self._out: dict[int, list[tuple]] = {}
        self._out_index: dict[int, dict[tuple, int]] = {}
        self._contribs = []
        shard_compute: dict[int, float] = {}
        processor = self.processor
        worker_of = self.partitioner.worker_of
        processor.scatter_wall = 0.0
        self._encode_s = 0.0
        self._exchange_wait_s = 0.0

        t0 = time.perf_counter()
        for vid in active:
            ctx = self.contexts[vid]
            self._cur_seq = self.seq[vid]
            self._contrib_idx = 0
            if superstep == 1 and self.warm and vid not in self.fresh:
                cost = processor.rescatter(
                    ctx, self.rescatter_windows[vid], counts, self._send
                )
            else:
                cost = processor.process(
                    ctx, inboxes.get(vid, []), counts, self._send,
                    extra_raw.get(vid, 0),
                )
            shard = worker_of(vid)
            shard_compute[shard] = shard_compute.get(shard, 0.0) + cost
        wall = time.perf_counter() - t0

        t_wire = time.perf_counter()
        out: dict[int, bytes] = {}
        exchange_bytes = 0
        if self.peer_conns:
            exchange_bytes = self._exchange_peer(die_in_exchange)
        else:
            t_enc = time.perf_counter()
            for dest, out_entries in self._out.items():
                out[dest] = encode_routed_batch(out_entries)
            self._encode_s += time.perf_counter() - t_enc
            if die_in_exchange:
                # Star analog of the mid-exchange kill: die with the
                # outbound batches encoded but the report never sent.
                os.kill(os.getpid(), signal.SIGKILL)
        wire_s += time.perf_counter() - t_wire

        return {
            "active": len(active),
            "wall": wall,
            "wire_s": wire_s,
            # Measured phase spans for this worker's superstep
            # (`repro.obs.events.WORKER_SPAN_PHASES`); the master folds
            # them into ``SuperstepMetrics.worker_spans`` in worker order.
            "spans": {
                "compute": max(0.0, wall - processor.scatter_wall),
                "scatter": processor.scatter_wall,
                "encode": self._encode_s,
                "exchange_wait": self._exchange_wait_s,
                "barrier_wait": self.barrier_wait,
            },
            "sent": self._app,
            "exchange_bytes": exchange_bytes,
            "raw_wire": self._raw_wire,
            "counts": {f: getattr(counts, f) for f in _COUNT_FIELDS},
            "traffic": {
                "app": self._app,
                "local": self._local,
                "remote": self._remote,
                "bytes_total": self._bytes_total if self.model_network else 0,
                "bytes_remote": self._bytes_remote if self.model_network else 0,
            },
            "shard_compute": shard_compute,
            "contributions": self._contribs,
            "out": out,
        }

    # -- peer exchange ---------------------------------------------------------

    def _exchange_peer(self, die_in_exchange: bool) -> int:
        """Move this superstep's batches directly between workers.

        One frame per peer per superstep, always — empty batches included —
        so every worker knows exactly how many frames to collect.  Frames
        are encoded into reusable per-peer buffers with the allocation-free
        ``_into`` paths and shipped with ``send_bytes`` from a dedicated
        sender thread (sends never wait on receives, so opposing full
        pipes cannot deadlock); the main thread drains whichever peers are
        readable and decodes each frame straight out of the reusable
        receive buffer.  Returns the bytes this worker put on the wire.
        """
        t_enc = time.perf_counter()
        sent_bytes = 0
        for q in self._peer_ids:
            buf = self._send_bufs[q]
            del buf[:]
            encode_routed_batch_into(self._out.get(q, ()), buf)
            sent_bytes += len(buf)
        self._encode_s += time.perf_counter() - t_enc

        def _sender() -> None:
            first = True
            for q in self._peer_ids:
                try:
                    self.peer_conns[q].send_bytes(self._send_bufs[q])
                except (BrokenPipeError, OSError):
                    pass  # receiver died; the recv loop reports it
                if die_in_exchange and first:
                    # Injected mid-exchange death: the first peer holds
                    # this worker's batch, the rest never see theirs.
                    os.kill(os.getpid(), signal.SIGKILL)
                first = False

        sender = threading.Thread(target=_sender, daemon=True)
        sender.start()
        if die_in_exchange and not self._peer_ids:
            os.kill(os.getpid(), signal.SIGKILL)

        # Everything from here to the sender join is "waiting on peers":
        # the drain loop blocks in ``_conn_wait`` with only cheap decodes
        # between wakeups, so its wall is the exchange_wait span.
        t_wait = time.perf_counter()
        waiting = {self.peer_conns[q]: q for q in self._peer_ids}
        dead: Optional[int] = None
        while waiting and dead is None:
            for conn in _conn_wait(list(waiting)):
                q = waiting.pop(conn)
                try:
                    nbytes = conn.recv_bytes_into(self._recv_buf)
                except mp.BufferTooShort as exc:
                    frame = exc.args[0]
                    # Grow the reusable buffer so the next oversized frame
                    # lands in place; decode this one where it arrived.
                    self._recv_buf = bytearray(2 * len(frame))
                    entries, end = _decode_routed_entries(frame, 0)
                    nbytes = len(frame)
                except (EOFError, OSError):
                    dead = q
                    continue
                else:
                    entries, end = _decode_routed_entries(self._recv_buf, 0)
                if end != nbytes:
                    raise ValueError("trailing bytes after peer frame")
                if entries:
                    self._peer_parts.append(entries)
        if dead is not None:
            raise _PeerDied(dead)
        sender.join()
        self._exchange_wait_s += time.perf_counter() - t_wait
        return sent_bytes

    def collect(self) -> dict[Any, Any]:
        return {vid: ctx._state for vid, ctx in self.contexts.items()}

    def snapshot(self) -> dict[str, Any]:
        """Read-only barrier snapshot: this process's states plus every
        message awaiting the next superstep here — the worker-local pending
        list and, under the peer topology, the in-flight batches already
        received off the peer pipes (cross-process batches under the star
        topology sit at the master and are snapshotted there)."""
        pending = list(self._pending)
        for part in self._peer_parts:
            pending.extend(part)
        return {
            "states": self.collect(),
            "pending": encode_routed_batch(pending),
        }


def _worker_main(payload: _ShardPayload, conn) -> None:
    # Drop the pipe ends inherited over fork that belong to *other* worker
    # pairs: each peer pipe must be open in exactly its two endpoint
    # processes, so a worker's death surfaces as EOF there and nowhere else.
    for other in payload.close_conns or ():
        other.close()
    try:
        runtime = _WorkerRuntime(payload)
    except BaseException:
        conn.send(("error", traceback.format_exc(), None))
        return
    while True:
        t_wait = time.perf_counter()
        try:
            cmd = conn.recv()
        except EOFError:
            break
        # Idle time blocked on the master's next command — the barrier
        # wait preceding whatever superstep this command starts.
        wait = time.perf_counter() - t_wait
        op = cmd[0]
        if op == "stop":
            break
        try:
            if op == "step":
                die = cmd[4] if len(cmd) > 4 else False
                runtime.barrier_wait = wait
                result = runtime.step(cmd[1], cmd[2], cmd[3], die)
            elif op == "collect":
                result = runtime.collect()
            elif op == "snapshot":
                result = runtime.snapshot()
            else:
                raise RuntimeError(f"unknown worker command {op!r}")
        except _PeerDied as exc:
            # Not this worker's failure: a peer vanished mid-exchange.  Tell
            # the master *which* one so recovery blames the right process.
            conn.send(("peerdead", exc.peer))
        except BaseException as exc:
            try:
                pickle.dumps(exc)
            except Exception:
                exc = None
            conn.send(("error", traceback.format_exc(), exc))
        else:
            conn.send(("ok", result))
    conn.close()


class ParallelExecutor:
    """Shared-nothing multiprocess execution of the superstep loop.

    Long-lived worker processes are forked once per run holding their
    partitions' contexts; each superstep is one round trip per worker over a
    pipe (step command with aggregates out, report with metrics deltas
    back).  Under the default ``star`` exchange topology the outbound
    batches ride the report and the master routes them; under ``peer`` the
    workers ship batches directly over pairwise pipes and the report
    carries only accounting.  Either way the master folds reports into the
    cluster's accounting at the barrier so the modeled metrics are
    identical to a serial run's.
    """

    name = "parallel"

    def __init__(
        self,
        processes: Optional[int] = None,
        fault_plan: Optional[FaultPlan] = None,
        exchange: Optional[ExchangeConfig] = None,
    ):
        self.processes = processes
        #: Deterministic kill schedule (`repro.runtime.faults`); ``None``
        #: runs fault-free.  Injected kills are real SIGKILLs delivered at
        #: the top of the scheduled superstep (or mid-exchange for
        #: ``:exchange``-phase actions).
        self.fault_plan = fault_plan
        self.exchange = exchange or ExchangeConfig()
        self._procs: list = []
        self._conns: list = []
        self._pending_total = 0
        self._last_superstep = 0

    def start(self, engine, states, fresh, rescatter, warm: bool) -> None:
        # Reusable lifecycle: one executor instance may host many runs
        # (the serving tier keeps a warm executor resident per lane).  A
        # normal run leaves no processes behind (``close``/``abort`` both
        # clear them), but a run torn down mid-flight — e.g. a query
        # cancelled at its deadline between ``abort`` and re-entry — must
        # not leak its workers into the next run.
        if self._procs:
            self.abort()
        cluster = engine.cluster
        n_shards = cluster.num_workers
        procs = self.processes or _default_process_count()
        procs = max(1, min(procs, n_shards))
        self._nprocs = procs
        self._engine = engine
        shard_to_proc = [s % procs for s in range(n_shards)]
        partitioner = cluster.partitioner
        self._shard_to_proc = shard_to_proc
        self._partitioner = partitioner
        self._last_superstep = 0

        per_states: list[dict] = [{} for _ in range(procs)]
        per_fresh: list[set] = [set() for _ in range(procs)]
        per_rescatter: list[dict] = [{} for _ in range(procs)]
        for vid, state in states.items():
            p = shard_to_proc[partitioner.worker_of(vid)]
            per_states[p][vid] = state
            if vid in fresh:
                per_fresh[p].add(vid)
            if vid in rescatter:
                per_rescatter[p][vid] = rescatter[vid]

        # fork inherits the graph/program/states copy-on-write — no pickling
        # of the (potentially large) payload; spawn platforms pickle it.
        methods = mp.get_all_start_methods()
        ctx = mp.get_context("fork" if "fork" in methods else None)
        if ctx.get_start_method() != "fork":
            # Spawn pickles the payload per worker.  A compact graph can
            # dodge the copy entirely: migrate its buffer into shared
            # memory so the pickle carries only the segment name and every
            # worker attaches to the same physical pages.  (File-mapped
            # compact graphs already pickle as their path; heap graphs
            # have no zero-copy form and are pickled as before.)
            share = getattr(engine.graph, "ensure_shared", None)
            if share is not None:
                share()
        self._procs = []
        self._conns = []
        processor_args = engine.processor_args()

        # Peer topology: one duplex pipe per worker pair, all created
        # *before* the first fork so every child inherits every end.  Each
        # child then closes the ends that are not its own (see
        # ``_worker_main``) and the master closes all of them — leaving each
        # pipe open in exactly its two endpoints.
        peer = self.exchange.topology == "peer" and procs > 1
        peer_conns: list[dict[int, Any]] = [{} for _ in range(procs)]
        if peer:
            for a in range(procs):
                for b in range(a + 1, procs):
                    end_a, end_b = ctx.Pipe()
                    peer_conns[a][b] = end_a
                    peer_conns[b][a] = end_b
        all_ends = [c for conns in peer_conns for c in conns.values()]

        for p in range(procs):
            own = set(peer_conns[p].values())
            payload = _ShardPayload(
                graph=engine.graph,
                program=engine.program,
                compute_model=cluster.compute_model,
                partitioner=partitioner,
                seq=engine._seq,
                shard_to_proc=shard_to_proc,
                proc_index=p,
                states=per_states[p],
                fresh=per_fresh[p],
                rescatter=per_rescatter[p],
                warm=warm,
                model_network=cluster.model_network,
                varint=cluster.varint_encoding,
                processor_args=processor_args,
                combine=self.exchange.combine,
                peer_conns=peer_conns[p] if peer else None,
                close_conns=[c for c in all_ends if c not in own],
            )
            parent_conn, child_conn = ctx.Pipe()
            proc = ctx.Process(target=_worker_main, args=(payload, child_conn), daemon=True)
            proc.start()
            child_conn.close()
            self._procs.append(proc)
            self._conns.append(parent_conn)
        for c in all_ends:
            c.close()
        self._inbound: list[list] = [[] for _ in range(procs)]
        self._pending_total = 0

    def has_pending(self) -> bool:
        return self._pending_total > 0

    def _worker_died(self, i: int, detail: str = "") -> WorkerDiedError:
        proc = self._procs[i]
        proc.join(timeout=10)
        return WorkerDiedError(
            worker=i,
            superstep=self._last_superstep,
            exitcode=proc.exitcode,
            detail=detail,
        )

    def _send_cmd(self, i: int, cmd: tuple) -> None:
        try:
            self._conns[i].send(cmd)
        except (BrokenPipeError, OSError) as exc:
            raise self._worker_died(i, detail=str(exc)) from None

    def _recv_all(self) -> list:
        replies = []
        for i, conn in enumerate(self._conns):
            try:
                reply = conn.recv()
            except EOFError:
                # The pipe closed without a reply: the worker *process* is
                # gone (crash / SIGKILL / oom).  Recoverable via checkpoint
                # rollback — unlike the user-program errors below, which
                # would fail identically on every replay.
                raise self._worker_died(i) from None
            if reply[0] == "peerdead":
                # Worker ``i`` is healthy; it saw EOF on its pipe to the
                # named peer mid-exchange.  Blame the peer.
                raise self._worker_died(
                    reply[1], detail="died during peer barrier exchange"
                )
            if reply[0] == "error":
                _, tb, exc = reply
                if exc is not None:
                    raise exc
                raise RuntimeError(f"parallel worker {i} failed:\n{tb}")
            replies.append(reply[1])
        return replies

    def run_superstep(self, superstep: int, metrics: RunMetrics) -> int:
        engine = self._engine
        cluster = engine.cluster
        self._last_superstep = superstep
        exchange_victims: set[int] = set()
        if self.fault_plan is not None:
            for victim in self.fault_plan.victims(superstep, self._nprocs):
                # A real, uncatchable death — the master must discover it
                # through the broken pipe exactly as it would a crash.
                proc = self._procs[victim]
                if proc.pid is not None and proc.is_alive():
                    kill_process(proc.pid)
                    proc.join(timeout=10)
            # Exchange-phase kills are shipped with the step command: the
            # worker SIGKILLs *itself* mid-exchange, after its first peer
            # frame (or its batches) is already out.  Marked fired here, at
            # ship time, because the victim never reports back.
            exchange_victims = set(
                self.fault_plan.victims(superstep, self._nprocs, phase="exchange")
            )
        cluster.begin_superstep(superstep)

        aggregates = engine._aggregates
        t0 = time.perf_counter()
        for i in range(len(self._conns)):
            self._send_cmd(
                i,
                ("step", superstep, aggregates, self._inbound[i],
                 i in exchange_victims),
            )
        self._inbound = [[] for _ in range(self._nprocs)]
        reports = self._recv_all()
        compute_wall = time.perf_counter() - t0

        total_active = 0
        pending = 0
        exchange_bytes = 0
        exchange_raw = 0
        step_compute_calls = 0
        step_scatter_calls = 0
        walls: list[float] = []
        wires: list[float] = []
        contribs: list[tuple[int, int, str, Any]] = []
        for rep in reports:
            total_active += rep["active"]
            pending += rep["sent"]
            walls.append(rep["wall"])
            wires.append(rep["wire_s"])
            exchange_bytes += rep["exchange_bytes"]
            exchange_raw += rep["raw_wire"]
            for dest, buf in rep["out"].items():
                self._inbound[dest].append(buf)
                exchange_bytes += len(buf)
            traffic = rep["traffic"]
            cluster.record_traffic(
                metrics,
                app=traffic["app"],
                local=traffic["local"],
                remote=traffic["remote"],
                bytes_total=traffic["bytes_total"],
                bytes_remote=traffic["bytes_remote"],
            )
            for shard, seconds in rep["shard_compute"].items():
                cluster.add_shard_compute(shard, seconds)
            counts = rep["counts"]
            step_compute_calls += counts["compute_calls"]
            step_scatter_calls += counts["scatter_calls"]
            for name in _COUNT_FIELDS:
                setattr(metrics, name, getattr(metrics, name) + counts[name])
            contribs.extend(rep["contributions"])

        # Replay aggregate contributions in the serial fold order: by
        # contributing vertex, then call order within the vertex.
        contribs.sort(key=lambda c: (c[0], c[1]))
        for _seq, _idx, name, value in contribs:
            engine.contribute_aggregate(name, value)

        self._pending_total = pending
        wall_max = max(walls, default=0.0)
        wire_max = max(wires, default=0.0)
        metrics.compute_plus_time += compute_wall
        metrics.worker_wall_time += wall_max
        metrics.exchange_time += wire_max
        metrics.exchange_bytes += exchange_bytes
        metrics.exchange_raw_bytes += exchange_raw
        metrics.peak_inflight_messages = max(metrics.peak_inflight_messages, pending)

        step = cluster.end_superstep(metrics)
        step.compute_time = compute_wall
        step.worker_wall_times = walls
        # Reports come back in worker order (``_recv_all`` walks the conns
        # in index order), so list position is the worker id.
        step.worker_spans = [rep["spans"] for rep in reports]
        step.exchange_time = wire_max
        step.exchange_bytes = exchange_bytes
        step.exchange_raw_bytes = exchange_raw
        step.compute_calls = step_compute_calls
        step.scatter_calls = step_scatter_calls
        return total_active

    def collect_states(self) -> dict[Any, Any]:
        for i in range(len(self._conns)):
            self._send_cmd(i, ("collect",))
        merged: dict[Any, Any] = {}
        for states in self._recv_all():
            merged.update(states)
        seq = self._engine._seq
        return {vid: merged[vid] for vid in sorted(merged, key=seq.__getitem__)}

    def snapshot(self) -> ExecutorSnapshot:
        """Barrier-time snapshot across all worker processes.

        Each worker reports its states and the messages parked with it for
        the next superstep — its worker-local pending list plus, under the
        peer topology, the batches already received off the peer pipes;
        the master adds the cross-process batches still sitting in
        ``_inbound`` (star topology and restores; decoded
        non-destructively — the live bytes stay put for the next
        superstep).  Entries are merged with one stable sort by sender
        sequence, recreating the serial delivery order, so the snapshot is
        executor-neutral.
        """
        for i in range(len(self._conns)):
            self._send_cmd(i, ("snapshot",))
        states: dict[Any, Any] = {}
        pending: list[tuple] = []
        for rep in self._recv_all():
            states.update(rep["states"])
            pending.extend(decode_routed_batch(rep["pending"]))
        for batches in self._inbound:
            for buf in batches:
                pending.extend(decode_routed_batch(buf))
        pending.sort(key=lambda e: e[0])  # stable: per-sender order kept
        seq = self._engine._seq
        states = {vid: states[vid] for vid in sorted(states, key=seq.__getitem__)}
        return ExecutorSnapshot(states=states, pending=pending)

    def restore_pending(self, entries) -> None:
        """Feed a checkpoint's pending messages back as inbound batches —
        one re-encoded batch per destination process.  Combined 5-tuple
        entries pass through intact, so the first resumed superstep
        charges the receiver pass for the folded-away raw messages exactly
        as the original run would have."""
        per_proc: dict[int, list] = {}
        for entry in entries:
            shard = self._partitioner.worker_of(entry[1])
            per_proc.setdefault(self._shard_to_proc[shard], []).append(entry)
        for p, ents in per_proc.items():
            self._inbound[p].append(encode_routed_batch(ents))
        self._pending_total = len(entries)

    def close(self) -> None:
        """Shut workers down, **propagating** any death instead of hiding it.

        Every process is still joined and every pipe closed before the
        error surfaces — cleanup is unconditional — but a worker that
        exited nonzero (or never acknowledged the stop) raises
        :class:`WorkerDiedError` naming the worker and its last superstep,
        instead of the old silent terminate-and-move-on.

        Idempotent: a second ``close()`` (or one after ``abort()``) finds
        no processes and returns immediately, so a long-lived holder — the
        serving tier keeps executors resident across queries — can close
        defensively without tracking whether the last run already did.
        """
        failure: Optional[WorkerDiedError] = None
        for i, conn in enumerate(self._conns):
            try:
                conn.send(("stop",))
            except Exception:
                pass  # already dead; the exit code check below reports it
        for i, proc in enumerate(self._procs):
            proc.join(timeout=10)
            if proc.is_alive():  # pragma: no cover - crash cleanup
                proc.terminate()
                proc.join(timeout=10)
            if proc.exitcode not in (0, None) and failure is None:
                failure = WorkerDiedError(
                    worker=i,
                    superstep=self._last_superstep,
                    exitcode=proc.exitcode,
                )
        for conn in self._conns:
            try:
                conn.close()
            except Exception:
                pass
        self._procs = []
        self._conns = []
        if failure is not None:
            raise failure

    def abort(self) -> None:
        """Best-effort teardown for error paths — never raises, never hangs."""
        for proc in self._procs:
            try:
                if proc.is_alive():
                    proc.terminate()
            except Exception:
                pass
        for proc in self._procs:
            try:
                proc.join(timeout=10)
                if proc.is_alive():  # pragma: no cover - hard kill fallback
                    proc.kill()
                    proc.join(timeout=10)
            except Exception:
                pass
        for conn in self._conns:
            try:
                conn.close()
            except Exception:
                pass
        self._procs = []
        self._conns = []
