"""Superstep executors: serial and shared-nothing parallel execution.

The engine's driver loop (`IntervalCentricEngine.run`) delegates each
superstep to an executor:

* :class:`SerialExecutor` — the historical behaviour: one process walks the
  active vertices in canonical order and messages move through
  ``SimulatedCluster.send``.
* :class:`ParallelExecutor` — a Giraph-shaped runtime on one machine: each
  worker process owns a fixed subset of the simulated workers' vertex
  partitions (shared-nothing — no state is shared after fork), runs its
  actives concurrently with the other processes, and exchanges cross-process
  messages at the BSP barrier as varint-encoded routed batches
  (`repro.runtime.encoding`), applying the program's combiner worker-locally
  before encoding.  Worker-local messages never leave the process.

Determinism: both executors process active vertices in the canonical global
vertex order (graph enumeration order, ``engine._seq``), every message
carries its sender's sequence number so receivers restore the serial
delivery order with one stable sort, aggregate contributions are folded at
the master in (sender, call) order, and modeled per-worker compute is summed
in the same per-shard order serial would use — so parallel runs return
results identical to serial runs, which the equivalence tests assert
algorithm by algorithm.

Simulated workers ("shards", ``cluster.num_workers``) are decoupled from
worker *processes*: shards are assigned round-robin to however many
processes are available, so an 8-worker simulation keeps its metrics
identical whether it runs on 1, 2 or 8 cores.
"""

from __future__ import annotations

import multiprocessing as mp
import os
import pickle
import time
import traceback
from dataclasses import dataclass, field
from typing import Any, Optional

from repro.core.context import VertexContext
from repro.core.engine import VertexProcessor
from repro.core.interval import Interval
from repro.core.messages import IntervalMessage

from .encoding import decode_routed_batch, encode_routed_batch, encoded_batch_size
from .metrics import RunMetrics

_COUNT_FIELDS = (
    "compute_calls",
    "scatter_calls",
    "warp_calls",
    "warp_suppressed_vertices",
    "combiner_reductions",
)


def resolve_executor(spec: Any = None, processes: Optional[int] = None, *, tracer=None):
    """Turn an executor spec into an executor instance.

    ``spec`` may be ``"serial"``, ``"parallel"``, an executor instance, or
    ``None`` (read the ``REPRO_EXECUTOR`` environment variable, default
    serial).  ``processes=None`` reads ``REPRO_EXECUTOR_PROCESSES``.
    """
    if spec is not None and not isinstance(spec, str):
        executor = spec
    else:
        name = spec or os.environ.get("REPRO_EXECUTOR", "serial")
        if tracer is not None and spec is None:
            # Tracing is in-process only.  An *environment*-forced parallel
            # executor falls back to serial so traced runs keep working
            # under REPRO_EXECUTOR=parallel test sweeps; explicitly asking
            # for parallel with a tracer still errors below.
            name = "serial"
        if processes is None:
            env = os.environ.get("REPRO_EXECUTOR_PROCESSES")
            if env:
                processes = int(env)
        if name == "serial":
            executor = SerialExecutor()
        elif name == "parallel":
            executor = ParallelExecutor(processes=processes)
        else:
            raise ValueError(
                f"unknown executor {name!r} (expected 'serial' or 'parallel')"
            )
    if tracer is not None and executor.name != "serial":
        raise ValueError(
            "the parallel executor cannot host an ExecutionTracer "
            "(trace events happen in worker processes); use the serial executor"
        )
    return executor


def _default_process_count() -> int:
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux
        return os.cpu_count() or 1


class SerialExecutor:
    """Single-process execution — the reference the parallel path must match."""

    name = "serial"

    def start(self, engine, states, fresh, rescatter, warm: bool) -> None:
        self._engine = engine
        self._fresh = fresh
        self._rescatter = rescatter
        self._warm = warm
        graph = engine.graph
        self._contexts = {
            vid: VertexContext(graph.vertex(vid), state, engine)
            for vid, state in states.items()
        }

    def has_pending(self) -> bool:
        return self._engine.cluster.has_pending_messages()

    def run_superstep(self, superstep: int, metrics: RunMetrics) -> int:
        engine = self._engine
        cluster = engine.cluster
        processor = engine._processor
        processor.superstep = superstep
        contexts = self._contexts

        inboxes = cluster.begin_superstep(superstep)
        if superstep == 1:
            if not self._warm:
                active = list(contexts)
            else:
                active = [
                    vid for vid in contexts
                    if vid in self._fresh or vid in self._rescatter
                ]
        elif engine.program.fixed_supersteps is not None:
            active = list(contexts)
        else:
            seq = engine._seq
            active = sorted(
                (vid for vid in inboxes if vid in contexts), key=seq.__getitem__
            )

        tracer = engine.tracer

        def send(src: Any, dst: Any, msg: IntervalMessage) -> None:
            if tracer is not None:
                tracer.on_send(superstep, src, dst, msg.interval, msg.value)
            cluster.send(src, dst, msg, metrics)

        calls_before = metrics.compute_calls
        scatter_before = metrics.scatter_calls
        t0 = time.perf_counter()
        for vid in active:
            ctx = contexts[vid]
            if superstep == 1 and self._warm and vid not in self._fresh:
                cost = processor.rescatter(ctx, self._rescatter[vid], metrics, send)
            else:
                cost = processor.process(ctx, inboxes.get(vid, []), metrics, send)
            cluster.add_compute_time(vid, cost)
        compute_wall = time.perf_counter() - t0
        metrics.compute_plus_time += compute_wall
        metrics.worker_wall_time += compute_wall

        step = cluster.end_superstep(metrics)
        step.compute_time = compute_wall
        step.worker_wall_times = [compute_wall]
        step.compute_calls = metrics.compute_calls - calls_before
        step.scatter_calls = metrics.scatter_calls - scatter_before
        return len(active)

    def collect_states(self) -> dict[Any, Any]:
        return {vid: ctx._state for vid, ctx in self._contexts.items()}

    def close(self) -> None:
        pass


# -- parallel execution -------------------------------------------------------


@dataclass
class _ShardPayload:
    """Everything one worker process needs to run its vertex partitions.

    Shipped at fork time (copy-on-write under the fork start method, pickled
    under spawn); nothing here is shared with the master afterwards.
    """

    graph: Any
    program: Any
    compute_model: Any
    partitioner: Any
    seq: dict[Any, int]
    shard_to_proc: list[int]
    proc_index: int
    states: dict[Any, Any]
    fresh: set
    rescatter: dict[Any, list[Interval]]
    warm: bool
    model_network: bool
    varint: bool
    processor_args: dict[str, Any] = field(default_factory=dict)


def _precombine_entries(entries, combiner, known_vids):
    """Worker-local receiver combining before wire encoding.

    Folds same-destination, identical-interval messages with the program's
    *selective* combiner (min/max/or — folds that pick one operand, so
    staging the fold per-worker leaves the receiver's final fold unchanged).
    Messages to vertices outside the graph are passed through untouched:
    the serial receiver never combines them (the vertex is never processed),
    so pre-combining them would distort the reduction counts.

    Returns ``(entries, reductions)``; the reduction count travels with the
    batch and is credited to the *receiving* superstep's metrics, which is
    when the serial executor would have performed the same folds.
    """
    out = []
    index: dict[tuple[Any, Interval], int] = {}
    reductions = 0
    for seq, dst, msg in entries:
        if dst not in known_vids:
            out.append((seq, dst, msg))
            continue
        key = (dst, msg.interval)
        pos = index.get(key)
        if pos is None:
            index[key] = len(out)
            out.append((seq, dst, msg))
        else:
            first_seq, _, acc = out[pos]
            out[pos] = (
                first_seq,
                dst,
                IntervalMessage(acc.interval, combiner(acc.value, msg.value)),
            )
            reductions += 1
    return out, reductions


class _WorkerRuntime:
    """One worker process's world: its contexts, inbox, and send routing.

    Doubles as the engine-protocol host for its :class:`VertexContext`s
    (``superstep`` / ``graph`` / ``send_direct`` / aggregator services).
    """

    def __init__(self, payload: _ShardPayload):
        self.graph = payload.graph
        self.program = payload.program
        self.partitioner = payload.partitioner
        self.seq = payload.seq
        self.shard_to_proc = payload.shard_to_proc
        self.proc_index = payload.proc_index
        self.warm = payload.warm
        self.fresh = payload.fresh
        self.rescatter_windows = payload.rescatter
        self.model_network = payload.model_network
        self.varint = payload.varint
        self.fixed = payload.program.fixed_supersteps
        self.processor = VertexProcessor(
            payload.graph,
            payload.program,
            payload.compute_model,
            **payload.processor_args,
        )
        self._aggregator_names = set(payload.program.aggregators())
        self.superstep = 0
        self._aggregates: dict[str, Any] = {}
        self.vids = list(payload.states)  # canonical (seq) order
        self.contexts = {
            vid: VertexContext(payload.graph.vertex(vid), state, self)
            for vid, state in payload.states.items()
        }
        #: Messages routed to this process, awaiting next superstep.
        self._pending: list[tuple[int, Any, IntervalMessage]] = []
        self._cur_seq = 0
        self._contrib_idx = 0
        self._contribs: list[tuple[int, int, str, Any]] = []

    # -- engine protocol for VertexContext -----------------------------------

    def send_direct(self, src_vid: Any, dst_vid: Any, interval: Interval, value: Any) -> None:
        self._send(src_vid, dst_vid, IntervalMessage(interval, value))

    def contribute_aggregate(self, name: str, value: Any) -> None:
        if name not in self._aggregator_names:
            raise KeyError(f"no aggregator registered under {name!r}")
        self._contribs.append((self._cur_seq, self._contrib_idx, name, value))
        self._contrib_idx += 1

    def read_aggregate(self, name: str, default: Any = None) -> Any:
        return self._aggregates.get(name, default)

    # -- message routing ------------------------------------------------------

    def _send(self, src: Any, dst: Any, msg: IntervalMessage) -> None:
        self._app += 1
        src_shard = self.partitioner.worker_of(src)
        dst_shard = self.partitioner.worker_of(dst)
        if src_shard == dst_shard:
            self._local += 1
        else:
            self._remote += 1
            if self.model_network:
                self._sent_remote.append(msg)
        if self.model_network:
            self._sent_all.append(msg)
        entry = (self._cur_seq, dst, msg)
        dest_proc = self.shard_to_proc[dst_shard]
        if dest_proc == self.proc_index:
            self._pending.append(entry)
        else:
            self._out.setdefault(dest_proc, []).append(entry)

    # -- superstep ------------------------------------------------------------

    def step(self, superstep: int, aggregates: dict[str, Any], batches) -> dict[str, Any]:
        self.superstep = superstep
        self.processor.superstep = superstep
        self._aggregates = aggregates

        wire_s = 0.0
        t_wire = time.perf_counter()
        entries = self._pending
        self._pending = []
        carried_reductions = 0
        for buf, reductions in batches:
            entries.extend(decode_routed_batch(buf))
            carried_reductions += reductions
        wire_s += time.perf_counter() - t_wire

        # Restore the serial delivery order: stable sort by sender sequence
        # (per-sender order is already correct within each source list).
        entries.sort(key=lambda e: e[0])
        inboxes: dict[Any, list[IntervalMessage]] = {}
        for _seq, dst, msg in entries:
            inboxes.setdefault(dst, []).append(msg)

        if superstep == 1:
            if not self.warm:
                active = self.vids
            else:
                active = [
                    vid for vid in self.vids
                    if vid in self.fresh or vid in self.rescatter_windows
                ]
        elif self.fixed is not None:
            active = self.vids
        else:
            active = [vid for vid in self.vids if vid in inboxes]

        counts = RunMetrics()  # counter bag for this superstep's deltas
        counts.combiner_reductions += carried_reductions
        self._app = 0
        self._local = 0
        self._remote = 0
        self._sent_all: list[IntervalMessage] = []
        self._sent_remote: list[IntervalMessage] = []
        self._out: dict[int, list[tuple[int, Any, IntervalMessage]]] = {}
        self._contribs = []
        shard_compute: dict[int, float] = {}
        processor = self.processor
        worker_of = self.partitioner.worker_of

        t0 = time.perf_counter()
        for vid in active:
            ctx = self.contexts[vid]
            self._cur_seq = self.seq[vid]
            self._contrib_idx = 0
            if superstep == 1 and self.warm and vid not in self.fresh:
                cost = processor.rescatter(
                    ctx, self.rescatter_windows[vid], counts, self._send
                )
            else:
                cost = processor.process(ctx, inboxes.get(vid, []), counts, self._send)
            shard = worker_of(vid)
            shard_compute[shard] = shard_compute.get(shard, 0.0) + cost
        wall = time.perf_counter() - t0

        combiner = self.program.combiner
        precombine = (
            combiner is not None
            and combiner.selective
            and processor.enable_receiver_combiner
        )
        t_wire = time.perf_counter()
        out: dict[int, tuple[bytes, int]] = {}
        for dest, out_entries in self._out.items():
            reductions = 0
            if precombine and len(out_entries) > 1:
                out_entries, reductions = _precombine_entries(
                    out_entries, combiner, self.seq
                )
            out[dest] = (encode_routed_batch(out_entries), reductions)
        wire_s += time.perf_counter() - t_wire

        if self.model_network:
            bytes_total = encoded_batch_size(self._sent_all, varint=self.varint)
            bytes_remote = encoded_batch_size(self._sent_remote, varint=self.varint)
        else:
            bytes_total = bytes_remote = 0

        return {
            "active": len(active),
            "wall": wall,
            "wire_s": wire_s,
            "sent": self._app,
            "counts": {f: getattr(counts, f) for f in _COUNT_FIELDS},
            "traffic": {
                "app": self._app,
                "local": self._local,
                "remote": self._remote,
                "bytes_total": bytes_total,
                "bytes_remote": bytes_remote,
            },
            "shard_compute": shard_compute,
            "contributions": self._contribs,
            "out": out,
        }

    def collect(self) -> dict[Any, Any]:
        return {vid: ctx._state for vid, ctx in self.contexts.items()}


def _worker_main(payload: _ShardPayload, conn) -> None:
    try:
        runtime = _WorkerRuntime(payload)
    except BaseException:
        conn.send(("error", traceback.format_exc(), None))
        return
    while True:
        try:
            cmd = conn.recv()
        except EOFError:
            break
        op = cmd[0]
        if op == "stop":
            break
        try:
            if op == "step":
                result = runtime.step(cmd[1], cmd[2], cmd[3])
            elif op == "collect":
                result = runtime.collect()
            else:
                raise RuntimeError(f"unknown worker command {op!r}")
        except BaseException as exc:
            try:
                pickle.dumps(exc)
            except Exception:
                exc = None
            conn.send(("error", traceback.format_exc(), exc))
        else:
            conn.send(("ok", result))
    conn.close()


class ParallelExecutor:
    """Shared-nothing multiprocess execution of the superstep loop.

    Long-lived worker processes are forked once per run holding their
    partitions' contexts; each superstep is one round trip per worker over a
    pipe (step command with aggregates and inbound batches out, report with
    metrics deltas and outbound batches back).  The master folds reports
    into the cluster's accounting at the barrier so the modeled metrics are
    identical to a serial run's.
    """

    name = "parallel"

    def __init__(self, processes: Optional[int] = None):
        self.processes = processes
        self._procs: list = []
        self._conns: list = []
        self._pending_total = 0

    def start(self, engine, states, fresh, rescatter, warm: bool) -> None:
        cluster = engine.cluster
        n_shards = cluster.num_workers
        procs = self.processes or _default_process_count()
        procs = max(1, min(procs, n_shards))
        self._nprocs = procs
        self._engine = engine
        shard_to_proc = [s % procs for s in range(n_shards)]
        partitioner = cluster.partitioner

        per_states: list[dict] = [{} for _ in range(procs)]
        per_fresh: list[set] = [set() for _ in range(procs)]
        per_rescatter: list[dict] = [{} for _ in range(procs)]
        for vid, state in states.items():
            p = shard_to_proc[partitioner.worker_of(vid)]
            per_states[p][vid] = state
            if vid in fresh:
                per_fresh[p].add(vid)
            if vid in rescatter:
                per_rescatter[p][vid] = rescatter[vid]

        # fork inherits the graph/program/states copy-on-write — no pickling
        # of the (potentially large) payload; spawn platforms pickle it.
        methods = mp.get_all_start_methods()
        ctx = mp.get_context("fork" if "fork" in methods else None)
        self._procs = []
        self._conns = []
        processor_args = engine.processor_args()
        for p in range(procs):
            payload = _ShardPayload(
                graph=engine.graph,
                program=engine.program,
                compute_model=cluster.compute_model,
                partitioner=partitioner,
                seq=engine._seq,
                shard_to_proc=shard_to_proc,
                proc_index=p,
                states=per_states[p],
                fresh=per_fresh[p],
                rescatter=per_rescatter[p],
                warm=warm,
                model_network=cluster.model_network,
                varint=cluster.varint_encoding,
                processor_args=processor_args,
            )
            parent_conn, child_conn = ctx.Pipe()
            proc = ctx.Process(target=_worker_main, args=(payload, child_conn), daemon=True)
            proc.start()
            child_conn.close()
            self._procs.append(proc)
            self._conns.append(parent_conn)
        self._inbound: list[list] = [[] for _ in range(procs)]
        self._pending_total = 0

    def has_pending(self) -> bool:
        return self._pending_total > 0

    def _recv_all(self) -> list:
        replies = []
        for i, conn in enumerate(self._conns):
            try:
                reply = conn.recv()
            except EOFError:
                raise RuntimeError(f"parallel worker {i} died unexpectedly") from None
            if reply[0] == "error":
                _, tb, exc = reply
                if exc is not None:
                    raise exc
                raise RuntimeError(f"parallel worker {i} failed:\n{tb}")
            replies.append(reply[1])
        return replies

    def run_superstep(self, superstep: int, metrics: RunMetrics) -> int:
        engine = self._engine
        cluster = engine.cluster
        cluster.begin_superstep(superstep)

        aggregates = engine._aggregates
        t0 = time.perf_counter()
        for i, conn in enumerate(self._conns):
            conn.send(("step", superstep, aggregates, self._inbound[i]))
        self._inbound = [[] for _ in range(self._nprocs)]
        reports = self._recv_all()
        compute_wall = time.perf_counter() - t0

        total_active = 0
        pending = 0
        exchange_bytes = 0
        step_compute_calls = 0
        step_scatter_calls = 0
        walls: list[float] = []
        wires: list[float] = []
        contribs: list[tuple[int, int, str, Any]] = []
        for rep in reports:
            total_active += rep["active"]
            pending += rep["sent"]
            walls.append(rep["wall"])
            wires.append(rep["wire_s"])
            for dest, (buf, reductions) in rep["out"].items():
                self._inbound[dest].append((buf, reductions))
                exchange_bytes += len(buf)
            traffic = rep["traffic"]
            cluster.record_traffic(
                metrics,
                app=traffic["app"],
                local=traffic["local"],
                remote=traffic["remote"],
                bytes_total=traffic["bytes_total"],
                bytes_remote=traffic["bytes_remote"],
            )
            for shard, seconds in rep["shard_compute"].items():
                cluster.add_shard_compute(shard, seconds)
            counts = rep["counts"]
            step_compute_calls += counts["compute_calls"]
            step_scatter_calls += counts["scatter_calls"]
            for name in _COUNT_FIELDS:
                setattr(metrics, name, getattr(metrics, name) + counts[name])
            contribs.extend(rep["contributions"])

        # Replay aggregate contributions in the serial fold order: by
        # contributing vertex, then call order within the vertex.
        contribs.sort(key=lambda c: (c[0], c[1]))
        for _seq, _idx, name, value in contribs:
            engine.contribute_aggregate(name, value)

        self._pending_total = pending
        wall_max = max(walls, default=0.0)
        wire_max = max(wires, default=0.0)
        metrics.compute_plus_time += compute_wall
        metrics.worker_wall_time += wall_max
        metrics.exchange_time += wire_max
        metrics.exchange_bytes += exchange_bytes
        metrics.peak_inflight_messages = max(metrics.peak_inflight_messages, pending)

        step = cluster.end_superstep(metrics)
        step.compute_time = compute_wall
        step.worker_wall_times = walls
        step.exchange_time = wire_max
        step.exchange_bytes = exchange_bytes
        step.compute_calls = step_compute_calls
        step.scatter_calls = step_scatter_calls
        return total_active

    def collect_states(self) -> dict[Any, Any]:
        for conn in self._conns:
            conn.send(("collect",))
        merged: dict[Any, Any] = {}
        for states in self._recv_all():
            merged.update(states)
        seq = self._engine._seq
        return {vid: merged[vid] for vid in sorted(merged, key=seq.__getitem__)}

    def close(self) -> None:
        for conn in self._conns:
            try:
                conn.send(("stop",))
            except Exception:
                pass
        for proc in self._procs:
            proc.join(timeout=10)
            if proc.is_alive():  # pragma: no cover - crash cleanup
                proc.terminate()
                proc.join(timeout=10)
        for conn in self._conns:
            try:
                conn.close()
            except Exception:
                pass
        self._procs = []
        self._conns = []
