"""Wire encoding for interval messages (paper Sec. VI, "Interval Messages").

GRAPHITE transmits billions of messages; the paper reports that switching to
variable byte-length numbers shrinks message sizes by 59–78%, and that
unit-length and open-ended intervals are sent as a single time-point plus a
flag, saving an 8-byte long each.

This module implements that scheme faithfully:

* unsigned **LEB128 varints** for all integers,
* a one-byte **header** whose flag bits mark unit-length intervals
  (``end == start + 1``) and open-ended intervals (``end == FOREVER``), in
  which cases only the start point is transmitted,
* a small tagged payload encoding for the value types algorithms use
  (ints, floats, bools, strings, ``None``, tuples/lists).

Both a real codec (``encode_message`` / ``decode_message``) and a fast
size-only estimator (``encoded_message_size``) are provided; the simulated
network charges bytes using the latter, and tests assert the two agree.
"""

from __future__ import annotations

import struct
from typing import Any

from repro.core.interval import FOREVER, Interval
from repro.core.messages import IntervalMessage

# Header flag bits.
_FLAG_UNIT = 0x01
_FLAG_UNBOUNDED = 0x02

# Payload type tags.
_TAG_NONE = 0
_TAG_INT = 1
_TAG_NEG_INT = 2
_TAG_FLOAT = 3
_TAG_TRUE = 4
_TAG_FALSE = 5
_TAG_STR = 6
_TAG_TUPLE = 7
_TAG_BIG_INT = 8  # ints at/above FOREVER (e.g. "infinite cost" sentinels)


def _encode_varint_into(n: int, out: bytearray) -> None:
    """Append the unsigned LEB128 form of ``n`` without allocating."""
    if n < 0:
        raise ValueError("varint encodes non-negative integers only")
    while n >= 0x80:
        out.append((n & 0x7F) | 0x80)
        n >>= 7
    out.append(n)


def encode_varint(n: int) -> bytes:
    """Unsigned LEB128."""
    out = bytearray()
    _encode_varint_into(n, out)
    return bytes(out)


def decode_varint(buf: bytes, offset: int = 0) -> tuple[int, int]:
    """Return ``(value, next_offset)``."""
    result = 0
    shift = 0
    while True:
        byte = buf[offset]
        offset += 1
        result |= (byte & 0x7F) << shift
        if not byte & 0x80:
            return result, offset
        shift += 7


def varint_size(n: int) -> int:
    """Encoded size in bytes without allocating."""
    if n < 0:
        raise ValueError("varint encodes non-negative integers only")
    size = 1
    while n >= 0x80:
        n >>= 7
        size += 1
    return size


# -- interval ---------------------------------------------------------------


def _encode_interval_into(interval: Interval, out: bytearray) -> None:
    """Append the wire form of ``interval`` without allocating."""
    flags = 0
    if interval.is_unit:
        flags |= _FLAG_UNIT
    if interval.is_unbounded:
        flags |= _FLAG_UNBOUNDED
    out.append(flags)
    _encode_varint_into(interval.start, out)
    if not flags:
        _encode_varint_into(interval.end, out)


def encode_interval(interval: Interval) -> bytes:
    """Header byte + varint start [+ varint end when needed]."""
    out = bytearray()
    _encode_interval_into(interval, out)
    return bytes(out)


def decode_interval(buf: bytes, offset: int = 0) -> tuple[Interval, int]:
    """Inverse of :func:`encode_interval`; returns ``(interval, offset)``."""
    flags = buf[offset]
    offset += 1
    start, offset = decode_varint(buf, offset)
    if flags & _FLAG_UNBOUNDED:
        return Interval(start, FOREVER), offset
    if flags & _FLAG_UNIT:
        return Interval(start, start + 1), offset
    end, offset = decode_varint(buf, offset)
    return Interval(start, end), offset


def interval_size(interval: Interval, *, varint: bool = True) -> int:
    """Size of the encoded interval; ``varint=False`` models the naive
    fixed-width two-longs layout the paper starts from (2 × 8 bytes)."""
    if not varint:
        return 16
    size = 1 + varint_size(interval.start)
    if not (interval.is_unit or interval.is_unbounded):
        size += varint_size(interval.end)
    return size


# -- payload ----------------------------------------------------------------


def encode_payload(value: Any) -> bytes:
    """Encode a message payload with the tagged varint scheme."""
    out = bytearray()
    _encode_payload_into(value, out)
    return bytes(out)


def _encode_payload_into(value: Any, out: bytearray) -> None:
    if value is None:
        out.append(_TAG_NONE)
    elif value is True:
        out.append(_TAG_TRUE)
    elif value is False:
        out.append(_TAG_FALSE)
    elif isinstance(value, int):
        if value >= FOREVER:
            # Cost sums like FOREVER + weight must round-trip exactly, so
            # the excess over the sentinel rides along as a (small) varint.
            out.append(_TAG_BIG_INT)
            _encode_varint_into(value - FOREVER, out)
        elif value >= 0:
            out.append(_TAG_INT)
            _encode_varint_into(value, out)
        else:
            out.append(_TAG_NEG_INT)
            _encode_varint_into(-value, out)
    elif isinstance(value, float):
        out.append(_TAG_FLOAT)
        out += struct.pack("<d", value)
    elif isinstance(value, str):
        raw = value.encode("utf-8")
        out.append(_TAG_STR)
        _encode_varint_into(len(raw), out)
        out += raw
    elif isinstance(value, (tuple, list)):
        out.append(_TAG_TUPLE)
        _encode_varint_into(len(value), out)
        for item in value:
            _encode_payload_into(item, out)
    else:
        raise TypeError(f"unsupported message payload type: {type(value).__name__}")


def decode_payload(buf: bytes, offset: int = 0) -> tuple[Any, int]:
    """Inverse of :func:`encode_payload`; returns ``(value, offset)``."""
    tag = buf[offset]
    offset += 1
    if tag == _TAG_NONE:
        return None, offset
    if tag == _TAG_TRUE:
        return True, offset
    if tag == _TAG_FALSE:
        return False, offset
    if tag == _TAG_BIG_INT:
        excess, offset = decode_varint(buf, offset)
        return FOREVER + excess, offset
    if tag == _TAG_INT:
        return decode_varint(buf, offset)
    if tag == _TAG_NEG_INT:
        value, offset = decode_varint(buf, offset)
        return -value, offset
    if tag == _TAG_FLOAT:
        return struct.unpack_from("<d", buf, offset)[0], offset + 8
    if tag == _TAG_STR:
        length, offset = decode_varint(buf, offset)
        return buf[offset : offset + length].decode("utf-8"), offset + length
    if tag == _TAG_TUPLE:
        length, offset = decode_varint(buf, offset)
        items = []
        for _ in range(length):
            item, offset = decode_payload(buf, offset)
            items.append(item)
        return tuple(items), offset
    raise ValueError(f"unknown payload tag {tag}")


def payload_size(value: Any, *, varint: bool = True) -> int:
    """Size of the encoded payload; fixed-width mode charges 8 bytes per
    scalar — and per length prefix — as a Java long/double layout would."""
    if value is None or isinstance(value, bool):
        return 1
    if isinstance(value, int):
        if not varint:
            return 1 + 8
        if value >= FOREVER:
            return 1 + varint_size(value - FOREVER)
        return 1 + varint_size(abs(value))
    if isinstance(value, float):
        return 1 + 8
    if isinstance(value, str):
        raw_len = len(value.encode("utf-8"))
        len_size = varint_size(raw_len) if varint else 8
        return 1 + len_size + raw_len
    if isinstance(value, (tuple, list)):
        len_size = varint_size(len(value)) if varint else 8
        return 1 + len_size + sum(
            payload_size(item, varint=varint) for item in value
        )
    raise TypeError(f"unsupported message payload type: {type(value).__name__}")


# -- whole messages -----------------------------------------------------------


def encode_message(msg: IntervalMessage) -> bytes:
    """Full wire form of a message: interval header + tagged payload."""
    return encode_interval(msg.interval) + encode_payload(msg.value)


def decode_message(buf: bytes) -> IntervalMessage:
    """Inverse of :func:`encode_message`; rejects trailing bytes."""
    interval, offset = decode_interval(buf)
    value, offset = decode_payload(buf, offset)
    if offset != len(buf):
        raise ValueError("trailing bytes after message")
    return IntervalMessage(interval, value)


def encoded_message_size(msg: IntervalMessage, *, varint: bool = True) -> int:
    """Bytes this message occupies on the (simulated) wire."""
    return interval_size(msg.interval, varint=varint) + payload_size(
        msg.value, varint=varint
    )


def encoded_batch_size(messages, *, varint: bool = True) -> int:
    """Aggregate wire size of a message batch, sized in one pass.

    Exactly ``sum(encoded_message_size(m) for m in messages)`` but without
    a Python call per message — the barrier exchange sizes whole
    per-destination batches with one call, off the per-send hot path.
    """
    isize, psize = interval_size, payload_size
    total = 0
    for msg in messages:
        total += isize(msg.interval, varint=varint) + psize(msg.value, varint=varint)
    return total


# -- routed batches (parallel barrier exchange) -------------------------------
#
# The parallel executor moves cross-process messages as one buffer per
# (source process, destination process) pair.  Each entry carries the
# sending vertex's global sequence number so the receiver can restore the
# exact serial delivery order (stable sort by ``seq``), the destination
# vertex id (any payload-encodable value), and the message itself.
#
# Wire format 2 prefixes the buffer with a format byte and gives every
# entry a trailing varint *raw message count*.  A count above 1 marks a
# sender-side combined entry: ``count`` raw messages to the same
# (destination, interval) were pre-folded before crossing the wire, and
# the entry additionally carries the exact modeled per-message scan charge
# (one IEEE-754 double) those raw messages would have cost the receiver —
# so the receiver can keep modeled compute and ``combiner_reductions``
# bit-identical to serial without ever seeing the raw messages.  Format 1
# (no format byte, no counts) is refused by name: checkpoints that embed
# it are version-bumped in lockstep.

ROUTED_BATCH_FORMAT = 2


def encode_routed_batch_into(entries, out: bytearray) -> None:
    """Append the wire form of a routed batch to ``out`` without allocating.

    Entries are either ``(seq, dst_vid, IntervalMessage)`` 3-tuples (a raw
    message, count 1) or ``(seq, dst_vid, IntervalMessage, count, charge)``
    5-tuples (a combined entry standing in for ``count`` raw messages whose
    modeled receiver scan charge is ``charge`` seconds).
    """
    out.append(ROUTED_BATCH_FORMAT)
    _encode_varint_into(len(entries), out)
    varint_into, payload_into, interval_into = (
        _encode_varint_into, _encode_payload_into, _encode_interval_into,
    )
    for entry in entries:
        if len(entry) == 3:
            seq, dst, msg = entry
            count = 1
        else:
            seq, dst, msg, count, charge = entry
        varint_into(seq, out)
        payload_into(dst, out)
        interval_into(msg.interval, out)
        payload_into(msg.value, out)
        varint_into(count, out)
        if count > 1:
            out += struct.pack("<d", charge)


def encode_routed_batch(entries) -> bytes:
    """Encode routed entries (3- or 5-tuples) into one wire-format-2 buffer."""
    out = bytearray()
    encode_routed_batch_into(entries, out)
    return bytes(out)


def _decode_routed_entries(buf, offset: int = 0):
    """Decode a routed batch starting at ``offset``; returns
    ``(entries, next_offset)``.

    ``buf`` may be any byte sequence (``bytes`` or a reusable
    ``bytearray`` receive buffer larger than the frame) — the caller
    checks the final offset against the frame length if it cares about
    trailing bytes.  Combined entries come back as 5-tuples, raw entries
    as 3-tuples.
    """
    fmt = buf[offset]
    offset += 1
    if fmt != ROUTED_BATCH_FORMAT:
        raise ValueError(
            f"routed batch wire format {fmt} unsupported: this build speaks "
            f"format {ROUTED_BATCH_FORMAT} (format 1 batches carried no "
            f"format byte and no combined-entry counts)"
        )
    count, offset = decode_varint(buf, offset)
    entries = []
    for _ in range(count):
        seq, offset = decode_varint(buf, offset)
        dst, offset = decode_payload(buf, offset)
        interval, offset = decode_interval(buf, offset)
        value, offset = decode_payload(buf, offset)
        raw, offset = decode_varint(buf, offset)
        msg = IntervalMessage(interval, value)
        if raw > 1:
            charge = struct.unpack_from("<d", buf, offset)[0]
            offset += 8
            entries.append((seq, dst, msg, raw, charge))
        else:
            entries.append((seq, dst, msg))
    return entries, offset


def decode_routed_batch(buf: bytes) -> list[tuple]:
    """Inverse of :func:`encode_routed_batch`; rejects trailing bytes."""
    entries, offset = _decode_routed_entries(buf, 0)
    if offset != len(buf):
        raise ValueError("trailing bytes after batch")
    return entries


def routed_entry_size(seq: int, dst: Any, msg: IntervalMessage,
                      *, varint: bool = True) -> int:
    """Wire bytes one *raw* (count-1) routed entry occupies in format 2.

    The executor accumulates this per remote send to report what the
    exchange would have shipped without sender-side combining
    (``exchange_raw_bytes``).
    """
    return (
        varint_size(seq)
        + payload_size(dst, varint=varint)
        + interval_size(msg.interval, varint=varint)
        + payload_size(msg.value, varint=varint)
        + 1  # the count varint (always 1 for a raw entry)
    )
