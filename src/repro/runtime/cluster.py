"""Simulated BSP cluster: workers, message transport, barrier accounting.

The paper runs GRAPHITE and its baselines on a 10-node Giraph cluster.  This
module provides a deterministic single-process stand-in that preserves the
quantities the evaluation analyses: which worker owns each vertex (hash
partitioning), how many messages cross worker boundaries, how many bytes the
wire carries (varint encoding), per-worker compute balance, and barrier
counts.  Engines attribute their per-vertex compute time to the owning
worker; the cluster turns that into a modeled distributed makespan.
"""

from __future__ import annotations

from typing import Any, Callable, Optional

from repro.core.messages import IntervalMessage
from .encoding import encoded_message_size
from .metrics import ComputeModel, NetworkModel, RunMetrics, SuperstepMetrics
from .partitioner import HashPartitioner


class ClusterLifecycleError(RuntimeError):
    """Superstep lifecycle misuse: traffic or accounting outside an open
    superstep, or a superstep opened twice.

    Message and compute accounting only mean anything inside a
    ``begin_superstep`` / ``end_superstep`` pair; silently accepting calls
    outside one lets a crashed run's stale state alias a new run's metrics.
    ``reset()`` is the recovery path after a crashed run.
    """

    code = "cluster_lifecycle"  # stable string code (see repro.errors)


class SimulatedCluster:
    """A fixed pool of BSP workers with per-superstep message queues.

    Parameters
    ----------
    num_workers:
        Number of simulated machines (the paper uses 8 for most runs,
        1–10 for weak scaling).
    partitioner:
        Maps vertex id → worker.  Defaults to a deterministic hash
        partitioner, matching Giraph's.
    network:
        Cost model for the modeled makespan.
    varint_encoding:
        When false, messages are charged at the fixed-width two-longs
        layout — the ablation for the paper's 59–78% message-size claim.
    model_network:
        When false, the network cost model is disabled entirely: ``send``
        skips per-message wire sizing (the hot-path cost nobody reads in
        pure-compute experiments), and barriers charge neither transfer
        time nor barrier latency.  Message *counts* are still kept.
    """

    def __init__(
        self,
        num_workers: int = 8,
        partitioner: Optional[Any] = None,
        network: Optional[NetworkModel] = None,
        compute_model: Optional[ComputeModel] = None,
        *,
        varint_encoding: bool = True,
        model_network: bool = True,
    ):
        self.num_workers = num_workers
        self.partitioner = partitioner or HashPartitioner(num_workers)
        #: Whether the caller placed the partitioner explicitly.  An
        #: env-sourced ``REPRO_PARTITIONER`` yields to an explicit choice;
        #: an explicit ``PartitioningConfig(kind=...)`` does not.
        self.partitioner_explicit = partitioner is not None
        self.network = network or NetworkModel()
        self.compute_model = compute_model or ComputeModel()
        self.varint_encoding = varint_encoding
        self.model_network = model_network
        self._inboxes: dict[Any, list[IntervalMessage]] = {}
        self._pending: dict[Any, list[IntervalMessage]] = {}
        self._seeded_extra: dict[Any, int] = {}
        self._worker_compute: list[float] = [0.0] * num_workers
        self._step: Optional[SuperstepMetrics] = None

    # -- vertex placement ----------------------------------------------------

    def worker_of(self, vid: Any) -> int:
        return self.partitioner.worker_of(vid)

    def worker_load(self, vids) -> list[int]:
        """Vertices per worker — used by balance assertions and Fig. 7."""
        load = [0] * self.num_workers
        for vid in vids:
            load[self.worker_of(vid)] += 1
        return load

    def partition_stats(self, graph) -> dict[str, Any]:
        """Placement-quality summary for ``graph`` under this partitioner.

        ``edge_cut`` is the fraction of edges crossing workers, the
        Sec. VII-A4 locality quantity; ``edge_load`` counts each cut edge
        on both endpoint workers (it costs both sides a barrier exchange);
        ``imbalance`` is max vertex load over the even-split ideal, 1.0
        for a perfectly balanced (or empty) placement.
        """
        vertex_load = [0] * self.num_workers
        for vid in graph.vertex_ids():
            vertex_load[self.worker_of(vid)] += 1
        edge_load = [0] * self.num_workers
        total = cut = 0
        for e in graph.edges():
            total += 1
            src_w, dst_w = self.worker_of(e.src), self.worker_of(e.dst)
            edge_load[src_w] += 1
            if src_w != dst_w:
                cut += 1
                edge_load[dst_w] += 1
        num_vertices = sum(vertex_load)
        ideal = num_vertices / self.num_workers
        return {
            "edge_cut": cut / total if total else 0.0,
            "vertex_load": vertex_load,
            "edge_load": edge_load,
            "imbalance": max(vertex_load) / ideal if num_vertices else 1.0,
        }

    # -- superstep lifecycle ---------------------------------------------------

    def begin_superstep(self, superstep: int) -> dict[Any, list[IntervalMessage]]:
        """Deliver last superstep's messages; returns inboxes by vertex id."""
        if self._step is not None:
            raise ClusterLifecycleError(
                f"begin_superstep({superstep}) while superstep "
                f"{self._step.superstep} is still open — end_superstep() was "
                "never called (use reset() to recover from a crashed run)"
            )
        self._inboxes = self._pending
        self._pending = {}
        self._worker_compute = [0.0] * self.num_workers
        self._step = SuperstepMetrics(superstep=superstep)
        return self._inboxes

    def send(
        self,
        src_vid: Any,
        dst_vid: Any,
        msg: Any,
        metrics: RunMetrics,
        *,
        system: bool = False,
        size: Optional[int] = None,
    ) -> None:
        """Queue a message for delivery at the next barrier.

        ``msg`` is usually an :class:`IntervalMessage`; engines sending
        bare payloads (the VCM baselines) pass an explicit ``size``.
        """
        step = self._step
        if step is None:
            raise ClusterLifecycleError(
                f"send({src_vid!r} -> {dst_vid!r}) outside an open superstep"
            )
        if not self.model_network:
            size = 0
        elif size is None:
            size = encoded_message_size(msg, varint=self.varint_encoding)
        if system:
            metrics.system_messages += 1
        else:
            metrics.messages_sent += 1
        metrics.message_bytes += size
        if self.worker_of(src_vid) == self.worker_of(dst_vid):
            metrics.local_messages += 1
            metrics.local_message_bytes += size
            step.local_bytes += size
        else:
            metrics.remote_messages += 1
            metrics.remote_message_bytes += size
            step.bytes += size
        step.messages += 1
        self._pending.setdefault(dst_vid, []).append(msg)

    def add_compute_time(self, vid: Any, seconds: float) -> None:
        """Attribute *modeled* compute cost to the worker owning ``vid``."""
        if self._step is None:
            raise ClusterLifecycleError(
                f"add_compute_time({vid!r}) outside an open superstep"
            )
        self._worker_compute[self.worker_of(vid)] += seconds

    def add_shard_compute(self, shard: int, seconds: float) -> None:
        """Attribute modeled compute cost directly to worker ``shard``.

        The parallel barrier path already knows each vertex's shard, so it
        folds per-shard sums in one call instead of re-hashing every vertex.
        """
        if self._step is None:
            raise ClusterLifecycleError(
                f"add_shard_compute({shard}) outside an open superstep"
            )
        self._worker_compute[shard] += seconds

    def record_traffic(
        self,
        metrics: RunMetrics,
        *,
        app: int = 0,
        system: int = 0,
        local: int = 0,
        remote: int = 0,
        bytes_total: int = 0,
        bytes_remote: int = 0,
    ) -> None:
        """Fold a batch of already-classified message traffic into the metrics.

        The parallel executor's workers classify and size their own traffic
        (messages never pass through :meth:`send` on the master), then report
        per-superstep totals that this folds in at the barrier — mirroring
        exactly what per-message ``send`` calls would have recorded.
        """
        step = self._step
        if step is None:
            raise ClusterLifecycleError("record_traffic outside an open superstep")
        metrics.messages_sent += app
        metrics.system_messages += system
        metrics.local_messages += local
        metrics.remote_messages += remote
        if self.model_network:
            metrics.message_bytes += bytes_total
            metrics.remote_message_bytes += bytes_remote
            metrics.local_message_bytes += bytes_total - bytes_remote
            step.bytes += bytes_remote
            step.local_bytes += bytes_total - bytes_remote
        step.messages += app + system

    def end_superstep(self, metrics: RunMetrics, messaging_time: float = 0.0) -> SuperstepMetrics:
        """Close the superstep: fold the cost model into the metrics."""
        step = self._step
        if step is None:
            raise ClusterLifecycleError("end_superstep without begin_superstep")
        step.max_worker_compute_time = max(self._worker_compute, default=0.0)
        if self.model_network:
            transfer = self.network.transfer_time(step.bytes, step.messages, self.num_workers)
            barrier = self.network.barrier_latency_s
        else:
            transfer = 0.0
            barrier = 0.0
        step.messaging_time = messaging_time + transfer
        metrics.messaging_time += step.messaging_time
        metrics.modeled_makespan += (
            step.max_worker_compute_time + step.messaging_time + barrier
        )
        metrics.modeled_compute_time += step.max_worker_compute_time
        metrics.barrier_time += barrier
        inflight = sum(len(v) for v in self._pending.values())
        metrics.peak_inflight_messages = max(metrics.peak_inflight_messages, inflight)
        metrics.supersteps_detail.append(step)
        self._step = None
        return step

    def has_pending_messages(self) -> bool:
        return bool(self._pending)

    def pending_count(self) -> int:
        return sum(len(v) for v in self._pending.values())

    # -- checkpoint support ----------------------------------------------------

    def pending_entries(self) -> list[tuple[int, Any, IntervalMessage]]:
        """The undelivered messages as ``(seq, dst, message)`` triples.

        The serial transport does not track sender sequences (delivery
        order *is* queue order), so a monotonically increasing counter
        stands in: it preserves each destination's queue order, which is
        the only order a resume — under either executor — depends on.
        """
        entries: list[tuple[int, Any, IntervalMessage]] = []
        i = 0
        for dst, msgs in self._pending.items():
            for msg in msgs:
                entries.append((i, dst, msg))
                i += 1
        return entries

    def seed_pending(self, entries) -> None:
        """Rebuild the pending queues from checkpoint routed entries
        (sorted by seq by the loader — serial delivery order).

        Entries are ``(seq, dst, message)`` triples or, when the
        checkpoint was written by a run with sender-side combining,
        ``(seq, dst, message, count, charge)`` 5-tuples standing in for
        ``count`` raw messages.  The folded-away counts are recorded per
        destination so the serial executor can charge the receiver pass
        for them on the first resumed superstep (see
        :meth:`take_seeded_extra`)."""
        if self._step is not None:
            raise ClusterLifecycleError("seed_pending inside an open superstep")
        self._pending = {}
        self._seeded_extra = {}
        for entry in entries:
            dst, msg = entry[1], entry[2]
            self._pending.setdefault(dst, []).append(msg)
            if len(entry) > 3:
                extra = entry[3] - 1
                if extra:
                    self._seeded_extra[dst] = (
                        self._seeded_extra.get(dst, 0) + extra
                    )

    def take_seeded_extra(self) -> dict:
        """Per-destination raw-message counts folded out of the seeded
        pending entries — consumed exactly once, by the first superstep
        after a resume (empty on every later call)."""
        extra = getattr(self, "_seeded_extra", None) or {}
        self._seeded_extra = {}
        return extra

    def reset(self) -> None:
        """Clear all queues (between independent runs on one cluster)."""
        self._inboxes = {}
        self._pending = {}
        self._seeded_extra = {}
        self._worker_compute = [0.0] * self.num_workers
        self._step = None

    def __repr__(self) -> str:
        return f"SimulatedCluster(workers={self.num_workers}, {self.partitioner!r})"
