"""Vertex partitioners for the simulated cluster.

Giraph assigns vertices to workers with a hash partitioner (paper
Sec. VII-A4); a contiguous range partitioner is provided for the locality
ablation (the paper observes 70% of TGB's messages landing on half the
partitions under hashing), and two streaming-greedy partitioners (LDG and
an interval-weighted variant) pursue the locality lever the paper's future
work calls out.

Selection is config-driven: ``EngineConfig(partitioning=...)`` /
``repro run --partitioner`` / ``REPRO_PARTITIONER`` pick a kind from
:data:`PARTITIONER_KINDS` and :func:`build_partitioner` constructs it for
the engine's graph.  Every partitioner exposes a :meth:`Partitioner.fingerprint`
— a stable string covering the *actual* vertex→worker assignment — which
the checkpoint manifest records so a resume under a different placement
fails loudly instead of silently scrambling shard ownership.
"""

from __future__ import annotations

import hashlib
import random
import re
import zlib
from typing import Any, Dict, Iterable

__all__ = [
    "PARTITIONER_KINDS",
    "Partitioner",
    "HashPartitioner",
    "RangePartitioner",
    "GreedyEdgeCutPartitioner",
    "IntervalGreedyPartitioner",
    "build_partitioner",
    "partitioner_fingerprint",
]

#: Config/CLI/env partitioner kinds, in documentation order.
PARTITIONER_KINDS = ("hash", "range", "greedy", "interval_greedy")

_DIGIT_RUN = re.compile(r"(\d+)")


def _natural_key(vid: Any):
    """Order vertex ids with digit runs compared numerically.

    ``sorted(key=repr)`` puts ``v10`` before ``v2``; datasets name vertices
    ``v0..vN``, so lexicographic order interleaves the numeric ranges and
    a "range" partitioner built on it is not contiguous at all.  Natural
    order restores ``v2 < v10`` (and plain integer ids order numerically);
    ``repr`` remains the tie-break so distinct ids never compare equal.
    """
    text = vid if isinstance(vid, str) else repr(vid)
    key = tuple(
        (0, int(part)) if part.isdigit() else (1, part)
        for part in _DIGIT_RUN.split(text)
    )
    return (key, repr(vid))


def _edge_records(graph):
    """Stream ``(src_vid, dst_vid, start, end)`` per edge.

    A compact graph serves these straight from its columnar arrays
    (``CompactGraph.edge_records``) without materialising edge views; heap
    graphs fall back to object iteration.  Both stores stream edges in
    the same enumeration order, so weight accumulation — and therefore
    every greedy placement — is identical between them.
    """
    fast = getattr(graph, "edge_records", None)
    if fast is not None:
        return fast()
    return ((e.src, e.dst, e.lifespan.start, e.lifespan.end) for e in graph.edges())


class Partitioner:
    """Maps vertex id → worker index, with quality and identity helpers."""

    kind: str = ""
    num_workers: int = 0

    def worker_of(self, vid: Any) -> int:
        raise NotImplementedError

    def edge_cut(self, graph) -> float:
        """Fraction of edges whose endpoints land on different workers."""
        total = cut = 0
        worker_of = self.worker_of
        for src, dst, _, _ in _edge_records(graph):
            total += 1
            if worker_of(src) != worker_of(dst):
                cut += 1
        return cut / total if total else 0.0

    def fingerprint(self) -> str:
        """A stable identity string for checkpoint-manifest comparison.

        Two partitioners with equal fingerprints produce the same
        vertex→worker map; a resume across differing fingerprints would
        re-shard state and is refused by the engine.
        """
        raise NotImplementedError


class HashPartitioner(Partitioner):
    """Deterministic hash partitioning of opaque vertex ids.

    Python's builtin ``hash`` is salted per process for strings, so we hash
    the id's string form with CRC32 — stable across runs and processes,
    which keeps benchmarks reproducible.  ``seed`` perturbs the assignment
    (it seeds the CRC register) so tests and ablations can exercise
    different vertex→worker layouts without changing the partitioning
    scheme; ``seed=0`` reproduces the historical assignment exactly.
    """

    kind = "hash"

    def __init__(self, num_workers: int, seed: int = 0):
        if num_workers < 1:
            raise ValueError("need at least one worker")
        self.num_workers = num_workers
        self.seed = seed
        self._crc_init = seed & 0xFFFFFFFF

    def worker_of(self, vid: Any) -> int:
        return zlib.crc32(repr(vid).encode("utf-8"), self._crc_init) % self.num_workers

    def fingerprint(self) -> str:
        return f"hash:w={self.num_workers}:seed={self.seed}"

    def __repr__(self) -> str:
        if self.seed:
            return f"HashPartitioner({self.num_workers}, seed={self.seed})"
        return f"HashPartitioner({self.num_workers})"


class _AssignmentPartitioner(Partitioner):
    """Shared behaviour for partitioners holding a precomputed assignment."""

    _missing = "not in partitioned universe"

    def __init__(self):
        self._assignment: Dict[Any, int] = {}

    def worker_of(self, vid: Any) -> int:
        try:
            return self._assignment[vid]
        except KeyError:
            raise KeyError(f"vertex {vid!r} {self._missing}") from None

    def _assignment_digest(self) -> str:
        """SHA-256 over the full vertex→worker map (id-order independent)."""
        digest = hashlib.sha256()
        for vid, worker in sorted(
            self._assignment.items(), key=lambda item: repr(item[0])
        ):
            digest.update(f"{vid!r}\t{worker}\n".encode("utf-8"))
        return digest.hexdigest()[:16]


class GreedyEdgeCutPartitioner(_AssignmentPartitioner):
    """Streaming greedy partitioning (LDG-style) of a temporal graph.

    The paper's future work includes "explor[ing] … partitioning
    strategies".  This partitioner streams vertices in natural id order and
    places each on the worker holding the largest (weighted) share of its
    already-placed neighbours, damped by a capacity penalty (Stanton &
    Kliot's linear deterministic greedy), which cuts remote-message traffic
    versus hashing on graphs with locality.

    Placement is a single O(E) sweep: each streamed vertex folds its
    neighbour list into per-worker weights (touching only workers that
    actually hold a neighbour) instead of scoring every worker against
    every neighbour.  Ties — including the no-placed-neighbours case,
    where every worker scores 0.0 — go to the least-loaded worker (lowest
    index on equal load), so early isolated vertices spread round-robin
    instead of piling onto worker 0.

    ``seed=0`` streams vertices in canonical natural order; a non-zero
    seed deterministically shuffles the stream, giving ablations distinct
    (but reproducible, process-independent) placements.
    """

    kind = "greedy"
    _missing = "not in partitioned graph"

    def __init__(
        self,
        num_workers: int,
        graph,
        *,
        capacity_slack: float = 1.1,
        seed: int = 0,
    ):
        if num_workers < 1:
            raise ValueError("need at least one worker")
        super().__init__()
        self.num_workers = num_workers
        self.capacity_slack = capacity_slack
        self.seed = seed
        vids = sorted(graph.vertex_ids(), key=_natural_key)
        if seed:
            random.Random(seed).shuffle(vids)
        capacity = max(1.0, capacity_slack * len(vids) / num_workers)
        neighbours: Dict[Any, Dict[Any, float]] = {vid: {} for vid in vids}
        record_weight = self._record_weight
        for src, dst, start, end in _edge_records(graph):
            weight = record_weight(start, end)
            if weight <= 0.0:
                continue
            src_nbrs = neighbours[src]
            src_nbrs[dst] = src_nbrs.get(dst, 0.0) + weight
            dst_nbrs = neighbours[dst]
            dst_nbrs[src] = dst_nbrs.get(src, 0.0) + weight
        assignment = self._assignment
        loads = [0] * num_workers
        for vid in vids:
            # One pass over the vertex's neighbours → per-worker weights;
            # only those workers can score above the 0.0 every empty
            # worker shares, so the candidate set is the weighted workers
            # plus the least-loaded one.
            weights: Dict[int, float] = {}
            for nbr, weight in neighbours[vid].items():
                worker = assignment.get(nbr)
                if worker is not None:
                    weights[worker] = weights.get(worker, 0.0) + weight
            least = min(range(num_workers), key=lambda w: (loads[w], w))
            best_worker = least
            best_key = (0.0, -loads[least], -least)
            for worker in sorted(weights):
                score = weights[worker] * (1.0 - loads[worker] / capacity)
                key = (score, -loads[worker], -worker)
                if key > best_key:
                    best_worker, best_key = worker, key
            assignment[vid] = best_worker
            loads[best_worker] += 1

    def _edge_weight(self, edge) -> float:
        """The neighbour-affinity weight one edge contributes (LDG: 1)."""
        return self._record_weight(edge.lifespan.start, edge.lifespan.end)

    def _record_weight(self, start: int, end: int) -> float:
        """Weight from lifespan bounds alone — the streaming-sweep form."""
        return 1.0

    def fingerprint(self) -> str:
        return (
            f"{self.kind}:w={self.num_workers}:seed={self.seed}"
            f":slack={self.capacity_slack!r}:assign={self._assignment_digest()}"
        )

    def __repr__(self) -> str:
        return (
            f"{type(self).__name__}({self.num_workers}, "
            f"|V|={len(self._assignment)}, slack={self.capacity_slack!r})"
        )


class IntervalGreedyPartitioner(GreedyEdgeCutPartitioner):
    """LDG weighted by edge-lifespan overlap length (interval-aware).

    ICM message volume along an edge is proportional to how long the edge
    is alive (interval overlap with its endpoints — which, by the graph's
    constraint 2, is the edge lifespan itself), not to the bare edge
    count: a unit-lifespan edge carries one superstep's traffic where a
    full-horizon edge re-scatters every superstep.  Weighting each
    neighbour by lifespan length steers the capacity budget toward the
    edges that actually move bytes.
    """

    kind = "interval_greedy"

    def __init__(
        self,
        num_workers: int,
        graph,
        *,
        capacity_slack: float = 1.1,
        seed: int = 0,
    ):
        # Unbounded lifespans (FOREVER) are clipped to the horizon so one
        # open-ended edge cannot drown every bounded neighbour's weight.
        self._horizon = max(1, graph.time_horizon())
        super().__init__(
            num_workers, graph, capacity_slack=capacity_slack, seed=seed
        )

    def _record_weight(self, start: int, end: int) -> float:
        return float(max(1, min(end, self._horizon) - start))


class RangePartitioner(_AssignmentPartitioner):
    """Contiguous ranges over a known vertex universe, in natural order.

    Natural order (digit runs compared numerically) is what makes the
    ranges *actually* contiguous for the ``v0..vN`` and integer id schemes
    every dataset uses; plain ``repr`` order would split ``v2``, ``v20``
    and ``v200`` across workers while claiming locality.
    """

    kind = "range"

    def __init__(self, num_workers: int, vertex_ids: Iterable[Any]):
        if num_workers < 1:
            raise ValueError("need at least one worker")
        super().__init__()
        self.num_workers = num_workers
        ordered = sorted(vertex_ids, key=_natural_key)
        if ordered:
            per_worker = max(1, (len(ordered) + num_workers - 1) // num_workers)
            for idx, vid in enumerate(ordered):
                self._assignment[vid] = min(idx // per_worker, num_workers - 1)

    def fingerprint(self) -> str:
        return (
            f"range:w={self.num_workers}:assign={self._assignment_digest()}"
        )

    def __repr__(self) -> str:
        return f"RangePartitioner({self.num_workers}, |V|={len(self._assignment)})"


def build_partitioner(
    kind: str,
    num_workers: int,
    graph,
    *,
    seed: int = 0,
    capacity_slack: float = 1.1,
) -> Partitioner:
    """Construct the partitioner ``kind`` for ``graph`` — the one factory
    behind ``EngineConfig.partitioning``, ``--partitioner`` and
    ``REPRO_PARTITIONER``."""
    if kind == "hash":
        return HashPartitioner(num_workers, seed)
    if kind == "range":
        return RangePartitioner(num_workers, graph.vertex_ids())
    if kind == "greedy":
        return GreedyEdgeCutPartitioner(
            num_workers, graph, capacity_slack=capacity_slack, seed=seed
        )
    if kind == "interval_greedy":
        return IntervalGreedyPartitioner(
            num_workers, graph, capacity_slack=capacity_slack, seed=seed
        )
    raise ValueError(
        f"unknown partitioner kind {kind!r} "
        f"(expected one of {', '.join(PARTITIONER_KINDS)})"
    )


def partitioner_fingerprint(partitioner: Any) -> str:
    """The partitioner's stable identity; ``repr`` for foreign objects."""
    fingerprint = getattr(partitioner, "fingerprint", None)
    if callable(fingerprint):
        return fingerprint()
    return repr(partitioner)
