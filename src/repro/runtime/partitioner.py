"""Vertex partitioners for the simulated cluster.

Giraph assigns vertices to workers with a hash partitioner (paper
Sec. VII-A4); a contiguous range partitioner is provided for the locality
ablation (the paper observes 70% of TGB's messages landing on half the
partitions under hashing).
"""

from __future__ import annotations

import zlib
from typing import Any, Iterable


class HashPartitioner:
    """Deterministic hash partitioning of opaque vertex ids.

    Python's builtin ``hash`` is salted per process for strings, so we hash
    the id's string form with CRC32 — stable across runs and processes,
    which keeps benchmarks reproducible.  ``seed`` perturbs the assignment
    (it seeds the CRC register) so tests and ablations can exercise
    different vertex→worker layouts without changing the partitioning
    scheme; ``seed=0`` reproduces the historical assignment exactly.
    """

    def __init__(self, num_workers: int, seed: int = 0):
        if num_workers < 1:
            raise ValueError("need at least one worker")
        self.num_workers = num_workers
        self.seed = seed
        self._crc_init = seed & 0xFFFFFFFF

    def worker_of(self, vid: Any) -> int:
        return zlib.crc32(repr(vid).encode("utf-8"), self._crc_init) % self.num_workers

    def __repr__(self) -> str:
        if self.seed:
            return f"HashPartitioner({self.num_workers}, seed={self.seed})"
        return f"HashPartitioner({self.num_workers})"


class GreedyEdgeCutPartitioner:
    """Streaming greedy partitioning (LDG-style) of a temporal graph.

    The paper's future work includes "explor[ing] … partitioning
    strategies".  This partitioner streams vertices in order and places
    each on the worker holding most of its already-placed neighbours,
    damped by a capacity penalty (Stanton & Kliot's linear deterministic
    greedy), which cuts remote-message traffic versus hashing on graphs
    with locality.
    """

    def __init__(self, num_workers: int, graph, *, capacity_slack: float = 1.1):
        if num_workers < 1:
            raise ValueError("need at least one worker")
        self.num_workers = num_workers
        vids = sorted(graph.vertex_ids(), key=repr)
        capacity = max(1.0, capacity_slack * len(vids) / num_workers)
        neighbours: dict[Any, set[Any]] = {vid: set() for vid in vids}
        for e in graph.edges():
            neighbours[e.src].add(e.dst)
            neighbours[e.dst].add(e.src)
        self._assignment: dict[Any, int] = {}
        loads = [0] * num_workers
        for vid in vids:
            best_worker, best_score = 0, float("-inf")
            for w in range(num_workers):
                placed = sum(
                    1 for nbr in neighbours[vid] if self._assignment.get(nbr) == w
                )
                score = placed * (1.0 - loads[w] / capacity)
                if score > best_score:
                    best_worker, best_score = w, score
            self._assignment[vid] = best_worker
            loads[best_worker] += 1

    def worker_of(self, vid: Any) -> int:
        try:
            return self._assignment[vid]
        except KeyError:
            raise KeyError(f"vertex {vid!r} not in partitioned graph") from None

    def edge_cut(self, graph) -> float:
        """Fraction of edges whose endpoints land on different workers."""
        total = cut = 0
        for e in graph.edges():
            total += 1
            if self.worker_of(e.src) != self.worker_of(e.dst):
                cut += 1
        return cut / total if total else 0.0

    def __repr__(self) -> str:
        return f"GreedyEdgeCutPartitioner({self.num_workers}, |V|={len(self._assignment)})"


class RangePartitioner:
    """Contiguous ranges over a known, sorted vertex universe."""

    def __init__(self, num_workers: int, vertex_ids: Iterable[Any]):
        if num_workers < 1:
            raise ValueError("need at least one worker")
        self.num_workers = num_workers
        ordered = sorted(vertex_ids, key=repr)
        self._assignment: dict[Any, int] = {}
        if ordered:
            per_worker = max(1, (len(ordered) + num_workers - 1) // num_workers)
            for idx, vid in enumerate(ordered):
                self._assignment[vid] = min(idx // per_worker, num_workers - 1)

    def worker_of(self, vid: Any) -> int:
        try:
            return self._assignment[vid]
        except KeyError:
            raise KeyError(f"vertex {vid!r} not in partitioned universe") from None

    def __repr__(self) -> str:
        return f"RangePartitioner({self.num_workers}, |V|={len(self._assignment)})"
