"""Barrier-synchronized checkpointing: durable superstep state on disk.

Giraph checkpoints vertex state and in-flight messages at BSP barriers and
restarts failed workers from the last checkpoint.  This module is that
layer for the reproduction: at a configurable superstep cadence the engine
snapshots everything a barrier owns —

* each shard's :class:`~repro.core.state.PartitionedState` partitions,
* the messages pending delivery at the next superstep (with their sender
  sequence numbers, so the resumed run restores the exact serial delivery
  order),
* the reduced aggregator values the next superstep will read,
* the run's deterministic counters and modeled cost sums
  (:class:`~repro.runtime.metrics.RunMetrics`),

and writes one **varint-encoded file per shard** using the existing wire
codec (`repro.runtime.encoding` — the checkpoint format *is* the message
format, there is no second serializer), plus a JSON **manifest** carrying
the superstep, a config fingerprint, and per-file SHA-256 checksums.
``IntervalCentricEngine.run(resume_from=...)`` reloads the manifest,
validates the fingerprint, and continues from superstep N+1 producing
results bit-identical to an uninterrupted run; the same loader backs the
parallel executor's crash recovery (`repro.runtime.faults`).

Layout on disk::

    <root>/
      step-000004/
        manifest.json          # superstep, config hash, checksums
        aggregates.bin         # payload-codec (name, value) pairs
        shard-00000.bin        # states + pending messages of shard 0
        shard-00002.bin        # empty shards are omitted
      step-000008/
        ...

Checkpoints are written atomically (staging directory + rename), so a
crash *during* checkpointing can never leave a half-readable step behind.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import os
import re
import shutil
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable, Optional

from repro.core.interval import Interval
from repro.core.messages import IntervalMessage
from repro.core.state import PartitionedState

from repro.obs.registry import RUN_METRICS

from .encoding import (
    _encode_interval_into,
    _encode_payload_into,
    _encode_varint_into,
    decode_interval,
    decode_payload,
    decode_routed_batch,
    decode_varint,
    encode_routed_batch,
    encode_varint,
)
from .metrics import RunMetrics, SuperstepMetrics
from .partitioner import partitioner_fingerprint

__all__ = [
    "CHECKPOINT_FORMAT",
    "EXCHANGE_FINGERPRINT",
    "CheckpointError",
    "CheckpointInfo",
    "ExecutorSnapshot",
    "LoadedCheckpoint",
    "config_fingerprint",
    "decode_shard",
    "encode_shard",
    "graph_fingerprint",
    "latest_checkpoint",
    "load_checkpoint",
    "metrics_snapshot",
    "restore_metrics",
    "write_checkpoint",
]

#: Bump on any incompatible change to the shard or manifest layout.
#: 2: pending messages use routed-batch wire format 2 (leading format
#: byte, per-entry raw-message counts from sender-side combining).
CHECKPOINT_FORMAT = 2

#: The exchange data-plane fingerprint written into manifests: names the
#: routed-batch wire version the pending entries use.  Deliberately not
#: the topology or the combine flag — those are resume-portable.
EXCHANGE_FINGERPRINT = "routed-batch-v2"

_SHARD_MAGIC = b"ICMC"
_STEP_DIR = re.compile(r"^step-(\d{6})$")

# Manifest field order is on-disk layout: both tuples derive from the
# metric registry's declaration order (`repro.obs.registry.RUN_METRICS`),
# which is therefore as stable as CHECKPOINT_FORMAT itself.
_METRIC_COUNTERS = RUN_METRICS.names(value="int")
_METRIC_FLOATS = RUN_METRICS.names(value="float")


class CheckpointError(RuntimeError):
    """A checkpoint could not be written, found, read, or trusted.

    Raised for missing/corrupt files, checksum or format-version
    mismatches, unserializable state values, and config-fingerprint
    mismatches on resume.  Distinct from
    :class:`~repro.runtime.faults.UnrecoverableRunError`, which is about
    *processes* dying faster than recovery can absorb.
    """


@dataclass
class ExecutorSnapshot:
    """Everything an executor owns at a barrier, in executor-neutral form.

    ``pending`` entries are ``(sender_seq, dst_vid, message)`` triples in
    delivery order — the same entries the parallel wire format routes — or
    ``(seq, dst, message, count, charge)`` 5-tuples where sender-side
    combining folded ``count`` raw messages into one; either executor
    charges the folded-away messages on the first resumed superstep, so a
    snapshot taken under one executor/topology resumes under any other.
    ``carried_reductions`` predates the count-carrying entries and is now
    always 0 (counts travel inside the entries); the field and its
    manifest key are kept so the snapshot shape stays stable.
    """

    states: dict[Any, PartitionedState]
    pending: list[tuple]
    carried_reductions: int = 0


@dataclass
class CheckpointInfo:
    """What one :func:`write_checkpoint` call produced."""

    path: Path
    superstep: int
    bytes_written: int
    seconds: float = 0.0


@dataclass
class LoadedCheckpoint:
    """A checkpoint read back from disk, checksums verified."""

    path: Path
    superstep: int
    config_hash: str
    algorithm: str
    graph: str
    num_workers: int
    states: dict[Any, PartitionedState]
    pending: list[tuple[int, Any, IntervalMessage]]
    carried_reductions: int
    aggregates: dict[str, Any]
    metrics: dict[str, Any] = field(default_factory=dict)
    #: Fingerprint of the partitioner the writer ran under ("" in
    #: manifests predating the partitioning subsystem).
    partitioner: str = ""
    #: Exchange data-plane fingerprint — the routed-batch wire version the
    #: pending entries were written with ("" in older manifests).  The
    #: topology and combine flag are deliberately *not* part of it: star
    #: and peer checkpoints are interchangeable by construction, and the
    #: decoder always understands combined entries.
    exchange: str = ""


# -- shard codec ---------------------------------------------------------------


def encode_shard(
    states: list[tuple[Any, PartitionedState]],
    pending: list[tuple[int, Any, IntervalMessage]],
) -> bytes:
    """Encode one shard's states and pending messages with the wire codec.

    Layout: magic, format varint, vertex count, then per vertex the id
    (tagged payload), lifespan (interval header), partition count, the
    interior+final end boundaries as varints, and the partition values as
    tagged payloads; the pending messages follow as one routed batch
    (:func:`repro.runtime.encoding.encode_routed_batch` — the same bytes
    that cross worker pipes at a live barrier).
    """
    out = bytearray(_SHARD_MAGIC)
    out += encode_varint(CHECKPOINT_FORMAT)
    out += encode_varint(len(states))
    for vid, state in states:
        lifespan, ends, values = state.parts()
        try:
            _encode_payload_into(vid, out)
        except TypeError as exc:
            raise CheckpointError(
                f"vertex id {vid!r} is not checkpoint-serializable: {exc}"
            ) from exc
        _encode_interval_into(lifespan, out)
        _encode_varint_into(len(ends), out)
        for end in ends:
            _encode_varint_into(end, out)
        for value in values:
            try:
                _encode_payload_into(value, out)
            except TypeError as exc:
                raise CheckpointError(
                    f"state value {value!r} of vertex {vid!r} is not "
                    f"checkpoint-serializable: {exc}"
                ) from exc
    try:
        out += encode_routed_batch(pending)
    except TypeError as exc:
        raise CheckpointError(
            f"pending message is not checkpoint-serializable: {exc}"
        ) from exc
    return bytes(out)


def decode_shard(
    buf: bytes, *, coalesce: bool = True
) -> tuple[dict[Any, PartitionedState], list[tuple[int, Any, IntervalMessage]]]:
    """Inverse of :func:`encode_shard`; rejects bad magic and trailing bytes."""
    if buf[: len(_SHARD_MAGIC)] != _SHARD_MAGIC:
        raise CheckpointError("bad shard file magic (not a checkpoint shard)")
    offset = len(_SHARD_MAGIC)
    fmt, offset = decode_varint(buf, offset)
    if fmt != CHECKPOINT_FORMAT:
        raise CheckpointError(
            f"shard format {fmt} unsupported (this build reads format "
            f"{CHECKPOINT_FORMAT})"
        )
    count, offset = decode_varint(buf, offset)
    states: dict[Any, PartitionedState] = {}
    for _ in range(count):
        vid, offset = decode_payload(buf, offset)
        lifespan, offset = decode_interval(buf, offset)
        n_parts, offset = decode_varint(buf, offset)
        ends = []
        for _ in range(n_parts):
            end, offset = decode_varint(buf, offset)
            ends.append(end)
        values = []
        for _ in range(n_parts):
            value, offset = decode_payload(buf, offset)
            values.append(value)
        try:
            states[vid] = PartitionedState.from_parts(
                lifespan, ends, values, coalesce=coalesce
            )
        except (ValueError, AssertionError) as exc:
            raise CheckpointError(
                f"corrupt state snapshot for vertex {vid!r}: {exc}"
            ) from exc
    pending = decode_routed_batch(buf[offset:])
    return states, pending


def _encode_aggregates(aggregates: dict[str, Any]) -> bytes:
    out = bytearray(encode_varint(len(aggregates)))
    for name, value in aggregates.items():
        _encode_payload_into(name, out)
        try:
            _encode_payload_into(value, out)
        except TypeError as exc:
            raise CheckpointError(
                f"aggregate {name!r}={value!r} is not checkpoint-serializable: {exc}"
            ) from exc
    return bytes(out)


def _decode_aggregates(buf: bytes) -> dict[str, Any]:
    count, offset = decode_varint(buf, 0)
    out: dict[str, Any] = {}
    for _ in range(count):
        name, offset = decode_payload(buf, offset)
        value, offset = decode_payload(buf, offset)
        out[name] = value
    if offset != len(buf):
        raise CheckpointError("trailing bytes after aggregates")
    return out


# -- metrics snapshot ----------------------------------------------------------


def metrics_snapshot(metrics: RunMetrics) -> dict[str, Any]:
    """The deterministic portion of a :class:`RunMetrics` as JSON-safe data.

    Counters and modeled float sums round-trip exactly through JSON
    (Python serialises floats via ``repr``, which is lossless), which is
    what lets a resumed run finish with *bitwise* identical counters and
    modeled makespan.  Measured wall-times ride along for continuity but
    carry no exactness promise.  ``recovery`` is deliberately excluded:
    the resumed run accounts its own durability costs.
    """
    snap: dict[str, Any] = {
        "platform": metrics.platform,
        "algorithm": metrics.algorithm,
        "graph": metrics.graph,
        "executor": metrics.executor,
    }
    for name in _METRIC_COUNTERS:
        snap[name] = getattr(metrics, name)
    for name in _METRIC_FLOATS:
        snap[name] = getattr(metrics, name)
    snap["supersteps_detail"] = [
        dataclasses.asdict(step) for step in metrics.supersteps_detail
    ]
    return snap


def restore_metrics(snap: dict[str, Any], *, executor: str) -> RunMetrics:
    """Rebuild a :class:`RunMetrics` to continue accumulating from."""
    metrics = RunMetrics(
        platform=snap.get("platform", ""),
        algorithm=snap.get("algorithm", ""),
        graph=snap.get("graph", ""),
        executor=executor,
    )
    for name in (*_METRIC_COUNTERS, *_METRIC_FLOATS):
        if name in snap:
            setattr(metrics, name, snap[name])
    for step in snap.get("supersteps_detail", []):
        metrics.supersteps_detail.append(SuperstepMetrics(**step))
    return metrics


# -- config fingerprint --------------------------------------------------------


def graph_fingerprint(graph) -> str:
    """Hash of the graph structure: ids, lifespans, edge topology.

    One component of :func:`config_fingerprint`, also used on its own as
    the dataset identity in the serving tier's result-cache keys
    (`repro.serve`) — two graphs with the same fingerprint produce the
    same results for any deterministic program.
    """
    digest = hashlib.sha256()
    for v in graph.vertices():
        digest.update(repr((v.vid, v.lifespan.start, v.lifespan.end)).encode())
        for e in graph.out_edges(v.vid):
            digest.update(
                repr((e.dst, e.lifespan.start, e.lifespan.end)).encode()
            )
    return digest.hexdigest()


def config_fingerprint(engine) -> str:
    """Hash of everything a resumed run must agree on with the writer.

    Covers the program identity, the graph structure (ids, lifespans, edge
    topology), the simulated cluster shape and cost models, and every
    engine flag that steers the deterministic execution.  The *executor*
    and its process count are deliberately excluded — checkpoints are
    executor-portable (a serial checkpoint resumes under the parallel
    executor and vice versa).
    """
    graph = engine.graph
    cluster = engine.cluster
    payload = {
        "format": CHECKPOINT_FORMAT,
        "program": engine.program.name,
        "fixed_supersteps": engine.program.fixed_supersteps,
        "graph_digest": graph_fingerprint(graph),
        "num_vertices": graph.num_vertices,
        "num_edges": graph.num_edges,
        "num_workers": cluster.num_workers,
        # The fingerprint covers the actual vertex→worker assignment;
        # ``repr`` elided greedy's seed/slack and collided across
        # placements that shard state differently.
        "partitioner": partitioner_fingerprint(cluster.partitioner),
        "varint_encoding": cluster.varint_encoding,
        "model_network": cluster.model_network,
        "network": dataclasses.asdict(cluster.network),
        "compute_model": dataclasses.asdict(cluster.compute_model),
        "enable_warp_combiner": engine.enable_warp_combiner,
        "enable_receiver_combiner": engine.enable_receiver_combiner,
        "enable_dominated_elimination": engine.enable_dominated_elimination,
        "enable_warp_suppression": engine.enable_warp_suppression,
        "warp_suppression_threshold": engine.warp_suppression_threshold,
        "suppression_expansion_cap": engine.suppression_expansion_cap,
        "coalesce_states": engine.coalesce_states,
        "prepartition": engine.prepartition_by_vertex_properties,
    }
    blob = json.dumps(payload, sort_keys=True, default=repr).encode()
    return hashlib.sha256(blob).hexdigest()


# -- write / load --------------------------------------------------------------


def _step_dir_name(superstep: int) -> str:
    return f"step-{superstep:06d}"


def write_checkpoint(
    root: os.PathLike | str,
    *,
    superstep: int,
    snapshot: ExecutorSnapshot,
    aggregates: dict[str, Any],
    metrics: RunMetrics,
    config_hash: str,
    num_workers: int,
    worker_of: Callable[[Any], int],
    partitioner: str = "",
    exchange: str = "",
) -> CheckpointInfo:
    """Write one barrier's state under ``root`` atomically.

    States and pending messages are split per shard by ``worker_of`` (the
    cluster's vertex partitioning), one file per non-empty shard, then the
    staging directory is renamed into place so readers only ever see
    complete checkpoints.
    """
    t0 = time.perf_counter()
    root = Path(root)
    root.mkdir(parents=True, exist_ok=True)
    step_name = _step_dir_name(superstep)
    staging = root / f".staging-{step_name}"
    final = root / step_name
    if staging.exists():
        shutil.rmtree(staging)
    staging.mkdir()

    per_shard_states: dict[int, list[tuple[Any, PartitionedState]]] = {}
    for vid, state in snapshot.states.items():
        per_shard_states.setdefault(worker_of(vid), []).append((vid, state))
    per_shard_pending: dict[int, list[tuple[int, Any, IntervalMessage]]] = {}
    for entry in snapshot.pending:
        per_shard_pending.setdefault(worker_of(entry[1]), []).append(entry)

    total_bytes = 0
    shards_meta: dict[str, Any] = {}
    for shard in sorted(set(per_shard_states) | set(per_shard_pending)):
        states = per_shard_states.get(shard, [])
        pending = per_shard_pending.get(shard, [])
        blob = encode_shard(states, pending)
        fname = f"shard-{shard:05d}.bin"
        (staging / fname).write_bytes(blob)
        total_bytes += len(blob)
        shards_meta[str(shard)] = {
            "file": fname,
            "sha256": hashlib.sha256(blob).hexdigest(),
            "bytes": len(blob),
            "vertices": len(states),
            "pending": len(pending),
        }

    agg_blob = _encode_aggregates(aggregates)
    (staging / "aggregates.bin").write_bytes(agg_blob)
    total_bytes += len(agg_blob)

    manifest = {
        "format": CHECKPOINT_FORMAT,
        "superstep": superstep,
        "config_hash": config_hash,
        "partitioner": partitioner,
        "exchange": exchange,
        "algorithm": metrics.algorithm,
        "graph": metrics.graph,
        "num_workers": num_workers,
        "carried_reductions": snapshot.carried_reductions,
        "shards": shards_meta,
        "aggregates": {
            "file": "aggregates.bin",
            "sha256": hashlib.sha256(agg_blob).hexdigest(),
            "bytes": len(agg_blob),
        },
        "metrics": metrics_snapshot(metrics),
        "created_at": time.time(),
    }
    manifest_blob = json.dumps(manifest, indent=1, sort_keys=True).encode()
    (staging / "manifest.json").write_bytes(manifest_blob)
    total_bytes += len(manifest_blob)

    if final.exists():  # a recovery replay re-checkpointing the same step
        shutil.rmtree(final)
    os.replace(staging, final)
    return CheckpointInfo(
        path=final,
        superstep=superstep,
        bytes_written=total_bytes,
        seconds=time.perf_counter() - t0,
    )


def latest_checkpoint(root: os.PathLike | str) -> Optional[Path]:
    """The newest complete ``step-*`` directory under ``root``, if any."""
    root = Path(root)
    if not root.is_dir():
        return None
    best: Optional[tuple[int, Path]] = None
    for child in root.iterdir():
        match = _STEP_DIR.match(child.name)
        if match and (child / "manifest.json").is_file():
            step = int(match.group(1))
            if best is None or step > best[0]:
                best = (step, child)
    return best[1] if best else None


def clear_checkpoints(root: os.PathLike | str) -> int:
    """Remove stale ``step-*`` checkpoints (and staging leftovers) under
    ``root``; returns how many were removed.  Only directories matching the
    checkpoint naming are touched."""
    root = Path(root)
    if not root.is_dir():
        return 0
    removed = 0
    for child in root.iterdir():
        if _STEP_DIR.match(child.name) or child.name.startswith(".staging-step-"):
            shutil.rmtree(child)
            removed += 1
    return removed


def _verified_blob(path: Path, meta: dict[str, Any], what: str) -> bytes:
    try:
        blob = path.read_bytes()
    except OSError as exc:
        raise CheckpointError(f"cannot read {what} file {path}: {exc}") from exc
    digest = hashlib.sha256(blob).hexdigest()
    if digest != meta.get("sha256"):
        raise CheckpointError(
            f"{what} file {path.name} failed its checksum "
            f"(manifest {meta.get('sha256')!r}, actual {digest!r})"
        )
    return blob


def load_checkpoint(
    path: os.PathLike | str, *, coalesce: bool = True
) -> LoadedCheckpoint:
    """Read a checkpoint back, verifying format version and checksums.

    ``path`` may be a ``step-*`` directory or a checkpoint root (in which
    case the latest step is loaded).  Pending messages are re-merged
    across shards in shard order, stable-sorted by sender sequence — the
    exact delivery order a live barrier would have produced.
    """
    path = Path(path)
    if not (path / "manifest.json").is_file():
        latest = latest_checkpoint(path)
        if latest is None:
            raise CheckpointError(
                f"no checkpoint found at {path} (expected a step-* directory "
                "or a checkpoint root containing one)"
            )
        path = latest
    try:
        manifest = json.loads((path / "manifest.json").read_text(encoding="utf-8"))
    except (OSError, json.JSONDecodeError) as exc:
        raise CheckpointError(f"unreadable manifest in {path}: {exc}") from exc
    fmt = manifest.get("format")
    if fmt != CHECKPOINT_FORMAT:
        raise CheckpointError(
            f"checkpoint format {fmt!r} unsupported (this build reads format "
            f"{CHECKPOINT_FORMAT})"
        )

    states: dict[Any, PartitionedState] = {}
    pending: list[tuple[int, Any, IntervalMessage]] = []
    shards = manifest.get("shards", {})
    for shard_key in sorted(shards, key=int):
        meta = shards[shard_key]
        blob = _verified_blob(path / meta["file"], meta, f"shard {shard_key}")
        try:
            shard_states, shard_pending = decode_shard(blob, coalesce=coalesce)
        except (ValueError, IndexError) as exc:
            raise CheckpointError(
                f"corrupt shard file {meta['file']}: {exc}"
            ) from exc
        states.update(shard_states)
        pending.extend(shard_pending)
    pending.sort(key=lambda e: e[0])  # stable: per-shard order preserved

    agg_meta = manifest.get("aggregates", {})
    aggregates: dict[str, Any] = {}
    if agg_meta:
        blob = _verified_blob(path / agg_meta["file"], agg_meta, "aggregates")
        try:
            aggregates = _decode_aggregates(blob)
        except (ValueError, IndexError) as exc:
            raise CheckpointError(f"corrupt aggregates file: {exc}") from exc

    return LoadedCheckpoint(
        path=path,
        superstep=manifest["superstep"],
        config_hash=manifest.get("config_hash", ""),
        algorithm=manifest.get("algorithm", ""),
        graph=manifest.get("graph", ""),
        num_workers=manifest.get("num_workers", 0),
        states=states,
        pending=pending,
        carried_reductions=manifest.get("carried_reductions", 0),
        aggregates=aggregates,
        metrics=manifest.get("metrics", {}),
        partitioner=manifest.get("partitioner", ""),
        exchange=manifest.get("exchange", ""),
    )
