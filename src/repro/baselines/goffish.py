"""GoFFish-TS baseline (GOF) — paper Sec. VII-A3, after Simmhan et al.

Models a temporal graph as a sequence of snapshots.  An *outer* loop over
snapshots delivers temporal messages; an *inner* loop of supersteps runs
vertex-centric logic within one snapshot.  State from a prior snapshot must
be explicitly passed forward as temporal messages by the user logic — there
is no sharing of compute or messaging across snapshots, which is exactly
the cost the paper's comparison charges to this model.

(The original GoFFish is subgraph-centric within a snapshot; our inner loop
is vertex-centric.  The quantities the paper compares — per-snapshot
compute activations and temporal message counts, neither shared across
time — are preserved.)
"""

from __future__ import annotations

import time
from abc import ABC, abstractmethod
from dataclasses import dataclass, field
from typing import Any, Optional

from repro.graph.model import TemporalGraph
from repro.graph.snapshots import StaticEdge, snapshot_at
from repro.runtime.cluster import SimulatedCluster
from repro.runtime.encoding import payload_size, varint_size
from repro.runtime.metrics import RunMetrics


class GoffishContext:
    """A vertex's view at one snapshot of a GoFFish execution."""

    __slots__ = ("_engine", "_vid", "time", "value")

    def __init__(self, engine: "GoffishEngine", vid: Any, t: int):
        self._engine = engine
        self._vid = vid
        self.time = t
        self.value: Any = None

    @property
    def vertex_id(self) -> Any:
        return self._vid

    @property
    def superstep(self) -> int:
        """Inner (within-snapshot) superstep, 1-based."""
        return self._engine.inner_superstep

    @property
    def num_vertices(self) -> int:
        return self._engine.snapshot.num_vertices

    def out_edges(self) -> list[StaticEdge]:
        return self._engine.snapshot.out_edges(self._vid)

    def out_degree(self) -> int:
        return len(self.out_edges())

    def temporal_out_edges(self):
        """Out-edges alive at this snapshot, with their property values.

        Yields ``(temporal_edge, props_at_t)`` pairs; GoFFish user logic is
        stateful and may inspect edge lifespans (e.g. to message a future
        snapshot when an edge's departure window opens).
        """
        t = self.time
        for edge in self._engine.graph.out_edges(self._vid):
            if edge.lifespan.contains_point(t):
                yield edge, edge.properties.values_at(t)

    def send(self, dst_vid: Any, value: Any) -> None:
        """Message a vertex within the current snapshot (inner loop)."""
        self._engine.enqueue_inner(self._vid, dst_vid, value)

    def send_temporal(self, dst_vid: Any, target_time: int, value: Any) -> None:
        """Message a vertex at a *later* snapshot (outer loop)."""
        self._engine.enqueue_temporal(self._vid, dst_vid, target_time, value)

    def keep_alive(self) -> None:
        """Stay active at the next snapshot without messaging.

        Models GoFFish-TS's stateful snapshots: vertex state persists on
        disk between snapshots, so re-activating oneself costs no network
        message — but it does cost a compute call at every snapshot, which
        is exactly the "no compute sharing" overhead the paper charges.
        """
        self._engine.request_keep_alive(self._vid)


class GoffishProgram(ABC):
    """User logic for GoFFish: per-snapshot compute with temporal sends."""

    name: str = "goffish-program"

    #: When set, every alive vertex is active for this many inner supersteps
    #: in *every* snapshot (LCC = 4, TC = 3).  When ``None``, activation is
    #: message-driven and snapshot 0 activates everything once.
    inner_fixed_supersteps: Optional[int] = None

    def init(self, ctx: GoffishContext) -> None:
        """Seed the vertex's persistent value (first time it is seen)."""

    @abstractmethod
    def compute(self, ctx: GoffishContext, messages: list[Any]) -> None:
        """One inner superstep at snapshot ``ctx.time``."""


@dataclass
class GoffishResult:
    """Final persistent values plus per-snapshot observations."""

    values: dict[Any, Any] = field(default_factory=dict)
    #: ``observed[t][vid]`` — vertex value at the end of snapshot ``t``
    #: (only vertices active at ``t`` appear).
    observed: dict[int, dict[Any, Any]] = field(default_factory=dict)
    metrics: RunMetrics = field(default_factory=RunMetrics)

    def value_at(self, vid: Any, t: int, default: Any = None) -> Any:
        """Value after snapshot ``t``, carried forward from the last
        snapshot at which the vertex was active."""
        best = default
        for time_point in range(t + 1):
            if vid in self.observed.get(time_point, {}):
                best = self.observed[time_point][vid]
        return best


class GoffishEngine:
    """Outer snapshot loop + inner vertex-centric loop."""

    def __init__(
        self,
        graph: TemporalGraph,
        program: GoffishProgram,
        *,
        horizon: Optional[int] = None,
        cluster: Optional[SimulatedCluster] = None,
        graph_name: str = "",
        max_inner_supersteps: int = 10_000,
        direction: int = 1,
    ):
        self.graph = graph
        self.program = program
        self.horizon = horizon if horizon is not None else graph.time_horizon()
        self.cluster = cluster or SimulatedCluster()
        self.graph_name = graph_name
        self.max_inner_supersteps = max_inner_supersteps
        if direction not in (1, -1):
            raise ValueError("direction must be +1 (forward) or -1 (backward)")
        #: +1 iterates snapshots oldest→newest; -1 newest→oldest (needed by
        #: reverse-traversing algorithms such as Latest Departure).
        self.direction = direction
        self.snapshot = None
        self.inner_superstep = 0
        self._current_time = -1
        self._keep_alive: set[Any] = set()
        self._inner_sends: list[tuple[Any, Any, Any]] = []
        self._temporal: dict[int, dict[Any, list[Any]]] = {}
        self._metrics: Optional[RunMetrics] = None

    # -- messaging hooks -------------------------------------------------------

    def enqueue_inner(self, src: Any, dst: Any, value: Any) -> None:
        self._inner_sends.append((src, dst, value))

    def request_keep_alive(self, vid: Any) -> None:
        self._keep_alive.add(vid)

    def enqueue_temporal(self, src: Any, dst: Any, target_time: int, value: Any) -> None:
        if (target_time - self._current_time) * self.direction <= 0:
            raise ValueError("temporal messages must target a snapshot ahead in iteration order")
        if not (0 <= target_time < self.horizon):
            return  # beyond the graph's lifetime; silently dropped
        metrics = self._metrics
        assert metrics is not None
        size = 1 + varint_size(target_time) + payload_size(value)
        metrics.messages_sent += 1
        metrics.message_bytes += size
        if self.cluster.worker_of(src) == self.cluster.worker_of(dst):
            metrics.local_messages += 1
        else:
            metrics.remote_messages += 1
        self._temporal.setdefault(target_time, {}).setdefault(dst, []).append(value)

    # -- main loop ----------------------------------------------------------

    def run(self) -> GoffishResult:
        metrics = RunMetrics(
            platform="GoFFish", algorithm=self.program.name, graph=self.graph_name
        )
        self._metrics = metrics
        result = GoffishResult(metrics=metrics)
        contexts: dict[Any, GoffishContext] = {}
        initialised: set[Any] = set()

        t_run = time.perf_counter()
        times = range(self.horizon) if self.direction == 1 else range(self.horizon - 1, -1, -1)
        first_time = times[0] if self.horizon > 0 else None
        for t in times:
            self._current_time = t
            t_load = time.perf_counter()
            self.snapshot = snapshot_at(self.graph, t)
            metrics.load_time += time.perf_counter() - t_load

            temporal_inbox = self._temporal.pop(t, {})
            keep_alive = self._keep_alive
            self._keep_alive = set()
            fixed = self.program.inner_fixed_supersteps
            if fixed is not None:
                active = {vid: temporal_inbox.get(vid, []) for vid in self.snapshot.vertex_ids()}
            elif t == first_time:
                active = {vid: [] for vid in self.snapshot.vertex_ids()}
                for vid, msgs in temporal_inbox.items():
                    active.setdefault(vid, []).extend(msgs)
            else:
                active = {
                    vid: msgs for vid, msgs in temporal_inbox.items()
                    if self.snapshot.has_vertex(vid)
                }
                # Stateful vertices that asked to stay alive re-compute.
                for vid in keep_alive:
                    if self.snapshot.has_vertex(vid) and vid not in active:
                        active[vid] = []
                # Vertices first appearing at this snapshot (in iteration
                # order) run their first compute.
                for v in self.graph.vertices():
                    appears = (
                        v.lifespan.start == t
                        if self.direction == 1
                        else (min(v.lifespan.end, self.horizon) - 1 == t)
                    )
                    if appears and v.vid not in active:
                        active[v.vid] = []

            self.inner_superstep = 1
            touched: set[Any] = set()
            model = self.cluster.compute_model
            while active:
                if self.inner_superstep > self.max_inner_supersteps:
                    raise RuntimeError("inner loop exceeded max supersteps")
                t0 = time.perf_counter()
                worker_cost = [0.0] * self.cluster.num_workers
                for vid, msgs in active.items():
                    ctx = contexts.get(vid)
                    if ctx is None:
                        ctx = GoffishContext(self, vid, t)
                        contexts[vid] = ctx
                    ctx.time = t
                    if vid not in initialised:
                        self.program.init(ctx)
                        initialised.add(vid)
                    self.program.compute(ctx, msgs)
                    metrics.compute_calls += 1
                    worker_cost[self.cluster.worker_of(vid)] += (
                        model.per_compute_call_s + len(msgs) * model.per_message_scan_s
                    )
                    touched.add(vid)
                metrics.compute_plus_time += time.perf_counter() - t0
                step_compute = max(worker_cost, default=0.0)
                metrics.modeled_compute_time += step_compute
                metrics.modeled_makespan += step_compute

                # Inner barrier: deliver same-snapshot messages.
                next_active: dict[Any, list[Any]] = {}
                for src, dst, value in self._inner_sends:
                    size = 1 + payload_size(value)
                    metrics.messages_sent += 1
                    metrics.message_bytes += size
                    if self.cluster.worker_of(src) == self.cluster.worker_of(dst):
                        metrics.local_messages += 1
                    else:
                        metrics.remote_messages += 1
                    if self.snapshot.has_vertex(dst):
                        next_active.setdefault(dst, []).append(value)
                self._inner_sends = []
                metrics.supersteps += 1
                metrics.barrier_time += self.cluster.network.barrier_latency_s
                metrics.modeled_makespan += self.cluster.network.barrier_latency_s

                self.inner_superstep += 1
                if fixed is not None:
                    if self.inner_superstep > fixed:
                        break
                    active = {
                        vid: next_active.get(vid, []) for vid in self.snapshot.vertex_ids()
                    }
                else:
                    active = next_active

            for vid in touched:
                result.observed.setdefault(t, {})[vid] = contexts[vid].value

        metrics.makespan = time.perf_counter() - t_run
        # Fold modeled network cost for all counted messages.
        metrics.messaging_time = self.cluster.network.transfer_time(
            metrics.message_bytes, metrics.messages_sent, self.cluster.num_workers
        )
        metrics.modeled_makespan += metrics.messaging_time
        result.values = {vid: ctx.value for vid, ctx in contexts.items()}
        return result
