"""Transformed-graph baseline (TGB) — paper Sec. VII-A3, after Wu et al.

The interval graph is unrolled into an algorithm-specific time-expanded
graph (``repro.graph.transform``): vertex replicas per active time-point,
application edges carrying the algorithm's weight, and chain edges moving
state between replicas of one vertex.  Vertex-centric programs then run on
this much larger static graph.

Chain-edge traffic and the compute calls it triggers are charged as
*system* messages/calls so the comparison can separate application work
from replica bookkeeping, as the paper does ("TGB and GoFFish have
identical number of messages and compute calls, if the replica vertex state
transfer messages and calls for TGB are ignored").
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any, Callable, Optional

from repro.graph.model import TemporalGraph
from repro.graph.snapshots import StaticGraph
from repro.graph.transform import CHAIN, build_transformed_graph
from repro.runtime.cluster import SimulatedCluster
from repro.runtime.metrics import RunMetrics

from .vcm import VertexCentricEngine, VertexProgram


@dataclass
class TgbResult:
    """Replica values keyed ``(vid, t)`` plus helpers to project them."""

    replica_values: dict[tuple[Any, int], Any] = field(default_factory=dict)
    metrics: RunMetrics = field(default_factory=RunMetrics)
    transformed: Optional[StaticGraph] = None

    def pointwise(self, vid: Any, t: int, default: Any = None) -> Any:
        """Value at ``(vid, t)``, forward-filled from the latest replica at
        or before ``t`` (chain edges make replica values monotone in t)."""
        best_time = None
        best_value = default
        for (rvid, rt), value in self.replica_values.items():
            if rvid == vid and rt <= t and (best_time is None or rt > best_time):
                best_time = rt
                best_value = value
        return best_value

    def replicas_of(self, vid: Any) -> list[tuple[int, Any]]:
        out = [(t, v) for (rvid, t), v in self.replica_values.items() if rvid == vid]
        out.sort()
        return out


def run_tgb(
    graph: TemporalGraph,
    program: VertexProgram,
    *,
    transformed: Optional[StaticGraph] = None,
    horizon: Optional[int] = None,
    cluster: Optional[SimulatedCluster] = None,
    graph_name: str = "",
    travel_time_label: str = "travel-time",
    cost_label: Optional[str] = "travel-cost",
) -> TgbResult:
    """Transform (unless a pre-built graph is supplied) and execute."""
    t_load = time.perf_counter()
    if transformed is None:
        transformed = build_transformed_graph(
            graph,
            travel_time_label=travel_time_label,
            cost_label=cost_label,
            horizon=horizon,
        )
    load = time.perf_counter() - t_load
    engine = VertexCentricEngine(
        transformed, program, cluster=cluster or SimulatedCluster(),
        platform="TGB", graph_name=graph_name,
    )
    run = engine.run()
    run.metrics.load_time += load
    return TgbResult(
        replica_values=dict(run.values), metrics=run.metrics, transformed=transformed
    )


class ChainForwardingProgram(VertexProgram):
    """Base class for TGB programs: uniform replica state forwarding.

    Subclasses implement ``absorb(ctx, messages) -> bool`` (fold messages
    into the replica value; return True when the value improved) and
    ``emit(ctx, edge) -> value or None`` (application-edge message).  This
    base class forwards improved values along chain edges as system
    messages, the TGB bookkeeping the paper charges separately.
    """

    def absorb(self, ctx, messages: list[Any]) -> bool:
        raise NotImplementedError

    def emit(self, ctx, edge) -> Any:
        raise NotImplementedError

    def compute(self, ctx, messages: list[Any]) -> None:
        improved = self.absorb(ctx, messages)
        if not improved:
            return
        for edge in ctx.out_edges():
            if edge.get(CHAIN):
                ctx.send(edge.dst, ctx.value, system=True)
            else:
                value = self.emit(ctx, edge)
                if value is not None:
                    ctx.send(edge.dst, value)
