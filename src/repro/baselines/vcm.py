"""A Pregel-style vertex-centric engine (the baselines' substrate).

All four comparison platforms in the paper are implemented over Apache
Giraph's vertex-centric model "so that the primitives are the key
distinction and not the programming language or engine" (Sec. VII-A3).
This module is our Giraph stand-in: plain BSP over a
:class:`~repro.graph.snapshots.StaticGraph`, with per-value messages (no
intervals), implicit vote-to-halt, combiners, aggregators and a
MasterCompute hook.

The messaging path is factored through :meth:`VertexCentricEngine._flush_sends`
so that Chlonos can interpose its adjacent-snapshot message sharing.
"""

from __future__ import annotations

import time
from abc import ABC, abstractmethod
from dataclasses import dataclass, field
from typing import Any, Callable, Optional

from repro.core.combiner import MessageCombiner
from repro.graph.snapshots import StaticEdge, StaticGraph
from repro.runtime.cluster import SimulatedCluster
from repro.runtime.encoding import payload_size
from repro.runtime.metrics import RunMetrics


class VcmContext:
    """A vertex's view during a vertex-centric ``compute`` call."""

    __slots__ = ("_vid", "_engine", "value")

    def __init__(self, vid: Any, engine: "VertexCentricEngine"):
        self._vid = vid
        self._engine = engine
        #: The vertex's mutable value; reassign to update.
        self.value: Any = None

    @property
    def vertex_id(self) -> Any:
        return self._vid

    @property
    def superstep(self) -> int:
        return self._engine.superstep

    @property
    def num_vertices(self) -> int:
        return self._engine.graph.num_vertices

    def out_edges(self) -> list[StaticEdge]:
        return self._engine.graph.out_edges(self._vid)

    def out_degree(self) -> int:
        return len(self._engine.graph.out_edges(self._vid))

    def vertex_props(self) -> dict[str, Any]:
        return self._engine.graph.vertex_props(self._vid)

    def send(self, dst_vid: Any, value: Any, *, system: bool = False) -> None:
        """Send ``value`` to any vertex, delivered next superstep."""
        self._engine.enqueue_send(self._vid, dst_vid, value, system)

    def send_to_neighbors(self, value: Any) -> None:
        for edge in self.out_edges():
            self.send(edge.dst, value)

    def aggregate(self, name: str, value: Any) -> None:
        self._engine.contribute_aggregate(name, value)

    def get_aggregate(self, name: str, default: Any = None) -> Any:
        return self._engine.read_aggregate(name, default)

    def vote_to_halt(self) -> None:
        """No-op: halting is implicit (message-driven), as in ICM."""


class VcmMaster:
    """MasterCompute view between supersteps."""

    def __init__(self, superstep: int, aggregates: dict[str, Any], num_active: int):
        self.superstep = superstep
        self._aggregates = aggregates
        self.num_active_vertices = num_active
        self._halt = False
        self._overrides: dict[str, Any] = {}

    def get_aggregate(self, name: str, default: Any = None) -> Any:
        return self._aggregates.get(name, default)

    def set_aggregate(self, name: str, value: Any) -> None:
        self._overrides[name] = value

    def halt(self) -> None:
        self._halt = True


class VertexProgram(ABC):
    """User logic for the vertex-centric baselines."""

    name: str = "vcm-program"
    combiner: Optional[MessageCombiner] = None
    fixed_supersteps: Optional[int] = None

    def init(self, ctx: VcmContext) -> None:
        """Seed the vertex value before superstep 1."""

    @abstractmethod
    def compute(self, ctx: VcmContext, messages: list[Any]) -> None:
        """One superstep of vertex logic; send messages via ``ctx``."""

    def aggregators(self) -> dict[str, Callable[[Any, Any], Any]]:
        return {}

    def master_compute(self, master: VcmMaster) -> None:
        """Between-superstep hook."""


@dataclass
class VcmResult:
    """Final vertex values plus run metrics."""

    values: dict[Any, Any]
    metrics: RunMetrics
    aggregates: dict[str, Any] = field(default_factory=dict)


class VertexCentricEngine:
    """BSP executor for :class:`VertexProgram` over a static graph."""

    def __init__(
        self,
        graph: StaticGraph,
        program: VertexProgram,
        *,
        cluster: Optional[SimulatedCluster] = None,
        platform: str = "VCM",
        graph_name: str = "",
        max_supersteps: int = 100_000,
    ):
        self.graph = graph
        self.program = program
        self.cluster = cluster or SimulatedCluster()
        self.platform = platform
        self.graph_name = graph_name
        self.max_supersteps = max_supersteps
        self.superstep = 0
        self._aggregates: dict[str, Any] = {}
        self._next_aggregates: dict[str, Any] = {}
        self._aggregator_fns = program.aggregators()
        self._metrics: Optional[RunMetrics] = None
        self._sends: list[tuple[Any, Any, Any, bool]] = []

    # -- aggregator plumbing -----------------------------------------------

    def contribute_aggregate(self, name: str, value: Any) -> None:
        fn = self._aggregator_fns.get(name)
        if fn is None:
            raise KeyError(f"no aggregator registered under {name!r}")
        if name in self._next_aggregates:
            self._next_aggregates[name] = fn(self._next_aggregates[name], value)
        else:
            self._next_aggregates[name] = value

    def read_aggregate(self, name: str, default: Any = None) -> Any:
        return self._aggregates.get(name, default)

    # -- messaging -----------------------------------------------------------

    def enqueue_send(self, src: Any, dst: Any, value: Any, system: bool) -> None:
        self._sends.append((src, dst, value, system))

    def _flush_sends(self, metrics: RunMetrics) -> None:
        """Charge and enqueue this superstep's messages.

        Subclasses (Chlonos) override to share messages across adjacent
        snapshot replicas before charging.

        Combining happens receiver-side (mirroring GRAPHITE, where warp's
        combiner runs after receipt), so the *sent* message counts stay
        comparable across platforms — the quantity Sec. VII-B1 matches.
        """
        for src, dst, value, system in self._sends:
            self.cluster.send(
                src, dst, value, metrics, system=system, size=1 + payload_size(value)
            )
        self._sends = []

    # -- main loop -------------------------------------------------------------

    def run(self) -> VcmResult:
        metrics = RunMetrics(
            platform=self.platform, algorithm=self.program.name, graph=self.graph_name
        )
        self._metrics = metrics
        self.cluster.reset()

        t_load = time.perf_counter()
        contexts: dict[Any, VcmContext] = {}
        for vid in self.graph.vertex_ids():
            ctx = VcmContext(vid, self)
            contexts[vid] = ctx
        metrics.load_time = time.perf_counter() - t_load

        fixed = self.program.fixed_supersteps
        t_run = time.perf_counter()
        self.superstep = 1
        while True:
            if self.superstep > self.max_supersteps:
                raise RuntimeError(
                    f"{self.program.name} exceeded {self.max_supersteps} supersteps"
                )
            if fixed is not None and self.superstep > fixed:
                break
            if fixed is None and self.superstep > 1 and not self.cluster.has_pending_messages():
                break

            inboxes = self.cluster.begin_superstep(self.superstep)
            if self.superstep == 1 or fixed is not None:
                active = list(contexts)
            else:
                active = [vid for vid in inboxes if vid in contexts]

            calls_before = metrics.compute_calls
            model = self.cluster.compute_model
            t0 = time.perf_counter()
            for vid in active:
                ctx = contexts[vid]
                if self.superstep == 1:
                    self.program.init(ctx)
                messages = inboxes.get(vid, [])
                cost = model.per_compute_call_s + len(messages) * model.per_message_scan_s
                combiner = self.program.combiner
                if combiner is not None and len(messages) > 1:
                    folded = messages[0]
                    for item in messages[1:]:
                        folded = combiner(folded, item)
                    metrics.combiner_reductions += len(messages) - 1
                    messages = [folded]
                self.program.compute(ctx, messages)
                metrics.compute_calls += 1
                self.cluster.add_compute_time(vid, cost)
            self._flush_sends(metrics)
            compute_wall = time.perf_counter() - t0
            metrics.compute_plus_time += compute_wall

            step = self.cluster.end_superstep(metrics)
            step.compute_time = compute_wall
            step.compute_calls = metrics.compute_calls - calls_before
            metrics.supersteps += 1

            self._aggregates = dict(self._next_aggregates)
            self._next_aggregates = {}
            master = VcmMaster(self.superstep, dict(self._aggregates), len(active))
            self.program.master_compute(master)
            self._aggregates.update(master._overrides)
            if master._halt:
                break
            self.superstep += 1

        metrics.makespan = time.perf_counter() - t_run
        values = {vid: ctx.value for vid, ctx in contexts.items()}
        return VcmResult(values=values, metrics=metrics, aggregates=dict(self._aggregates))


