"""Chlonos — our clone of Chronos (Han et al., EuroSys 2014), per Sec. VII-A3.

Chlonos enhances MSB by loading a *batch* of snapshots into one in-memory
layout and sharing messages that span multiple adjacent snapshots: when
compute pushes duplicate messages to adjacent time-points of a sink vertex,
they are replaced by one interval message, saving network time and memory.
The compute call and state remain separate for vertices in each snapshot —
Chronos shares messaging but never user-logic execution, which is exactly
the gap ICM's warp closes.

Batches are processed sequentially; the batch size models how many
snapshots fit in distributed memory (the paper's Twitter run fits 6).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any, Callable, Optional

from repro.core.interval import Interval
from repro.graph.model import TemporalGraph
from repro.graph.snapshots import StaticGraph, snapshot_at
from repro.runtime.cluster import SimulatedCluster
from repro.runtime.encoding import interval_size, payload_size
from repro.runtime.metrics import RunMetrics

from .vcm import VcmContext, VertexCentricEngine, VertexProgram


@dataclass
class ChlonosResult:
    """Per-snapshot vertex values: ``values[t][vid]``."""

    values: dict[int, dict[Any, Any]] = field(default_factory=dict)
    metrics: RunMetrics = field(default_factory=RunMetrics)
    num_batches: int = 0

    def value_at(self, vid: Any, t: int, default: Any = None) -> Any:
        return self.values.get(t, {}).get(vid, default)


class _ReplicaContext:
    """Adapter presenting a replica ``(vid, t)`` as a plain snapshot vertex.

    Per-snapshot programs see their logical vertex id and snapshot-local
    vertex count, while messages flow between replica ids opaquely (edges
    already reference replica destinations).
    """

    __slots__ = ("_inner", "_vid", "_time", "_snapshot_sizes")

    def __init__(self, inner: VcmContext, vid: Any, t: int, snapshot_sizes: dict[int, int]):
        self._inner = inner
        self._vid = vid
        self._time = t
        self._snapshot_sizes = snapshot_sizes

    @property
    def vertex_id(self) -> Any:
        return self._vid

    @property
    def time(self) -> int:
        return self._time

    @property
    def superstep(self) -> int:
        return self._inner.superstep

    @property
    def num_vertices(self) -> int:
        return self._snapshot_sizes[self._time]

    @property
    def value(self) -> Any:
        return self._inner.value

    @value.setter
    def value(self, new: Any) -> None:
        self._inner.value = new

    def out_edges(self):
        return self._inner.out_edges()

    def out_degree(self) -> int:
        return self._inner.out_degree()

    def vertex_props(self) -> dict[str, Any]:
        return self._inner.vertex_props()

    def send(self, dst: Any, value: Any, *, system: bool = False) -> None:
        self._inner.send(dst, value, system=system)

    def send_to_neighbors(self, value: Any) -> None:
        self._inner.send_to_neighbors(value)

    def aggregate(self, name: str, value: Any) -> None:
        self._inner.aggregate(name, value)

    def get_aggregate(self, name: str, default: Any = None) -> Any:
        return self._inner.get_aggregate(name, default)

    def vote_to_halt(self) -> None:
        self._inner.vote_to_halt()


class _BatchedProgram(VertexProgram):
    """Dispatch replica computation to per-snapshot program instances."""

    def __init__(
        self,
        program_factory: Callable[[int], VertexProgram],
        times: list[int],
        snapshot_sizes: dict[int, int],
    ):
        self._programs = {t: program_factory(t) for t in times}
        self._snapshot_sizes = snapshot_sizes
        template = self._programs[times[0]]
        self.name = template.name
        self.combiner = template.combiner
        self.fixed_supersteps = template.fixed_supersteps
        self._template = template

    def init(self, ctx: VcmContext) -> None:
        vid, t = ctx.vertex_id
        self._programs[t].init(_ReplicaContext(ctx, vid, t, self._snapshot_sizes))

    def compute(self, ctx: VcmContext, messages: list[Any]) -> None:
        vid, t = ctx.vertex_id
        self._programs[t].compute(_ReplicaContext(ctx, vid, t, self._snapshot_sizes), messages)

    def aggregators(self):
        return self._template.aggregators()

    def master_compute(self, master) -> None:
        self._template.master_compute(master)


class ChlonosEngine(VertexCentricEngine):
    """VCM engine with Chronos-style adjacent-snapshot message sharing."""

    def _flush_sends(self, metrics: RunMetrics) -> None:
        # Group (logical src, logical dst, value) and merge runs of adjacent
        # snapshot times into one interval message for charging purposes;
        # delivery still expands to each replica (an in-memory operation).
        ordered = sorted(
            range(len(self._sends)),
            key=lambda i: (
                repr(self._sends[i][0][0]),
                repr(self._sends[i][1][0]),
                self._sends[i][1][1],
            ),
        )
        i = 0
        while i < len(ordered):
            src, dst, value, system = self._sends[ordered[i]]
            run_end = i + 1
            while run_end < len(ordered):
                nsrc, ndst, nvalue, _ = self._sends[ordered[run_end]]
                contiguous = (
                    nsrc[0] == src[0]
                    and ndst[0] == dst[0]
                    and ndst[1] == self._sends[ordered[run_end - 1]][1][1] + 1
                    and _safe_eq(nvalue, value)
                )
                if not contiguous:
                    break
                run_end += 1
            t_lo = dst[1]
            t_hi = self._sends[ordered[run_end - 1]][1][1] + 1
            size = interval_size(Interval(t_lo, t_hi)) + payload_size(value)
            # One charged message covering the run; replicas each receive it.
            self.cluster.send(src, dst, value, metrics, system=system, size=size)
            for j in range(i + 1, run_end):
                _, rdst, rvalue, _ = self._sends[ordered[j]]
                self.cluster._pending.setdefault(rdst, []).append(rvalue)
                metrics.shared_messages += 1
            i = run_end
        self._sends = []


def _safe_eq(a: Any, b: Any) -> bool:
    try:
        return bool(a == b)
    except Exception:
        return False


def run_chlonos(
    graph: TemporalGraph,
    program_factory: Callable[[int], VertexProgram],
    *,
    batch_size: Optional[int] = None,
    horizon: Optional[int] = None,
    cluster: Optional[SimulatedCluster] = None,
    graph_name: str = "",
) -> ChlonosResult:
    """Run batched multi-snapshot execution with message sharing.

    ``batch_size=None`` fits all snapshots in one batch (unbounded memory),
    matching the paper's small graphs; pass a smaller value to model memory
    pressure (Twitter fits 6 snapshots per batch in the paper).
    """
    if horizon is None:
        horizon = graph.time_horizon()
    if batch_size is None:
        batch_size = horizon
    cluster = cluster or SimulatedCluster()
    result = ChlonosResult()
    name = ""
    for batch_start in range(0, horizon, batch_size):
        times = list(range(batch_start, min(batch_start + batch_size, horizon)))
        t_load = time.perf_counter()
        batched, sizes = _build_batch_graph(graph, times)
        load = time.perf_counter() - t_load
        program = _BatchedProgram(program_factory, times, sizes)
        name = name or program.name
        engine = ChlonosEngine(
            batched, program, cluster=cluster, platform="Chlonos", graph_name=graph_name
        )
        run = engine.run()
        run.metrics.load_time += load
        for (vid, t), value in run.values.items():
            result.values.setdefault(t, {})[vid] = value
        result.metrics.merge(run.metrics)
        result.num_batches += 1
    result.metrics.platform = "Chlonos"
    result.metrics.algorithm = name
    result.metrics.graph = graph_name
    return result


def _build_batch_graph(
    graph: TemporalGraph, times: list[int]
) -> tuple[StaticGraph, dict[int, int]]:
    """Vectorise a batch of snapshots into one replica graph."""
    batched = StaticGraph()
    sizes: dict[int, int] = {}
    for t in times:
        snap = snapshot_at(graph, t)
        sizes[t] = snap.num_vertices
        for vid in snap.vertex_ids():
            batched.add_vertex((vid, t), snap.vertex_props(vid))
        for edge in snap.edges():
            batched.add_edge((edge.src, t), (edge.dst, t), (edge.eid, t), edge.props)
    return batched, sizes
