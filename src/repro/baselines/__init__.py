"""The four baseline platforms of the paper's evaluation (Sec. VII-A3)."""

from .chlonos import ChlonosEngine, ChlonosResult, run_chlonos
from .goffish import GoffishContext, GoffishEngine, GoffishProgram, GoffishResult
from .msb import MultiSnapshotResult, run_msb
from .tgb import ChainForwardingProgram, TgbResult, run_tgb
from .vcm import (
    VcmContext,
    VcmMaster,
    VcmResult,
    VertexCentricEngine,
    VertexProgram,
)

__all__ = [
    "VertexProgram",
    "VertexCentricEngine",
    "VcmContext",
    "VcmMaster",
    "VcmResult",
    "run_msb",
    "MultiSnapshotResult",
    "run_chlonos",
    "ChlonosEngine",
    "ChlonosResult",
    "run_tgb",
    "TgbResult",
    "ChainForwardingProgram",
    "GoffishEngine",
    "GoffishProgram",
    "GoffishContext",
    "GoffishResult",
]
