"""Multi-snapshot baseline (MSB) — paper Sec. VII-A3.

Loads and executes each snapshot independently with vertex-centric logic.
This is the canonical TI baseline: correct for snapshot-reducible
algorithms, but with no sharing of compute or messaging across time-points.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any, Callable, Optional

from repro.graph.model import TemporalGraph
from repro.graph.snapshots import snapshot_at
from repro.runtime.cluster import SimulatedCluster
from repro.runtime.metrics import RunMetrics

from .vcm import VertexCentricEngine, VertexProgram


@dataclass
class MultiSnapshotResult:
    """Per-snapshot vertex values: ``values[t][vid]``."""

    values: dict[int, dict[Any, Any]] = field(default_factory=dict)
    metrics: RunMetrics = field(default_factory=RunMetrics)

    def value_at(self, vid: Any, t: int, default: Any = None) -> Any:
        return self.values.get(t, {}).get(vid, default)


def run_msb(
    graph: TemporalGraph,
    program_factory: Callable[[int], VertexProgram],
    *,
    horizon: Optional[int] = None,
    cluster: Optional[SimulatedCluster] = None,
    graph_name: str = "",
    platform: str = "MSB",
) -> MultiSnapshotResult:
    """Run ``program_factory(t)`` independently on every snapshot.

    Snapshot materialisation time is charged to ``load_time`` (the paper
    reports load separately from makespan, accumulating across snapshots
    for MSB).
    """
    if horizon is None:
        horizon = graph.time_horizon()
    cluster = cluster or SimulatedCluster()
    result = MultiSnapshotResult()
    first_program_name = ""
    for t in range(horizon):
        t_load = time.perf_counter()
        snap = snapshot_at(graph, t)
        load = time.perf_counter() - t_load
        program = program_factory(t)
        first_program_name = first_program_name or program.name
        engine = VertexCentricEngine(
            snap, program, cluster=cluster, platform=platform, graph_name=graph_name
        )
        run = engine.run()
        run.metrics.load_time += load
        result.values[t] = run.values
        result.metrics.merge(run.metrics)
    result.metrics.platform = platform
    result.metrics.algorithm = first_program_name
    result.metrics.graph = graph_name
    return result
