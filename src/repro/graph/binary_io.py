"""Compact binary storage for temporal graphs (paper Sec. VIII).

The paper's future work includes exploring *storage strategies* for
temporal property graphs.  This module provides a varint-based binary
format that reuses the wire codec of ``repro.runtime.encoding``: intervals
are stored with the same unit/∞ flag tricks that shrink messages by
59–78%, vertex ids are interned into a string table, and property labels
are dictionary-encoded.

Layout::

    magic  b"ITGR" | version varint
    vertex-id table:   count, then len+utf8 per id
    label table:       count, then len+utf8 per label
    vertices:          count, then per vertex: id-ref, interval,
                       prop-count × (label-ref, interval, payload)
    edges:             count, then per edge: len+utf8 eid, src-ref,
                       dst-ref, interval, prop-count × (...)

The format typically lands at a fraction of the text format's size; the
exact ratio is asserted in the test-suite and reported by the storage
ablation bench.
"""

from __future__ import annotations

import os
from pathlib import Path
from typing import Any, BinaryIO, Union

from repro.core.interval import Interval
from repro.runtime.encoding import (
    decode_interval,
    decode_payload,
    decode_varint,
    encode_interval,
    encode_payload,
    encode_varint,
)

from .model import TemporalEdge, TemporalGraph, TemporalVertex

MAGIC = b"ITGR"
VERSION = 1


def _atomic_write_bytes(payload: bytes, target: Path) -> None:
    """Stage, fsync, then atomically rename into place.

    The same staging discipline checkpoints use: a crash mid-dump leaves
    either the old file or the new one, never a truncated hybrid — which
    matters doubly for the compact format, whose files get mmap'd.
    """
    staging = target.with_name(f"{target.name}.staging.{os.getpid()}")
    try:
        with open(staging, "wb") as fh:
            fh.write(payload)
            fh.flush()
            os.fsync(fh.fileno())
        os.replace(staging, target)
    finally:
        if staging.exists():
            staging.unlink()


def dump_graph_binary(graph: TemporalGraph, target: Union[str, Path, BinaryIO]) -> int:
    """Write the graph; returns the number of bytes written.

    Path targets are written via a staged fsync + atomic rename, so a
    crashed dump can never leave a truncated graph file behind.
    """
    payload = _encode_graph(graph)
    if isinstance(target, (str, Path)):
        _atomic_write_bytes(payload, Path(target))
    else:
        target.write(payload)
    return len(payload)


def load_graph_binary(source: Union[str, Path, BinaryIO]) -> TemporalGraph:
    """Read a graph previously written by :func:`dump_graph_binary`."""
    if isinstance(source, (str, Path)):
        with open(source, "rb") as fh:
            raw = fh.read()
    else:
        raw = source.read()
    return _decode_graph(raw)


# -- encoding -----------------------------------------------------------------


def _encode_str(out: bytearray, text: str) -> None:
    raw = text.encode("utf-8")
    out += encode_varint(len(raw))
    out += raw


def _encode_graph(graph: TemporalGraph) -> bytes:
    out = bytearray(MAGIC)
    out += encode_varint(VERSION)

    vertices = sorted(graph.vertices(), key=lambda v: str(v.vid))
    vid_index = {v.vid: i for i, v in enumerate(vertices)}
    labels = sorted({
        label
        for owner in (*vertices, *graph.edges())
        for label in owner.properties
    })
    label_index = {label: i for i, label in enumerate(labels)}

    out += encode_varint(len(vertices))
    for v in vertices:
        _encode_str(out, str(v.vid))
    out += encode_varint(len(labels))
    for label in labels:
        _encode_str(out, label)

    out += encode_varint(len(vertices))
    for v in vertices:
        out += encode_varint(vid_index[v.vid])
        out += encode_interval(v.lifespan)
        _encode_properties(out, v, label_index)

    edges = sorted(graph.edges(), key=lambda e: str(e.eid))
    out += encode_varint(len(edges))
    for e in edges:
        _encode_str(out, str(e.eid))
        out += encode_varint(vid_index[e.src])
        out += encode_varint(vid_index[e.dst])
        out += encode_interval(e.lifespan)
        _encode_properties(out, e, label_index)
    return bytes(out)


def _encode_properties(out: bytearray, owner, label_index: dict[str, int]) -> None:
    entries: list[tuple[int, Interval, Any]] = []
    for label in owner.properties:
        for iv, value in owner.properties.timeline(label):
            entries.append((label_index[label], iv, value))
    out += encode_varint(len(entries))
    for label_ref, iv, value in entries:
        out += encode_varint(label_ref)
        out += encode_interval(iv)
        out += encode_payload(value)


# -- decoding ----------------------------------------------------------------


def _decode_str(raw: bytes, offset: int) -> tuple[str, int]:
    length, offset = decode_varint(raw, offset)
    return raw[offset : offset + length].decode("utf-8"), offset + length


def _decode_graph(raw: bytes) -> TemporalGraph:
    if raw[:4] != MAGIC:
        raise ValueError("not an ITGR binary temporal graph")
    offset = 4
    version, offset = decode_varint(raw, offset)
    if version != VERSION:
        hint = (
            " (a version-2 compact graph; open it with api.load_graph)"
            if version == 2 else ""
        )
        raise ValueError(f"unsupported ITGR version {version}{hint}")

    n_vids, offset = decode_varint(raw, offset)
    vids: list[str] = []
    for _ in range(n_vids):
        vid, offset = _decode_str(raw, offset)
        vids.append(vid)
    n_labels, offset = decode_varint(raw, offset)
    labels: list[str] = []
    for _ in range(n_labels):
        label, offset = _decode_str(raw, offset)
        labels.append(label)

    graph = TemporalGraph()
    n_vertices, offset = decode_varint(raw, offset)
    for _ in range(n_vertices):
        ref, offset = decode_varint(raw, offset)
        lifespan, offset = decode_interval(raw, offset)
        vertex = TemporalVertex(vids[ref], lifespan)
        offset = _decode_properties(raw, offset, vertex, labels)
        graph._add_vertex(vertex)

    n_edges, offset = decode_varint(raw, offset)
    for _ in range(n_edges):
        eid, offset = _decode_str(raw, offset)
        src_ref, offset = decode_varint(raw, offset)
        dst_ref, offset = decode_varint(raw, offset)
        lifespan, offset = decode_interval(raw, offset)
        edge = TemporalEdge(eid, vids[src_ref], vids[dst_ref], lifespan)
        offset = _decode_properties(raw, offset, edge, labels)
        graph._add_edge(edge)

    if offset != len(raw):
        raise ValueError("trailing bytes after graph payload")
    graph.validate()
    return graph


def _decode_properties(raw: bytes, offset: int, owner, labels: list[str]) -> int:
    count, offset = decode_varint(raw, offset)
    for _ in range(count):
        label_ref, offset = decode_varint(raw, offset)
        iv, offset = decode_interval(raw, offset)
        value, offset = decode_payload(raw, offset)
        owner.properties.add(labels[label_ref], iv, value)
    return offset
