"""Interval-valued property timelines (paper Def. 1, sets ``A_V``/``A_E``).

A property label maps to a *timeline*: a set of ``(interval, value)`` pairs
whose intervals never overlap ("a label may have distinct values for
non-overlapping intervals during the lifespan of its vertex (or edge)").
Unlike a :class:`~repro.core.state.PartitionedState`, a timeline need not
cover the whole lifespan — time-points without a value simply have none.
"""

from __future__ import annotations

from bisect import bisect_right
from typing import Any, Iterator, Optional

from repro.core.interval import Interval


class PropertyTimeline:
    """Sorted, non-overlapping ``(interval, value)`` pairs for one label."""

    __slots__ = ("_starts", "_entries")

    def __init__(self) -> None:
        self._starts: list[int] = []
        self._entries: list[tuple[Interval, Any]] = []

    def add(self, interval: Interval, value: Any) -> None:
        """Insert a value for an interval.

        Raises
        ------
        ValueError
            If the interval overlaps an existing entry (Def. 1 forbids
            overlapping values for one label).
        """
        idx = bisect_right(self._starts, interval.start)
        if idx > 0 and self._entries[idx - 1][0].overlaps(interval):
            raise ValueError(
                f"property interval {interval} overlaps {self._entries[idx - 1][0]}"
            )
        if idx < len(self._entries) and self._entries[idx][0].overlaps(interval):
            raise ValueError(
                f"property interval {interval} overlaps {self._entries[idx][0]}"
            )
        self._starts.insert(idx, interval.start)
        self._entries.insert(idx, (interval, value))

    def value_at(self, t: int) -> Optional[Any]:
        """Value at time-point ``t``, or ``None`` when no entry covers it."""
        idx = bisect_right(self._starts, t) - 1
        if idx >= 0 and self._entries[idx][0].contains_point(t):
            return self._entries[idx][1]
        return None

    def pieces(self, window: Interval) -> list[tuple[Interval, Any]]:
        """Entries overlapping ``window``, clipped to it, in time order."""
        out: list[tuple[Interval, Any]] = []
        idx = bisect_right(self._starts, window.start) - 1
        if idx < 0:
            idx = 0
        while idx < len(self._entries):
            iv, val = self._entries[idx]
            if iv.start >= window.end:
                break
            common = iv.intersect(window)
            if common is not None:
                out.append((common, val))
            idx += 1
        return out

    def boundaries(self) -> list[int]:
        """All start/end points of entries, sorted and de-duplicated."""
        bounds: set[int] = set()
        for iv, _ in self._entries:
            bounds.add(iv.start)
            bounds.add(iv.end)
        return sorted(bounds)

    def entries(self) -> list[tuple[Interval, Any]]:
        return list(self._entries)

    def span(self) -> Optional[Interval]:
        """Hull from first start to last end, or ``None`` when empty."""
        if not self._entries:
            return None
        return Interval(self._entries[0][0].start, max(iv.end for iv, _ in self._entries))

    def total_covered(self) -> int:
        """Cumulative number of time-points with a value."""
        return sum(iv.length for iv, _ in self._entries)

    def __len__(self) -> int:
        return len(self._entries)

    def __iter__(self) -> Iterator[tuple[Interval, Any]]:
        return iter(self._entries)

    def __repr__(self) -> str:
        inner = ", ".join(f"{iv}={v!r}" for iv, v in self._entries)
        return f"PropertyTimeline({inner})"


class PropertySet:
    """Label → timeline mapping attached to a vertex or an edge."""

    __slots__ = ("_timelines",)

    def __init__(self) -> None:
        self._timelines: dict[str, PropertyTimeline] = {}

    def add(self, label: str, interval: Interval, value: Any) -> None:
        self._timelines.setdefault(label, PropertyTimeline()).add(interval, value)

    def timeline(self, label: str) -> Optional[PropertyTimeline]:
        return self._timelines.get(label)

    def value_at(self, label: str, t: int) -> Optional[Any]:
        tl = self._timelines.get(label)
        return tl.value_at(t) if tl is not None else None

    def labels(self) -> list[str]:
        return sorted(self._timelines)

    def boundaries(self) -> list[int]:
        """Union of change points across every label's timeline."""
        bounds: set[int] = set()
        for tl in self._timelines.values():
            bounds.update(tl.boundaries())
        return sorted(bounds)

    def values_at(self, t: int) -> dict[str, Any]:
        """Snapshot of all labels that have a value at ``t``."""
        out: dict[str, Any] = {}
        for label, tl in self._timelines.items():
            val = tl.value_at(t)
            if val is not None:
                out[label] = val
        return out

    def __len__(self) -> int:
        return len(self._timelines)

    def __contains__(self, label: str) -> bool:
        return label in self._timelines

    def __iter__(self) -> Iterator[str]:
        return iter(self._timelines)

    def total_entries(self) -> int:
        return sum(len(tl) for tl in self._timelines.values())
