"""Dataset statistics in the shape of the paper's Table 1.

For each graph we report the sizes of its four representations — largest
snapshot, interval graph, transformed graph, cumulative multi-snapshot —
plus average vertex/edge/property lifespans, and an estimated in-memory
footprint for Fig. 6(a).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.core.interval import Interval
from .model import TemporalGraph
from .snapshots import snapshot_sizes
from .transform import transformed_size


@dataclass
class DatasetStats:
    """One row of Table 1."""

    name: str
    num_snapshots: int
    largest_snapshot_v: int
    largest_snapshot_e: int
    interval_v: int
    interval_e: int
    transformed_v: int
    transformed_e: int
    multi_snapshot_v: int
    multi_snapshot_e: int
    avg_vertex_lifespan: float
    avg_edge_lifespan: float
    avg_property_lifespan: float

    def row(self) -> tuple:
        return (
            self.name,
            self.num_snapshots,
            self.largest_snapshot_v,
            self.largest_snapshot_e,
            self.interval_v,
            self.interval_e,
            self.transformed_v,
            self.transformed_e,
            self.multi_snapshot_v,
            self.multi_snapshot_e,
            round(self.avg_vertex_lifespan, 2),
            round(self.avg_edge_lifespan, 2),
            round(self.avg_property_lifespan, 2),
        )


def dataset_stats(
    graph: TemporalGraph,
    name: str = "graph",
    *,
    horizon: Optional[int] = None,
    travel_time_label: str = "travel-time",
) -> DatasetStats:
    """Compute the Table-1 row for ``graph``."""
    if horizon is None:
        horizon = graph.time_horizon()
    clip = Interval(0, horizon)

    sizes = snapshot_sizes(graph, horizon)
    largest_v, largest_e = 0, 0
    multi_v, multi_e = 0, 0
    for _, nv, ne in sizes:
        multi_v += nv
        multi_e += ne
        if (ne, nv) > (largest_e, largest_v):
            largest_v, largest_e = nv, ne

    t_v, t_e = transformed_size(graph, travel_time_label=travel_time_label, horizon=horizon)

    v_spans = [_clipped_length(v.lifespan, clip) for v in graph.vertices()]
    e_spans = [_clipped_length(e.lifespan, clip) for e in graph.edges()]
    p_spans: list[int] = []
    for e in graph.edges():
        for label in e.properties:
            for iv, _ in e.properties.timeline(label):
                p_spans.append(_clipped_length(iv, clip))
    for v in graph.vertices():
        for label in v.properties:
            for iv, _ in v.properties.timeline(label):
                p_spans.append(_clipped_length(iv, clip))

    return DatasetStats(
        name=name,
        num_snapshots=horizon,
        largest_snapshot_v=largest_v,
        largest_snapshot_e=largest_e,
        interval_v=graph.num_vertices,
        interval_e=graph.num_edges,
        transformed_v=t_v,
        transformed_e=t_e,
        multi_snapshot_v=multi_v,
        multi_snapshot_e=multi_e,
        avg_vertex_lifespan=_avg(v_spans),
        avg_edge_lifespan=_avg(e_spans),
        avg_property_lifespan=_avg(p_spans) if p_spans else _avg(e_spans),
    )


def memory_footprint(graph: TemporalGraph, *, horizon: Optional[int] = None) -> dict[str, int]:
    """Estimated resident bytes of each representation (Fig. 6a).

    A uniform cost model makes representations comparable: 16 bytes per
    vertex record, 24 per edge record, 16 per interval, 16 per property
    entry.  Absolute numbers are arbitrary; the *ratios* between interval,
    transformed, snapshot and batch representations are what Fig. 6(a)
    reports.
    """
    if horizon is None:
        horizon = graph.time_horizon()
    per_vertex, per_edge, per_interval, per_prop = 16, 24, 16, 16

    n_props = sum(v.properties.total_entries() for v in graph.vertices()) + sum(
        e.properties.total_entries() for e in graph.edges()
    )
    interval_bytes = (
        graph.num_vertices * (per_vertex + per_interval)
        + graph.num_edges * (per_edge + per_interval)
        + n_props * (per_prop + per_interval)
    )

    t_v, t_e = transformed_size(graph, horizon=horizon)
    transformed_bytes = t_v * per_vertex + t_e * per_edge

    sizes = snapshot_sizes(graph, horizon)
    snap_bytes = [nv * per_vertex + ne * per_edge for _, nv, ne in sizes]
    largest_snapshot_bytes = max(snap_bytes, default=0)
    multi_snapshot_bytes = sum(snap_bytes)

    return {
        "interval": interval_bytes,
        "transformed": transformed_bytes,
        "largest_snapshot": largest_snapshot_bytes,
        "multi_snapshot_total": multi_snapshot_bytes,
    }


def resident_bytes(graph) -> int:
    """Resident bytes of the graph's backing store.

    Exact for a :class:`~repro.graph.compact.CompactGraph` (its single
    buffer's ``nbytes``); for heap graphs, the Fig. 6(a) cost model's
    interval-representation estimate.  Surfaced as the serving tier's
    ``graph_resident_bytes`` metric (``repro.obs``).
    """
    nbytes = getattr(graph, "nbytes", None)
    if nbytes is not None:
        return int(nbytes)
    return memory_footprint(graph)["interval"]


def _clipped_length(iv: Interval, clip: Interval) -> int:
    common = iv.intersect(clip)
    return common.length if common is not None else 0


def _avg(values: list[int]) -> float:
    return sum(values) / len(values) if values else 0.0
