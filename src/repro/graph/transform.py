"""Time-expanded *transformed graph* construction (TGB substrate).

Following Wu et al. (PVLDB 2014), an interval graph is converted into an
algorithm-specific non-temporal graph: every vertex is unrolled into
*replicas*, one per time-point at which an edge arrives or departs, and

* a **chain edge** ``(v, t) → (v, t')`` links consecutive replicas of the
  same vertex, carrying state forward in time (these are the "special
  messages" the paper charges to TGB), and
* an **application edge** ``(u, t_dep) → (v, t_dep + travel_time)`` is added
  for every time-point in every temporal edge's departure window, weighted by
  the edge property the algorithm uses.

The result is much larger than the interval graph — Table 1's "Transf."
columns and Fig. 6(a)'s memory comparison quantify exactly this blow-up.
"""

from __future__ import annotations

from typing import Any, Optional

from repro.core.interval import Interval
from .model import TemporalGraph, VertexId
from .snapshots import StaticGraph

#: Property key flagging a replica-chain edge on the transformed graph.
CHAIN = "__chain__"


def build_transformed_graph(
    graph: TemporalGraph,
    *,
    travel_time_label: str = "travel-time",
    cost_label: Optional[str] = "travel-cost",
    horizon: Optional[int] = None,
    default_travel_time: int = 1,
) -> StaticGraph:
    """Unroll ``graph`` into its time-expanded transformed graph.

    Parameters
    ----------
    graph:
        The interval graph to transform.
    travel_time_label / cost_label:
        Edge property labels consumed by temporal path algorithms.  When a
        label is absent from an edge, ``default_travel_time`` (resp. cost 1)
        is used.  Pass ``cost_label=None`` for algorithms that only need
        connectivity (e.g. reachability).
    horizon:
        Clip unbounded lifespans to ``[.., horizon)``.  Defaults to the
        graph's :meth:`~repro.graph.model.TemporalGraph.time_horizon`.

    Returns
    -------
    A :class:`StaticGraph` whose vertex ids are ``(vid, t)`` pairs.  Chain
    edges carry ``{CHAIN: True}``; application edges carry
    ``{"cost": c, "dep": t_dep}``.
    """
    if horizon is None:
        horizon = graph.time_horizon()
    replica_times: dict[VertexId, set[int]] = {v.vid: set() for v in graph.vertices()}

    # Every vertex gets a replica at its (clipped) lifespan start so sources
    # and isolated vertices exist in the transformed graph.
    for v in graph.vertices():
        replica_times[v.vid].add(min(v.lifespan.start, horizon - 1) if horizon else v.lifespan.start)

    app_edges: list[tuple[VertexId, int, VertexId, int, Any]] = []
    for e in graph.edges():
        window = e.lifespan.intersect(Interval(0, horizon)) if horizon else e.lifespan
        if window is None:
            continue
        dst_lifespan = graph.vertex(e.dst).lifespan
        for piece_iv, piece in e.pieces(window):
            travel = piece.get(travel_time_label, default_travel_time)
            cost = piece.get(cost_label, 1) if cost_label else 1
            for t_dep in piece_iv.points():
                t_arr = t_dep + travel
                if not dst_lifespan.contains_point(t_arr):
                    continue  # the journey outlives its destination
                replica_times[e.src].add(t_dep)
                replica_times[e.dst].add(t_arr)
                app_edges.append((e.src, t_dep, e.dst, t_arr, cost))

    out = StaticGraph()
    for vid, times in replica_times.items():
        for t in sorted(times):
            out.add_vertex((vid, t))
        ordered = sorted(times)
        for t_from, t_to in zip(ordered, ordered[1:]):
            out.add_edge((vid, t_from), (vid, t_to), props={CHAIN: True})
    for src, t_dep, dst, t_arr, cost in app_edges:
        out.add_edge((src, t_dep), (dst, t_arr), props={"cost": cost, "dep": t_dep})
    return out


def build_snapshot_replica_graph(
    graph: TemporalGraph, *, horizon: Optional[int] = None
) -> StaticGraph:
    """Unroll into per-time-point replicas with *same-time* edges.

    This is the algorithm-specific transformation for clustering analytics
    (LCC, TC), whose neighbourhood relations live within one time-point:
    application edges connect ``(u, t) → (v, t)`` for every ``t`` in the
    temporal edge's lifespan, and chain edges ``(v, t) → (v, t+1)`` carry
    replica state forward.
    """
    if horizon is None:
        horizon = graph.time_horizon()
    out = StaticGraph()
    window = Interval(0, horizon)
    for v in graph.vertices():
        clipped = v.lifespan.intersect(window)
        if clipped is None:
            continue
        times = list(clipped.points())
        for t in times:
            out.add_vertex((v.vid, t))
        for t_from, t_to in zip(times, times[1:]):
            out.add_edge((v.vid, t_from), (v.vid, t_to), props={CHAIN: True})
    for e in graph.edges():
        clipped = e.lifespan.intersect(window)
        if clipped is None:
            continue
        for t in clipped.points():
            out.add_edge((e.src, t), (e.dst, t), props=e.properties.values_at(t))
    return out


def transformed_size(
    graph: TemporalGraph,
    *,
    travel_time_label: str = "travel-time",
    horizon: Optional[int] = None,
    default_travel_time: int = 1,
) -> tuple[int, int]:
    """``(|V|, |E|)`` of the transformed graph without materialising edges.

    Used by the Table-1 statistics where only sizes are needed.
    """
    if horizon is None:
        horizon = graph.time_horizon()
    replica_times: dict[VertexId, set[int]] = {v.vid: set() for v in graph.vertices()}
    for v in graph.vertices():
        replica_times[v.vid].add(min(v.lifespan.start, horizon - 1) if horizon else v.lifespan.start)
    num_app_edges = 0
    for e in graph.edges():
        window = e.lifespan.intersect(Interval(0, horizon)) if horizon else e.lifespan
        if window is None:
            continue
        dst_lifespan = graph.vertex(e.dst).lifespan
        for piece_iv, piece in e.pieces(window):
            travel = piece.get(travel_time_label, default_travel_time)
            for t_dep in piece_iv.points():
                if not dst_lifespan.contains_point(t_dep + travel):
                    continue
                replica_times[e.src].add(t_dep)
                replica_times[e.dst].add(t_dep + travel)
                num_app_edges += 1
    num_replicas = sum(len(times) for times in replica_times.values())
    num_chain_edges = sum(max(0, len(times) - 1) for times in replica_times.values())
    return num_replicas, num_chain_edges + num_app_edges
