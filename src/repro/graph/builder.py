"""Validating builder for temporal graphs.

The builder is the public construction path: it enforces the paper's three
soundness constraints eagerly, gives friendly errors, and supports both
scalar ("constant over the lifespan") and timeline property specifications.
"""

from __future__ import annotations

import itertools
from typing import Any, Iterable, Optional, Union

from repro.core.interval import FOREVER, Interval
from .model import EdgeId, TemporalEdge, TemporalGraph, TemporalVertex, VertexId

#: A property spec: scalar (constant over the owner's lifespan) or a list of
#: ``(start, end, value)`` triples.
PropertySpec = Union[Any, list[tuple[int, int, Any]]]


class TemporalGraphBuilder:
    """Incrementally assemble and validate a :class:`TemporalGraph`.

    Example
    -------
    >>> b = TemporalGraphBuilder()
    >>> _ = b.add_vertex("A", 0)
    >>> _ = b.add_vertex("B", 0)
    >>> _ = b.add_edge("A", "B", 3, 6, props={"cost": [(3, 5, 4), (5, 6, 3)]})
    >>> g = b.build()
    >>> g.num_edges
    1
    """

    def __init__(self) -> None:
        self._graph = TemporalGraph()
        self._eid_counter = itertools.count()
        self._built = False

    # -- vertices ------------------------------------------------------------

    def add_vertex(
        self,
        vid: VertexId,
        start: int = 0,
        end: int = FOREVER,
        props: Optional[dict[str, PropertySpec]] = None,
    ) -> "TemporalGraphBuilder":
        """Add vertex ``⟨vid, [start, end)⟩``; returns self for chaining."""
        self._check_open()
        if self._graph.has_vertex(vid):
            raise ValueError(f"vertex {vid!r} already exists (constraint 1)")
        vertex = TemporalVertex(vid, Interval(start, end))
        self._attach_properties(vertex.properties, vertex.lifespan, props, f"vertex {vid!r}")
        self._graph._add_vertex(vertex)
        return self

    def add_vertices(self, vids: Iterable[VertexId], start: int = 0, end: int = FOREVER) -> "TemporalGraphBuilder":
        for vid in vids:
            self.add_vertex(vid, start, end)
        return self

    # -- edges ---------------------------------------------------------------

    def add_edge(
        self,
        src: VertexId,
        dst: VertexId,
        start: int = 0,
        end: int = FOREVER,
        *,
        eid: Optional[EdgeId] = None,
        props: Optional[dict[str, PropertySpec]] = None,
    ) -> EdgeId:
        """Add a directed edge; returns its (possibly generated) edge id."""
        self._check_open()
        if eid is None:
            eid = f"e{next(self._eid_counter)}"
        elif eid in {e.eid for e in self._graph.edges()}:
            raise ValueError(f"edge {eid!r} already exists (constraint 1)")
        for endpoint in (src, dst):
            if not self._graph.has_vertex(endpoint):
                raise ValueError(f"edge {eid!r} references unknown vertex {endpoint!r}")
        lifespan = Interval(start, end)
        src_life = self._graph.vertex(src).lifespan
        dst_life = self._graph.vertex(dst).lifespan
        if not lifespan.within(src_life) or not lifespan.within(dst_life):
            raise ValueError(
                f"edge {eid!r} lifespan {lifespan} not contained in endpoint "
                f"lifespans {src_life}, {dst_life} (constraint 2)"
            )
        edge = TemporalEdge(eid, src, dst, lifespan)
        self._attach_properties(edge.properties, lifespan, props, f"edge {eid!r}")
        self._graph._add_edge(edge)
        return eid

    # -- finalisation ----------------------------------------------------------

    def build(self, validate: bool = True) -> TemporalGraph:
        """Freeze and return the graph; the builder cannot be reused."""
        self._check_open()
        self._built = True
        if validate:
            self._graph.validate()
        return self._graph

    # -- internals ---------------------------------------------------------

    def _attach_properties(
        self,
        props_target,
        lifespan: Interval,
        props: Optional[dict[str, PropertySpec]],
        owner: str,
    ) -> None:
        if not props:
            return
        for label, spec in props.items():
            for iv, value in _normalise_spec(spec, lifespan):
                if not iv.within(lifespan):
                    raise ValueError(
                        f"{owner} property {label!r} interval {iv} exceeds "
                        f"lifespan {lifespan} (constraint 3)"
                    )
                props_target.add(label, iv, value)

    def _check_open(self) -> None:
        if self._built:
            raise RuntimeError("builder already consumed by build()")


def _normalise_spec(spec: PropertySpec, lifespan: Interval) -> list[tuple[Interval, Any]]:
    if isinstance(spec, list) and spec and isinstance(spec[0], tuple) and len(spec[0]) == 3:
        return [(Interval(s, e), v) for s, e, v in spec]
    return [(lifespan, spec)]
