"""Temporal property graph model, snapshots, transformed graphs, IO.

Loading a graph from disk or by dataset name goes through the
:func:`repro.api.load_graph` front door; the per-format entry points
this package used to export (``load_graph``, ``load_graph_binary``,
``load_snap_edgelist``, ``load_contact_sequence``) remain importable as
deprecation shims but warn — new code should not sniff formats by hand.
"""

import warnings

from .binary_io import dump_graph_binary
from .builder import TemporalGraphBuilder
from .compact import CompactEdge, CompactGraph, CompactVertex, resolve_graph_store
from .io import dump_graph
from .model import EdgePiece, TemporalEdge, TemporalGraph, TemporalVertex
from .properties import PropertySet, PropertyTimeline
from .snapshots import (
    StaticEdge,
    StaticGraph,
    iter_snapshots,
    largest_snapshot,
    snapshot_at,
    snapshot_sizes,
)
from .stats import DatasetStats, dataset_stats, memory_footprint, resident_bytes
from .transform import CHAIN, build_transformed_graph, transformed_size

__all__ = [
    "TemporalGraph",
    "TemporalVertex",
    "TemporalEdge",
    "EdgePiece",
    "TemporalGraphBuilder",
    "CompactGraph",
    "CompactVertex",
    "CompactEdge",
    "resolve_graph_store",
    "PropertySet",
    "PropertyTimeline",
    "StaticGraph",
    "StaticEdge",
    "snapshot_at",
    "iter_snapshots",
    "snapshot_sizes",
    "largest_snapshot",
    "build_transformed_graph",
    "transformed_size",
    "CHAIN",
    "DatasetStats",
    "dataset_stats",
    "memory_footprint",
    "resident_bytes",
    "dump_graph",
    "load_graph",
    "dump_graph_binary",
    "load_graph_binary",
    "load_snap_edgelist",
    "load_contact_sequence",
]

# Deprecated load entry points, kept importable for one release: resolve
# lazily so the warning fires at *use*, and point at the front door.
_DEPRECATED_LOADERS = {
    "load_graph": ("repro.graph.io", "load_graph"),
    "load_graph_binary": ("repro.graph.binary_io", "load_graph_binary"),
    "load_snap_edgelist": ("repro.graph.parsers", "load_snap_edgelist"),
    "load_contact_sequence": ("repro.graph.parsers", "load_contact_sequence"),
}


def __getattr__(name):
    target = _DEPRECATED_LOADERS.get(name)
    if target is None:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
    module, attr = target
    warnings.warn(
        f"repro.graph.{name} is deprecated; use repro.api.load_graph "
        f"(format auto-detection covers this loader)",
        DeprecationWarning,
        stacklevel=2,
    )
    import importlib

    return getattr(importlib.import_module(module), attr)
