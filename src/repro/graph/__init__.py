"""Temporal property graph model, snapshots, transformed graphs, IO."""

from .binary_io import dump_graph_binary, load_graph_binary
from .builder import TemporalGraphBuilder
from .io import dump_graph, load_graph
from .model import EdgePiece, TemporalEdge, TemporalGraph, TemporalVertex
from .parsers import load_contact_sequence, load_snap_edgelist
from .properties import PropertySet, PropertyTimeline
from .snapshots import (
    StaticEdge,
    StaticGraph,
    iter_snapshots,
    largest_snapshot,
    snapshot_at,
    snapshot_sizes,
)
from .stats import DatasetStats, dataset_stats, memory_footprint
from .transform import CHAIN, build_transformed_graph, transformed_size

__all__ = [
    "TemporalGraph",
    "TemporalVertex",
    "TemporalEdge",
    "EdgePiece",
    "TemporalGraphBuilder",
    "PropertySet",
    "PropertyTimeline",
    "StaticGraph",
    "StaticEdge",
    "snapshot_at",
    "iter_snapshots",
    "snapshot_sizes",
    "largest_snapshot",
    "build_transformed_graph",
    "transformed_size",
    "CHAIN",
    "DatasetStats",
    "dataset_stats",
    "memory_footprint",
    "dump_graph",
    "load_graph",
    "dump_graph_binary",
    "load_graph_binary",
    "load_snap_edgelist",
    "load_contact_sequence",
]
