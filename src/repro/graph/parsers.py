"""Parsers for common public temporal-graph formats.

Most published temporal datasets (SNAP's temporal networks, contact
sequences) are *event* lists — ``src dst timestamp`` per line — whereas
the paper's model wants *interval* entities.  These parsers bridge the
two, with the standard preprocessing knobs:

* **time bucketing** — raw timestamps are divided into snapshots of
  ``bucket`` units (e.g. one day);
* **event aggregation** — repeated contacts of one pair within a window
  become one interval edge (``merge_gap`` controls how large a silence
  still counts as the same relationship);
* **lifespan policy** for vertices — spanning the whole horizon (the
  paper's convention for its social graphs) or clipped to first/last
  activity.
"""

from __future__ import annotations

from pathlib import Path
from typing import Iterable, Optional, TextIO, Union

from repro.core.interval import Interval
from .model import TemporalEdge, TemporalGraph, TemporalVertex


def load_snap_edgelist(
    source: Union[str, Path, TextIO, Iterable[str]],
    *,
    bucket: int = 1,
    merge_gap: int = 0,
    vertex_lifespan: str = "horizon",
    comment: str = "#",
    directed: bool = True,
) -> TemporalGraph:
    """Parse a SNAP-style ``src dst timestamp`` event list.

    Parameters
    ----------
    source:
        File path, open handle, or iterable of lines.
    bucket:
        Timestamp units per time-point: raw times are floored into
        ``t // bucket`` (raw times are first shifted so the minimum is 0).
    merge_gap:
        Events of one ``(src, dst)`` pair whose bucketed times are within
        ``merge_gap`` of contiguous are merged into one interval edge; with
        the default 0 only back-to-back buckets merge.
    vertex_lifespan:
        ``"horizon"`` (every vertex spans the whole graph lifetime, the
        paper's convention) or ``"activity"`` (clipped to the vertex's
        first..last event bucket).
    directed:
        When false, each event also creates the reverse edge.
    """
    if vertex_lifespan not in ("horizon", "activity"):
        raise ValueError("vertex_lifespan must be 'horizon' or 'activity'")
    events = _read_events(source, comment)
    if not events:
        raise ValueError("no events found")
    t_min = min(t for _, _, t in events)
    pair_times: dict[tuple[str, str], set[int]] = {}
    activity: dict[str, list[int]] = {}
    horizon = 0
    for src, dst, raw in events:
        t = (raw - t_min) // bucket
        horizon = max(horizon, t + 1)
        pairs = [(src, dst)] if directed else [(src, dst), (dst, src)]
        for pair in pairs:
            pair_times.setdefault(pair, set()).add(t)
        for vid in (src, dst):
            activity.setdefault(vid, []).append(t)

    graph = TemporalGraph()
    for vid, times in activity.items():
        if vertex_lifespan == "horizon":
            lifespan = Interval(0, horizon)
        else:
            lifespan = Interval(min(times), max(times) + 1)
        graph._add_vertex(TemporalVertex(vid, lifespan))

    eid = 0
    for (src, dst), times in sorted(pair_times.items()):
        for start, end in _merge_runs(sorted(times), merge_gap):
            edge = TemporalEdge(f"e{eid}", src, dst, Interval(start, end))
            graph._add_edge(edge)
            eid += 1
    graph.validate()
    return graph


def load_contact_sequence(
    source: Union[str, Path, TextIO, Iterable[str]],
    *,
    duration: int = 1,
    comment: str = "#",
) -> TemporalGraph:
    """Parse ``t src dst`` contact sequences (sociopatterns style).

    Each contact becomes an edge alive for ``duration`` time-points from
    its (normalised) timestamp; vertices span the horizon.
    """
    lines = _read_lines(source)
    contacts: list[tuple[int, str, str]] = []
    for line in lines:
        line = line.strip()
        if not line or line.startswith(comment):
            continue
        t_raw, src, dst = line.split()[:3]
        contacts.append((int(t_raw), src, dst))
    if not contacts:
        raise ValueError("no contacts found")
    t_min = min(t for t, _, _ in contacts)
    horizon = max(t for t, _, _ in contacts) - t_min + duration

    graph = TemporalGraph()
    vids = {v for _, s, d in contacts for v in (s, d)}
    for vid in sorted(vids):
        graph._add_vertex(TemporalVertex(vid, Interval(0, horizon)))
    for eid, (t_raw, src, dst) in enumerate(sorted(contacts)):
        start = t_raw - t_min
        graph._add_edge(
            TemporalEdge(f"c{eid}", src, dst, Interval(start, start + duration))
        )
    graph.validate()
    return graph


# -- internals ---------------------------------------------------------------


def _read_lines(source) -> Iterable[str]:
    if isinstance(source, (str, Path)):
        with open(source, "r", encoding="utf-8") as fh:
            return fh.readlines()
    if hasattr(source, "readlines"):
        return source.readlines()
    return source


def _read_events(source, comment: str) -> list[tuple[str, str, int]]:
    events = []
    for line in _read_lines(source):
        line = line.strip()
        if not line or line.startswith(comment):
            continue
        parts = line.split()
        if len(parts) < 3:
            raise ValueError(f"expected 'src dst timestamp', got {line!r}")
        src, dst, t_raw = parts[0], parts[1], parts[2]
        events.append((src, dst, int(t_raw)))
    return events


def _merge_runs(times: list[int], merge_gap: int) -> list[tuple[int, int]]:
    """Merge sorted time-points into maximal ``[start, end)`` runs,
    bridging silences of up to ``merge_gap`` buckets."""
    runs: list[tuple[int, int]] = []
    start = prev = times[0]
    for t in times[1:]:
        if t <= prev + 1 + merge_gap:
            prev = t
        else:
            runs.append((start, prev + 1))
            start = prev = t
    runs.append((start, prev + 1))
    return runs
