"""Snapshot views of a temporal graph (the multi-snapshot representation).

A snapshot ``S_t`` is the static property graph of entities alive at
time-point ``t`` (paper Fig. 1c).  Baseline platforms (MSB, Chlonos,
GoFFish) operate on snapshots; GRAPHITE never materialises them except for
comparison and statistics.
"""

from __future__ import annotations

from typing import Any, Iterator, Optional

from repro.core.interval import Interval
from .model import EdgeId, TemporalGraph, VertexId


class StaticEdge:
    """A directed edge of a snapshot, with scalar property values."""

    __slots__ = ("eid", "src", "dst", "props")

    def __init__(self, eid: EdgeId, src: VertexId, dst: VertexId, props: dict[str, Any]):
        self.eid = eid
        self.src = src
        self.dst = dst
        self.props = props

    def get(self, label: str, default: Any = None) -> Any:
        return self.props.get(label, default)

    def __repr__(self) -> str:
        return f"StaticEdge({self.eid!r}: {self.src!r}->{self.dst!r})"


class StaticGraph:
    """A plain directed multi-graph — the substrate for VCM baselines."""

    def __init__(self, time: Optional[int] = None):
        #: The time-point this snapshot was taken at (``None`` for graphs
        #: built directly, e.g. transformed graphs).
        self.time = time
        self._vertices: dict[VertexId, dict[str, Any]] = {}
        self._out: dict[VertexId, list[StaticEdge]] = {}
        self._in: dict[VertexId, list[StaticEdge]] = {}
        self._num_edges = 0

    def add_vertex(self, vid: VertexId, props: Optional[dict[str, Any]] = None) -> None:
        if vid not in self._vertices:
            self._vertices[vid] = props or {}
            self._out.setdefault(vid, [])
            self._in.setdefault(vid, [])

    def add_edge(
        self, src: VertexId, dst: VertexId, eid: Optional[EdgeId] = None,
        props: Optional[dict[str, Any]] = None,
    ) -> StaticEdge:
        if src not in self._vertices or dst not in self._vertices:
            raise ValueError(f"edge endpoints {src!r}/{dst!r} must be added first")
        edge = StaticEdge(eid if eid is not None else self._num_edges, src, dst, props or {})
        self._out[src].append(edge)
        self._in[dst].append(edge)
        self._num_edges += 1
        return edge

    def has_vertex(self, vid: VertexId) -> bool:
        return vid in self._vertices

    def vertex_ids(self) -> list[VertexId]:
        return list(self._vertices)

    def vertex_props(self, vid: VertexId) -> dict[str, Any]:
        return self._vertices[vid]

    def out_edges(self, vid: VertexId) -> list[StaticEdge]:
        return self._out.get(vid, [])

    def in_edges(self, vid: VertexId) -> list[StaticEdge]:
        return self._in.get(vid, [])

    def edges(self) -> Iterator[StaticEdge]:
        for edges in self._out.values():
            yield from edges

    @property
    def num_vertices(self) -> int:
        return len(self._vertices)

    @property
    def num_edges(self) -> int:
        return self._num_edges

    def reversed(self) -> "StaticGraph":
        rev = StaticGraph(self.time)
        for vid, props in self._vertices.items():
            rev.add_vertex(vid, props)
        for edge in self.edges():
            rev.add_edge(edge.dst, edge.src, edge.eid, edge.props)
        return rev

    def __repr__(self) -> str:
        return f"StaticGraph(t={self.time}, |V|={self.num_vertices}, |E|={self.num_edges})"


def snapshot_at(graph: TemporalGraph, t: int) -> StaticGraph:
    """Materialise snapshot ``S_t``: entities alive at time-point ``t``."""
    snap = StaticGraph(t)
    for v in graph.vertices():
        if v.lifespan.contains_point(t):
            snap.add_vertex(v.vid, v.properties.values_at(t))
    for e in graph.edges():
        if e.lifespan.contains_point(t) and snap.has_vertex(e.src) and snap.has_vertex(e.dst):
            snap.add_edge(e.src, e.dst, e.eid, e.properties.values_at(t))
    return snap


def iter_snapshots(graph: TemporalGraph, horizon: Optional[int] = None) -> Iterator[StaticGraph]:
    """Yield ``S_0 .. S_{horizon-1}`` (horizon defaults to the graph's)."""
    if horizon is None:
        horizon = graph.time_horizon()
    for t in range(horizon):
        yield snapshot_at(graph, t)


def snapshot_sizes(graph: TemporalGraph, horizon: Optional[int] = None) -> list[tuple[int, int, int]]:
    """Per-snapshot ``(t, |V|, |E|)`` without keeping snapshots alive."""
    sizes = []
    for snap in iter_snapshots(graph, horizon):
        sizes.append((snap.time, snap.num_vertices, snap.num_edges))
    return sizes


def largest_snapshot(graph: TemporalGraph, horizon: Optional[int] = None) -> StaticGraph:
    """The snapshot with the most edges (ties: most vertices, earliest)."""
    best: Optional[StaticGraph] = None
    for snap in iter_snapshots(graph, horizon):
        if best is None or (snap.num_edges, snap.num_vertices) > (best.num_edges, best.num_vertices):
            best = snap
    if best is None:
        raise ValueError("graph has no snapshots")
    return best
