"""Compact columnar storage for frozen temporal graphs.

:class:`CompactGraph` is the storage-layer counterpart of
:class:`~repro.graph.model.TemporalGraph`: the same validated temporal
property graph, held as flat ``int64`` arrays over a single contiguous
buffer instead of an object per vertex/edge/property entry —

* vertex lifespans and id offsets (``v_start``/``v_end``/``vid_off``),
* CSR out- and in-adjacency (``out_off``/``out_idx``, ``in_off``/``in_idx``),
* edge endpoints, lifespans and ids (``e_src``/``e_dst``/``e_start``/...),
* property change-points as per-entity entry runs
  (``vp_*``/``ep_*`` label/start/end/value-offset arrays), and
* precomputed per-edge **piece cut tables** (``cut_off``/``cut_start``),
  the property-constant sub-intervals ``TemporalEdge.pieces`` re-derives
  on every call.

The layout follows the time-indexed array stores of Kairos
(arXiv:2401.02563) and Raphtory's frozen columnar graph
(arXiv:2306.16309); DESIGN.md §13 maps both onto this module.

Three properties make it more than a cache:

**Bit-identical semantics.**  Entity enumeration order, property label
order, lifespan clipping, ``pieces()`` cuts and ``values_at`` dicts all
reproduce the heap graph exactly, so engine runs, fingerprints and
checkpoints are interchangeable between the two stores (asserted across
all 12 algorithms by the equivalence tests).

**An mmap-able on-disk form.**  ``dump()`` writes the buffer as binary
graph format **v2** (same ``ITGR`` magic + version-varint framing as
:mod:`repro.graph.binary_io`); ``load()`` maps it read-only, so a served
graph's pages are shared between every process that maps the file.

**Zero-copy worker sharing.**  ``ensure_shared()`` migrates the buffer
into :mod:`multiprocessing.shared_memory`; pickling then ships only the
segment *name*, which is how ``ParallelExecutor`` avoids serialising the
graph per worker under the ``spawn`` start method (``fork`` already
shares the buffer copy-on-write).
"""

from __future__ import annotations

import mmap
import os
from array import array
from bisect import bisect_right
from pathlib import Path
from typing import Any, Iterator, Optional, Union

from repro.core.interval import FOREVER, Interval
from repro.errors import GraphFormatError
from repro.runtime.encoding import decode_payload, decode_varint, encode_payload
from .model import EdgePiece, TemporalEdge, TemporalGraph, TemporalVertex
from .properties import PropertySet

__all__ = [
    "COMPACT_VERSION",
    "GRAPH_STORE_KINDS",
    "CompactGraph",
    "CompactEdge",
    "CompactVertex",
    "resolve_graph_store",
]

MAGIC = b"ITGR"
#: Binary graph format version written by :meth:`CompactGraph.dump`
#: (version 1 is the varint object stream of ``graph/binary_io.py``).
COMPACT_VERSION = 2

#: Accepted values of ``REPRO_GRAPH_STORE`` / ``store=``.
GRAPH_STORE_KINDS = ("heap", "compact")

# Section order is the file format: 25 int64 arrays, then 3 byte blobs.
# The header carries an explicit (offset, length) table per section, so
# readers never have to re-derive the layout arithmetic.
_INT_SECTIONS = (
    "v_start", "v_end", "vid_off",
    "vp_off", "out_off", "out_idx", "in_off", "in_idx",
    "e_src", "e_dst", "e_start", "e_end", "eid_off",
    "ep_off", "cut_off", "cut_start",
    "vp_label", "vp_start", "vp_end", "vp_val",
    "ep_label", "ep_start", "ep_end", "ep_val",
    "label_off",
)
_BLOB_SECTIONS = ("id_blob", "val_blob", "label_blob")
_SECTIONS = _INT_SECTIONS + _BLOB_SECTIONS
_HEADER_FIXED = 16  # magic(4) + version varint(1) + pad(3) + n_sections(8)


def _align8(n: int) -> int:
    return (n + 7) & ~7


def _encode_id(value: Any, owner: str) -> bytes:
    try:
        return encode_payload(value)
    except TypeError as exc:
        raise GraphFormatError(
            f"{owner} id {value!r} is not storable in the compact format "
            f"(ids must be None/bool/int/float/str or tuples thereof)"
        ) from exc


def _encode_value(value: Any, owner: str, label: str) -> bytes:
    try:
        return encode_payload(value)
    except TypeError as exc:
        raise GraphFormatError(
            f"{owner} property {label!r} value {value!r} is not storable in "
            f"the compact format (values must be None/bool/int/float/str or "
            f"tuples thereof)"
        ) from exc


# -- encoder -------------------------------------------------------------------


def _encode_compact(graph: TemporalGraph) -> bytes:
    """Flatten a validated heap graph into one compact-format buffer.

    Enumeration order is load-bearing: vertices, edges and per-vertex
    out-edge lists are written in the source graph's iteration order, so
    ``engine._seq``, ``graph_fingerprint`` and checkpoint portability are
    preserved exactly.
    """
    vertices = list(graph.vertices())
    edges = list(graph.edges())
    nv, ne = len(vertices), len(edges)
    vidx = {v.vid: i for i, v in enumerate(vertices)}
    eidx = {e.eid: i for i, e in enumerate(edges)}

    labels = sorted(
        {label for v in vertices for label in v.properties}
        | {label for e in edges for label in e.properties}
    )
    lref = {label: i for i, label in enumerate(labels)}

    cols: dict[str, array] = {name: array("q") for name in _INT_SECTIONS}
    id_blob = bytearray()
    val_blob = bytearray()
    label_blob = bytearray()

    for label in labels:
        cols["label_off"].append(len(label_blob))
        label_blob += label.encode("utf-8")
    cols["label_off"].append(len(label_blob))

    def _append_entries(owner_name, props, label_col, start_col, end_col, val_col):
        count = 0
        for label in props:  # PropertySet iteration order == insertion order
            ref = lref[label]
            for iv, value in props.timeline(label):
                label_col.append(ref)
                start_col.append(iv.start)
                end_col.append(iv.end)
                val_col.append(len(val_blob))
                val_blob.extend(_encode_value(value, owner_name, label))
                count += 1
        return count

    vp_total = 0
    cols["vp_off"].append(0)
    for v in vertices:
        cols["v_start"].append(v.lifespan.start)
        cols["v_end"].append(v.lifespan.end)
        cols["vid_off"].append(len(id_blob))
        id_blob += _encode_id(v.vid, f"vertex")
        vp_total += _append_entries(
            f"vertex {v.vid!r}", v.properties,
            cols["vp_label"], cols["vp_start"], cols["vp_end"], cols["vp_val"],
        )
        cols["vp_off"].append(vp_total)
    cols["vid_off"].append(len(id_blob))

    ep_total = 0
    pieces_total = 0
    cols["ep_off"].append(0)
    cols["cut_off"].append(0)
    for e in edges:
        cols["e_src"].append(vidx[e.src])
        cols["e_dst"].append(vidx[e.dst])
        cols["e_start"].append(e.lifespan.start)
        cols["e_end"].append(e.lifespan.end)
        cols["eid_off"].append(len(id_blob))
        id_blob += _encode_id(e.eid, "edge")
        ep_total += _append_entries(
            f"edge {e.eid!r}", e.properties,
            cols["ep_label"], cols["ep_start"], cols["ep_end"], cols["ep_val"],
        )
        cols["ep_off"].append(ep_total)
        # Piece cut table: the full-lifespan property change points, the
        # exact cuts TemporalEdge.pieces(lifespan) derives per call.
        span = e.lifespan
        cols["cut_start"].append(span.start)
        pieces_total += 1
        for b in e.properties.boundaries():
            if span.start < b < span.end:
                cols["cut_start"].append(b)
                pieces_total += 1
        cols["cut_off"].append(pieces_total)
    cols["eid_off"].append(len(id_blob))
    # Value-offset sentinels close the last entries.
    cols["vp_val"].append(len(val_blob))
    cols["ep_val"].append(len(val_blob))

    for v in vertices:
        cols["out_off"].append(len(cols["out_idx"]))
        for e in graph.out_edges(v.vid):
            cols["out_idx"].append(eidx[e.eid])
    cols["out_off"].append(len(cols["out_idx"]))
    for v in vertices:
        cols["in_off"].append(len(cols["in_idx"]))
        for e in graph.in_edges(v.vid):
            cols["in_idx"].append(eidx[e.eid])
    cols["in_off"].append(len(cols["in_idx"]))

    # Sanity: CSR totals must cover every edge exactly once.
    assert len(cols["out_idx"]) == ne and len(cols["in_idx"]) == ne

    blobs = {"id_blob": bytes(id_blob), "val_blob": bytes(val_blob),
             "label_blob": bytes(label_blob)}

    table_at = _HEADER_FIXED
    payload_at = _align8(table_at + len(_SECTIONS) * 16)
    offsets: list[tuple[int, int]] = []
    cursor = payload_at
    section_bytes: list[bytes] = []
    for name in _SECTIONS:
        data = cols[name].tobytes() if name in cols else blobs[name]
        cursor = _align8(cursor)
        offsets.append((cursor, len(data)))
        section_bytes.append(data)
        cursor += len(data)

    out = bytearray(cursor)
    out[0:4] = MAGIC
    out[4] = COMPACT_VERSION  # a one-byte varint
    out[8:16] = len(_SECTIONS).to_bytes(8, "little", signed=True)
    at = table_at
    for off, length in offsets:
        out[at:at + 8] = off.to_bytes(8, "little", signed=True)
        out[at + 8:at + 16] = length.to_bytes(8, "little", signed=True)
        at += 16
    for (off, length), data in zip(offsets, section_bytes):
        out[off:off + length] = data
    return bytes(out)


# -- views ---------------------------------------------------------------------


class CompactVertex:
    """Read-only vertex view over the compact arrays.

    Exposes the :class:`~repro.graph.model.TemporalVertex` surface
    (``vid``/``lifespan``/``properties``); the property set is rebuilt
    lazily from the entry arrays and cached on the owning graph.
    """

    __slots__ = ("_graph", "_idx", "vid", "lifespan")

    def __init__(self, graph: "CompactGraph", idx: int, vid: Any, lifespan: Interval):
        self._graph = graph
        self._idx = idx
        self.vid = vid
        self.lifespan = lifespan

    @property
    def properties(self) -> PropertySet:
        return self._graph._vertex_props(self._idx)

    def __repr__(self) -> str:
        return f"Vertex({self.vid!r}, {self.lifespan})"


class CompactEdge:
    """Read-only edge view over the compact arrays.

    ``pieces()`` reads the precomputed cut table instead of re-deriving
    property boundaries, but returns the same ``(interval, EdgePiece)``
    pairs — same cuts, same ``values`` dicts in the same label order — as
    :meth:`~repro.graph.model.TemporalEdge.pieces`.
    """

    __slots__ = ("_graph", "_idx", "eid", "src", "dst", "lifespan")

    def __init__(self, graph, idx, eid, src, dst, lifespan):
        self._graph = graph
        self._idx = idx
        self.eid = eid
        self.src = src
        self.dst = dst
        self.lifespan = lifespan

    @property
    def properties(self) -> PropertySet:
        return self._graph._edge_props(self._idx)

    def pieces(self, window: Interval) -> list[tuple[Interval, EdgePiece]]:
        clipped = self.lifespan.intersect(window)
        if clipped is None:
            return []
        full = self._graph._edge_pieces(self._idx)
        if clipped == self.lifespan:
            return [
                (iv, EdgePiece(self, iv, values)) for iv, values in full
            ]
        out: list[tuple[Interval, EdgePiece]] = []
        for iv, values in full:
            common = iv.intersect(clipped)
            if common is not None:
                out.append((common, EdgePiece(self, common, values)))
        return out

    def __repr__(self) -> str:
        return f"Edge({self.eid!r}: {self.src!r}->{self.dst!r}, {self.lifespan})"


class _CompactPieceIndex:
    """Scatter index over one out-edge's precomputed piece table.

    Mirrors the engine's ``_EdgePieceIndex`` protocol (``edge``/``dst``/
    ``lifespan`` attributes + ``pieces(window)`` returning clipped
    ``(interval, EdgePiece)`` pairs) but is built straight from the
    ``cut_off``/``cut_start`` arrays — no property-boundary re-derivation,
    no per-call ``values_at`` dict rebuilds.  The window-slicing bisection
    is kept line-compatible with the engine's so the two stores stay
    bit-identical.
    """

    __slots__ = ("edge", "dst", "lifespan", "_starts", "_pieces")

    def __init__(self, graph: "CompactGraph", eidx: int):
        edge = graph._edge_view(eidx)
        self.edge = edge
        self.dst = edge.dst
        self.lifespan = edge.lifespan
        full = [
            (iv, EdgePiece(edge, iv, values))
            for iv, values in graph._edge_pieces(eidx)
        ]
        self._starts = [iv.start for iv, _ in full]
        self._pieces = full

    def pieces(self, window: Interval) -> list[tuple[Interval, Any]]:
        clipped = self.lifespan.intersect(window)
        if clipped is None:
            return []
        if clipped == self.lifespan and len(self._pieces) == 1:
            return self._pieces
        idx = bisect_right(self._starts, clipped.start) - 1
        if idx < 0:
            idx = 0
        out = []
        pieces = self._pieces
        hi = clipped.end
        while idx < len(pieces):
            iv, piece = pieces[idx]
            if iv.start >= hi:
                break
            common = iv.intersect(clipped)
            if common is not None:
                out.append((common, piece))
            idx += 1
        return out


# -- the graph -----------------------------------------------------------------


class CompactGraph:
    """A frozen temporal graph over one contiguous columnar buffer.

    Construct with :meth:`from_temporal` (from a validated heap graph),
    :meth:`load` (mmap of a v2 file) or :meth:`from_bytes`.  The query
    surface mirrors :class:`~repro.graph.model.TemporalGraph` verbatim;
    entity accessors hand out cached :class:`CompactVertex`/
    :class:`CompactEdge` views.
    """

    def __init__(self, buffer, *, _keepalive=None):
        self._keepalive = _keepalive  # open file/mmap/shm backing `buffer`
        self._shm = None
        self._shm_owner = False
        self._mmap = None
        self._file = None
        self._path: Optional[str] = None
        self._views: list = []
        self._bind(buffer)

    # -- construction ------------------------------------------------------

    @classmethod
    def from_temporal(cls, graph: TemporalGraph) -> "CompactGraph":
        """Freeze a heap graph (validated first) into compact form."""
        graph.validate()
        return cls(_encode_compact(graph))

    @classmethod
    def from_bytes(cls, data: bytes) -> "CompactGraph":
        return cls(data)

    @classmethod
    def load(cls, path: Union[str, Path], *, map: bool = True) -> "CompactGraph":
        """Open a binary v2 file, memory-mapped read-only by default.

        Mapped pages are shared with every other process that maps the
        same file — the serving tier's resident-graph story.
        """
        path = str(path)
        fh = open(path, "rb")
        if map:
            try:
                mapped = mmap.mmap(fh.fileno(), 0, access=mmap.ACCESS_READ)
            except ValueError as exc:  # empty file
                fh.close()
                raise GraphFormatError(f"{path}: not a compact temporal graph ({exc})")
            try:
                graph = cls(mapped)
            except Exception:
                mapped.close()
                fh.close()
                raise
            graph._mmap = mapped
            graph._file = fh
            graph._path = path
        else:
            data = fh.read()
            fh.close()
            graph = cls(data)
            graph._path = path
        return graph

    def dump(self, target: Union[str, Path]) -> None:
        """Write the buffer as a binary v2 file (fsync + atomic rename)."""
        from .binary_io import _atomic_write_bytes
        _atomic_write_bytes(self.to_bytes(), Path(target))

    # -- binding -----------------------------------------------------------

    def _bind(self, buffer) -> None:
        mv = memoryview(buffer)
        self._views.append(mv)
        if mv.nbytes < _HEADER_FIXED or bytes(mv[0:4]) != MAGIC:
            raise GraphFormatError("not an ITGR compact temporal graph")
        version, _ = decode_varint(mv, 4)
        if version != COMPACT_VERSION:
            raise GraphFormatError(
                f"unsupported compact graph version {version} "
                f"(this build reads version {COMPACT_VERSION}; "
                f"version 1 files are read by api.load_graph)"
            )
        n_sections = int.from_bytes(bytes(mv[8:16]), "little", signed=True)
        if n_sections != len(_SECTIONS):
            raise GraphFormatError(
                f"compact graph header lists {n_sections} sections, "
                f"expected {len(_SECTIONS)}"
            )
        table = mv[_HEADER_FIXED:_HEADER_FIXED + n_sections * 16].cast("q")
        self._views.append(table)
        size = mv.nbytes
        sections: dict[str, Any] = {}
        for i, name in enumerate(_SECTIONS):
            off, length = table[2 * i], table[2 * i + 1]
            if off < 0 or length < 0 or off + length > size:
                raise GraphFormatError(
                    f"compact graph section {name!r} ([{off}, {off + length})) "
                    f"exceeds the {size}-byte buffer (truncated file?)"
                )
            sections[name] = mv[off:off + length]
        for name in _INT_SECTIONS:
            view = sections[name].cast("q")
            self._views.append(view)
            setattr(self, "_" + name, view)
        # Blobs are decoded with `bytes`-only helpers (str payloads call
        # `.decode`), so take one small copy each instead of holding more
        # buffer exports.
        self._id_blob = bytes(sections["id_blob"])
        self._val_blob = bytes(sections["val_blob"])
        self._label_blob = bytes(sections["label_blob"])
        self.nbytes = size

        nv = len(self._v_start)
        ne = len(self._e_src)
        if len(self._vid_off) != nv + 1 or len(self._out_off) != nv + 1:
            raise GraphFormatError("compact graph vertex tables disagree on |V|")
        if len(self._eid_off) != ne + 1 or len(self._cut_off) != ne + 1:
            raise GraphFormatError("compact graph edge tables disagree on |E|")
        self._nv = nv
        self._ne = ne

        self._labels = [
            self._label_blob[self._label_off[i]:self._label_off[i + 1]].decode("utf-8")
            for i in range(len(self._label_off) - 1)
        ]
        vid_off = self._vid_off
        self._vids = [
            decode_payload(self._id_blob, vid_off[i])[0] for i in range(nv)
        ]
        eid_off = self._eid_off
        self._eids = [
            decode_payload(self._id_blob, eid_off[i])[0] for i in range(ne)
        ]
        self._vid_index = {vid: i for i, vid in enumerate(self._vids)}
        self._eid_index = {eid: i for i, eid in enumerate(self._eids)}
        if len(self._vid_index) != nv:
            raise GraphFormatError("compact graph has duplicate vertex ids")

        self._vertex_cache: dict[int, CompactVertex] = {}
        self._edge_cache: dict[int, CompactEdge] = {}
        self._vprops: dict[int, PropertySet] = {}
        self._eprops: dict[int, PropertySet] = {}
        self._piece_cache: dict[int, list] = {}

    # -- internal view/property materialisation ----------------------------

    def _vertex_view(self, i: int) -> CompactVertex:
        view = self._vertex_cache.get(i)
        if view is None:
            view = CompactVertex(
                self, i, self._vids[i],
                Interval(self._v_start[i], self._v_end[i]),
            )
            self._vertex_cache[i] = view
        return view

    def _edge_view(self, i: int) -> CompactEdge:
        view = self._edge_cache.get(i)
        if view is None:
            view = CompactEdge(
                self, i, self._eids[i],
                self._vids[self._e_src[i]], self._vids[self._e_dst[i]],
                Interval(self._e_start[i], self._e_end[i]),
            )
            self._edge_cache[i] = view
        return view

    def _props(self, cache, i, off_col, label_col, start_col, end_col, val_col):
        props = cache.get(i)
        if props is None:
            props = PropertySet()
            lo, hi = off_col[i], off_col[i + 1]
            labels = self._labels
            blob = self._val_blob
            for j in range(lo, hi):
                value, _ = decode_payload(blob, val_col[j])
                props.add(
                    labels[label_col[j]],
                    Interval(start_col[j], end_col[j]),
                    value,
                )
            cache[i] = props
        return props

    def _vertex_props(self, i: int) -> PropertySet:
        return self._props(
            self._vprops, i, self._vp_off,
            self._vp_label, self._vp_start, self._vp_end, self._vp_val,
        )

    def _edge_props(self, i: int) -> PropertySet:
        return self._props(
            self._eprops, i, self._ep_off,
            self._ep_label, self._ep_start, self._ep_end, self._ep_val,
        )

    def _edge_pieces(self, i: int) -> list[tuple[Interval, dict]]:
        """Full-lifespan ``(interval, values)`` pieces of edge ``i``.

        Cut points come from the precomputed table; each piece's values
        dict is assembled in one pass over the edge's property entries,
        in label-insertion order — exactly ``properties.values_at(lo)``
        for the piece's start, without building a PropertySet.
        """
        pieces = self._piece_cache.get(i)
        if pieces is None:
            lo, hi = self._cut_off[i], self._cut_off[i + 1]
            end = self._e_end[i]
            starts = self._cut_start[lo:hi].tolist()
            bounds = starts[1:] + [end]
            values: list[dict] = [{} for _ in starts]
            blob = self._val_blob
            labels = self._labels
            elo, ehi = self._ep_off[i], self._ep_off[i + 1]
            if ehi > elo:
                for j in range(elo, ehi):
                    value, _ = decode_payload(blob, self._ep_val[j])
                    if value is None:
                        continue  # values_at() skips absent/None values
                    label = labels[self._ep_label[j]]
                    s, e = self._ep_start[j], self._ep_end[j]
                    # Pieces never straddle a property boundary, so the
                    # entry covers a contiguous run of whole pieces.
                    k = bisect_right(starts, s) - 1
                    if k < 0:
                        k = 0
                    while k < len(starts) and starts[k] < e:
                        if bounds[k] > s:
                            values[k][label] = value
                        k += 1
            pieces = [
                (Interval(s, b), vals)
                for s, b, vals in zip(starts, bounds, values)
            ]
            self._piece_cache[i] = pieces
        return pieces

    # -- TemporalGraph query surface ---------------------------------------

    def vertex(self, vid: Any) -> CompactVertex:
        return self._vertex_view(self._vid_index[vid])

    def edge(self, eid: Any) -> CompactEdge:
        return self._edge_view(self._eid_index[eid])

    def has_vertex(self, vid: Any) -> bool:
        return vid in self._vid_index

    def vertices(self) -> Iterator[CompactVertex]:
        return (self._vertex_view(i) for i in range(self._nv))

    def edges(self) -> Iterator[CompactEdge]:
        return (self._edge_view(i) for i in range(self._ne))

    def vertex_ids(self) -> list:
        return list(self._vids)

    def out_edges(self, vid: Any) -> list:
        i = self._vid_index.get(vid)
        if i is None:
            return []
        off = self._out_off
        return [self._edge_view(self._out_idx[j]) for j in range(off[i], off[i + 1])]

    def in_edges(self, vid: Any) -> list:
        i = self._vid_index.get(vid)
        if i is None:
            return []
        off = self._in_off
        return [self._edge_view(self._in_idx[j]) for j in range(off[i], off[i + 1])]

    @property
    def num_vertices(self) -> int:
        return self._nv

    @property
    def num_edges(self) -> int:
        return self._ne

    def lifespan(self) -> Interval:
        """Hull of all vertex lifespans (the graph's lifespan)."""
        if not self._nv:
            raise ValueError("empty graph has no lifespan")
        return Interval(min(self._v_start), max(self._v_end))

    def time_horizon(self, default: int = 1) -> int:
        """Largest *bounded* end time across entities; snapshot count.

        Array mirror of ``TemporalGraph.time_horizon`` — vertex and edge
        lifespans plus *edge* property spans, exactly as the heap store
        counts them.
        """
        horizon = 0
        for end in self._v_end:
            if end < FOREVER and end > horizon:
                horizon = end
        for end in self._e_end:
            if end < FOREVER and end > horizon:
                horizon = end
        ep_off, ep_end = self._ep_off, self._ep_end
        ep_label = self._ep_label
        for i in range(self._ne):
            lo, hi = ep_off[i], ep_off[i + 1]
            span_end: dict[int, int] = {}
            for j in range(lo, hi):
                ref = ep_label[j]
                end = ep_end[j]
                if end > span_end.get(ref, -1):
                    span_end[ref] = end
            for end in span_end.values():
                if end < FOREVER and end > horizon:
                    horizon = end
        return horizon if horizon > 0 else default

    def validate(self) -> None:
        """Structural soundness over the arrays (mirrors the heap checks)."""
        vs, ve = self._v_start, self._v_end
        for i in range(self._ne):
            s, d = self._e_src[i], self._e_dst[i]
            lo, hi = self._e_start[i], self._e_end[i]
            if not (vs[s] <= lo and hi <= ve[s]):
                raise ValueError(
                    f"edge {self._eids[i]!r} lifespan "
                    f"{Interval(lo, hi)} exceeds source "
                    f"{Interval(vs[s], ve[s])}"
                )
            if not (vs[d] <= lo and hi <= ve[d]):
                raise ValueError(
                    f"edge {self._eids[i]!r} lifespan "
                    f"{Interval(lo, hi)} exceeds sink "
                    f"{Interval(vs[d], ve[d])}"
                )
            for j in range(self._ep_off[i], self._ep_off[i + 1]):
                if not (lo <= self._ep_start[j] and self._ep_end[j] <= hi):
                    raise ValueError(
                        f"edge {self._eids[i]!r} property "
                        f"{self._labels[self._ep_label[j]]!r} interval "
                        f"{Interval(self._ep_start[j], self._ep_end[j])} "
                        f"exceeds lifespan {Interval(lo, hi)}"
                    )
        for i in range(self._nv):
            for j in range(self._vp_off[i], self._vp_off[i + 1]):
                if not (vs[i] <= self._vp_start[j] and self._vp_end[j] <= ve[i]):
                    raise ValueError(
                        f"vertex {self._vids[i]!r} property "
                        f"{self._labels[self._vp_label[j]]!r} interval "
                        f"{Interval(self._vp_start[j], self._vp_end[j])} "
                        f"exceeds lifespan {Interval(vs[i], ve[i])}"
                    )

    def reversed(self) -> "CompactGraph":
        """A compact copy with every edge direction flipped."""
        return CompactGraph.from_temporal(self.to_temporal().reversed())

    def __repr__(self) -> str:
        return (
            f"CompactGraph(|V|={self._nv}, |E|={self._ne}, "
            f"{self.nbytes} bytes)"
        )

    # -- fast paths for the engine and partitioners ------------------------

    def edge_piece_indexes(self, vid: Any) -> list[_CompactPieceIndex]:
        """Scatter piece indexes for one vertex's out-edges.

        The engine's ``VertexProcessor`` prefers this over building
        ``_EdgePieceIndex`` objects from ``out_edges()`` — the piece cuts
        and values come straight from the compact arrays.
        """
        i = self._vid_index.get(vid)
        if i is None:
            return []
        off = self._out_off
        return [
            _CompactPieceIndex(self, self._out_idx[j])
            for j in range(off[i], off[i + 1])
        ]

    def edge_records(self) -> Iterator[tuple[Any, Any, int, int]]:
        """``(src_vid, dst_vid, start, end)`` per edge, no view objects.

        The streaming form the partitioners consume: endpoint ids and
        lifespan bounds straight from the columnar arrays.
        """
        vids = self._vids
        e_src, e_dst = self._e_src, self._e_dst
        e_start, e_end = self._e_start, self._e_end
        for i in range(self._ne):
            yield vids[e_src[i]], vids[e_dst[i]], e_start[i], e_end[i]

    # -- conversion / serialisation ----------------------------------------

    def to_bytes(self) -> bytes:
        return bytes(self._views[0][:self.nbytes])

    def to_temporal(self) -> TemporalGraph:
        """Rebuild the equivalent heap graph (exact round-trip)."""
        graph = TemporalGraph()
        for i in range(self._nv):
            v = TemporalVertex(self._vids[i], Interval(self._v_start[i], self._v_end[i]))
            v.properties = self._vertex_props_copy(i)
            graph._add_vertex(v)
        for i in range(self._ne):
            e = TemporalEdge(
                self._eids[i],
                self._vids[self._e_src[i]], self._vids[self._e_dst[i]],
                Interval(self._e_start[i], self._e_end[i]),
            )
            e.properties = self._edge_props_copy(i)
            graph._add_edge(e)
        return graph

    def _vertex_props_copy(self, i: int) -> PropertySet:
        return self._fresh_props(
            i, self._vp_off, self._vp_label,
            self._vp_start, self._vp_end, self._vp_val,
        )

    def _edge_props_copy(self, i: int) -> PropertySet:
        return self._fresh_props(
            i, self._ep_off, self._ep_label,
            self._ep_start, self._ep_end, self._ep_val,
        )

    def _fresh_props(self, i, off_col, label_col, start_col, end_col, val_col):
        props = PropertySet()
        for j in range(off_col[i], off_col[i + 1]):
            value, _ = decode_payload(self._val_blob, val_col[j])
            props.add(
                self._labels[label_col[j]],
                Interval(start_col[j], end_col[j]),
                value,
            )
        return props

    # -- sharing / pickling ------------------------------------------------

    def ensure_shared(self) -> "CompactGraph":
        """Move the buffer into POSIX shared memory (idempotent).

        After this call, pickling ships only the segment name: workers
        attach to the same physical pages instead of receiving a copy.
        File-mapped graphs are already shareable (the path pickles) and
        are left alone.
        """
        if self._shm is not None or self._mmap is not None:
            return self
        from multiprocessing import shared_memory

        data = self.to_bytes()
        shm = shared_memory.SharedMemory(create=True, size=len(data))
        shm.buf[:len(data)] = data
        self._release_views()
        self._shm = shm
        self._shm_owner = True
        self._bind(shm.buf[:len(data)])
        return self

    def __reduce__(self):
        if self._shm is not None:
            return (_attach_shared, (self._shm.name, self.nbytes))
        if self._path is not None:
            return (CompactGraph.load, (self._path,))
        return (CompactGraph.from_bytes, (self.to_bytes(),))

    # -- lifecycle ---------------------------------------------------------

    def _release_views(self) -> None:
        for view in reversed(self._views):
            try:
                view.release()
            except BufferError:  # a derived view is still alive somewhere
                pass
        self._views = []

    def close(self) -> None:
        """Release buffer views and close any mmap/shared-memory backing.

        The owner of a shared-memory segment also unlinks it.  Views
        handed out earlier must not be used afterwards.
        """
        self._release_views()
        if self._mmap is not None:
            try:
                self._mmap.close()
            except BufferError:
                pass
            self._mmap = None
        if self._file is not None:
            self._file.close()
            self._file = None
        if self._shm is not None:
            shm, owner = self._shm, self._shm_owner
            self._shm = None
            try:
                shm.close()
            except BufferError:
                pass
            if owner:
                try:
                    shm.unlink()
                except FileNotFoundError:
                    pass

    def __del__(self):  # pragma: no cover - GC timing dependent
        try:
            self.close()
        except Exception:
            pass


def _attach_shared(name: str, nbytes: int) -> CompactGraph:
    """Pickle reconstructor: attach to an existing shared-memory buffer."""
    from multiprocessing import shared_memory

    shm = shared_memory.SharedMemory(name=name)
    graph = CompactGraph(shm.buf[:nbytes])
    graph._shm = shm
    graph._shm_owner = False
    return graph


# -- store selection -----------------------------------------------------------


def resolve_graph_store(graph, store: Optional[str] = None, *, env=None):
    """Apply the graph-store choice to ``graph``.

    ``store`` may be ``"heap"`` (leave heap graphs alone), ``"compact"``
    (freeze heap graphs into :class:`CompactGraph`) or ``None``, which
    reads ``REPRO_GRAPH_STORE`` (default ``heap``).  Graphs that are
    already compact pass through untouched either way — the knob only
    decides whether heap graphs get frozen, it never thaws one.
    """
    if store is None:
        environ = os.environ if env is None else env
        store = environ.get("REPRO_GRAPH_STORE", "") or "heap"
    if store not in GRAPH_STORE_KINDS:
        raise ValueError(
            f"unknown graph store {store!r} (REPRO_GRAPH_STORE): "
            f"expected one of {', '.join(GRAPH_STORE_KINDS)}"
        )
    if store == "compact" and isinstance(graph, TemporalGraph):
        return CompactGraph.from_temporal(graph)
    return graph
