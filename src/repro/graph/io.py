"""Text serialisation of temporal graphs.

The format is a line-oriented, human-diffable analogue of the edge-list
files the paper loads from HDFS:

```
# comments and blank lines ignored
V <vid> <start> <end>
VP <vid> <label> <start> <end> <value>
E <eid> <src> <dst> <start> <end>
EP <eid> <label> <start> <end> <value>
```

``end`` may be the literal ``inf``.  Values are stored via ``repr`` and read
back with a small literal parser (ints, floats, strings, booleans).
"""

from __future__ import annotations

import ast
from pathlib import Path
from typing import Any, TextIO, Union

from repro.core.interval import FOREVER, Interval
from .model import TemporalEdge, TemporalGraph, TemporalVertex


def dump_graph(graph: TemporalGraph, target: Union[str, Path, TextIO]) -> None:
    """Write ``graph`` to a path or open text handle."""
    if isinstance(target, (str, Path)):
        with open(target, "w", encoding="utf-8") as fh:
            _dump(graph, fh)
    else:
        _dump(graph, target)


def load_graph(source: Union[str, Path, TextIO]) -> TemporalGraph:
    """Read a graph previously written by :func:`dump_graph`."""
    if isinstance(source, (str, Path)):
        with open(source, "r", encoding="utf-8") as fh:
            return _load(fh)
    return _load(source)


# -- internals ---------------------------------------------------------------


def _fmt_time(t: int) -> str:
    return "inf" if t >= FOREVER else str(t)


def _parse_time(token: str) -> int:
    return FOREVER if token == "inf" else int(token)


def _fmt_value(value: Any) -> str:
    return repr(value)


def _parse_value(token: str) -> Any:
    return ast.literal_eval(token)


def _dump(graph: TemporalGraph, fh: TextIO) -> None:
    fh.write("# repro temporal graph v1\n")
    for v in sorted(graph.vertices(), key=lambda x: str(x.vid)):
        fh.write(f"V\t{v.vid}\t{_fmt_time(v.lifespan.start)}\t{_fmt_time(v.lifespan.end)}\n")
        for label in v.properties:
            for iv, val in v.properties.timeline(label):
                fh.write(
                    f"VP\t{v.vid}\t{label}\t{_fmt_time(iv.start)}\t{_fmt_time(iv.end)}\t{_fmt_value(val)}\n"
                )
    for e in sorted(graph.edges(), key=lambda x: str(x.eid)):
        fh.write(
            f"E\t{e.eid}\t{e.src}\t{e.dst}\t{_fmt_time(e.lifespan.start)}\t{_fmt_time(e.lifespan.end)}\n"
        )
        for label in e.properties:
            for iv, val in e.properties.timeline(label):
                fh.write(
                    f"EP\t{e.eid}\t{label}\t{_fmt_time(iv.start)}\t{_fmt_time(iv.end)}\t{_fmt_value(val)}\n"
                )


def _load(fh: TextIO) -> TemporalGraph:
    graph = TemporalGraph()
    edges_by_id: dict[str, TemporalEdge] = {}
    for lineno, raw in enumerate(fh, start=1):
        line = raw.strip()
        if not line or line.startswith("#"):
            continue
        parts = line.split("\t")
        kind = parts[0]
        try:
            if kind == "V":
                _, vid, s, e = parts
                graph._add_vertex(TemporalVertex(vid, Interval(_parse_time(s), _parse_time(e))))
            elif kind == "VP":
                _, vid, label, s, e, val = parts
                graph.vertex(vid).properties.add(
                    label, Interval(_parse_time(s), _parse_time(e)), _parse_value(val)
                )
            elif kind == "E":
                _, eid, src, dst, s, e = parts
                edge = TemporalEdge(eid, src, dst, Interval(_parse_time(s), _parse_time(e)))
                edges_by_id[eid] = edge
                graph._add_edge(edge)
            elif kind == "EP":
                _, eid, label, s, e, val = parts
                edges_by_id[eid].properties.add(
                    label, Interval(_parse_time(s), _parse_time(e)), _parse_value(val)
                )
            else:
                raise ValueError(f"unknown record kind {kind!r}")
        except (ValueError, KeyError) as exc:
            raise ValueError(f"line {lineno}: cannot parse {line!r}") from exc
    graph.validate()
    return graph
