"""The temporal property graph data model (paper Sec. III, Def. 1).

A temporal graph is a directed multi-graph ``G = (V, E, L, A_V, A_E)`` where
vertices and edges carry a *lifespan* interval and interval-valued
properties.  Three soundness constraints are enforced by the
:class:`~repro.graph.builder.TemporalGraphBuilder`:

1. **Unique vertices and edges** — an id exists at most once, for one
   contiguous interval, and never re-occurs.
2. **Referential integrity of edges** — an edge's lifespan is contained in
   the lifespans of both endpoints.
3. **Referential integrity of properties** — a property interval is
   contained in its owner's lifespan.
"""

from __future__ import annotations

from typing import Any, Iterable, Iterator, Optional

from repro.core.interval import FOREVER, Interval
from .properties import PropertySet

VertexId = Any
EdgeId = Any


class TemporalVertex:
    """A vertex ``⟨vid, τ⟩`` with optional interval-valued properties."""

    __slots__ = ("vid", "lifespan", "properties")

    def __init__(self, vid: VertexId, lifespan: Interval):
        self.vid = vid
        self.lifespan = lifespan
        self.properties = PropertySet()

    def __repr__(self) -> str:
        return f"Vertex({self.vid!r}, {self.lifespan})"


class TemporalEdge:
    """A directed edge ``⟨eid, src, dst, τ⟩`` with interval properties."""

    __slots__ = ("eid", "src", "dst", "lifespan", "properties")

    def __init__(self, eid: EdgeId, src: VertexId, dst: VertexId, lifespan: Interval):
        self.eid = eid
        self.src = src
        self.dst = dst
        self.lifespan = lifespan
        self.properties = PropertySet()

    def pieces(self, window: Interval) -> list[tuple[Interval, "EdgePiece"]]:
        """Partition ``lifespan ∩ window`` by property change points.

        Each piece carries the property values constant over its interval.
        Scatter is invoked once per piece per overlapping updated state
        (paper: "scatter is called once for each overlapping interval of its
        out-edges having a distinct property").  Property-free edges yield a
        single piece.
        """
        clipped = self.lifespan.intersect(window)
        if clipped is None:
            return []
        bounds = [b for b in self.properties.boundaries() if clipped.start < b < clipped.end]
        cuts = [clipped.start, *bounds, clipped.end]
        out: list[tuple[Interval, EdgePiece]] = []
        for lo, hi in zip(cuts, cuts[1:]):
            iv = Interval(lo, hi)
            out.append((iv, EdgePiece(self, iv, self.properties.values_at(lo))))
        return out

    def __repr__(self) -> str:
        return f"Edge({self.eid!r}: {self.src!r}->{self.dst!r}, {self.lifespan})"


class EdgePiece:
    """A maximal sub-interval of an edge with constant property values."""

    __slots__ = ("edge", "interval", "values")

    def __init__(self, edge: TemporalEdge, interval: Interval, values: dict[str, Any]):
        self.edge = edge
        self.interval = interval
        self.values = values

    def get(self, label: str, default: Any = None) -> Any:
        return self.values.get(label, default)

    def __repr__(self) -> str:
        return f"EdgePiece({self.edge.eid!r}, {self.interval}, {self.values})"


class TemporalGraph:
    """An immutable-by-convention temporal property multi-graph.

    Construct through :class:`~repro.graph.builder.TemporalGraphBuilder`,
    which validates the soundness constraints; direct construction is for
    internal use (generators that produce valid graphs by design).
    """

    def __init__(self) -> None:
        self._vertices: dict[VertexId, TemporalVertex] = {}
        self._edges: dict[EdgeId, TemporalEdge] = {}
        self._out: dict[VertexId, list[TemporalEdge]] = {}
        self._in: dict[VertexId, list[TemporalEdge]] = {}

    # -- accessors ---------------------------------------------------------

    def vertex(self, vid: VertexId) -> TemporalVertex:
        return self._vertices[vid]

    def edge(self, eid: EdgeId) -> TemporalEdge:
        return self._edges[eid]

    def has_vertex(self, vid: VertexId) -> bool:
        return vid in self._vertices

    def vertices(self) -> Iterator[TemporalVertex]:
        return iter(self._vertices.values())

    def edges(self) -> Iterator[TemporalEdge]:
        return iter(self._edges.values())

    def vertex_ids(self) -> list[VertexId]:
        return list(self._vertices)

    def out_edges(self, vid: VertexId) -> list[TemporalEdge]:
        return self._out.get(vid, [])

    def in_edges(self, vid: VertexId) -> list[TemporalEdge]:
        return self._in.get(vid, [])

    @property
    def num_vertices(self) -> int:
        return len(self._vertices)

    @property
    def num_edges(self) -> int:
        return len(self._edges)

    def lifespan(self) -> Interval:
        """Hull of all vertex lifespans (the graph's lifespan)."""
        if not self._vertices:
            raise ValueError("empty graph has no lifespan")
        start = min(v.lifespan.start for v in self._vertices.values())
        end = max(v.lifespan.end for v in self._vertices.values())
        return Interval(start, end)

    def time_horizon(self, default: int = 1) -> int:
        """Largest *bounded* end time across entities; snapshot count.

        Graphs whose entities all extend to :data:`FOREVER` report
        ``default`` — they are effectively non-temporal.
        """
        horizon = 0
        for v in self._vertices.values():
            if not v.lifespan.is_unbounded:
                horizon = max(horizon, v.lifespan.end)
        for e in self._edges.values():
            if not e.lifespan.is_unbounded:
                horizon = max(horizon, e.lifespan.end)
            for label in e.properties:
                span = e.properties.timeline(label).span()
                if span is not None and not span.is_unbounded:
                    horizon = max(horizon, span.end)
        return horizon if horizon > 0 else default

    # -- mutation (builder / generator use only) ----------------------------

    def _add_vertex(self, vertex: TemporalVertex) -> None:
        self._vertices[vertex.vid] = vertex
        self._out.setdefault(vertex.vid, [])
        self._in.setdefault(vertex.vid, [])

    def _add_edge(self, edge: TemporalEdge) -> None:
        self._edges[edge.eid] = edge
        self._out.setdefault(edge.src, []).append(edge)
        self._in.setdefault(edge.dst, []).append(edge)

    # -- derived views -------------------------------------------------------

    def reversed(self) -> "TemporalGraph":
        """A copy with every edge direction flipped (shares property sets).

        Used by reverse-traversing algorithms such as Latest Departure.
        """
        rev = TemporalGraph()
        for v in self._vertices.values():
            rv = TemporalVertex(v.vid, v.lifespan)
            rv.properties = v.properties
            rev._add_vertex(rv)
        for e in self._edges.values():
            re = TemporalEdge(e.eid, e.dst, e.src, e.lifespan)
            re.properties = e.properties
            rev._add_edge(re)
        return rev

    def validate(self) -> None:
        """Check constraints 2 and 3 (constraint 1 holds by dict keying)."""
        for e in self._edges.values():
            src = self._vertices.get(e.src)
            dst = self._vertices.get(e.dst)
            if src is None or dst is None:
                raise ValueError(f"edge {e.eid!r} references missing vertex")
            if not e.lifespan.within(src.lifespan):
                raise ValueError(
                    f"edge {e.eid!r} lifespan {e.lifespan} exceeds source {src.lifespan}"
                )
            if not e.lifespan.within(dst.lifespan):
                raise ValueError(
                    f"edge {e.eid!r} lifespan {e.lifespan} exceeds sink {dst.lifespan}"
                )
            _check_property_containment(e.properties, e.lifespan, f"edge {e.eid!r}")
        for v in self._vertices.values():
            _check_property_containment(v.properties, v.lifespan, f"vertex {v.vid!r}")

    def __repr__(self) -> str:
        return f"TemporalGraph(|V|={self.num_vertices}, |E|={self.num_edges})"


def _check_property_containment(props: PropertySet, lifespan: Interval, owner: str) -> None:
    for label in props:
        for iv, _ in props.timeline(label):
            if not iv.within(lifespan):
                raise ValueError(
                    f"{owner} property {label!r} interval {iv} exceeds lifespan {lifespan}"
                )
