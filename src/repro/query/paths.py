"""Time-respecting journey enumeration (path queries, after Wu et al.).

The ICM algorithms answer *optimal* journey questions (cheapest, earliest,
fastest); analysts also ask *enumeration* questions — "show me every way
to get from A to E before t=10 in at most 4 legs".  This module provides a
bounded DFS enumerator over the interval graph with temporal pruning.

A journey is a sequence of legs ``(edge, departure)`` with
``departure_i ∈ edge_i.lifespan``, ``arrival_i = departure_i + travel_time``
and ``departure_{i+1} >= arrival_i`` (waiting is free).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Iterator, Optional

from repro.core.interval import Interval
from repro.graph.model import TemporalEdge, TemporalGraph


@dataclass(frozen=True)
class JourneyLeg:
    """One leg: traverse ``edge`` departing at ``departure``."""

    edge: TemporalEdge
    departure: int
    arrival: int
    cost: int

    def __str__(self) -> str:
        return (f"{self.edge.src} --dep {self.departure}--> "
                f"{self.edge.dst} (arr {self.arrival}, cost {self.cost})")


@dataclass(frozen=True)
class Journey:
    """A complete time-respecting journey."""

    legs: tuple[JourneyLeg, ...]

    @property
    def source(self) -> Any:
        return self.legs[0].edge.src

    @property
    def destination(self) -> Any:
        return self.legs[-1].edge.dst

    @property
    def departure(self) -> int:
        return self.legs[0].departure

    @property
    def arrival(self) -> int:
        return self.legs[-1].arrival

    @property
    def duration(self) -> int:
        return self.arrival - self.departure

    @property
    def cost(self) -> int:
        return sum(leg.cost for leg in self.legs)

    def __str__(self) -> str:
        return " ; ".join(str(leg) for leg in self.legs)


def iter_journeys(
    graph: TemporalGraph,
    source: Any,
    target: Any,
    *,
    window: Optional[Interval] = None,
    max_legs: int = 4,
    max_results: int = 1000,
    cost_label: str = "travel-cost",
    time_label: str = "travel-time",
    allow_revisits: bool = False,
) -> Iterator[Journey]:
    """Enumerate time-respecting journeys source → target.

    Parameters
    ----------
    window:
        Departures and arrivals must fall inside it (defaults to
        ``[0, time_horizon)``).
    max_legs:
        Hop bound — enumeration is exponential without one.
    max_results:
        Hard cap on yielded journeys (a safety valve, not a ranking).
    allow_revisits:
        Permit returning to an already-visited vertex (time still has to
        advance, so enumeration terminates either way).

    Departures are enumerated per edge *piece* boundary and per earliest
    feasible time — i.e. for each property regime of each edge, the first
    possible departure is taken; later departures within the same regime
    are dominated for arrival/cost purposes but can be obtained by
    shrinking ``window``.
    """
    if window is None:
        window = Interval(0, graph.time_horizon())
    yielded = 0

    def expand(vertex: Any, ready: int, visited: frozenset, legs: tuple):
        nonlocal yielded
        if yielded >= max_results or len(legs) >= max_legs:
            return
        for edge in graph.out_edges(vertex):
            if not allow_revisits and edge.dst in visited:
                continue
            usable = edge.lifespan.intersect(window)
            if usable is None:
                continue
            for piece_iv, piece in edge.pieces(usable):
                departure = max(piece_iv.start, ready)
                if departure >= piece_iv.end:
                    continue
                travel_time = piece.get(time_label, 1)
                arrival = departure + travel_time
                if arrival >= window.end:
                    continue
                leg = JourneyLeg(edge, departure, arrival, piece.get(cost_label, 1))
                new_legs = (*legs, leg)
                if edge.dst == target:
                    if yielded < max_results:
                        yielded += 1
                        yield Journey(new_legs)
                    if yielded >= max_results:
                        return
                yield from expand(
                    edge.dst, arrival, visited | {edge.dst}, new_legs
                )

    start = max(window.start, graph.vertex(source).lifespan.start)
    yield from expand(source, start, frozenset([source]), ())


def find_journeys(graph: TemporalGraph, source: Any, target: Any, **kwargs) -> list[Journey]:
    """Materialised :func:`iter_journeys`, sorted by (arrival, cost)."""
    journeys = list(iter_journeys(graph, source, target, **kwargs))
    journeys.sort(key=lambda j: (j.arrival, j.cost, len(j.legs)))
    return journeys
