"""Temporal query layer: timelines, slices, and graph/result analytics.

The paper's future work proposes "query capabilities over temporal
property graphs"; this package provides a small TGA-inspired operator set
over the library's native types.
"""

from .analytics import (
    degree_timeline,
    durable_top_k,
    edge_count_timeline,
    property_timeline,
    state_timeline,
    top_k_at,
    total_over_time,
    vertex_count_timeline,
    when_stable,
)
from .paths import Journey, JourneyLeg, find_journeys, iter_journeys
from .slice import between, edge_subgraph, temporal_slice, vertex_subgraph
from .timeline import Timeline, aggregate, align

__all__ = [
    "Timeline",
    "align",
    "aggregate",
    "temporal_slice",
    "vertex_subgraph",
    "edge_subgraph",
    "between",
    "degree_timeline",
    "durable_top_k",
    "vertex_count_timeline",
    "edge_count_timeline",
    "property_timeline",
    "state_timeline",
    "top_k_at",
    "when_stable",
    "total_over_time",
    "Journey",
    "JourneyLeg",
    "iter_journeys",
    "find_journeys",
]
