"""Timeline-valued analytics over temporal graphs and ICM results.

Glue between the graph substrate, ICM results and the timeline algebra:
degree/size evolution, property timelines, and queries over the
partitioned states an :class:`IcmResult` returns.
"""

from __future__ import annotations

from typing import Any, Callable, Optional

from repro.core.engine import IcmResult
from repro.core.interval import FOREVER, Interval
from repro.graph.model import TemporalGraph

from .timeline import Timeline, aggregate


def _clip_end(graph: TemporalGraph, iv: Interval) -> Optional[Interval]:
    horizon = graph.time_horizon()
    return iv.intersect(Interval(0, horizon))


def degree_timeline(graph: TemporalGraph, vid: Any, *, direction: str = "out") -> Timeline:
    """Piecewise-constant out-/in-degree of a vertex over its lifespan."""
    if direction == "out":
        edges = graph.out_edges(vid)
    elif direction == "in":
        edges = graph.in_edges(vid)
    else:
        raise ValueError("direction must be 'out' or 'in'")
    lifespan = graph.vertex(vid).lifespan
    bounds = {lifespan.start, lifespan.end}
    for e in edges:
        bounds.add(max(e.lifespan.start, lifespan.start))
        bounds.add(min(e.lifespan.end, lifespan.end))
    cuts = sorted(b for b in bounds if lifespan.start <= b <= lifespan.end)
    entries = []
    for lo, hi in zip(cuts, cuts[1:]):
        degree = sum(1 for e in edges if e.lifespan.contains_point(lo))
        entries.append((Interval(lo, hi), degree))
    return Timeline(entries).coalesced()


def vertex_count_timeline(graph: TemporalGraph) -> Timeline:
    """Number of alive vertices over time."""
    from repro.algorithms.ti.pagerank import vertex_count_timeline as _vct

    return Timeline(_vct(graph)).coalesced()


def edge_count_timeline(graph: TemporalGraph) -> Timeline:
    """Number of alive edges over time (boundaries at every edge event)."""
    deltas: dict[int, int] = {}
    for e in graph.edges():
        deltas[e.lifespan.start] = deltas.get(e.lifespan.start, 0) + 1
        if not e.lifespan.is_unbounded:
            deltas[e.lifespan.end] = deltas.get(e.lifespan.end, 0) - 1
    bounds = sorted(deltas)
    entries = []
    count = 0
    for idx, b in enumerate(bounds):
        count += deltas[b]
        end = bounds[idx + 1] if idx + 1 < len(bounds) else FOREVER
        if b < end:
            entries.append((Interval(b, end), count))
    return Timeline(entries).coalesced()


def property_timeline(graph: TemporalGraph, eid: Any, label: str) -> Timeline:
    """An edge property's value over time as a timeline."""
    timeline = graph.edge(eid).properties.timeline(label)
    return Timeline(timeline.entries() if timeline else [])


def state_timeline(result: IcmResult, vid: Any) -> Timeline:
    """A vertex's final ICM state as a timeline."""
    return Timeline.from_state(result.states[vid]).coalesced()


def top_k_at(result: IcmResult, t: int, k: int, *, key: Callable[[Any], Any] = None,
             reverse: bool = True) -> list[tuple[Any, Any]]:
    """The k vertices with the largest (or smallest) state value at ``t``."""
    scored = []
    for vid, state in result.states.items():
        if state.lifespan.contains_point(t):
            value = state.value_at(t)
            scored.append((vid, value))
    sort_key = (lambda pair: key(pair[1])) if key else (lambda pair: pair[1])
    scored.sort(key=sort_key, reverse=reverse)
    return scored[:k]


def when_stable(result: IcmResult, vid: Any) -> list[Interval]:
    """Maximal intervals over which the vertex's final value is constant
    (the coalesced partitions — how long each answer remains valid)."""
    return [iv for iv, _ in state_timeline(result, vid)]


def durable_top_k(
    timelines: dict[Any, Timeline],
    k: int,
    *,
    reverse: bool = True,
) -> list[tuple[Any, int, list[Interval]]]:
    """Durable top-k (after Gao et al., PVLDB 2018): rank entities by how
    *long* they stay in the top-k of a time-varying score.

    Parameters
    ----------
    timelines:
        Entity id → score timeline (gaps mean "absent", never ranked).
    k:
        Rank cut-off per instant.
    reverse:
        True ranks by largest score (default); False by smallest.

    Returns
    -------
    ``(entity, duration, intervals)`` triples sorted by total time spent
    in the top-k (descending, ties by id); ``intervals`` is the coalesced
    set of periods the entity ranked.
    """
    from repro.core.interval import coalesce as coalesce_intervals

    bounds: set[int] = set()
    for tl in timelines.values():
        for iv, _ in tl:
            bounds.add(iv.start)
            bounds.add(iv.end)
    ordered = sorted(bounds)
    membership: dict[Any, list[Interval]] = {vid: [] for vid in timelines}
    for lo, hi in zip(ordered, ordered[1:]):
        present = [
            (vid, tl.value_at(lo))
            for vid, tl in timelines.items()
            if tl.value_at(lo, default=_MISSING_SCORE) is not _MISSING_SCORE
        ]
        present.sort(key=lambda item: (item[1], repr(item[0])), reverse=reverse)
        if reverse:
            # reverse=True flips the id tiebreak too; re-sort ties by id.
            present.sort(key=lambda item: repr(item[0]))
            present.sort(key=lambda item: item[1], reverse=True)
        for vid, _ in present[:k]:
            membership[vid].append(Interval(lo, hi))
    out = []
    for vid, intervals in membership.items():
        if not intervals:
            continue
        merged = coalesce_intervals(intervals)
        duration = sum(iv.length for iv in merged)
        out.append((vid, duration, merged))
    out.sort(key=lambda item: (-item[1], repr(item[0])))
    return out


_MISSING_SCORE = object()


def total_over_time(
    result: IcmResult, fn: Callable[[list[Any]], Any]
) -> Timeline:
    """Aggregate every vertex's state pointwise over time.

    E.g. ``total_over_time(pr_result, sum)`` gives the total PageRank mass
    per interval; with ``fn=len`` it counts alive vertices.
    """
    timelines = [Timeline.from_state(state) for state in result.states.values()]
    return aggregate(timelines, fn)
