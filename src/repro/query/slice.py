"""Structural and temporal subgraph operators (TGA-style σ and τ).

These produce new :class:`TemporalGraph` values:

* :func:`temporal_slice` — clip every lifespan and property interval to a
  window (temporal selection);
* :func:`vertex_subgraph` / :func:`edge_subgraph` — keep entities
  satisfying a predicate, preserving referential integrity;
* :func:`between` — the subgraph induced by a set of vertex ids.
"""

from __future__ import annotations

from typing import Any, Callable, Iterable

from repro.core.interval import Interval
from repro.graph.model import (
    TemporalEdge,
    TemporalGraph,
    TemporalVertex,
)


def temporal_slice(graph: TemporalGraph, window: Interval) -> TemporalGraph:
    """Clip the graph to ``window``: entities outside it disappear,
    lifespans and property intervals are intersected with it."""
    out = TemporalGraph()
    for v in graph.vertices():
        lifespan = v.lifespan.intersect(window)
        if lifespan is None:
            continue
        nv = TemporalVertex(v.vid, lifespan)
        _copy_properties(v.properties, nv.properties, window)
        out._add_vertex(nv)
    for e in graph.edges():
        lifespan = e.lifespan.intersect(window)
        if lifespan is None or not (out.has_vertex(e.src) and out.has_vertex(e.dst)):
            continue
        ne = TemporalEdge(e.eid, e.src, e.dst, lifespan)
        _copy_properties(e.properties, ne.properties, window)
        out._add_edge(ne)
    out.validate()
    return out


def vertex_subgraph(
    graph: TemporalGraph, predicate: Callable[[TemporalVertex], bool]
) -> TemporalGraph:
    """Keep vertices passing ``predicate`` and the edges between them."""
    keep = {v.vid for v in graph.vertices() if predicate(v)}
    return between(graph, keep)


def edge_subgraph(
    graph: TemporalGraph, predicate: Callable[[TemporalEdge], bool]
) -> TemporalGraph:
    """Keep every vertex but only edges passing ``predicate``."""
    out = TemporalGraph()
    for v in graph.vertices():
        nv = TemporalVertex(v.vid, v.lifespan)
        _clone_properties(v.properties, nv.properties)
        out._add_vertex(nv)
    for e in graph.edges():
        if predicate(e):
            ne = TemporalEdge(e.eid, e.src, e.dst, e.lifespan)
            _clone_properties(e.properties, ne.properties)
            out._add_edge(ne)
    out.validate()
    return out


def between(graph: TemporalGraph, vertex_ids: Iterable[Any]) -> TemporalGraph:
    """The subgraph induced by ``vertex_ids``."""
    keep = set(vertex_ids)
    out = TemporalGraph()
    # Sorted, not set order: the result graph's vertex enumeration order
    # feeds engine runs, so it must not vary with PYTHONHASHSEED.
    for vid in sorted(keep, key=repr):
        if graph.has_vertex(vid):
            v = graph.vertex(vid)
            nv = TemporalVertex(v.vid, v.lifespan)
            _clone_properties(v.properties, nv.properties)
            out._add_vertex(nv)
    for e in graph.edges():
        if e.src in keep and e.dst in keep:
            ne = TemporalEdge(e.eid, e.src, e.dst, e.lifespan)
            _clone_properties(e.properties, ne.properties)
            out._add_edge(ne)
    out.validate()
    return out


def _copy_properties(src, dst, window: Interval) -> None:
    for label in src:
        for iv, value in src.timeline(label):
            common = iv.intersect(window)
            if common is not None:
                dst.add(label, common, value)


def _clone_properties(src, dst) -> None:
    # Deep-copy into the entity's own property map: sharing the source's
    # object would let a subgraph mutation corrupt the original graph.
    for label in src:
        for iv, value in src.timeline(label):
            dst.add(label, iv, value)
