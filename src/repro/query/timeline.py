"""Timelines: interval-valued time series and their algebra.

The paper's future work calls for "query capabilities over temporal
property graphs"; the natural value type of such queries is a *timeline* —
a sorted sequence of non-overlapping ``(interval, value)`` pairs, possibly
with gaps (unlike :class:`~repro.core.state.PartitionedState`, which must
cover a lifespan).  Timelines support the temporal-relational operations
of Moffitt & Stoyanovich's temporal graph algebra: selection, mapping,
temporal join, and n-ary alignment/aggregation via a boundary sweep.
"""

from __future__ import annotations

from bisect import bisect_right
from typing import Any, Callable, Iterable, Iterator, Optional, Sequence

from repro.core.interval import Interval
from repro.core.state import PartitionedState


class Timeline:
    """A sorted, non-overlapping, possibly gappy interval-value series."""

    __slots__ = ("_entries",)

    def __init__(self, entries: Iterable[tuple[Interval, Any]] = ()):
        ordered = sorted(entries, key=lambda e: (e[0].start, e[0].end))
        for (a, _), (b, _) in zip(ordered, ordered[1:]):
            if a.overlaps(b):
                raise ValueError(f"timeline entries overlap: {a} and {b}")
        self._entries: list[tuple[Interval, Any]] = ordered

    # -- constructors ------------------------------------------------------

    @classmethod
    def constant(cls, interval: Interval, value: Any) -> "Timeline":
        return cls([(interval, value)])

    @classmethod
    def from_state(cls, state: PartitionedState) -> "Timeline":
        """View a vertex's final partitioned state as a timeline."""
        return cls(state.partitions())

    # -- access --------------------------------------------------------------

    def __len__(self) -> int:
        return len(self._entries)

    def __iter__(self) -> Iterator[tuple[Interval, Any]]:
        return iter(self._entries)

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Timeline) and self._entries == other._entries

    def entries(self) -> list[tuple[Interval, Any]]:
        """All ``(interval, value)`` entries in time order."""
        return list(self._entries)

    def value_at(self, t: int, default: Any = None) -> Any:
        """The value at time-point ``t``, or ``default`` in a gap."""
        idx = bisect_right([iv.start for iv, _ in self._entries], t) - 1
        if idx >= 0 and self._entries[idx][0].contains_point(t):
            return self._entries[idx][1]
        return default

    def span(self) -> Optional[Interval]:
        """Hull from first start to last end, or ``None`` when empty."""
        if not self._entries:
            return None
        return Interval(self._entries[0][0].start, self._entries[-1][0].end)

    def is_covering(self) -> bool:
        """True when the entries are contiguous (no interior gaps)."""
        return all(
            a.end == b.start
            for (a, _), (b, _) in zip(self._entries, self._entries[1:])
        )

    # -- unary operators ---------------------------------------------------

    def map(self, fn: Callable[[Any], Any]) -> "Timeline":
        """Apply ``fn`` to every value (temporal projection)."""
        return Timeline((iv, fn(v)) for iv, v in self._entries)

    def filter(self, predicate: Callable[[Any], bool]) -> "Timeline":
        """Keep entries whose value satisfies ``predicate`` (selection)."""
        return Timeline((iv, v) for iv, v in self._entries if predicate(v))

    def when(self, predicate: Callable[[Any], bool]) -> list[Interval]:
        """Coalesced intervals during which the predicate holds."""
        from repro.core.interval import coalesce

        return coalesce(iv for iv, v in self._entries if predicate(v))

    def clip(self, window: Interval) -> "Timeline":
        """Restrict to ``window`` (temporal slice)."""
        out = []
        for iv, v in self._entries:
            common = iv.intersect(window)
            if common is not None:
                out.append((common, v))
        return Timeline(out)

    def coalesced(self) -> "Timeline":
        """Merge adjacent entries with equal values (temporal coalescing)."""
        if not self._entries:
            return self
        out = [self._entries[0]]
        for iv, v in self._entries[1:]:
            last_iv, last_v = out[-1]
            if last_iv.end == iv.start and last_v == v:
                out[-1] = (Interval(last_iv.start, iv.end), v)
            else:
                out.append((iv, v))
        return Timeline(out)

    # -- binary / n-ary operators ----------------------------------------------

    def join(self, other: "Timeline", fn: Callable[[Any, Any], Any]) -> "Timeline":
        """Temporal inner join: ``fn(a, b)`` over every overlap."""
        from repro.core.warp import time_join

        return Timeline(
            (iv, fn(a, b))
            for iv, a, b in time_join(self._entries, other.entries())
        ).coalesced()

    def __repr__(self) -> str:
        inner = ", ".join(f"{iv}={v!r}" for iv, v in self._entries)
        return f"Timeline({inner})"


def align(timelines: Sequence[Timeline]) -> list[tuple[Interval, list[Any]]]:
    """Boundary-sweep alignment of many timelines.

    Returns elementary intervals (between consecutive boundaries of any
    input) with the list of values present during each; intervals where no
    timeline has a value are omitted.
    """
    bounds: set[int] = set()
    for tl in timelines:
        for iv, _ in tl:
            bounds.add(iv.start)
            bounds.add(iv.end)
    ordered = sorted(bounds)
    out: list[tuple[Interval, list[Any]]] = []
    for lo, hi in zip(ordered, ordered[1:]):
        present = []
        for tl in timelines:
            value = tl.value_at(lo, default=_MISSING)
            if value is not _MISSING:
                present.append(value)
        if present:
            out.append((Interval(lo, hi), present))
    return out


_MISSING = object()


def aggregate(
    timelines: Sequence[Timeline],
    fn: Callable[[Sequence[Any]], Any],
) -> Timeline:
    """Temporal group-by-time aggregation: ``fn`` over co-existing values.

    E.g. ``aggregate(degree_timelines, sum)`` yields the total degree over
    time, with boundaries wherever any input changes.
    """
    return Timeline(
        (iv, fn(values)) for iv, values in align(timelines)
    ).coalesced()
