"""Execution tracing: observe an ICM run superstep by superstep.

Attach an :class:`ExecutionTracer` to the engine to record every compute
invocation, scatter call and message send, then render a textual trace in
the style of the paper's Fig. 2 — invaluable when debugging a temporal
algorithm whose states repartition in non-obvious ways.

>>> from repro import api
>>> tracer = ExecutionTracer()
>>> engine = api.build_engine(graph, program, options={"tracer": tracer})
>>> result = engine.run()
>>> print(tracer.render())              # doctest: +SKIP
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Optional

from .interval import Interval


@dataclass(frozen=True)
class ComputeEvent:
    superstep: int
    vertex: Any
    interval: Interval
    state: Any
    messages: tuple

    def __str__(self) -> str:
        msgs = ", ".join(repr(m) for m in self.messages)
        return (f"compute {self.vertex!r} @ {self.interval} "
                f"state={self.state!r} msgs=[{msgs}]")


@dataclass(frozen=True)
class ScatterEvent:
    superstep: int
    vertex: Any
    edge: Any
    interval: Interval
    state: Any

    def __str__(self) -> str:
        return (f"scatter {self.vertex!r} edge={self.edge!r} "
                f"@ {self.interval} state={self.state!r}")


@dataclass(frozen=True)
class SendEvent:
    superstep: int
    src: Any
    dst: Any
    interval: Interval
    value: Any

    def __str__(self) -> str:
        return f"send {self.src!r} -> {self.dst!r} @ {self.interval} value={self.value!r}"


@dataclass
class ExecutionTracer:
    """Collects engine events; cheap no-op methods when not attached."""

    computes: list[ComputeEvent] = field(default_factory=list)
    scatters: list[ScatterEvent] = field(default_factory=list)
    sends: list[SendEvent] = field(default_factory=list)

    # -- hooks (called by the engine) -----------------------------------------

    def on_compute(self, superstep: int, vertex: Any, interval: Interval,
                   state: Any, messages) -> None:
        self.computes.append(
            ComputeEvent(superstep, vertex, interval, state, tuple(messages))
        )

    def on_scatter(self, superstep: int, vertex: Any, edge: Any,
                   interval: Interval, state: Any) -> None:
        self.scatters.append(ScatterEvent(superstep, vertex, edge, interval, state))

    def on_send(self, superstep: int, src: Any, dst: Any,
                interval: Interval, value: Any) -> None:
        self.sends.append(SendEvent(superstep, src, dst, interval, value))

    # -- queries ---------------------------------------------------------------

    def supersteps(self) -> list[int]:
        steps = {e.superstep for e in (*self.computes, *self.scatters, *self.sends)}
        return sorted(steps)

    def computes_of(self, vertex: Any, superstep: Optional[int] = None) -> list[ComputeEvent]:
        return [
            e for e in self.computes
            if e.vertex == vertex and (superstep is None or e.superstep == superstep)
        ]

    def messages_between(self, src: Any, dst: Any) -> list[SendEvent]:
        return [e for e in self.sends if e.src == src and e.dst == dst]

    # -- rendering ----------------------------------------------------------

    def render(self, *, vertices: Optional[set] = None) -> str:
        """A Fig-2-style trace: per superstep, the computes, scatters and
        sends (optionally restricted to some vertices)."""

        def keep(vid) -> bool:
            return vertices is None or vid in vertices

        lines: list[str] = []
        for step in self.supersteps():
            lines.append(f"=== superstep {step} ===")
            for e in self.computes:
                if e.superstep == step and keep(e.vertex):
                    lines.append(f"  {e}")
            for e in self.scatters:
                if e.superstep == step and keep(e.vertex):
                    lines.append(f"  {e}")
            for e in self.sends:
                if e.superstep == step and (keep(e.src) or keep(e.dst)):
                    lines.append(f"  {e}")
        return "\n".join(lines)
