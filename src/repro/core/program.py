"""The interval-centric user-logic API (paper Sec. IV-A3).

Users subclass :class:`IntervalProgram` and provide:

* ``init(ctx)`` — called once per vertex before superstep 1 to seed the
  vertex's partitioned state;
* ``compute(ctx, interval, state, messages)`` — called once per active
  vertex sub-interval with the time-aligned prior state and the warped group
  of message values;
* ``scatter(ctx, edge, interval, state)`` — called once per
  ``(updated state ∩ edge property piece)`` sub-interval, returning interval
  messages for the edge's sink (or ``None`` to forward the state verbatim).

Because warp guarantees the alignment, compute logic is near-identical to a
non-temporal vertex-centric program (compare Alg. 1 with Pregel SSSP).
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Any, Callable, Iterable, Optional, Union

from .combiner import MessageCombiner
from .interval import Interval
from .messages import IntervalMessage

#: What ``scatter`` may return per invocation: nothing (no message), or any
#: mix of :class:`IntervalMessage` and ``(Interval, value)`` pairs.
ScatterResult = Optional[Iterable[Union[IntervalMessage, tuple[Interval, Any]]]]


class IntervalProgram(ABC):
    """Base class for interval-centric algorithms."""

    #: Human-readable algorithm name (used in metrics and reports).
    name: str = "icm-program"

    #: Optional associative/commutative message combiner.  When set, the
    #: engine applies it receiver-side on identical intervals and inline in
    #: warp (the "warp combiner"), so ``compute`` receives a single folded
    #: value per group.
    combiner: Optional[MessageCombiner] = None

    #: When set, the engine keeps *every* vertex active for supersteps
    #: ``1..fixed_supersteps`` and stops after — the execution style of
    #: PR (10), TC (3) and LCC (4) in the paper.
    fixed_supersteps: Optional[int] = None

    #: Declares that re-delivering old messages can never corrupt the
    #: state (monotone folds like min/max/or): required by the streaming
    #: engine's incremental recomputation.  Fixed-superstep programs and
    #: aggregating folds must leave this False.
    incremental_safe: bool = False

    def init(self, ctx: "VertexContext") -> None:  # noqa: D401 (imperative)
        """Seed the vertex state; default leaves the state as ``None``."""

    @abstractmethod
    def compute(
        self,
        ctx: "VertexContext",
        interval: Interval,
        state: Any,
        messages: list[Any],
    ) -> None:
        """Update state for one active sub-interval.

        ``messages`` holds the *payload values* of the warped message group
        — each is valid over all of ``interval``.  With a combiner set, it
        is a single-element list holding the folded value.  In superstep 1
        it is empty and ``interval`` spans the vertex lifespan partitions.
        """

    def scatter(
        self,
        ctx: "VertexContext",
        edge: "EdgeContext",
        interval: Interval,
        state: Any,
    ) -> ScatterResult:
        """Produce messages for one updated-state × edge-piece overlap.

        The default forwards the updated state over the same interval,
        matching the paper's "if scatter itself is not provided" rule.
        """
        return [(interval, state)]

    def aggregators(self) -> dict[str, Callable[[Any, Any], Any]]:
        """Named global reduce functions (Giraph aggregator analogue)."""
        return {}

    def master_compute(self, master: "MasterContext") -> None:
        """Between-superstep coordination hook (Giraph MasterCompute)."""


# Imported at the bottom to break the program ↔ context cycle for typing.
from .context import EdgeContext, MasterContext, VertexContext  # noqa: E402
