"""Interval messages exchanged between interval-vertices (paper Sec. VI).

A message is a payload tagged with the time-interval for which it is valid.
Payloads are opaque to the engine; algorithms choose plain ints, tuples or
small dataclasses.
"""

from __future__ import annotations

from typing import Any

from .interval import Interval


class IntervalMessage:
    """An immutable ``(interval, value)`` pair addressed to a vertex."""

    __slots__ = ("interval", "value")

    def __init__(self, interval: Interval, value: Any):
        object.__setattr__(self, "interval", interval)
        object.__setattr__(self, "value", value)

    def __setattr__(self, name: str, value) -> None:
        raise AttributeError("IntervalMessage is immutable")

    def __reduce__(self):
        # Same pickling story as Interval: the immutability guard blocks
        # default slot restoration, so rebuild through the constructor.
        return (IntervalMessage, (self.interval, self.value))

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, IntervalMessage)
            and self.interval == other.interval
            and self.value == other.value
        )

    def __hash__(self) -> int:
        try:
            return hash((self.interval, self.value))
        except TypeError:  # unhashable payload
            return hash(self.interval)

    def __repr__(self) -> str:
        return f"Msg({self.interval}, {self.value!r})"


def message(start: int, end: int, value: Any) -> IntervalMessage:
    """Convenience constructor used heavily by algorithms and tests."""
    return IntervalMessage(Interval(start, end), value)


def unit_message_fraction(messages: list[IntervalMessage]) -> float:
    """Fraction of messages whose interval covers exactly one time-point.

    Drives warp suppression (paper Sec. VI): when most inbound messages are
    unit-length there is nothing to share and warp's overhead is skipped.
    """
    if not messages:
        return 0.0
    units = sum(1 for m in messages if m.interval.is_unit)
    return units / len(messages)
