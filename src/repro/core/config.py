"""Engine configuration: one frozen dataclass tree instead of 16 kwargs.

:class:`EngineConfig` groups the :class:`~repro.core.engine.IntervalCentricEngine`
knobs the way the paper discusses them — warp/combiner optimisations
(Sec. VI), state partitioning (Sec. IV footnote 2), execution backend,
durability, and observability — and is **frozen**: a config can be shared
between engines (SCC's peeling loop, the streaming engine's refreshes)
without one run mutating another's settings.

Environment resolution lives in exactly one documented place,
:meth:`EngineConfig.from_env`:

============================  =================================================
``REPRO_EXECUTOR``            ``serial`` | ``parallel`` → ``executor.kind``
``REPRO_EXECUTOR_PROCESSES``  positive int → ``executor.processes``
``REPRO_FAULT_PLAN``          ``kill:W@S`` / ``seed:N`` → ``executor.fault_plan``
``REPRO_CHECKPOINT_EVERY``    non-negative int → ``checkpoint.every`` (0 = off)
``REPRO_CHECKPOINT_DIR``      path → ``checkpoint.dir``
``REPRO_PARTITIONER``         ``hash`` | ``range`` | ``greedy`` |
                              ``interval_greedy`` → ``partitioning.kind``
``REPRO_EXCHANGE``            ``star`` | ``peer`` → ``exchange.topology``
``REPRO_SERVE_CONCURRENCY``   positive int → ``serve.max_concurrency``
``REPRO_SERVE_QUEUE_DEPTH``   non-negative int → ``serve.max_queue_depth``
``REPRO_SERVE_CACHE_BYTES``   non-negative int → ``serve.cache_bytes``
``REPRO_SERVE_TIMEOUT_S``     positive float → ``serve.default_timeout_s``
============================  =================================================

Every variable is validated eagerly — a typo fails loudly, naming the
variable, instead of silently running the wrong configuration.  A config
built by plain ``EngineConfig(...)`` is hermetic (no environment reads);
the engine only consults the environment when no config is given, via
``from_env()``.

Observability settings (``observability``) never influence the computation
and are deliberately excluded from the checkpoint config fingerprint
(`repro.runtime.checkpoint.config_fingerprint`).
"""

from __future__ import annotations

import dataclasses
import os
import warnings
from dataclasses import dataclass, field
from typing import Any, Mapping, Optional

__all__ = [
    "CheckpointConfig",
    "EngineConfig",
    "ExchangeConfig",
    "ExecutorConfig",
    "ObservabilityConfig",
    "PartitioningConfig",
    "ServeConfig",
    "StateConfig",
    "WarpConfig",
]

#: Valid barrier-exchange topologies (`repro.runtime.executor`).
_EXCHANGE_TOPOLOGIES = ("star", "peer")

#: Duplicated from ``repro.runtime.partitioner.PARTITIONER_KINDS`` so config
#: validation stays import-cycle-free; ``test_cluster_partitioner`` pins the
#: two tuples equal.
_PARTITIONER_KINDS = ("hash", "range", "greedy", "interval_greedy")


@dataclass(frozen=True)
class WarpConfig:
    """Time-warp and combiner optimisations (paper Sec. VI).

    Defaults match the paper's experiments: all combiners on, warp
    suppression on with a 0.70 unit-message threshold.
    """

    #: Apply the program's combiner inline during the warp merge.
    enable_combiner: bool = True
    #: Fold identical-interval messages receiver-side before the warp.
    enable_receiver_combiner: bool = True
    #: Drop messages dominated by another under a selective combiner.
    enable_dominated_elimination: bool = True
    #: Skip warp for time-point execution on unit-message-heavy vertices.
    enable_suppression: bool = True
    #: Minimum unit-length message fraction that triggers suppression.
    suppression_threshold: float = 0.70
    #: Cap on time-point expansion (× live messages) before suppression
    #: is abandoned for that vertex.
    suppression_expansion_cap: int = 4


@dataclass(frozen=True)
class StateConfig:
    """Partitioned-state handling."""

    #: Merge adjacent equal-valued state partitions after updates.
    coalesce: bool = True
    #: Pre-split states on static vertex-property boundaries (paper
    #: footnote 2: the *interval property vertex* computing unit).
    prepartition_by_properties: bool = False


@dataclass(frozen=True)
class ExecutorConfig:
    """Execution backend selection.

    ``kind`` is ``"serial"``, ``"parallel"``, an executor instance, or
    ``None`` (the engine then reads ``REPRO_EXECUTOR`` at run time for
    backwards compatibility; :meth:`EngineConfig.from_env` resolves it
    eagerly instead).  ``fault_plan`` is a spec string (``kill:W@S`` /
    ``seed:N``) or a :class:`~repro.runtime.faults.FaultPlan`; spec
    strings are parsed into a fresh plan per run so one config can arm
    many runs.
    """

    kind: Any = None
    processes: Optional[int] = None
    fault_plan: Any = None
    #: True when :meth:`EngineConfig.from_env` filled ``kind`` from
    #: ``REPRO_EXECUTOR`` rather than an explicit caller choice — an
    #: env-forced parallel executor yields to an in-process tracer
    #: instead of erroring (sweep-wide defaults must not break traced
    #: tests), while an explicitly requested one still errors.
    kind_from_env: bool = False

    def __post_init__(self):
        if isinstance(self.kind, str) and self.kind not in ("serial", "parallel"):
            raise ValueError(
                f"executor kind {self.kind!r} unknown (expected 'serial' or 'parallel')"
            )
        if self.processes is not None and self.processes < 1:
            raise ValueError(
                f"executor processes must be >= 1, got {self.processes}"
            )


@dataclass(frozen=True)
class ExchangeConfig:
    """Parallel barrier data plane (`repro.runtime.executor`).

    ``topology`` picks how cross-process message batches travel at the
    barrier: ``"star"`` routes every batch worker→master→worker inside the
    step-result dict (the historical layout), ``"peer"`` gives workers
    direct pipe pairs so batch bytes cross the wire exactly once — the
    Giraph-style netty exchange, with the master still owning the barrier,
    aggregates, and fault supervision.  ``combine`` enables count-preserving
    sender-side combining for selective combiners (results stay bit-identical
    either way; the serial executor ignores this group entirely).
    """

    topology: str = "star"
    combine: bool = True

    def __post_init__(self):
        if self.topology not in _EXCHANGE_TOPOLOGIES:
            raise ValueError(
                f"exchange topology {self.topology!r} unknown "
                f"(expected one of {', '.join(_EXCHANGE_TOPOLOGIES)})"
            )


@dataclass(frozen=True)
class PartitioningConfig:
    """Vertex→worker placement (`repro.runtime.partitioner`).

    ``kind=None`` keeps whatever partitioner the cluster already carries
    (the historical CRC32 hash partitioner by default); naming a kind makes
    the engine build that partitioner for its graph at construction time.
    ``seed`` perturbs hash/greedy placement deterministically and
    ``capacity_slack`` is the LDG balance budget (≥ 1.0; 1.1 follows
    Stanton & Kliot).
    """

    kind: Optional[str] = None
    seed: int = 0
    capacity_slack: float = 1.1
    #: True when :meth:`EngineConfig.from_env` filled ``kind`` from
    #: ``REPRO_PARTITIONER`` rather than an explicit caller choice — an
    #: env-forced kind yields to a partitioner the caller installed on the
    #: cluster directly (sweep-wide defaults must not override explicit
    #: placements), while an explicitly configured one wins.
    kind_from_env: bool = False

    def __post_init__(self):
        if self.kind is not None and self.kind not in _PARTITIONER_KINDS:
            raise ValueError(
                f"partitioner kind {self.kind!r} unknown "
                f"(expected one of {', '.join(_PARTITIONER_KINDS)})"
            )
        if self.capacity_slack < 1.0:
            raise ValueError(
                f"partitioner capacity_slack must be >= 1.0, "
                f"got {self.capacity_slack!r}"
            )


@dataclass(frozen=True)
class CheckpointConfig:
    """Barrier-synchronized durability (`repro.runtime.checkpoint`).

    ``every=None`` leaves checkpointing off (``from_env`` fills it from
    ``REPRO_CHECKPOINT_EVERY``); ``every=0`` disables it *explicitly*,
    overriding any environment default.
    """

    every: Optional[int] = None
    dir: Optional[str] = None
    #: Worker-process deaths absorbed by rollback before giving up.
    max_restarts: int = 2

    def __post_init__(self):
        if self.every is not None and self.every < 0:
            raise ValueError(f"checkpoint_every must be >= 0, got {self.every}")
        if self.max_restarts < 0:
            raise ValueError(f"max_restarts must be >= 0, got {self.max_restarts}")


@dataclass(frozen=True)
class ServeConfig:
    """The query-serving tier (`repro.serve`).

    Governs a long-lived :class:`~repro.serve.GraphService`: how many
    queries may execute concurrently (``max_concurrency`` warm execution
    lanes, each with its own resident executor), how many may wait behind
    them (``max_queue_depth``; exceeding it rejects with
    :class:`~repro.serve.QueueFullError`), the result cache's byte budget
    (``cache_bytes``; 0 disables caching), and the default per-query
    deadline (``default_timeout_s``; ``None`` means no deadline — a query
    can still set its own).  Like observability, none of this influences
    what a query *computes*, only how the service schedules and caches it.
    """

    max_concurrency: int = 1
    max_queue_depth: int = 8
    cache_bytes: int = 16 * 1024 * 1024
    default_timeout_s: Optional[float] = None

    def __post_init__(self):
        if self.max_concurrency < 1:
            raise ValueError(
                f"serve max_concurrency must be >= 1, got {self.max_concurrency}"
            )
        if self.max_queue_depth < 0:
            raise ValueError(
                f"serve max_queue_depth must be >= 0, got {self.max_queue_depth}"
            )
        if self.cache_bytes < 0:
            raise ValueError(
                f"serve cache_bytes must be >= 0, got {self.cache_bytes}"
            )
        if self.default_timeout_s is not None and self.default_timeout_s <= 0:
            raise ValueError(
                f"serve default_timeout_s must be positive, "
                f"got {self.default_timeout_s}"
            )


@dataclass(frozen=True)
class ObservabilityConfig:
    """What the run reports, never what it computes.

    ``observers`` are :class:`~repro.obs.observers.RunObserver` instances
    receiving every structured :class:`~repro.obs.events.RunEvent`;
    ``trace_path`` appends the events as JSON-lines; ``tracer`` is the
    vertex-level :class:`~repro.core.tracing.ExecutionTracer` detail layer
    (serial executor only).  None of this enters the checkpoint config
    fingerprint — a traced run can resume an untraced run's checkpoint.
    """

    observers: tuple = ()
    trace_path: Optional[str] = None
    tracer: Any = None

    @property
    def enabled(self) -> bool:
        """Whether any structured-event consumer is configured."""
        return bool(self.observers) or self.trace_path is not None

    def merged_with(self, other: "ObservabilityConfig") -> "ObservabilityConfig":
        """Combine two observability configs (``other`` wins on scalars)."""
        return ObservabilityConfig(
            observers=(*self.observers, *other.observers),
            trace_path=other.trace_path or self.trace_path,
            tracer=other.tracer if other.tracer is not None else self.tracer,
        )

    @classmethod
    def coerce(cls, observe: Any) -> "ObservabilityConfig":
        """Normalise the facade's ``observe=`` argument.

        Accepts an :class:`ObservabilityConfig`, a single observer (any
        object with ``on_event``), a trace-file path, or an iterable of
        observers.
        """
        if observe is None:
            return cls()
        if isinstance(observe, cls):
            return observe
        if isinstance(observe, (str, os.PathLike)):
            return cls(trace_path=os.fspath(observe))
        if hasattr(observe, "on_event"):
            return cls(observers=(observe,))
        try:
            observers = tuple(observe)
        except TypeError:
            raise TypeError(
                f"cannot interpret observe={observe!r}: expected an "
                "ObservabilityConfig, a RunObserver, a trace path, or an "
                "iterable of observers"
            ) from None
        for item in observers:
            if not hasattr(item, "on_event"):
                raise TypeError(
                    f"observer {item!r} has no on_event method"
                )
        return cls(observers=observers)


# -- environment parsing (the one documented place) ----------------------------


def _env_int(env: Mapping[str, str], name: str, *, minimum: int) -> Optional[int]:
    raw = env.get(name)
    if not raw:
        return None
    kind = "positive" if minimum > 0 else "non-negative"
    try:
        value = int(raw)
    except ValueError:
        raise ValueError(
            f"invalid {name}={raw!r} (expected a {kind} integer)"
        ) from None
    if value < minimum:
        raise ValueError(f"invalid {name}={raw!r} (expected a {kind} integer)")
    return value


def _env_float(
    env: Mapping[str, str], name: str, *, positive: bool = True
) -> Optional[float]:
    raw = env.get(name)
    if not raw:
        return None
    try:
        value = float(raw)
    except ValueError:
        raise ValueError(
            f"invalid {name}={raw!r} (expected a positive number)"
        ) from None
    if positive and value <= 0:
        raise ValueError(f"invalid {name}={raw!r} (expected a positive number)")
    return value


def _env_executor_kind(env: Mapping[str, str]) -> Optional[str]:
    raw = env.get("REPRO_EXECUTOR")
    if not raw:
        return None
    if raw not in ("serial", "parallel"):
        raise ValueError(
            f"unknown executor in REPRO_EXECUTOR={raw!r} "
            "(expected 'serial' or 'parallel')"
        )
    return raw


def _env_partitioner_kind(env: Mapping[str, str]) -> Optional[str]:
    raw = env.get("REPRO_PARTITIONER")
    if not raw:
        return None
    if raw not in _PARTITIONER_KINDS:
        raise ValueError(
            f"unknown partitioner in REPRO_PARTITIONER={raw!r} "
            f"(expected one of {', '.join(_PARTITIONER_KINDS)})"
        )
    return raw


def _env_exchange_topology(env: Mapping[str, str]) -> Optional[str]:
    raw = env.get("REPRO_EXCHANGE")
    if not raw:
        return None
    if raw not in _EXCHANGE_TOPOLOGIES:
        raise ValueError(
            f"unknown exchange topology in REPRO_EXCHANGE={raw!r} "
            f"(expected one of {', '.join(_EXCHANGE_TOPOLOGIES)})"
        )
    return raw


def _env_fault_plan(env: Mapping[str, str]) -> Optional[str]:
    raw = env.get("REPRO_FAULT_PLAN")
    if not raw:
        return None
    from repro.runtime.faults import FaultPlan

    try:
        FaultPlan.parse(raw)  # eager validation only; parsed fresh per run
    except ValueError as exc:
        raise ValueError(f"invalid REPRO_FAULT_PLAN: {exc}") from None
    return raw


def _serve_queue_depth_env(env: Mapping[str, str]) -> int:
    value = _env_int(env, "REPRO_SERVE_QUEUE_DEPTH", minimum=0)
    return ServeConfig.max_queue_depth if value is None else value


def _serve_cache_bytes_env(env: Mapping[str, str]) -> int:
    value = _env_int(env, "REPRO_SERVE_CACHE_BYTES", minimum=0)
    return ServeConfig.cache_bytes if value is None else value


#: Legacy ``IntervalCentricEngine`` kwarg → (config group, field).  The one
#: mapping table behind the deprecation shim, ``icm_options`` dicts, and the
#: CLI flags.
_OPTION_MAP: dict[str, tuple[Optional[str], str]] = {
    "enable_warp_combiner": ("warp", "enable_combiner"),
    "enable_receiver_combiner": ("warp", "enable_receiver_combiner"),
    "enable_dominated_elimination": ("warp", "enable_dominated_elimination"),
    "enable_warp_suppression": ("warp", "enable_suppression"),
    "warp_suppression_threshold": ("warp", "suppression_threshold"),
    "suppression_expansion_cap": ("warp", "suppression_expansion_cap"),
    "coalesce_states": ("state", "coalesce"),
    "prepartition_by_vertex_properties": ("state", "prepartition_by_properties"),
    "executor": ("executor", "kind"),
    "executor_processes": ("executor", "processes"),
    "fault_plan": ("executor", "fault_plan"),
    "exchange": ("exchange", "topology"),
    "exchange_combine": ("exchange", "combine"),
    "partitioner": ("partitioning", "kind"),
    "partitioner_seed": ("partitioning", "seed"),
    "partitioner_slack": ("partitioning", "capacity_slack"),
    "checkpoint_every": ("checkpoint", "every"),
    "checkpoint_dir": ("checkpoint", "dir"),
    "max_restarts": ("checkpoint", "max_restarts"),
    "serve_max_concurrency": ("serve", "max_concurrency"),
    "serve_queue_depth": ("serve", "max_queue_depth"),
    "serve_cache_bytes": ("serve", "cache_bytes"),
    "serve_timeout_s": ("serve", "default_timeout_s"),
    "tracer": ("observability", "tracer"),
    "trace_path": ("observability", "trace_path"),
    "max_supersteps": (None, "max_supersteps"),
}

_GROUP_CLASS_NAMES = {
    "warp": "WarpConfig",
    "state": "StateConfig",
    "executor": "ExecutorConfig",
    "exchange": "ExchangeConfig",
    "partitioning": "PartitioningConfig",
    "checkpoint": "CheckpointConfig",
    "serve": "ServeConfig",
    "observability": "ObservabilityConfig",
}


@dataclass(frozen=True)
class EngineConfig:
    """The complete, immutable configuration of an interval-centric run."""

    warp: WarpConfig = field(default_factory=WarpConfig)
    state: StateConfig = field(default_factory=StateConfig)
    executor: ExecutorConfig = field(default_factory=ExecutorConfig)
    exchange: ExchangeConfig = field(default_factory=ExchangeConfig)
    partitioning: PartitioningConfig = field(default_factory=PartitioningConfig)
    checkpoint: CheckpointConfig = field(default_factory=CheckpointConfig)
    serve: ServeConfig = field(default_factory=ServeConfig)
    observability: ObservabilityConfig = field(default_factory=ObservabilityConfig)
    #: Safety valve; exceeding it raises ``RuntimeError``.
    max_supersteps: int = 100_000

    @classmethod
    def from_env(cls, env: Optional[Mapping[str, str]] = None) -> "EngineConfig":
        """Defaults plus every ``REPRO_*`` runtime variable, validated.

        This is the *only* place the engine stack reads its environment
        knobs; anything built here is explicit from then on.
        """
        if env is None:
            env = os.environ
        kind = _env_executor_kind(env)
        partitioner_kind = _env_partitioner_kind(env)
        return cls(
            executor=ExecutorConfig(
                kind=kind,
                processes=_env_int(env, "REPRO_EXECUTOR_PROCESSES", minimum=1),
                fault_plan=_env_fault_plan(env),
                kind_from_env=kind is not None,
            ),
            exchange=ExchangeConfig(
                topology=_env_exchange_topology(env) or "star",
            ),
            partitioning=PartitioningConfig(
                kind=partitioner_kind,
                kind_from_env=partitioner_kind is not None,
            ),
            checkpoint=CheckpointConfig(
                every=_env_int(env, "REPRO_CHECKPOINT_EVERY", minimum=0),
                dir=env.get("REPRO_CHECKPOINT_DIR") or None,
            ),
            serve=ServeConfig(
                max_concurrency=_env_int(
                    env, "REPRO_SERVE_CONCURRENCY", minimum=1
                ) or ServeConfig.max_concurrency,
                max_queue_depth=_serve_queue_depth_env(env),
                cache_bytes=_serve_cache_bytes_env(env),
                default_timeout_s=_env_float(env, "REPRO_SERVE_TIMEOUT_S"),
            ),
        )

    def with_options(self, **options: Any) -> "EngineConfig":
        """A copy with flat engine-option overrides applied.

        ``options`` uses the flat legacy kwarg names (``executor``,
        ``checkpoint_every``, ``enable_warp_combiner``, …) — the
        programmatic twin of the CLI flags and of ``icm_options`` dicts.
        Unknown names raise ``TypeError``.
        """
        if not options:
            return self
        group_overrides: dict[str, dict[str, Any]] = {}
        top_overrides: dict[str, Any] = {}
        for name, value in options.items():
            target = _OPTION_MAP.get(name)
            if target is None:
                raise TypeError(f"unknown engine option {name!r}")
            group, fld = target
            if group is None:
                top_overrides[fld] = value
            else:
                group_overrides.setdefault(group, {})[fld] = value
        replacements: dict[str, Any] = dict(top_overrides)
        for group, fields in group_overrides.items():
            if group in ("executor", "partitioning") and "kind" in fields:
                # An explicit kind choice is never env-sourced.
                fields.setdefault("kind_from_env", False)
            replacements[group] = dataclasses.replace(
                getattr(self, group), **fields
            )
        return dataclasses.replace(self, **replacements)

    def with_legacy_kwargs(self, **kwargs: Any) -> "EngineConfig":
        """The deprecation shim: legacy engine kwargs → config fields.

        Emits one :class:`DeprecationWarning` per kwarg, naming the
        replacement field, then applies :meth:`with_options`.
        """
        for name in kwargs:
            target = _OPTION_MAP.get(name)
            if target is None:
                raise TypeError(
                    f"IntervalCentricEngine got an unexpected keyword "
                    f"argument {name!r}"
                )
            group, fld = target
            if group is None:
                replacement = f"EngineConfig({fld}=...)"
            else:
                replacement = (
                    f"EngineConfig({group}={_GROUP_CLASS_NAMES[group]}({fld}=...))"
                )
            warnings.warn(
                f"IntervalCentricEngine(..., {name}=...) is deprecated; "
                f"pass config={replacement} instead",
                DeprecationWarning,
                stacklevel=3,
            )
        return self.with_options(**kwargs)

    def describe(self) -> dict[str, Any]:
        """A JSON-friendly view of the config (observers elided to names)."""
        out = dataclasses.asdict(
            dataclasses.replace(self, observability=ObservabilityConfig())
        )
        out["observability"] = {
            "observers": [type(o).__name__ for o in self.observability.observers],
            "trace_path": self.observability.trace_path,
            "tracer": type(self.observability.tracer).__name__
            if self.observability.tracer is not None
            else None,
        }
        exec_kind = self.executor.kind
        if exec_kind is not None and not isinstance(exec_kind, str):
            out["executor"]["kind"] = type(exec_kind).__name__
        return out
