"""Sets of time-points represented as sorted disjoint intervals.

The engine and the query layer repeatedly need set algebra over time —
"when is the answer stable AND the vertex reachable", "which part of the
lifespan is NOT covered by messages".  :class:`IntervalSet` provides
union, intersection, difference and complement with the usual laws,
always normalised to a minimal sorted disjoint representation.
"""

from __future__ import annotations

from typing import Iterable, Iterator, Optional

from .interval import FOREVER, Interval, coalesce


class IntervalSet:
    """An immutable set of time-points stored as disjoint intervals.

    Supports the operators ``|``, ``&``, ``-``, ``^``, ``in`` (time-point
    membership) and comparison by coverage (``<=`` is subset).
    """

    __slots__ = ("_intervals",)

    def __init__(self, intervals: Iterable[Interval] = ()):
        self._intervals: tuple[Interval, ...] = tuple(coalesce(intervals))

    # -- constructors ------------------------------------------------------

    @classmethod
    def empty(cls) -> "IntervalSet":
        """The empty set of time-points."""
        return cls(())

    @classmethod
    def of(cls, *spans: tuple[int, int]) -> "IntervalSet":
        """Build from ``(start, end)`` pairs: ``IntervalSet.of((0, 5), (9, 12))``."""
        return cls(Interval(s, e) for s, e in spans)

    @classmethod
    def point(cls, t: int) -> "IntervalSet":
        """The singleton set ``{t}``."""
        return cls([Interval.point(t)])

    @classmethod
    def always(cls) -> "IntervalSet":
        """The whole time domain."""
        return cls([Interval.always()])

    # -- queries -----------------------------------------------------------

    def intervals(self) -> list[Interval]:
        """The minimal sorted disjoint intervals covering the set."""
        return list(self._intervals)

    def __bool__(self) -> bool:
        return bool(self._intervals)

    def __len__(self) -> int:
        """Number of maximal intervals (not time-points)."""
        return len(self._intervals)

    def __iter__(self) -> Iterator[Interval]:
        return iter(self._intervals)

    def __contains__(self, t: int) -> bool:
        return any(iv.contains_point(t) for iv in self._intervals)

    def total_points(self) -> int:
        """Cumulative number of time-points (``FOREVER`` when unbounded)."""
        if any(iv.is_unbounded for iv in self._intervals):
            return FOREVER
        return sum(iv.length for iv in self._intervals)

    def span(self) -> Optional[Interval]:
        """Hull from first start to last end, or ``None`` when empty."""
        if not self._intervals:
            return None
        return Interval(self._intervals[0].start, self._intervals[-1].end)

    # -- algebra -------------------------------------------------------------

    def union(self, other: "IntervalSet") -> "IntervalSet":
        """Set union (also ``self | other``)."""
        return IntervalSet((*self._intervals, *other._intervals))

    def intersection(self, other: "IntervalSet") -> "IntervalSet":
        """Set intersection (also ``self & other``)."""
        out = []
        for a in self._intervals:
            for b in other._intervals:
                common = a.intersect(b)
                if common is not None:
                    out.append(common)
        return IntervalSet(out)

    def difference(self, other: "IntervalSet") -> "IntervalSet":
        """Set difference (also ``self - other``)."""
        remaining = list(self._intervals)
        for cut in other._intervals:
            next_remaining = []
            for iv in remaining:
                common = iv.intersect(cut)
                if common is None:
                    next_remaining.append(iv)
                    continue
                if iv.start < common.start:
                    next_remaining.append(Interval(iv.start, common.start))
                if common.end < iv.end:
                    next_remaining.append(Interval(common.end, iv.end))
            remaining = next_remaining
        return IntervalSet(remaining)

    def symmetric_difference(self, other: "IntervalSet") -> "IntervalSet":
        """Points in exactly one operand (also ``self ^ other``)."""
        return self.difference(other).union(other.difference(self))

    def complement(self, universe: Optional[Interval] = None) -> "IntervalSet":
        """Points of ``universe`` (default: the whole domain) not in self."""
        return IntervalSet([universe or Interval.always()]).difference(self)

    def clip(self, window: Interval) -> "IntervalSet":
        """Restrict to ``window``."""
        return self.intersection(IntervalSet([window]))

    def issubset(self, other: "IntervalSet") -> bool:
        """Every point of self lies in ``other`` (also ``self <= other``)."""
        return not self.difference(other)

    # -- operators -----------------------------------------------------------

    __or__ = union
    __and__ = intersection
    __sub__ = difference
    __xor__ = symmetric_difference
    __le__ = issubset

    def __eq__(self, other: object) -> bool:
        return isinstance(other, IntervalSet) and self._intervals == other._intervals

    def __hash__(self) -> int:
        return hash(self._intervals)

    def __repr__(self) -> str:
        inner = ", ".join(str(iv) for iv in self._intervals)
        return f"IntervalSet({inner})"
