"""The time-join and time-warp operators (paper Sec. IV-B).

``time_join`` is the valid-time natural join of Soo, Snodgrass & Jensen
(ICDE 1994): it pairs every value from the outer set with every value of the
inner set whose interval overlaps, over their intersection.

``time_warp`` is the paper's contribution.  Given a *temporally partitioned*
outer set (a vertex's partitioned states) and an inner set (its inbound
interval messages), it emits boundary-aligned triples
``(interval, outer_value, [inner values...])`` that satisfy four properties:

1. **Valid inclusion** — every overlapping (state, message) pair appears in
   some output triple for every shared time-point.
2. **No invalid inclusion** — output triples only combine values that both
   exist at every point of the output interval.
3. **No duplication** — an outer value at a time-point appears in at most
   one output triple.
4. **Maximal** — adjacent or overlapping triples with equal outer value and
   equal message group are merged, so the downstream user logic is invoked
   the minimal number of times.

The implementation is a plane sweep over interval boundaries, the in-memory
analogue of the merge-sort temporal aggregation the paper cites (Moon et al.,
ICDE 2000): ``O((n + m) log(n + m) + k)`` for ``n`` states, ``m`` messages
and output size ``k``.
"""

from __future__ import annotations

from typing import Any, Callable, Iterable, Optional, Sequence

from .interval import Interval

#: An ``(interval, value)`` pair; states, messages and edge pieces all
#: project onto this shape before warping.
IntervalValue = tuple[Interval, Any]

#: Output triple of :func:`time_warp`.
WarpTriple = tuple[Interval, Any, list[Any]]


def time_join(
    outer: Sequence[IntervalValue], inner: Sequence[IntervalValue]
) -> list[tuple[Interval, Any, Any]]:
    """Valid-time natural join: one output triple per overlapping pair.

    Output triples carry the intersection interval and both values, ordered
    by outer-interval position.  Neither input needs to be partitioned, but
    both are treated as sets of independent interval-values.
    """
    out: list[tuple[Interval, Any, Any]] = []
    outer_sorted = sorted(outer, key=_start_key)
    inner_sorted = sorted(inner, key=_start_key)
    active: list[IntervalValue] = []
    idx = 0
    for o_iv, o_val in outer_sorted:
        # Admit inner items that start before this outer item ends.
        while idx < len(inner_sorted) and inner_sorted[idx][0].start < o_iv.end:
            active.append(inner_sorted[idx])
            idx += 1
        # Retire inner items that can no longer overlap any later outer item
        # (outer items are sorted by start, so ends <= o_iv.start are dead).
        if active:
            active = [item for item in active if item[0].end > o_iv.start]
        for m_iv, m_val in active:
            common = o_iv.intersect(m_iv)
            if common is not None:
                out.append((common, o_val, m_val))
    return out


def time_warp(
    outer: Sequence[IntervalValue],
    inner: Sequence[IntervalValue],
    combine: Optional[Callable[[Any, Any], Any]] = None,
) -> list[WarpTriple]:
    """Warp ``inner`` values onto the partitions of ``outer``.

    Parameters
    ----------
    outer:
        Temporally partitioned (sorted, non-overlapping) interval-values —
        typically a vertex's :class:`~repro.core.state.PartitionedState`
        partitions.
    inner:
        Arbitrary interval-values — typically inbound messages.
    combine:
        Optional associative, commutative fold applied inline ("warp
        combiner", paper Sec. VI).  When given, each output triple carries a
        single-element list ``[folded_value]`` instead of the full group,
        computed in the same pass as the grouping.

    Returns
    -------
    list of ``(interval, outer_value, inner_values)`` triples sorted by
    interval, satisfying the four warp properties.  Triples with an empty
    inner group are omitted, matching the formal definition (``M_r ≠ ∅``).
    """
    if not outer or not inner:
        return []
    triples: list[WarpTriple] = []
    inner_sorted = sorted(inner, key=_start_key)
    idx = 0
    active: list[IntervalValue] = []
    for o_iv, o_val in sorted(outer, key=_start_key):
        while idx < len(inner_sorted) and inner_sorted[idx][0].start < o_iv.end:
            active.append(inner_sorted[idx])
            idx += 1
        if active:
            active = [item for item in active if item[0].end > o_iv.start]
        if not active:
            continue
        _warp_one_partition(o_iv, o_val, active, combine, triples)
    return _merge_maximal(triples, combined=combine is not None)


def warp_boundaries(
    partition: Interval, items: Iterable[IntervalValue]
) -> list[int]:
    """Distinct, sorted boundary time-points of ``items`` clipped to
    ``partition``, including the partition's own endpoints.

    Exposed for tests and for the engine's suppression heuristics.
    """
    bounds = {partition.start, partition.end}
    for iv, _ in items:
        if iv.overlaps(partition):
            bounds.add(max(iv.start, partition.start))
            bounds.add(min(iv.end, partition.end))
    return sorted(bounds)


# -- internals --------------------------------------------------------------


def _start_key(item: IntervalValue) -> tuple[int, int]:
    return item[0].start, item[0].end


def _warp_one_partition(
    o_iv: Interval,
    o_val: Any,
    candidates: list[IntervalValue],
    combine: Optional[Callable[[Any, Any], Any]],
    out: list[WarpTriple],
) -> None:
    """Emit elementary warp triples for one outer partition."""
    overlapping = [item for item in candidates if item[0].overlaps(o_iv)]
    if not overlapping:
        return
    bounds = warp_boundaries(o_iv, overlapping)
    for lo, hi in zip(bounds, bounds[1:]):
        if combine is None:
            group = [val for iv, val in overlapping if iv.start <= lo < iv.end]
            if group:
                out.append((Interval(lo, hi), o_val, group))
        else:
            folded: Any = _SENTINEL
            count = 0
            for iv, val in overlapping:
                if iv.start <= lo < iv.end:
                    folded = val if folded is _SENTINEL else combine(folded, val)
                    count += 1
            if count:
                out.append((Interval(lo, hi), o_val, [folded, count]))


_SENTINEL = object()


def _merge_maximal(triples: list[WarpTriple], *, combined: bool) -> list[WarpTriple]:
    """Enforce the Maximal property: merge adjacent equal triples.

    Two consecutive triples merge when their intervals meet, their outer
    values compare equal, and their inner groups are equal — as multisets
    of values on the plain path, and *positionally* on the combiner path,
    whose groups are ``[folded_value, count]`` pairs (a multiset compare
    would conflate e.g. fold 2/count 1 with fold 1/count 2).
    """
    if not triples:
        return triples
    if combined:
        groups_equal = lambda a, b: (
            len(a) == len(b) and all(_values_equal(x, y) for x, y in zip(a, b))
        )
    else:
        groups_equal = _groups_equal
    merged: list[WarpTriple] = [triples[0]]
    for iv, s, group in triples[1:]:
        last_iv, last_s, last_group = merged[-1]
        if (
            last_iv.end == iv.start
            and _values_equal(last_s, s)
            and groups_equal(last_group, group)
        ):
            merged[-1] = (Interval(last_iv.start, iv.end), last_s, last_group)
        else:
            merged.append((iv, s, group))
    if combined:
        # Strip the bookkeeping count; callers see a single folded value.
        merged = [(iv, s, [g[0]]) for iv, s, g in merged]
    return merged


def _values_equal(a: Any, b: Any) -> bool:
    if a is b:
        return True
    try:
        return bool(a == b)
    except Exception:
        return False


def _groups_equal(a: list[Any], b: list[Any]) -> bool:
    """Multiset equality over possibly unhashable values."""
    if len(a) != len(b):
        return False
    remaining = list(b)
    for item in a:
        for j, other in enumerate(remaining):
            if _values_equal(item, other):
                del remaining[j]
                break
        else:
            return False
    return True
