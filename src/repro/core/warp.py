"""The time-join and time-warp operators (paper Sec. IV-B).

``time_join`` is the valid-time natural join of Soo, Snodgrass & Jensen
(ICDE 1994): it pairs every value from the outer set with every value of the
inner set whose interval overlaps, over their intersection.

``time_warp`` is the paper's contribution.  Given a *temporally partitioned*
outer set (a vertex's partitioned states) and an inner set (its inbound
interval messages), it emits boundary-aligned triples
``(interval, outer_value, [inner values...])`` that satisfy four properties:

1. **Valid inclusion** — every overlapping (state, message) pair appears in
   some output triple for every shared time-point.
2. **No invalid inclusion** — output triples only combine values that both
   exist at every point of the output interval.
3. **No duplication** — an outer value at a time-point appears in at most
   one output triple.
4. **Maximal** — adjacent or overlapping triples with equal outer value and
   equal message group are merged, so the downstream user logic is invoked
   the minimal number of times.

The implementation is a *single* plane sweep over the global boundary set of
both inputs, the in-memory analogue of the merge-sort temporal aggregation
the paper cites (Moon et al., ICDE 2000).  The active message set is kept in
an insertion-ordered map with an end-ordered expiry heap, so no partition
ever rescans messages that cannot overlap it, and maximal merging happens
on the fly: ``O((n + m) log(n + m) + k)`` for ``n`` states, ``m`` messages
and output size ``k`` — with no per-partition re-filtering.
"""

from __future__ import annotations

from collections import Counter
from heapq import heappop, heappush
from typing import Any, Callable, Iterable, Optional, Sequence

from .interval import Interval

#: An ``(interval, value)`` pair; states, messages and edge pieces all
#: project onto this shape before warping.
IntervalValue = tuple[Interval, Any]

#: Output triple of :func:`time_warp`.
WarpTriple = tuple[Interval, Any, list[Any]]

_SENTINEL = object()


def time_join(
    outer: Sequence[IntervalValue], inner: Sequence[IntervalValue]
) -> list[tuple[Interval, Any, Any]]:
    """Valid-time natural join: one output triple per overlapping pair.

    Output triples carry the intersection interval and both values, ordered
    by outer-interval position (inner values in start order within each
    outer).  Neither input needs to be partitioned, but both are treated as
    sets of independent interval-values.

    Inner items are admitted once in start order and retired through an
    end-ordered heap, so the per-outer work is proportional to the number
    of *live* inner items, never the admitted total.
    """
    out: list[tuple[Interval, Any, Any]] = []
    outer_sorted = sorted(outer, key=_start_key)
    inner_sorted = sorted(inner, key=_start_key)
    n_inner = len(inner_sorted)
    #: seq → (interval, value); insertion order is admission (start) order.
    active: dict[int, IntervalValue] = {}
    ends: list[tuple[int, int]] = []  # (end, seq) expiry heap
    idx = 0
    seq = 0
    for o_iv, o_val in outer_sorted:
        # Admit inner items that start before this outer item ends.
        while idx < n_inner and inner_sorted[idx][0].start < o_iv.end:
            item = inner_sorted[idx]
            idx += 1
            # Outer items are sorted by start: an inner item already over
            # can never overlap this or any later outer item.
            if item[0].end > o_iv.start:
                active[seq] = item
                heappush(ends, (item[0].end, seq))
                seq += 1
        # Retire inner items that can no longer overlap any later outer.
        while ends and ends[0][0] <= o_iv.start:
            del active[heappop(ends)[1]]
        for m_iv, m_val in active.values():
            common = o_iv.intersect(m_iv)
            if common is not None:
                out.append((common, o_val, m_val))
    return out


def time_warp(
    outer: Sequence[IntervalValue],
    inner: Sequence[IntervalValue],
    combine: Optional[Callable[[Any, Any], Any]] = None,
) -> list[WarpTriple]:
    """Warp ``inner`` values onto the partitions of ``outer``.

    Parameters
    ----------
    outer:
        Temporally partitioned (sorted, non-overlapping) interval-values —
        typically a vertex's :class:`~repro.core.state.PartitionedState`
        partitions.
    inner:
        Arbitrary interval-values — typically inbound messages.
    combine:
        Optional associative, commutative fold applied inline ("warp
        combiner", paper Sec. VI).  When given, each output triple carries a
        single-element list ``[folded_value]`` instead of the full group,
        computed in the same pass as the grouping.

    Returns
    -------
    list of ``(interval, outer_value, inner_values)`` triples sorted by
    interval, satisfying the four warp properties.  Triples with an empty
    inner group are omitted, matching the formal definition (``M_r ≠ ∅``).
    """
    if not outer or not inner:
        return []
    outer_sorted = sorted(outer, key=_start_key)
    inner_sorted = sorted(inner, key=_start_key)

    # Global boundary sweep: one sorted pass over every distinct start/end
    # of both inputs.  Elementary segments lie between consecutive bounds.
    bound_set: set[int] = set()
    for iv, _ in outer_sorted:
        bound_set.add(iv.start)
        bound_set.add(iv.end)
    for iv, _ in inner_sorted:
        bound_set.add(iv.start)
        bound_set.add(iv.end)
    bounds = sorted(bound_set)

    n_inner = len(inner_sorted)
    n_outer = len(outer_sorted)
    # Column projections: the admission/retirement loops below run once per
    # elementary segment, so pulling the interval fields out of the tuples
    # up front trades one linear pass for tens of thousands of attribute
    # lookups in the hot loop.
    inner_starts = [item[0].start for item in inner_sorted]
    inner_ends = [item[0].end for item in inner_sorted]
    inner_vals = [item[1] for item in inner_sorted]
    outer_end_col = [item[0].end for item in outer_sorted]
    #: seq → value of a live message; insertion order is start order, which
    #: keeps emitted group order identical to the historical per-partition
    #: implementation.
    active: dict[int, Any] = {}
    ends: list[tuple[int, int]] = []  # (end, seq) expiry heap
    i_idx = 0
    o_idx = 0
    seq = 0
    push = heappush
    pop = heappop

    triples: list[WarpTriple] = []
    mk_interval = Interval._unchecked  # loop guarantees 0 <= lo < hi
    # Current-segment caches, rebuilt only when the active set has changed
    # since they were last computed ("dirty"), even across skipped gaps.
    cur_group: Optional[list[Any]] = None
    folded: Any = _SENTINEL
    fold_count = 0
    dirty = True
    # Incremental multiset signature of the active values: a commutative
    # hash sum maintained per admit/retire.  Unequal signatures prove the
    # groups differ, skipping the full multiset compare in the (common)
    # dense case where every segment's group is new.  Values must hash
    # consistently for this to be sound (equal values → equal hashes, the
    # Python contract); unhashable values disable the shortcut.
    sig_ok = True
    cur_sig = 0
    run_sig = 0
    # Bookkeeping for on-the-fly maximal merging.  The pending maximal run
    # is held in ``run_*`` and flushed as a triple only when it breaks, so
    # Interval objects are built once per *output* triple, not once per
    # elementary segment.  ``stable_since_emit`` is the cheap merge path:
    # when the active set has not changed since the last emitted segment,
    # the groups are identical by construction and no compare is needed.
    stable_since_emit = False
    run_start = -1  # -1 → no pending run
    run_hi = -1
    run_val: Any = _SENTINEL
    run_group: Optional[list[Any]] = None
    last_fold: Any = _SENTINEL
    last_count = -1

    for k in range(len(bounds) - 1):
        lo = bounds[k]
        # Admit messages starting at this boundary (every message start is
        # itself a boundary, so admission is exact).
        while i_idx < n_inner and inner_starts[i_idx] <= lo:
            m_end = inner_ends[i_idx]
            if m_end > lo:
                val = inner_vals[i_idx]
                active[seq] = val
                push(ends, (m_end, seq))
                seq += 1
                dirty = True
                stable_since_emit = False
                if sig_ok:
                    try:
                        cur_sig += hash(val)
                    except TypeError:
                        sig_ok = False
            i_idx += 1
        # Retire messages that ended at or before this boundary.
        while ends and ends[0][0] <= lo:
            gone = pop(ends)[1]
            if sig_ok:
                cur_sig -= hash(active[gone])
            del active[gone]
            dirty = True
            stable_since_emit = False
        if not active:
            continue
        # Advance to the outer partition covering lo (partitions are
        # non-overlapping and sorted, so this pointer only moves forward).
        while o_idx < n_outer and outer_end_col[o_idx] <= lo:
            o_idx += 1
        if o_idx >= n_outer:
            break
        o_iv, o_val = outer_sorted[o_idx]
        if o_iv.start > lo:
            continue  # gap between outer partitions
        hi = bounds[k + 1]

        contiguous = run_hi == lo and _values_equal(run_val, o_val)
        if combine is None:
            if dirty or cur_group is None:
                cur_group = list(active.values())
                dirty = False
            if contiguous and (
                stable_since_emit
                or (
                    (not sig_ok or cur_sig == run_sig)
                    and _groups_equal(run_group, cur_group)
                )
            ):
                run_hi = hi
            else:
                if run_start >= 0:
                    triples.append(
                        (mk_interval(run_start, run_hi), run_val, run_group)
                    )
                run_start = lo
                run_hi = hi
                run_val = o_val
                run_group = cur_group
        else:
            if dirty or folded is _SENTINEL:
                folded = _SENTINEL
                fold_count = 0
                for val in active.values():
                    folded = val if folded is _SENTINEL else combine(folded, val)
                    fold_count += 1
                dirty = False
            if contiguous and (
                stable_since_emit
                or (last_count == fold_count and _values_equal(last_fold, folded))
            ):
                run_hi = hi
            else:
                if run_start >= 0:
                    triples.append(
                        (mk_interval(run_start, run_hi), run_val, run_group)
                    )
                run_start = lo
                run_hi = hi
                run_val = o_val
                run_group = [folded]
                last_fold = folded
                last_count = fold_count
        run_sig = cur_sig
        stable_since_emit = True
    if run_start >= 0:
        triples.append((mk_interval(run_start, run_hi), run_val, run_group))
    return triples


def warp_boundaries(
    partition: Interval, items: Iterable[IntervalValue]
) -> list[int]:
    """Distinct, sorted boundary time-points of ``items`` clipped to
    ``partition``, including the partition's own endpoints.

    Exposed for tests and for the engine's suppression heuristics.
    """
    bounds = {partition.start, partition.end}
    for iv, _ in items:
        if iv.overlaps(partition):
            bounds.add(max(iv.start, partition.start))
            bounds.add(min(iv.end, partition.end))
    return sorted(bounds)


def merge_join_partitioned(
    left: Sequence[IntervalValue], right: Sequence[IntervalValue]
) -> list[tuple[Interval, Any, Any]]:
    """Join two *temporally partitioned* interval-value lists.

    Both inputs must be sorted and non-overlapping (each is a partitioned
    cover, possibly with gaps).  Equivalent to :func:`time_join` on the same
    inputs but a pure linear merge — no sorting, no active set — which is
    what the engine's scatter phase needs when pairing updated state slices
    with an edge's property-constant pieces.

    Returns ``(intersection, left_value, right_value)`` triples in time
    order.
    """
    out: list[tuple[Interval, Any, Any]] = []
    li = 0
    ri = 0
    n_left = len(left)
    n_right = len(right)
    mk_interval = Interval._unchecked  # start < end checked inline below
    while li < n_left and ri < n_right:
        l_iv, l_val = left[li]
        r_iv, r_val = right[ri]
        start = l_iv.start if l_iv.start > r_iv.start else r_iv.start
        end = l_iv.end if l_iv.end < r_iv.end else r_iv.end
        if start < end:
            out.append((mk_interval(start, end), l_val, r_val))
        # Advance whichever side ends first; ties advance both.
        if l_iv.end <= r_iv.end:
            li += 1
        if r_iv.end <= l_iv.end:
            ri += 1
    return out


# -- internals --------------------------------------------------------------


def _start_key(item: IntervalValue) -> tuple[int, int]:
    return item[0].start, item[0].end


def _values_equal(a: Any, b: Any) -> bool:
    if a is b:
        return True
    try:
        return bool(a == b)
    except Exception:
        return False


def _groups_equal(a: list[Any], b: list[Any]) -> bool:
    """Multiset equality: hash when possible, sort when orderable, and the
    quadratic pairwise match only as a last resort for values that are
    neither hashable nor comparable."""
    if len(a) != len(b):
        return False
    if a is b:
        return True
    try:
        return Counter(a) == Counter(b)
    except TypeError:
        pass
    try:
        return sorted(a) == sorted(b)
    except TypeError:
        pass
    return _groups_equal_quadratic(a, b)


def _groups_equal_quadratic(a: list[Any], b: list[Any]) -> bool:
    """O(n²) multiset equality over possibly unhashable, unorderable values."""
    remaining = list(b)
    for item in a:
        for j, other in enumerate(remaining):
            if _values_equal(item, other):
                del remaining[j]
                break
        else:
            return False
    return True
