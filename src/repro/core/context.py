"""Execution contexts handed to interval-centric user logic.

``VertexContext`` is the vertex's view during ``init``/``compute``/
``scatter``: its static attributes (lifespan, out-edges, properties), its
dynamic partitioned state, and engine services (aggregators, superstep).
``EdgeContext`` wraps one property-constant edge piece for ``scatter``.
``MasterContext`` is the coordination view for ``master_compute``.
"""

from __future__ import annotations

from typing import Any, Optional, TYPE_CHECKING

from .interval import Interval, coalesce
from .state import PartitionedState

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.graph.model import EdgePiece, TemporalEdge, TemporalVertex


class EdgeContext:
    """One out-edge piece: constant properties over ``interval``."""

    __slots__ = ("edge", "interval", "values")

    def __init__(self, edge: "TemporalEdge", interval: Interval, values: dict[str, Any]):
        self.edge = edge
        self.interval = interval
        self.values = values

    @property
    def eid(self) -> Any:
        return self.edge.eid

    @property
    def src(self) -> Any:
        return self.edge.src

    @property
    def dst(self) -> Any:
        return self.edge.dst

    @property
    def lifespan(self) -> Interval:
        return self.edge.lifespan

    def get(self, label: str, default: Any = None) -> Any:
        """Static property value, constant over this piece's interval."""
        return self.values.get(label, default)

    def __repr__(self) -> str:
        return f"EdgeContext({self.eid!r}:{self.src!r}->{self.dst!r} @ {self.interval})"


class VertexContext:
    """The interval-vertex view for user logic."""

    __slots__ = (
        "_vertex",
        "_state",
        "_engine",
        "_updated",
        "_current_interval",
        "_phase",
    )

    def __init__(self, vertex: "TemporalVertex", state: PartitionedState, engine):
        self._vertex = vertex
        self._state = state
        self._engine = engine
        self._updated: list[Interval] = []
        self._current_interval: Optional[Interval] = None
        self._phase = "idle"

    # -- static attributes ---------------------------------------------------

    @property
    def vertex_id(self) -> Any:
        return self._vertex.vid

    @property
    def lifespan(self) -> Interval:
        return self._vertex.lifespan

    @property
    def superstep(self) -> int:
        return self._engine.superstep

    @property
    def num_vertices(self) -> int:
        return self._engine.graph.num_vertices

    def out_edges(self) -> list["TemporalEdge"]:
        """The vertex's static out-edges (temporal, with lifespans)."""
        return self._engine.graph.out_edges(self._vertex.vid)

    def out_degree(self, interval: Optional[Interval] = None) -> int:
        """Out-edges overlapping ``interval`` (default: whole lifespan)."""
        edges = self.out_edges()
        if interval is None:
            return len(edges)
        return sum(1 for e in edges if e.lifespan.overlaps(interval))

    def vertex_property(self, label: str, t: int) -> Any:
        """Static vertex property value at time-point ``t`` (or None)."""
        return self._vertex.properties.value_at(label, t)

    def out_degree_segments(self, interval: Interval) -> list[tuple[Interval, int]]:
        """Piecewise-constant out-degree over ``interval``.

        Splits ``interval`` at every out-edge lifespan boundary and reports
        the number of live out-edges per segment — what PageRank needs to
        divide its rank share correctly as the topology evolves.  Segments
        with zero live edges are included (degree 0).
        """
        edges = self.out_edges()
        bounds = {interval.start, interval.end}
        for e in edges:
            if e.lifespan.overlaps(interval):
                bounds.add(max(e.lifespan.start, interval.start))
                bounds.add(min(e.lifespan.end, interval.end))
        cuts = sorted(bounds)
        segments: list[tuple[Interval, int]] = []
        for lo, hi in zip(cuts, cuts[1:]):
            degree = sum(1 for e in edges if e.lifespan.contains_point(lo))
            segments.append((Interval(lo, hi), degree))
        return segments

    # -- dynamic state ---------------------------------------------------------

    @property
    def state(self) -> PartitionedState:
        """Read access to the full partitioned state."""
        return self._state

    def set_state(self, interval: Interval, value: Any) -> None:
        """Update state for ``interval``, repartitioning as needed.

        During ``compute`` the interval must lie within the active interval
        being computed — this is what makes concurrent per-interval calls
        interference-free (paper Sec. IV-A3).
        """
        if self._phase == "scatter":
            raise RuntimeError("scatter must not update vertex state")
        if self._phase == "compute" and self._current_interval is not None:
            if not interval.within(self._current_interval):
                raise ValueError(
                    f"compute for {self._current_interval} may only update "
                    f"sub-intervals of it, got {interval}"
                )
        self._state.set(interval, value)
        self._updated.append(interval)

    def state_at(self, t: int) -> Any:
        """The dynamic state value at time-point ``t``."""
        return self._state.value_at(t)

    # -- engine services -----------------------------------------------------

    def send(self, dst_vid: Any, interval: Interval, value: Any) -> None:
        """Send an interval message to an *arbitrary* vertex.

        Pregel-style direct messaging, needed by algorithms like LCC whose
        replies travel against (or outside) the edge structure.  Regular
        neighbour messaging should go through ``scatter`` return values.
        """
        self._engine.send_direct(self.vertex_id, dst_vid, interval, value)

    def aggregate(self, name: str, value: Any) -> None:
        """Contribute to a named global aggregator for the next superstep."""
        self._engine.contribute_aggregate(name, value)

    def get_aggregate(self, name: str, default: Any = None) -> Any:
        """Read the aggregator value reduced in the previous superstep."""
        return self._engine.read_aggregate(name, default)

    # -- engine internals ------------------------------------------------------

    def _begin(self, phase: str, interval: Optional[Interval]) -> None:
        self._phase = phase
        self._current_interval = interval

    def _end(self) -> None:
        self._phase = "idle"
        self._current_interval = None

    def _take_updates(self) -> list[Interval]:
        updates = coalesce(self._updated)
        self._updated = []
        return updates

    def __repr__(self) -> str:
        return f"VertexContext({self.vertex_id!r}, superstep={self.superstep})"


class MasterContext:
    """Coordination view between supersteps (Giraph MasterCompute)."""

    def __init__(self, superstep: int, aggregates: dict[str, Any], num_active: int):
        self.superstep = superstep
        self._aggregates = aggregates
        self.num_active_vertices = num_active
        self._halt = False
        self._overrides: dict[str, Any] = {}

    def get_aggregate(self, name: str, default: Any = None) -> Any:
        return self._aggregates.get(name, default)

    def set_aggregate(self, name: str, value: Any) -> None:
        """Override an aggregator value visible to the next superstep."""
        self._overrides[name] = value

    def halt(self) -> None:
        """Force the computation to stop after this superstep."""
        self._halt = True
