"""Message combiners (paper Sec. VI, "Inline Warp Combiner").

A combiner is an associative, commutative binary fold over message payloads.
GRAPHITE applies it in two places:

* **receiver-side**, merging messages with *identical* intervals before warp
  runs, shrinking warp's input; and
* **inline in warp** ("warp combiner"), folding each warped message group to
  a single value in the same pass that forms the group, so ``compute`` never
  scans a message list.

All the paper's algorithms except LCC and TC are commutative/associative and
define combiners; the engine enables both applications whenever the program
provides one.
"""

from __future__ import annotations

from typing import Any, Callable

from .interval import Interval
from .messages import IntervalMessage


class MessageCombiner:
    """Wraps an associative, commutative fold over message payloads.

    ``selective`` marks folds that *choose* one operand (min, max, or):
    for those, a message whose interval is contained in another's and loses
    the fold contributes nothing to any warp group, and may be eliminated
    before transmission or warping (the paper's receiver-side combiner,
    extended with the interval-containment condition).  Aggregating folds
    like ``sum`` must keep every message and set ``selective=False``.
    """

    def __init__(self, fn: Callable[[Any, Any], Any], name: str = "combiner",
                 *, selective: bool = False):
        self._fn = fn
        self.name = name
        self.selective = selective

    def __call__(self, a: Any, b: Any) -> Any:
        return self._fn(a, b)

    def combine_dominated(
        self, messages: list[IntervalMessage]
    ) -> list[IntervalMessage]:
        """Drop messages dominated by another (selective combiners only).

        ``b`` is dominated by ``a`` when ``a.interval ⊇ b.interval`` and the
        fold of the two values is ``a``'s: every warp group containing ``b``
        then also contains ``a``, and the folded value is unchanged, so the
        compute outcomes are identical with ``b`` removed.
        """
        if not self.selective or len(messages) < 2:
            return messages
        keep: list[IntervalMessage] = []
        for i, msg in enumerate(messages):
            dominated = False
            for j, other in enumerate(messages):
                if i == j:
                    continue
                if not other.interval.contains(msg.interval):
                    continue
                folded = self._fn(other.value, msg.value)
                if folded != other.value:
                    continue
                # Ties on both interval and value: keep only the first.
                if (
                    other.interval == msg.interval
                    and other.value == msg.value
                    and j > i
                ):
                    continue
                dominated = True
                break
            if not dominated:
                keep.append(msg)
        return keep

    def combine_identical_intervals(
        self, messages: list[IntervalMessage]
    ) -> list[IntervalMessage]:
        """Receiver-side pass: fold messages sharing the exact same interval.

        This is safe for any payloads because it never changes the temporal
        extent of a message, only collapses duplicates of one extent.
        """
        by_interval: dict[Interval, Any] = {}
        order: list[Interval] = []
        for msg in messages:
            if msg.interval in by_interval:
                by_interval[msg.interval] = self._fn(by_interval[msg.interval], msg.value)
            else:
                by_interval[msg.interval] = msg.value
                order.append(msg.interval)
        if len(order) == len(messages):
            return messages
        return [IntervalMessage(iv, by_interval[iv]) for iv in order]

    def __repr__(self) -> str:
        return f"MessageCombiner({self.name})"


def coalesce_messages(
    messages: list[IntervalMessage], *, allow_overlap: bool
) -> list[IntervalMessage]:
    """Merge equal-valued messages with adjacent (or overlapping) intervals.

    Merging messages whose intervals *meet* is safe for any algorithm: at
    every time-point the visible message group is unchanged.  Merging
    *overlapping* equal values collapses duplicates, which is only safe for
    selective combiners (``allow_overlap=True``); aggregating folds like
    ``sum`` must preserve multiplicity.
    """
    if len(messages) < 2:
        return messages
    ordered = sorted(messages, key=lambda m: (m.interval.start, m.interval.end))
    out: list[IntervalMessage] = [ordered[0]]
    for msg in ordered[1:]:
        last = out[-1]
        joined = last.interval.end >= msg.interval.start
        overlapping = last.interval.end > msg.interval.start
        if joined and (allow_overlap or not overlapping) and last.value == msg.value:
            if msg.interval.end > last.interval.end:
                out[-1] = IntervalMessage(
                    Interval(last.interval.start, msg.interval.end), last.value
                )
        else:
            out.append(msg)
    return out


def min_combiner() -> MessageCombiner:
    """Keep the minimum payload — SSSP, EAT, BFS, WCC and friends."""
    return MessageCombiner(min, "min", selective=True)


def max_combiner() -> MessageCombiner:
    """Keep the maximum payload — LD (latest departure)."""
    return MessageCombiner(max, "max", selective=True)


def sum_combiner() -> MessageCombiner:
    """Sum payloads — PageRank rank mass (must keep every message)."""
    return MessageCombiner(lambda a, b: a + b, "sum", selective=False)


def or_combiner() -> MessageCombiner:
    """Boolean OR — reachability flags."""
    return MessageCombiner(lambda a, b: a or b, "or", selective=True)


def tuple_min_combiner() -> MessageCombiner:
    """Lexicographic min over tuple payloads — TMST (cost, parent) pairs."""
    return MessageCombiner(min, "tuple-min", selective=True)
