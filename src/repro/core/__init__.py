"""Interval-centric computing model (ICM): the paper's core contribution."""

from .combiner import (
    MessageCombiner,
    max_combiner,
    min_combiner,
    or_combiner,
    sum_combiner,
    tuple_min_combiner,
)
from .context import EdgeContext, MasterContext, VertexContext
from .engine import IcmResult, IntervalCentricEngine
from .interval import FOREVER, Interval, coalesce, total_span
from .intervalset import IntervalSet
from .messages import IntervalMessage, message, unit_message_fraction
from .program import IntervalProgram
from .results_io import export_states_csv, export_states_dense_csv, export_states_json
from .state import PartitionedState, states_equal_pointwise
from .tracing import ExecutionTracer
from .warp import time_join, time_warp, warp_boundaries

__all__ = [
    "FOREVER",
    "Interval",
    "IntervalSet",
    "coalesce",
    "total_span",
    "IntervalMessage",
    "message",
    "unit_message_fraction",
    "PartitionedState",
    "states_equal_pointwise",
    "time_join",
    "time_warp",
    "warp_boundaries",
    "MessageCombiner",
    "min_combiner",
    "max_combiner",
    "sum_combiner",
    "or_combiner",
    "tuple_min_combiner",
    "IntervalProgram",
    "VertexContext",
    "EdgeContext",
    "MasterContext",
    "IntervalCentricEngine",
    "IcmResult",
    "ExecutionTracer",
    "export_states_csv",
    "export_states_dense_csv",
    "export_states_json",
]
