"""Dynamically partitioned vertex state (paper Sec. IV-A1).

A vertex's dynamic state is a set of ``(interval, value)`` partitions that
*exactly* cover the vertex's lifespan with no overlaps:

    ``S(τ) = {⟨τ_i, s_i⟩}`` with ``t¹_s = t_s``, ``tⁿ_e = t_e`` and
    ``tʲ_e = tʲ⁺¹_s`` for consecutive partitions.

States are *dynamically repartitioned* when a sub-interval is updated: the
covering partitions are split at the update boundaries and the new value is
written into the interior.  Splitting a partition while replicating its value
is always semantics-preserving, and so is the reverse (coalescing adjacent
equal-valued partitions) — the engine relies on coalescing to keep future
warp outputs maximal.
"""

from __future__ import annotations

from bisect import bisect_right
from typing import Any, Callable, Iterator, Optional

from .interval import Interval


class PartitionedState:
    """Interval-partitioned value store covering a fixed lifespan.

    Parameters
    ----------
    lifespan:
        Static lifespan ``τ`` of the owning vertex.  All reads and writes
        must fall within it.
    initial:
        Value assigned to the single initial partition spanning the whole
        lifespan.
    coalesce:
        When true (default), adjacent partitions whose values compare equal
        are merged after every update.  This keeps the partition count — and
        hence the number of downstream ``compute``/``scatter`` calls —
        minimal, which is where ICM's compute sharing comes from.
    """

    __slots__ = ("lifespan", "_starts", "_ends", "_values", "_coalesce")

    def __init__(self, lifespan: Interval, initial: Any = None, *, coalesce: bool = True):
        self.lifespan = lifespan
        self._starts: list[int] = [lifespan.start]
        self._ends: list[int] = [lifespan.end]
        self._values: list[Any] = [initial]
        self._coalesce = coalesce

    # -- queries -----------------------------------------------------------

    def __len__(self) -> int:
        """Number of partitions currently covering the lifespan."""
        return len(self._starts)

    def __iter__(self) -> Iterator[tuple[Interval, Any]]:
        for s, e, v in zip(self._starts, self._ends, self._values):
            yield Interval(s, e), v

    def partitions(self) -> list[tuple[Interval, Any]]:
        """All partitions as a sorted ``(interval, value)`` list."""
        return list(self)

    def value_at(self, t: int) -> Any:
        """Value of the partition covering time-point ``t``."""
        idx = self._locate(t)
        return self._values[idx]

    def slices(self, window: Interval) -> list[tuple[Interval, Any]]:
        """Partitions overlapping ``window``, clipped to it.

        The result is itself a temporally partitioned cover of
        ``window ∩ lifespan``.
        """
        out: list[tuple[Interval, Any]] = []
        lo = max(window.start, self.lifespan.start)
        hi = min(window.end, self.lifespan.end)
        if lo >= hi:
            return out
        idx = self._locate(lo)
        while idx < len(self._starts) and self._starts[idx] < hi:
            s = max(self._starts[idx], lo)
            e = min(self._ends[idx], hi)
            out.append((Interval(s, e), self._values[idx]))
            idx += 1
        return out

    def distinct_values(self) -> list[Any]:
        """Values in partition order (possibly with repeats across gaps)."""
        return list(self._values)

    # -- updates -----------------------------------------------------------

    def set(self, interval: Interval, value: Any) -> None:
        """Assign ``value`` to ``interval``, repartitioning as needed.

        Raises
        ------
        ValueError
            If ``interval`` is not within the lifespan.
        """
        if not interval.within(self.lifespan):
            raise ValueError(f"update {interval} outside lifespan {self.lifespan}")
        first = self._split_at(interval.start)
        last = self._split_at(interval.end)
        # Replace every partition in [first, last) with a single new one.
        self._starts[first:last] = [interval.start]
        self._ends[first:last] = [interval.end]
        self._values[first:last] = [value]
        if self._coalesce:
            self._coalesce_around(first)

    def set_many(self, items: Iterable[tuple[Interval, Any]]) -> None:
        """Assign many ``(interval, value)`` updates in one repartitioning.

        Pointwise-equivalent to calling :meth:`set` once per item in order
        (later items win where intervals overlap), but the partition arrays
        are rebuilt in a single merge pass — no repeated ``list.insert`` —
        so a batch of ``u`` updates over ``n`` partitions costs
        ``O(u log u + n + u)`` instead of ``O(u · n)``.

        Raises
        ------
        ValueError
            If any interval is not within the lifespan (the state is left
            unmodified).
        """
        updates = list(items)
        if not updates:
            return
        if len(updates) == 1:
            interval, value = updates[0]
            self.set(interval, value)
            return
        for interval, _ in updates:
            if not interval.within(self.lifespan):
                raise ValueError(
                    f"update {interval} outside lifespan {self.lifespan}"
                )
        # Overlay pass: cut the updates into elementary segments and let
        # the *last* update covering each segment win, exactly as a
        # sequence of set() calls would.
        bound_set: set[int] = set()
        for interval, _ in updates:
            bound_set.add(interval.start)
            bound_set.add(interval.end)
        cuts = sorted(bound_set)
        pos = {t: i for i, t in enumerate(cuts)}
        n_segs = len(cuts) - 1
        seg_src = [-1] * n_segs  # index of the winning update, -1 = untouched
        for u, (interval, _) in enumerate(updates):
            for k in range(pos[interval.start], pos[interval.end]):
                seg_src[k] = u
        # Collapse segments written by the same winning update into runs:
        # one set() call produces one partition, however it was cut.
        runs: list[tuple[int, int, Any]] = []
        k = 0
        while k < n_segs:
            src = seg_src[k]
            if src < 0:
                k += 1
                continue
            j = k
            while j + 1 < n_segs and seg_src[j + 1] == src:
                j += 1
            runs.append((cuts[k], cuts[j + 1], updates[src][1]))
            k = j + 1
        # Rebuild pass: merge surviving fragments of the old partitions
        # with the overlay runs, coalescing on the fly when enabled.
        starts = self._starts
        ends = self._ends
        values = self._values
        new_starts: list[int] = []
        new_ends: list[int] = []
        new_values: list[Any] = []

        def emit(s: int, e: int, v: Any) -> None:
            if (
                self._coalesce
                and new_values
                and new_ends[-1] == s
                and new_values[-1] == v
            ):
                new_ends[-1] = e
            else:
                new_starts.append(s)
                new_ends.append(e)
                new_values.append(v)

        oi = 0
        cursor = self.lifespan.start
        for run_start, run_end, run_value in (
            *runs,
            (self.lifespan.end, self.lifespan.end, None),
        ):
            while cursor < run_start:
                while ends[oi] <= cursor:
                    oi += 1
                frag_end = min(ends[oi], run_start)
                emit(cursor, frag_end, values[oi])
                cursor = frag_end
            if run_start < run_end:
                emit(run_start, run_end, run_value)
                cursor = run_end
        self._starts = new_starts
        self._ends = new_ends
        self._values = new_values

    def update(
        self, interval: Interval, fn: Callable[[Interval, Any], Any]
    ) -> None:
        """Apply ``fn(sub_interval, old_value)`` to every covered slice.

        ``fn`` always observes the values as they were before the update;
        the writes are applied as one batch through :meth:`set_many`.
        """
        self.set_many((sub, fn(sub, old)) for sub, old in self.slices(interval))

    def fill(self, value: Any) -> None:
        """Reset to a single partition spanning the lifespan."""
        self._starts = [self.lifespan.start]
        self._ends = [self.lifespan.end]
        self._values = [value]

    def presplit(self, boundaries: Iterable[int]) -> None:
        """Introduce partition boundaries at every *interior* time-point.

        Values are replicated across the splits, so this is always
        semantics-preserving.  All splits are applied in one array rebuild,
        unlike repeated ``_split_at`` calls whose ``list.insert`` cost grows
        quadratically with the number of boundaries.  Points outside the
        open interior of the lifespan are ignored.
        """
        interior = sorted(
            {
                t
                for t in boundaries
                if self.lifespan.start < t < self.lifespan.end
            }
        )
        if not interior:
            return
        new_starts: list[int] = []
        new_ends: list[int] = []
        new_values: list[Any] = []
        pi = 0
        n_pts = len(interior)
        for s, e, v in zip(self._starts, self._ends, self._values):
            cursor = s
            while pi < n_pts and interior[pi] < e:
                t = interior[pi]
                pi += 1
                if t > cursor:
                    new_starts.append(cursor)
                    new_ends.append(t)
                    new_values.append(v)
                    cursor = t
            new_starts.append(cursor)
            new_ends.append(e)
            new_values.append(v)
        self._starts = new_starts
        self._ends = new_ends
        self._values = new_values

    # -- snapshot form -----------------------------------------------------

    def parts(self) -> tuple[Interval, list[int], list[Any]]:
        """Stable snapshot form: ``(lifespan, end boundaries, values)``.

        Partitions contiguously cover the lifespan, so the start points are
        redundant: ``starts[0] == lifespan.start`` and
        ``starts[i+1] == ends[i]``.  The checkpoint shard codec
        (`repro.runtime.checkpoint`) persists exactly this triple —
        restoring it via :meth:`from_parts` reproduces the partitioning
        bit-for-bit, including splits a coalescing pass would merge.
        """
        return self.lifespan, list(self._ends), list(self._values)

    @classmethod
    def from_parts(
        cls,
        lifespan: Interval,
        ends: list[int],
        values: list[Any],
        *,
        coalesce: bool = True,
    ) -> "PartitionedState":
        """Rebuild a state from its :meth:`parts` snapshot, verbatim.

        No re-coalescing happens here — the snapshot's partition boundaries
        are restored exactly (``coalesce`` only governs *future* updates),
        which is what makes a resumed run behave identically to the run
        that wrote the snapshot.
        """
        if not ends or len(ends) != len(values):
            raise ValueError("malformed state snapshot: empty or mismatched parts")
        if ends[-1] != lifespan.end:
            raise ValueError(
                f"state snapshot does not cover lifespan {lifespan}: ends at {ends[-1]}"
            )
        state = cls(lifespan, None, coalesce=coalesce)
        state._starts = [lifespan.start, *ends[:-1]]
        state._ends = list(ends)
        state._values = list(values)
        state.check_invariants()
        return state

    # -- maintenance -------------------------------------------------------

    def copy(self) -> "PartitionedState":
        """An independent deep-enough copy (partitions are duplicated)."""
        clone = PartitionedState(self.lifespan, None, coalesce=self._coalesce)
        clone._starts = list(self._starts)
        clone._ends = list(self._ends)
        clone._values = list(self._values)
        return clone

    def check_invariants(self) -> None:
        """Assert full lifespan coverage with contiguous, ordered partitions.

        Used by the test-suite; cheap enough to call in debug paths.
        """
        assert self._starts[0] == self.lifespan.start
        assert self._ends[-1] == self.lifespan.end
        for i in range(len(self._starts)):
            assert self._starts[i] < self._ends[i]
            if i + 1 < len(self._starts):
                assert self._ends[i] == self._starts[i + 1]

    # -- internals ---------------------------------------------------------

    def _locate(self, t: int) -> int:
        """Index of the partition containing time-point ``t``."""
        if not self.lifespan.contains_point(t):
            raise ValueError(f"time-point {t} outside lifespan {self.lifespan}")
        return bisect_right(self._starts, t) - 1

    def _split_at(self, t: int) -> int:
        """Ensure a partition boundary exists at ``t``; return its index.

        Returns ``len(self)`` when ``t`` equals the lifespan end.
        """
        if t == self.lifespan.end:
            return len(self._starts)
        idx = self._locate(t)
        if self._starts[idx] == t:
            return idx
        # Split partition idx at t, replicating its value.
        self._starts.insert(idx + 1, t)
        self._ends.insert(idx + 1, self._ends[idx])
        self._values.insert(idx + 1, self._values[idx])
        self._ends[idx] = t
        return idx + 1

    def _coalesce_around(self, idx: int) -> None:
        """Merge partition ``idx`` with equal-valued neighbours."""
        # Merge with successor first so idx stays valid.
        if idx + 1 < len(self._values) and self._values[idx] == self._values[idx + 1]:
            self._ends[idx] = self._ends[idx + 1]
            del self._starts[idx + 1], self._ends[idx + 1], self._values[idx + 1]
        if idx > 0 and self._values[idx - 1] == self._values[idx]:
            self._ends[idx - 1] = self._ends[idx]
            del self._starts[idx], self._ends[idx], self._values[idx]

    def __repr__(self) -> str:
        parts = ", ".join(f"{iv}={v!r}" for iv, v in self)
        return f"PartitionedState({parts})"


def states_equal_pointwise(
    a: PartitionedState, b: PartitionedState, *, eq: Optional[Callable[[Any, Any], bool]] = None
) -> bool:
    """True when two states agree at every time-point of their lifespans.

    Partitionings may differ (splitting replicates values), so comparison is
    over the *pointwise* function, computed by aligning partition boundaries.
    """
    if a.lifespan != b.lifespan:
        return False
    same = eq or (lambda x, y: x == y)
    ai = iter(a)
    bi = iter(b)
    iv_a, v_a = next(ai)
    iv_b, v_b = next(bi)
    while True:
        if not same(v_a, v_b):
            return False
        if iv_a.end == iv_b.end:
            try:
                iv_a, v_a = next(ai)
                iv_b, v_b = next(bi)
            except StopIteration:
                return True
        elif iv_a.end < iv_b.end:
            iv_a, v_a = next(ai)
        else:
            iv_b, v_b = next(bi)
