"""Exporting ICM results for downstream analysis.

Final partitioned states are interval-valued; analysts usually want them
as flat tables.  Two shapes are provided:

* **interval rows** — one row per state partition
  (``vertex,start,end,value``), the lossless form;
* **dense rows** — one row per (vertex, time-point), the
  spreadsheet/pandas-friendly form.
"""

from __future__ import annotations

import csv
import json
from pathlib import Path
from typing import Any, Callable, Optional, TextIO, Union

from repro.core.engine import IcmResult
from repro.core.interval import FOREVER

Target = Union[str, Path, TextIO]


def _open(target: Target, write_fn: Callable[[TextIO], None]) -> None:
    if isinstance(target, (str, Path)):
        with open(target, "w", encoding="utf-8", newline="") as fh:
            write_fn(fh)
    else:
        write_fn(target)


def _render(value: Any, value_fn: Optional[Callable[[Any], Any]]) -> Any:
    if value_fn is not None:
        value = value_fn(value)
    if isinstance(value, int) and value >= FOREVER:
        return "inf"
    return value


def export_states_csv(
    result: IcmResult,
    target: Target,
    *,
    value_fn: Optional[Callable[[Any], Any]] = None,
) -> int:
    """Write one row per state partition; returns the row count.

    ``value_fn`` post-processes state values (e.g. ``lcc_value``);
    ``FOREVER``-based sentinels render as ``inf``.
    """
    rows = 0

    def write(fh: TextIO) -> None:
        nonlocal rows
        writer = csv.writer(fh)
        writer.writerow(["vertex", "start", "end", "value"])
        for vid in sorted(result.states, key=repr):
            for interval, value in result.states[vid]:
                end = "inf" if interval.is_unbounded else interval.end
                writer.writerow([vid, interval.start, end, _render(value, value_fn)])
                rows += 1

    _open(target, write)
    return rows


def export_states_dense_csv(
    result: IcmResult,
    target: Target,
    horizon: int,
    *,
    value_fn: Optional[Callable[[Any], Any]] = None,
) -> int:
    """Write one row per (vertex, time-point) up to ``horizon``."""
    rows = 0

    def write(fh: TextIO) -> None:
        nonlocal rows
        writer = csv.writer(fh)
        writer.writerow(["vertex", "t", "value"])
        for vid in sorted(result.states, key=repr):
            state = result.states[vid]
            for t in range(horizon):
                if state.lifespan.contains_point(t):
                    writer.writerow([vid, t, _render(state.value_at(t), value_fn)])
                    rows += 1

    _open(target, write)
    return rows


def export_states_json(
    result: IcmResult,
    target: Target,
    *,
    value_fn: Optional[Callable[[Any], Any]] = None,
) -> dict:
    """Write (and return) a JSON document of per-vertex interval values."""
    doc = {
        "algorithm": result.metrics.algorithm,
        "graph": result.metrics.graph,
        "vertices": {
            str(vid): [
                {
                    "start": interval.start,
                    "end": None if interval.is_unbounded else interval.end,
                    "value": _render(value, value_fn),
                }
                for interval, value in result.states[vid]
            ]
            for vid in sorted(result.states, key=repr)
        },
    }

    def write(fh: TextIO) -> None:
        json.dump(doc, fh, indent=2, default=str)

    _open(target, write)
    return doc
