"""Discrete time domain and half-open time-intervals.

The paper (Sec. III) assumes a linearly ordered discrete time domain whose
range is the set of non-negative whole numbers.  An interval
``[t_start, t_end)`` includes ``t_start`` and excludes ``t_end``.

Open-ended intervals ("till infinity") are represented with the integer
sentinel :data:`FOREVER` so that every time-point stays an ``int`` and the
wire encoding (``repro.runtime.encoding``) remains uniform.

Boolean relations between intervals follow Allen's conventions (Allen,
CACM 1983), using the subset the paper relies on:

========  =====================  ==========================
paper     method                 meaning
========  =====================  ==========================
``⊏``     :meth:`Interval.during`        strictly during
``⊑``     :meth:`Interval.within`        during or equals
``≬``     :meth:`Interval.overlaps`      intersects
``=``     ``==``                         equals
``⋈``     :meth:`Interval.meets`         meets (end == other start)
``∩``     :meth:`Interval.intersect`     intersecting interval
========  =====================  ==========================
"""

from __future__ import annotations

from typing import Iterable, Iterator, Optional

#: Sentinel for an open-ended interval.  Chosen large enough that no real
#: time-point ever reaches it, yet still an ``int`` so arithmetic and
#: serialisation stay uniform.
FOREVER: int = 2**62


def clamp_time(t: int) -> int:
    """Clamp a time-point into the valid domain ``[0, FOREVER]``."""
    if t < 0:
        return 0
    if t > FOREVER:
        return FOREVER
    return t


def format_time(t: int) -> str:
    """Render a time-point, using ``inf`` for the open-ended sentinel."""
    return "inf" if t >= FOREVER else str(t)


class Interval:
    """A half-open, immutable time-interval ``[start, end)`` over ints.

    Instances are ordered lexicographically by ``(start, end)`` which makes
    sorted containers of non-overlapping intervals well ordered in time.

    Raises
    ------
    ValueError
        If ``start >= end`` (empty intervals are not constructible) or if
        ``start < 0``.
    """

    __slots__ = ("start", "end")

    def __init__(self, start: int, end: int = FOREVER):
        if start < 0:
            raise ValueError(f"interval start must be >= 0, got {start}")
        if start >= end:
            raise ValueError(f"empty interval [{start}, {end})")
        object.__setattr__(self, "start", int(start))
        object.__setattr__(self, "end", int(end))

    def __setattr__(self, name: str, value) -> None:
        raise AttributeError("Interval is immutable")

    def __reduce__(self):
        # __slots__ plus the immutability guard defeat default pickling
        # (state restore goes through __setattr__); rebuild via the
        # constructor so intervals can cross worker-process pipes.
        return (Interval, (self.start, self.end))

    # -- constructors ------------------------------------------------------

    @classmethod
    def point(cls, t: int) -> "Interval":
        """The unit-length interval ``[t, t+1)`` covering one time-point."""
        return cls(t, t + 1)

    @classmethod
    def always(cls) -> "Interval":
        """The whole time domain ``[0, FOREVER)``."""
        return cls(0, FOREVER)

    @classmethod
    def _unchecked(cls, start: int, end: int) -> "Interval":
        """Construct without validation.  For hot paths (the warp sweep,
        the scatter merge-join) whose loop invariants already guarantee
        ``0 <= start < end`` over ints; everything else must use the
        validating constructor."""
        iv = object.__new__(cls)
        object.__setattr__(iv, "start", start)
        object.__setattr__(iv, "end", end)
        return iv

    # -- basic queries -----------------------------------------------------

    @property
    def length(self) -> int:
        """Number of time-points in the interval (``FOREVER`` if unbounded)."""
        if self.end >= FOREVER:
            return FOREVER
        return self.end - self.start

    @property
    def is_unit(self) -> bool:
        """True if the interval covers exactly one time-point."""
        return self.end - self.start == 1

    @property
    def is_unbounded(self) -> bool:
        """True if the interval extends to :data:`FOREVER`."""
        return self.end >= FOREVER

    def contains_point(self, t: int) -> bool:
        """True if time-point ``t`` lies in the interval."""
        return self.start <= t < self.end

    def points(self) -> Iterator[int]:
        """Iterate the time-points of a *bounded* interval."""
        if self.is_unbounded:
            raise ValueError("cannot enumerate points of an unbounded interval")
        return iter(range(self.start, self.end))

    # -- Allen relations ---------------------------------------------------

    def overlaps(self, other: "Interval") -> bool:
        """Intersects (``≬``): the two intervals share at least one point."""
        return self.start < other.end and other.start < self.end

    def during(self, other: "Interval") -> bool:
        """Strictly during (``⊏``): proper sub-interval of ``other``."""
        return self.within(other) and self != other

    def within(self, other: "Interval") -> bool:
        """During or equals (``⊑``): every point of self lies in ``other``."""
        return other.start <= self.start and self.end <= other.end

    def contains(self, other: "Interval") -> bool:
        """Inverse of :meth:`within`."""
        return other.within(self)

    def meets(self, other: "Interval") -> bool:
        """Meets (``⋈``): self ends exactly where ``other`` starts."""
        return self.end == other.start

    def precedes(self, other: "Interval") -> bool:
        """Self ends at or before ``other`` starts (disjoint, earlier)."""
        return self.end <= other.start

    # -- constructive operators -------------------------------------------

    def intersect(self, other: "Interval") -> Optional["Interval"]:
        """Intersecting interval (``∩``), or ``None`` when disjoint."""
        start = max(self.start, other.start)
        end = min(self.end, other.end)
        if start >= end:
            return None
        return Interval(start, end)

    def hull(self, other: "Interval") -> "Interval":
        """Smallest interval containing both operands."""
        return Interval(min(self.start, other.start), max(self.end, other.end))

    def shift(self, delta: int) -> "Interval":
        """Translate by ``delta`` time units, clamping into the domain."""
        if self.is_unbounded:
            return Interval(clamp_time(self.start + delta), FOREVER)
        return Interval(clamp_time(self.start + delta), clamp_time(self.end + delta))

    def clip(self, other: "Interval") -> Optional["Interval"]:
        """Alias of :meth:`intersect` (reads better at call sites)."""
        return self.intersect(other)

    def split_at(self, t: int) -> tuple["Interval", "Interval"]:
        """Split into ``[start, t)`` and ``[t, end)``; ``t`` must be interior."""
        if not (self.start < t < self.end):
            raise ValueError(f"split point {t} not interior to {self}")
        return Interval(self.start, t), Interval(t, self.end)

    # -- dunder protocol ---------------------------------------------------

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, Interval)
            and self.start == other.start
            and self.end == other.end
        )

    def __lt__(self, other: "Interval") -> bool:
        return (self.start, self.end) < (other.start, other.end)

    def __le__(self, other: "Interval") -> bool:
        return (self.start, self.end) <= (other.start, other.end)

    def __hash__(self) -> int:
        return hash((self.start, self.end))

    def __repr__(self) -> str:
        return f"[{format_time(self.start)}, {format_time(self.end)})"

    def __contains__(self, t: int) -> bool:
        return self.contains_point(t)


def coalesce(intervals: Iterable[Interval]) -> list[Interval]:
    """Merge overlapping or adjacent intervals into a minimal sorted cover.

    >>> coalesce([Interval(4, 6), Interval(0, 2), Interval(2, 4)])
    [[0, 6)]
    """
    ordered = sorted(intervals)
    merged: list[Interval] = []
    for iv in ordered:
        if merged and iv.start <= merged[-1].end:
            if iv.end > merged[-1].end:
                merged[-1] = Interval(merged[-1].start, iv.end)
        else:
            merged.append(iv)
    return merged


def total_span(intervals: Iterable[Interval]) -> int:
    """Cumulative number of time-points covered by a set of intervals."""
    return sum(iv.length for iv in coalesce(intervals))
