"""The interval-centric BSP engine — GRAPHITE's execution core (Sec. IV, VI).

Execution alternates computation and communication phases over supersteps:

1. **Superstep 1** — ``init`` then ``compute`` runs on *every* vertex over
   its full lifespan with no messages.
2. **Later supersteps** — only vertices that received messages are active.
   The pre-compute **time-warp** aligns and groups inbound messages with the
   vertex's partitioned states; ``compute`` is invoked once per warped
   triple.  State updates are recorded, and the pre-scatter time-join maps
   each updated sub-interval onto the property-constant pieces of each
   out-edge, invoking ``scatter`` once per overlap.
3. Messages are delivered at the global barrier; vertices implicitly vote to
   halt and are reactivated only by messages.  The run stops when no
   messages are in flight (or after ``fixed_supersteps`` for algorithms like
   PageRank).

Engineering optimisations from Sec. VI are implemented and switchable:
receiver-side and inline-warp combiners, warp suppression for unit-length
message traffic, and varint message encoding (in the simulated transport).

The per-vertex pipeline lives in :class:`VertexProcessor`, a pure function
of (context, inbox, superstep): every engine-global service it needs comes
in through the context's host object or the ``send`` sink.  The driver loop
in :meth:`IntervalCentricEngine.run` dispatches vertices to an *executor*
(`repro.runtime.executor`): the serial executor calls the processor
in-process, the parallel executor replicates it inside shared-nothing
worker processes and exchanges messages at the barrier.
"""

from __future__ import annotations

import os
import shutil
import tempfile
import time
from bisect import bisect_right
from dataclasses import dataclass, field
from typing import Any, Iterable, Optional

from repro.graph.compact import resolve_graph_store
from repro.obs.events import EventStream, WORKER_SPAN_PHASES
from repro.obs.observers import JsonlTraceWriter
from repro.runtime.cluster import SimulatedCluster
from repro.runtime.metrics import RunMetrics
from repro.runtime.partitioner import build_partitioner, partitioner_fingerprint

from .combiner import coalesce_messages
from .config import EngineConfig
from .context import EdgeContext, MasterContext, VertexContext
from .interval import Interval, coalesce
from .messages import IntervalMessage, unit_message_fraction
from .program import IntervalProgram
from .state import PartitionedState
from .warp import merge_join_partitioned, time_warp


class IcmProgramError(RuntimeError):
    """A user program raised during compute/scatter.

    Wraps the original exception with the execution context a distributed
    log would otherwise bury: vertex, superstep, phase and interval.
    """

    def __init__(self, phase: str, vertex: Any, superstep: int,
                 interval, original: BaseException):
        super().__init__(
            f"{phase} failed at vertex {vertex!r}, superstep {superstep}, "
            f"interval {interval}: {original!r}"
        )
        self.phase = phase
        self.vertex = vertex
        self.superstep = superstep
        self.interval = interval
        self.original = original

    def __reduce__(self):
        # RuntimeError's default reduce replays ``args`` (the formatted
        # message) into ``__init__``, which needs five arguments — spell the
        # constructor call out so the error survives a worker-process pipe.
        return (
            IcmProgramError,
            (self.phase, self.vertex, self.superstep, self.interval, self.original),
        )


@dataclass
class IcmResult:
    """Outcome of an interval-centric run."""

    states: dict[Any, PartitionedState]
    metrics: RunMetrics
    aggregates: dict[str, Any] = field(default_factory=dict)

    def state_of(self, vid: Any) -> PartitionedState:
        return self.states[vid]

    def value_at(self, vid: Any, t: int) -> Any:
        return self.states[vid].value_at(t)


class _EdgePieceIndex:
    """Per-edge scatter index: the property-constant pieces of one out-edge,
    computed once over the full lifespan and sliced per window by bisection.

    ``TemporalEdge.pieces(window)`` re-derives the property boundaries and
    rebuilds :class:`~repro.graph.model.EdgePiece` objects on every call;
    across supersteps the same edges are re-sliced constantly, so the engine
    indexes each vertex's out-edges the first time it scatters and reuses
    the piece tables (including their shared, read-only values dicts) for
    the rest of the run.
    """

    __slots__ = ("edge", "dst", "lifespan", "_starts", "_pieces")

    def __init__(self, edge):
        self.edge = edge
        self.dst = edge.dst
        self.lifespan = edge.lifespan
        full = edge.pieces(edge.lifespan)
        self._starts = [iv.start for iv, _ in full]
        self._pieces = full

    def pieces(self, window: Interval) -> list[tuple[Interval, Any]]:
        """``(clipped_interval, EdgePiece)`` pairs overlapping ``window``."""
        clipped = self.lifespan.intersect(window)
        if clipped is None:
            return []
        if clipped == self.lifespan and len(self._pieces) == 1:
            return self._pieces
        idx = bisect_right(self._starts, clipped.start) - 1
        if idx < 0:
            idx = 0
        out = []
        pieces = self._pieces
        hi = clipped.end
        while idx < len(pieces):
            iv, piece = pieces[idx]
            if iv.start >= hi:
                break
            common = iv.intersect(clipped)
            if common is not None:
                out.append((common, piece))
            idx += 1
        return out


class VertexProcessor:
    """One vertex's computation phase as a pure function of its inputs.

    Everything a superstep does to a single vertex — init, time-warp,
    warp-suppressed time-point execution, compute dispatch, the scatter
    time-join — happens here, with no reference back to the driver loop:
    outbound messages go through the ``send(src, dst, msg)`` sink passed per
    call, and engine services (aggregators, direct sends) reach user code
    through the context's host object.  The serial executor binds one
    processor to the engine; each parallel worker process builds its own
    from the same construction arguments, which is what makes the two
    executors bit-compatible.

    ``superstep`` is set by the driving executor before each superstep.
    """

    def __init__(
        self,
        graph,
        program: IntervalProgram,
        compute_model,
        *,
        enable_warp_combiner: bool = True,
        enable_receiver_combiner: bool = True,
        enable_dominated_elimination: bool = True,
        enable_warp_suppression: bool = True,
        warp_suppression_threshold: float = 0.70,
        suppression_expansion_cap: int = 4,
        tracer=None,
    ):
        self.graph = graph
        self.program = program
        self.model = compute_model
        self.enable_warp_combiner = enable_warp_combiner
        self.enable_receiver_combiner = enable_receiver_combiner
        self.enable_dominated_elimination = enable_dominated_elimination
        self.enable_warp_suppression = enable_warp_suppression
        self.warp_suppression_threshold = warp_suppression_threshold
        self.suppression_expansion_cap = suppression_expansion_cap
        self.tracer = tracer
        self.superstep = 0
        #: Measured wall-clock the current superstep spent inside
        #: :meth:`scatter_updates`; the driving executor resets it per
        #: superstep and folds it into that step's ``worker_span``.
        self.scatter_wall = 0.0
        #: vid → scatter indexes of its out-edges, built on first scatter
        #: and reused across supersteps (the graph is immutable per run).
        self._edge_index: dict[Any, list[_EdgePieceIndex]] = {}
        #: Storage-layer fast path: a compact graph builds the per-vertex
        #: scatter indexes straight from its columnar piece tables
        #: (``CompactGraph.edge_piece_indexes``); heap graphs fall back to
        #: deriving them from ``out_edges()`` here.
        self._piece_index_source = getattr(graph, "edge_piece_indexes", None)

    # -- program invocation (error-context wrapping) ---------------------------

    def _invoke_compute(self, ctx, interval, value, group, metrics) -> None:
        ctx._begin("compute", interval)
        if self.tracer is not None:
            self.tracer.on_compute(self.superstep, ctx.vertex_id, interval, value, group)
        try:
            self.program.compute(ctx, interval, value, group)
        except IcmProgramError:
            raise
        except Exception as exc:
            raise IcmProgramError(
                "compute", ctx.vertex_id, self.superstep, interval, exc
            ) from exc
        metrics.compute_calls += 1

    # -- per-vertex processing -----------------------------------------------

    def process(
        self,
        ctx: VertexContext,
        messages: list[IntervalMessage],
        metrics: RunMetrics,
        send,
        extra_raw: int = 0,
    ) -> float:
        """Run one vertex's computation phase; returns its modeled cost.

        ``extra_raw`` is the number of raw messages that sender-side
        combining pre-folded out of ``messages`` before delivery (the sum
        of ``count - 1`` over combined entries addressed to this vertex);
        the receiver pass charges for them as if they had arrived.
        """
        program = self.program
        model = self.model
        cost = 0.0
        if self.superstep == 1:
            ctx._begin("init", ctx.lifespan)
            program.init(ctx)
            ctx._end()
            ctx._take_updates()  # seeding the state does not trigger scatter
            for interval, value in ctx.state.partitions():
                self._invoke_compute(ctx, interval, value, [], metrics)
                cost += model.per_compute_call_s
            ctx._end()
        elif messages:
            cost += self._compute_on_messages(ctx, messages, metrics, extra_raw)
        elif program.fixed_supersteps is not None:
            # Fixed-superstep programs treat every vertex interval as active.
            for interval, value in ctx.state.partitions():
                self._invoke_compute(ctx, interval, value, [], metrics)
                cost += model.per_compute_call_s
            ctx._end()
        cost += self.scatter_updates(ctx, metrics, send)
        return cost

    def rescatter(
        self,
        ctx: VertexContext,
        windows: list[Interval],
        metrics: RunMetrics,
        send,
    ) -> float:
        """Warm-start path: re-scatter existing state over ``windows``
        without recomputing (monotone programs absorb the resulting
        re-deliveries harmlessly)."""
        ctx._updated.extend(windows)
        return self.scatter_updates(ctx, metrics, send)

    def _compute_on_messages(
        self, ctx: VertexContext, messages: list[IntervalMessage],
        metrics: RunMetrics, extra_raw: int = 0,
    ) -> float:
        program = self.program
        model = self.model
        combiner = program.combiner
        cost = 0.0
        if combiner is not None and self.enable_receiver_combiner:
            # ``before`` is the raw message count: what arrived plus what
            # sender-side combining folded away upstream.  The sum is exact
            # (integers) and the charge stays one int x float multiply, so
            # modeled compute is bitwise identical to the serial run that
            # scanned every raw message here.
            before = len(messages) + extra_raw
            cost += before * model.per_message_scan_s  # the receiver pass
            messages = combiner.combine_identical_intervals(messages)
            if self.enable_dominated_elimination:
                messages = combiner.combine_dominated(messages)
            metrics.combiner_reductions += before - len(messages)

        if self.should_suppress_warp(messages, ctx.lifespan):
            metrics.warp_suppressed_vertices += 1
            cost += self._compute_time_point(ctx, messages, metrics)
            covered = coalesce(
                m.interval for m in messages if m.interval.overlaps(ctx.lifespan)
            )
        else:
            metrics.warp_calls += 1
            cost += len(messages) * model.per_warp_item_s
            outer = ctx.state.partitions()
            inner = [(m.interval, m.value) for m in messages]
            combine = combiner if (combiner is not None and self.enable_warp_combiner) else None
            triples = time_warp(outer, inner, combine)
            for interval, value, group in triples:
                self._invoke_compute(ctx, interval, value, group, metrics)
                # Inline-folded groups are singletons: compute's scan over
                # the message group is what the warp combiner saves.
                cost += model.per_compute_call_s + len(group) * model.per_message_scan_s
            ctx._end()
            covered = coalesce(iv for iv, _, _ in triples)

        if program.fixed_supersteps is not None:
            # Complement intervals get an empty-message compute call so the
            # whole lifespan advances each superstep (PageRank-style).
            for gap in _complement(ctx.lifespan, covered):
                for interval, value in ctx.state.slices(gap):
                    self._invoke_compute(ctx, interval, value, [], metrics)
                    cost += model.per_compute_call_s
            ctx._end()
        return cost

    def _compute_time_point(
        self, ctx: VertexContext, messages: list[IntervalMessage], metrics: RunMetrics
    ) -> float:
        """Warp-suppressed path: degenerate to time-point-centric execution.

        Messages are bucketed per time-point; each active time-point gets
        one compute call with all values covering it, so correctness is
        unchanged (every point still sees its full message group exactly
        once).  The saving is the warp's per-item merge cost.
        """
        model = self.model
        combiner = self.program.combiner if self.enable_warp_combiner else None
        cost = 0.0
        buckets: dict[int, list[Any]] = {}
        for msg in messages:
            clipped = msg.interval.intersect(ctx.lifespan)
            if clipped is None:
                continue
            for t in clipped.points():
                buckets.setdefault(t, []).append(msg.value)
        for t in sorted(buckets):
            group = buckets[t]
            cost += model.per_compute_call_s + len(group) * model.per_message_scan_s
            if combiner is not None and len(group) > 1:
                folded = group[0]
                for item in group[1:]:
                    folded = combiner(folded, item)
                group = [folded]
            interval = Interval.point(t)
            self._invoke_compute(ctx, interval, ctx.state.value_at(t), group, metrics)
        ctx._end()
        return cost

    def should_suppress_warp(
        self, messages: list[IntervalMessage], lifespan: Interval
    ) -> bool:
        """Decide whether to skip warp for time-point execution.

        Only the portion of each message inside the vertex lifespan counts:
        traffic entirely (or mostly) outside it never reaches a compute call
        on either path, so letting it vote on the unit fraction or fill the
        expansion cap would flip vertices onto the wrong path for free.
        """
        if not self.enable_warp_suppression or not messages:
            return False
        units = 0
        live = 0
        clipped_lengths: list[int] = []
        for msg in messages:
            clipped = msg.interval.intersect(lifespan)
            if clipped is None:
                continue  # dead traffic: no compute call on any path
            if clipped.is_unbounded:
                return False
            live += 1
            if clipped.is_unit:
                units += 1
            clipped_lengths.append(clipped.length)
        if not live or units / live < self.warp_suppression_threshold:
            return False
        total_points = 0
        cap = self.suppression_expansion_cap * live
        for length in clipped_lengths:
            total_points += length
            if total_points > cap:
                return False
        return True

    # -- scatter ---------------------------------------------------------------

    def _edge_pieces_of(self, vid: Any) -> list[_EdgePieceIndex]:
        """The vertex's out-edge scatter indexes, built once per run."""
        indexed = self._edge_index.get(vid)
        if indexed is None:
            if self._piece_index_source is not None:
                indexed = self._piece_index_source(vid)
            else:
                indexed = [_EdgePieceIndex(e) for e in self.graph.out_edges(vid)]
            self._edge_index[vid] = indexed
        return indexed

    def scatter_updates(self, ctx: VertexContext, metrics: RunMetrics, send) -> float:
        updated = ctx._take_updates()
        if not updated:
            return 0.0
        out_edges = self._edge_pieces_of(ctx.vertex_id)
        if not out_edges:
            return 0.0
        t_scatter = time.perf_counter()
        try:
            return self._scatter_windows(ctx, updated, out_edges, metrics, send)
        finally:
            self.scatter_wall += time.perf_counter() - t_scatter

    def _scatter_windows(self, ctx, updated, out_edges, metrics, send) -> float:
        program = self.program
        model = self.model
        cost = 0.0
        vid = ctx.vertex_id
        outbox: dict[Any, list[IntervalMessage]] = {}
        for window in updated:
            # Both the state slices and each edge's pieces are partitioned
            # covers of (their part of) the window, so pairing them is a
            # linear merge-join by interval order — no slices × pieces
            # re-intersection.
            slices = ctx.state.slices(window)
            if not slices:
                continue
            for indexed in out_edges:
                if not indexed.lifespan.overlaps(window):
                    continue
                pieces = indexed.pieces(window)
                if not pieces:
                    continue
                edge = indexed.edge
                for common, s_val, piece in merge_join_partitioned(slices, pieces):
                    edge_ctx = EdgeContext(edge, common, piece.values)
                    ctx._begin("scatter", common)
                    if self.tracer is not None:
                        self.tracer.on_scatter(
                            self.superstep, vid, edge.eid, common, s_val
                        )
                    try:
                        result = program.scatter(ctx, edge_ctx, common, s_val)
                    except IcmProgramError:
                        raise
                    except Exception as exc:
                        raise IcmProgramError(
                            "scatter", vid, self.superstep, common, exc
                        ) from exc
                    ctx._end()
                    metrics.scatter_calls += 1
                    cost += model.per_scatter_call_s
                    for msg in _normalise_scatter(result):
                        outbox.setdefault(edge.dst, []).append(msg)
        combiner = program.combiner
        selective = combiner is not None and combiner.selective
        for dst, msgs in outbox.items():
            if len(msgs) > 1:
                if selective and self.enable_receiver_combiner and self.enable_dominated_elimination:
                    # Sender-side pass of the dominated-message rule: a
                    # message contained in another that wins the fold
                    # carries no information — keep it off the wire.
                    msgs = combiner.combine_dominated(msgs)
                # Merge equal values over adjacent intervals (and over
                # overlapping ones when the combiner allows): one interval
                # message instead of one per edge-property piece.
                msgs = coalesce_messages(msgs, allow_overlap=selective)
            for msg in msgs:
                send(vid, dst, msg)
        return cost


class IntervalCentricEngine:
    """Run an :class:`IntervalProgram` over a temporal graph.

    Parameters
    ----------
    graph:
        The :class:`~repro.graph.model.TemporalGraph` to process.
    program:
        User logic.
    cluster:
        Simulated cluster; a fresh 8-worker cluster is created by default.
    config:
        An :class:`~repro.core.config.EngineConfig` grouping every engine
        knob — warp/combiner optimisations, state handling, executor
        selection, checkpointing, observability.  ``None`` uses
        :meth:`EngineConfig.from_env` (defaults plus the documented
        ``REPRO_*`` environment variables).  Prefer building engines
        through `repro.api`.

    The individual keyword arguments of the pre-config constructor
    (``enable_warp_combiner``, ``executor``, ``checkpoint_every``, …)
    are still accepted, mapped onto the config with a
    ``DeprecationWarning`` naming the replacement field.
    """

    def __init__(
        self,
        graph,
        program: IntervalProgram,
        *,
        cluster: Optional[SimulatedCluster] = None,
        graph_name: str = "",
        config: Optional[EngineConfig] = None,
        platform: str = "GRAPHITE",
        **legacy_kwargs: Any,
    ):
        if legacy_kwargs:
            base = config if config is not None else EngineConfig.from_env()
            config = base.with_legacy_kwargs(**legacy_kwargs)
        elif config is None:
            config = EngineConfig.from_env()
        self.config = config

        # Storage-layer knob, resolved at construction so the whole run —
        # partitioning, executors, checkpoint fingerprints — sees one
        # store.  REPRO_GRAPH_STORE=compact freezes heap graphs into
        # `repro.graph.compact.CompactGraph`; results are bit-identical.
        self.graph = resolve_graph_store(graph)
        graph = self.graph
        self.program = program
        self.cluster = cluster or SimulatedCluster()
        partitioning = config.partitioning
        if partitioning.kind is not None and not (
            partitioning.kind_from_env
            and getattr(self.cluster, "partitioner_explicit", False)
        ):
            # A configured kind replaces the cluster's partitioner — except
            # when the kind came from REPRO_PARTITIONER and the caller
            # installed one on the cluster explicitly (a sweep-wide env
            # default must not override an explicit placement).
            self.cluster.partitioner = build_partitioner(
                partitioning.kind,
                self.cluster.num_workers,
                graph,
                seed=partitioning.seed,
                capacity_slack=partitioning.capacity_slack,
            )
        self.graph_name = graph_name
        #: The platform label stamped on ``run_start`` events and
        #: ``RunMetrics`` — "GRAPHITE" for the paper's own engine; callers
        #: wrapping this engine as a *baseline* platform (or replaying a
        #: comparison into one shared trace) override it so multi-platform
        #: traces stay attributable in ``repro report``/``diff_traces``.
        self.platform = platform
        # Mirror attributes: the flat names the rest of the stack (and the
        # checkpoint config fingerprint — its payload must stay byte-stable
        # across this refactor) reads.
        self.enable_warp_combiner = config.warp.enable_combiner
        self.enable_receiver_combiner = config.warp.enable_receiver_combiner
        self.enable_dominated_elimination = config.warp.enable_dominated_elimination
        self.enable_warp_suppression = config.warp.enable_suppression
        self.warp_suppression_threshold = config.warp.suppression_threshold
        self.suppression_expansion_cap = config.warp.suppression_expansion_cap
        self.coalesce_states = config.state.coalesce
        #: Paper footnote 2: states may be pre-partitioned on the
        #: sub-intervals of the vertex's static properties, making the
        #: computing unit an *interval property vertex*.  Off by default
        #: (properties are optional and coalescing undoes unused splits).
        self.prepartition_by_vertex_properties = config.state.prepartition_by_properties
        self.max_supersteps = config.max_supersteps
        #: Optional ExecutionTracer recording compute/scatter/send events.
        self.tracer = config.observability.tracer
        self.executor = config.executor.kind
        self.executor_processes = config.executor.processes
        self.checkpoint_every = config.checkpoint.every or None  # 0 disables
        self.checkpoint_dir = config.checkpoint.dir
        self.max_restarts = config.checkpoint.max_restarts

        self.superstep = 0
        self._aggregates: dict[str, Any] = {}
        self._next_aggregates: dict[str, Any] = {}
        self._aggregator_fns = program.aggregators()
        self._metrics: Optional[RunMetrics] = None
        #: Structured-event consumers; the stream itself is built per run().
        self._observers = list(config.observability.observers)
        if config.observability.trace_path is not None:
            self._observers.append(JsonlTraceWriter(config.observability.trace_path))
        self._events: Optional[EventStream] = None
        #: vid → canonical global vertex order (graph enumeration order);
        #: both executors process actives and merge messages in this order.
        self._seq: dict[Any, int] = {}
        self._processor = VertexProcessor(
            graph,
            program,
            self.cluster.compute_model,
            tracer=self.tracer,
            **self.processor_args(),
        )

    def processor_args(self) -> dict[str, Any]:
        """Construction kwargs for a :class:`VertexProcessor` equivalent to
        this engine's — what a parallel worker process builds its own from
        (minus the tracer, which cannot cross process boundaries)."""
        return dict(
            enable_warp_combiner=self.enable_warp_combiner,
            enable_receiver_combiner=self.enable_receiver_combiner,
            enable_dominated_elimination=self.enable_dominated_elimination,
            enable_warp_suppression=self.enable_warp_suppression,
            warp_suppression_threshold=self.warp_suppression_threshold,
            suppression_expansion_cap=self.suppression_expansion_cap,
        )

    def send_direct(self, src_vid: Any, dst_vid: Any, interval: Interval, value: Any) -> None:
        """Direct (non-edge) messaging service backing ``ctx.send``."""
        assert self._metrics is not None, "send_direct outside run()"
        if self.tracer is not None:
            self.tracer.on_send(self.superstep, src_vid, dst_vid, interval, value)
        self.cluster.send(src_vid, dst_vid, IntervalMessage(interval, value), self._metrics)

    # -- aggregator services (called via VertexContext) ------------------------

    def contribute_aggregate(self, name: str, value: Any) -> None:
        """Fold ``value`` into the named aggregator (next-superstep scope)."""
        fn = self._aggregator_fns.get(name)
        if fn is None:
            raise KeyError(f"no aggregator registered under {name!r}")
        if name in self._next_aggregates:
            self._next_aggregates[name] = fn(self._next_aggregates[name], value)
        else:
            self._next_aggregates[name] = value

    def read_aggregate(self, name: str, default: Any = None) -> Any:
        """The value the aggregator reduced to in the previous superstep."""
        return self._aggregates.get(name, default)

    # -- main loop ----------------------------------------------------------

    def run(
        self,
        *,
        warm_states: Optional[dict[Any, PartitionedState]] = None,
        rescatter: Optional[dict[Any, list[Interval]]] = None,
        resume_from: Optional[str] = None,
    ) -> IcmResult:
        """Execute to convergence and return states plus metrics.

        Parameters
        ----------
        warm_states:
            Resume from a previous run's states instead of calling ``init``
            everywhere.  Vertices present in the mapping skip superstep-1
            initialisation; vertices *absent* from it (newly added to the
            graph) are initialised normally.  The streaming engine uses
            this for incremental recomputation.
        rescatter:
            Vertex → interval windows whose current state should be
            scattered again in superstep 1 (e.g. over newly added edges).
            Only meaningful together with ``warm_states``.
        resume_from:
            A checkpoint directory (a ``step-*`` checkpoint or a root
            holding them) written by a previous run of the *same*
            configuration — validated via the config fingerprint.  The run
            continues from superstep N+1 and produces states, aggregates,
            counters and modeled times bit-identical to an uninterrupted
            run.  Checkpoints are executor-portable: a serial checkpoint
            may be resumed under the parallel executor and vice versa.

        When ``checkpoint_every`` is set, worker-process deaths
        (:class:`~repro.runtime.faults.WorkerDiedError`) are absorbed by
        rolling back to the latest checkpoint and replaying, up to
        ``max_restarts`` times; without checkpoints the whole run is
        replayed from superstep 1.  Durability costs are reported in
        ``metrics.recovery``, never in the modeled quantities.
        """
        from repro.runtime.checkpoint import (
            EXCHANGE_FINGERPRINT,
            CheckpointError,
            clear_checkpoints,
            config_fingerprint,
            latest_checkpoint,
            load_checkpoint,
        )
        from repro.runtime.executor import resolve_executor
        from repro.runtime.faults import UnrecoverableRunError, WorkerDiedError
        from repro.runtime.metrics import RecoveryMetrics

        executor = resolve_executor(
            self.executor,
            self.executor_processes,
            tracer=self.tracer,
            fault_plan=self.config.executor.fault_plan,
            from_env=self.config.executor.kind_from_env,
            exchange=self.config.exchange,
        )
        rescatter = rescatter or {}
        if resume_from is not None and warm_states is not None:
            raise ValueError("resume_from and warm_states are mutually exclusive")

        self._seq = {v.vid: i for i, v in enumerate(self.graph.vertices())}

        checkpointing = self.checkpoint_every is not None
        ckpt_dir = self.checkpoint_dir
        own_dir: Optional[str] = None
        if checkpointing and ckpt_dir is None:
            own_dir = ckpt_dir = tempfile.mkdtemp(prefix="repro-ckpt-")
        config_hash = ""
        if checkpointing or resume_from is not None:
            config_hash = config_fingerprint(self)

        current_partitioner = partitioner_fingerprint(self.cluster.partitioner)

        def _load_validated(path) -> Any:
            ckpt = load_checkpoint(path, coalesce=self.coalesce_states)
            # Checked before the opaque config hash: a partitioner swap is
            # the one mismatch a user can read and act on directly, and a
            # resume under a different vertex→worker map would silently
            # scramble shard ownership.
            if ckpt.partitioner and ckpt.partitioner != current_partitioner:
                raise CheckpointError(
                    f"checkpoint {ckpt.path} was written under partitioner "
                    f"{ckpt.partitioner} but this engine runs under "
                    f"{current_partitioner}; refusing to resume across a "
                    "different vertex-to-worker assignment"
                )
            if ckpt.exchange and ckpt.exchange != EXCHANGE_FINGERPRINT:
                raise CheckpointError(
                    f"checkpoint {ckpt.path} carries exchange data-plane "
                    f"fingerprint {ckpt.exchange!r} but this build speaks "
                    f"{EXCHANGE_FINGERPRINT!r}; refusing to resume across "
                    "incompatible routed-batch wire formats"
                )
            if ckpt.config_hash != config_hash:
                raise CheckpointError(
                    f"checkpoint {ckpt.path} was written by a different "
                    f"configuration (config hash {ckpt.config_hash[:12]}… vs "
                    f"this engine's {config_hash[:12]}…); refusing to resume"
                )
            if set(ckpt.states) != set(self._seq):
                raise CheckpointError(
                    f"checkpoint {ckpt.path} covers {len(ckpt.states)} vertices "
                    f"but the graph has {len(self._seq)}"
                )
            return ckpt

        resume_ckpt = _load_validated(resume_from) if resume_from is not None else None
        if checkpointing and resume_from is None:
            # A fresh checkpointed run owns its directory: stale steps from
            # an earlier run (e.g. SCC's peeling sub-runs sharing one dir)
            # must not be mistaken for this run's rollback points.
            clear_checkpoints(ckpt_dir)

        # The event stream restarts its sequence for every run(); it keeps
        # counting across recovery attempts, so a replayed superstep appears
        # again in the trace (logically identical, new wall facts).
        # Placement quality is a pure function of graph + partitioner, so
        # one pass here serves the run_start event and the metric gauges
        # identically under both executors.
        self._partition_stats = self.cluster.partition_stats(self.graph)
        events = EventStream(self._observers) if self._observers else None
        self._events = events
        if events is not None:
            events.emit(
                "run_start",
                data={
                    "algorithm": self.program.name,
                    "graph": self.graph_name,
                    "platform": self.platform,
                    "resumed_from": resume_ckpt.superstep if resume_ckpt else None,
                    "partitioner": current_partitioner,
                    "partition_edge_cut": self._partition_stats["edge_cut"],
                    "worker_vertex_load": list(self._partition_stats["vertex_load"]),
                    "worker_edge_load": list(self._partition_stats["edge_load"]),
                },
                wall={"executor": executor.name},
            )

        recovery = RecoveryMetrics()
        start_ckpt = resume_ckpt
        try:
            while True:
                try:
                    result = self._run_attempt(
                        executor,
                        warm_states,
                        rescatter,
                        start_ckpt,
                        ckpt_dir if checkpointing else None,
                        config_hash,
                        recovery,
                    )
                    break
                except WorkerDiedError as died:
                    executor.abort()
                    recovery.restarts += 1
                    if events is not None:
                        events.emit(
                            "worker_death",
                            superstep=died.superstep,
                            data={"worker": died.worker},
                            wall={"exitcode": died.exitcode},
                        )
                    if recovery.restarts > self.max_restarts:
                        raise UnrecoverableRunError(
                            f"worker failure persisted after {self.max_restarts} "
                            f"restart(s): {died}"
                        ) from died
                    t0 = time.perf_counter()
                    latest = latest_checkpoint(ckpt_dir) if checkpointing else None
                    if latest is not None:
                        start_ckpt = _load_validated(latest)
                        rollback_to = start_ckpt.superstep
                    else:
                        # No checkpoint yet — replay the whole run (from the
                        # resume point, when this run itself was a resume).
                        start_ckpt = resume_ckpt
                        rollback_to = resume_ckpt.superstep if resume_ckpt else 0
                    replayed = max(0, died.superstep - rollback_to)
                    recovery.replayed_supersteps += replayed
                    recovery.recovery_seconds += time.perf_counter() - t0
                    if events is not None:
                        events.emit(
                            "rollback",
                            superstep=died.superstep,
                            data={
                                "to_superstep": rollback_to,
                                "replayed_supersteps": replayed,
                            },
                        )
        finally:
            if own_dir is not None:
                shutil.rmtree(own_dir, ignore_errors=True)
            if events is not None:
                events.close()
        result.metrics.recovery = recovery
        if events is not None:
            metrics = result.metrics
            events.emit(
                "run_end",
                data={
                    "supersteps": metrics.supersteps,
                    "compute_calls": metrics.compute_calls,
                    "scatter_calls": metrics.scatter_calls,
                    "messages_sent": metrics.messages_sent,
                    "message_bytes": metrics.message_bytes,
                    "modeled_makespan_s": metrics.modeled_makespan,
                },
                wall={"makespan_s": metrics.makespan},
            )
            events.close()
        return result

    def _run_attempt(
        self,
        executor,
        warm_states,
        rescatter,
        start_ckpt,
        ckpt_dir,
        config_hash: str,
        recovery,
    ) -> IcmResult:
        """One execution attempt: fresh, resumed, or a recovery replay."""
        from repro.runtime.checkpoint import (
            EXCHANGE_FINGERPRINT,
            restore_metrics,
            write_checkpoint,
        )

        if start_ckpt is None:
            metrics = RunMetrics(
                platform=self.platform,
                algorithm=self.program.name,
                graph=self.graph_name,
                executor=executor.name,
            )
        else:
            metrics = restore_metrics(start_ckpt.metrics, executor=executor.name)
            metrics.platform = metrics.platform or self.platform
            metrics.algorithm = metrics.algorithm or self.program.name
            metrics.graph = metrics.graph or self.graph_name
        self._metrics = metrics
        stats = getattr(self, "_partition_stats", None)
        if stats is not None:
            metrics.partition_edge_cut = stats["edge_cut"]
            metrics.partition_imbalance = stats["imbalance"]
        self.cluster.reset()
        self._next_aggregates = {}

        t_load = time.perf_counter()
        states: dict[Any, PartitionedState] = {}
        fresh: set[Any] = set()
        if start_ckpt is None:
            for v in self.graph.vertices():
                if warm_states is not None and v.vid in warm_states:
                    state = warm_states[v.vid].copy()
                else:
                    state = PartitionedState(
                        v.lifespan, None, coalesce=self.coalesce_states
                    )
                    if self.prepartition_by_vertex_properties:
                        state.presplit(v.properties.boundaries())
                    fresh.add(v.vid)
                states[v.vid] = state
            warm = warm_states is not None
            self._aggregates = {}
            start_superstep = 1
        else:
            # Checkpointed states come back in graph enumeration order so
            # every downstream canonical-order walk matches a fresh start.
            states = {vid: start_ckpt.states[vid] for vid in self._seq}
            warm = False
            rescatter = {}
            self._aggregates = dict(start_ckpt.aggregates)
            start_superstep = start_ckpt.superstep + 1
        if start_ckpt is None:
            metrics.load_time = time.perf_counter() - t_load

        fixed = self.program.fixed_supersteps
        executor.start(self, states, fresh, rescatter, warm=warm)
        try:
            if start_ckpt is not None:
                executor.restore_pending(start_ckpt.pending)
                # Worker-local combiner folds already staged in the
                # checkpointed messages; the serial run credits them at the
                # receiving superstep, which will not re-run — credit them
                # here, once, executor-independently.
                metrics.combiner_reductions += start_ckpt.carried_reductions
            t_run = time.perf_counter()
            events = self._events
            self.superstep = start_superstep
            while True:
                if self.superstep > self.max_supersteps:
                    raise RuntimeError(
                        f"{self.program.name} exceeded {self.max_supersteps} supersteps"
                    )
                if fixed is not None and self.superstep > fixed:
                    break
                if fixed is None and self.superstep > 1 and not executor.has_pending():
                    break

                if events is not None:
                    before = (
                        metrics.compute_calls,
                        metrics.scatter_calls,
                        metrics.warp_calls,
                        metrics.warp_suppressed_vertices,
                        metrics.combiner_reductions,
                        metrics.messages_sent,
                        metrics.message_bytes,
                        metrics.local_messages,
                        metrics.remote_messages,
                        metrics.local_message_bytes,
                        metrics.remote_message_bytes,
                    )
                    events.emit("superstep_start", superstep=self.superstep)
                num_active = executor.run_superstep(self.superstep, metrics)
                metrics.supersteps += 1
                if events is not None:
                    self._emit_superstep_events(metrics, before, num_active)

                self._aggregates = self._reduce_aggregates()
                master = MasterContext(self.superstep, dict(self._aggregates), num_active)
                self.program.master_compute(master)
                self._aggregates.update(master._overrides)
                if master._halt:
                    break
                if (
                    ckpt_dir is not None
                    and self.superstep % self.checkpoint_every == 0
                ):
                    info = write_checkpoint(
                        ckpt_dir,
                        superstep=self.superstep,
                        snapshot=executor.snapshot(),
                        aggregates=dict(self._aggregates),
                        metrics=metrics,
                        config_hash=config_hash,
                        num_workers=self.cluster.num_workers,
                        worker_of=self.cluster.worker_of,
                        partitioner=partitioner_fingerprint(self.cluster.partitioner),
                        exchange=EXCHANGE_FINGERPRINT,
                    )
                    recovery.checkpoints_written += 1
                    recovery.checkpoint_bytes += info.bytes_written
                    recovery.checkpoint_seconds += info.seconds
                    if events is not None:
                        events.emit(
                            "checkpoint_write",
                            superstep=self.superstep,
                            wall={
                                "path": str(info.path),
                                "bytes": info.bytes_written,
                                "seconds": info.seconds,
                            },
                        )
                self.superstep += 1

            metrics.makespan += time.perf_counter() - t_run
            final_states = executor.collect_states()
            executor.close()
        except BaseException:
            executor.abort()
            raise
        return IcmResult(
            states=final_states, metrics=metrics, aggregates=dict(self._aggregates)
        )

    def _emit_superstep_events(self, metrics, before, num_active: int) -> None:
        """Emit the phase events for the superstep that just ran.

        Every ``data`` value is a metric delta or a modeled per-superstep
        quantity — exactly the numbers the executor-equivalence tests pin
        down — so the logical event sequence is identical under both
        executors by construction.  Wall-clock facts go in ``wall``.
        """
        events = self._events
        superstep = self.superstep
        step = metrics.supersteps_detail[-1]
        events.emit(
            "compute_phase",
            superstep=superstep,
            data={
                "compute_calls": metrics.compute_calls - before[0],
                "warp_calls": metrics.warp_calls - before[2],
                "warp_suppressed_vertices": metrics.warp_suppressed_vertices
                - before[3],
                "combiner_reductions": metrics.combiner_reductions - before[4],
            },
            wall={
                "compute_s": step.compute_time,
                "workers": len(step.worker_wall_times),
            },
        )
        events.emit(
            "scatter_phase",
            superstep=superstep,
            data={
                "scatter_calls": metrics.scatter_calls - before[1],
                "messages": metrics.messages_sent - before[5],
                "message_bytes": metrics.message_bytes - before[6],
            },
        )
        events.emit(
            "barrier_exchange",
            superstep=superstep,
            data={
                "local_messages": metrics.local_messages - before[7],
                "remote_messages": metrics.remote_messages - before[8],
                "local_bytes": metrics.local_message_bytes - before[9],
                "remote_bytes": metrics.remote_message_bytes - before[10],
            },
            wall={
                "exchange_s": step.exchange_time,
                "exchange_bytes": step.exchange_bytes,
                "exchange_raw_bytes": step.exchange_raw_bytes,
            },
        )
        for worker, spans in enumerate(step.worker_spans):
            events.emit(
                "worker_span",
                superstep=superstep,
                data={
                    "worker": worker,
                    "phases": list(WORKER_SPAN_PHASES),
                },
                wall={
                    **{f"{phase}_s": spans.get(phase, 0.0)
                       for phase in WORKER_SPAN_PHASES},
                    "total_s": sum(
                        spans.get(phase, 0.0) for phase in WORKER_SPAN_PHASES
                    ),
                },
            )
        events.emit(
            "superstep_end",
            superstep=superstep,
            data={
                "active": num_active,
                "modeled_compute_s": step.max_worker_compute_time,
                "modeled_messaging_s": step.messaging_time,
            },
        )

    # -- internals ---------------------------------------------------------

    def _should_suppress_warp(
        self, messages: list[IntervalMessage], lifespan: Interval
    ) -> bool:
        return self._processor.should_suppress_warp(messages, lifespan)

    def _reduce_aggregates(self) -> dict[str, Any]:
        reduced = dict(self._next_aggregates)
        self._next_aggregates = {}
        return reduced


def _normalise_scatter(result) -> Iterable[IntervalMessage]:
    if result is None:
        return
    for item in result:
        if item is None:
            continue
        if isinstance(item, IntervalMessage):
            yield item
        else:
            interval, value = item
            yield IntervalMessage(interval, value)


def _complement(lifespan: Interval, covered: list[Interval]) -> list[Interval]:
    """Sub-intervals of ``lifespan`` not covered by the sorted cover."""
    gaps: list[Interval] = []
    cursor = lifespan.start
    for iv in covered:
        clipped = iv.intersect(lifespan)
        if clipped is None:
            continue
        if clipped.start > cursor:
            gaps.append(Interval(cursor, clipped.start))
        cursor = max(cursor, clipped.end)
    if cursor < lifespan.end:
        gaps.append(Interval(cursor, lifespan.end))
    return gaps
