"""One front door for the error taxonomy.

Every layer of the stack raises its own exception types — cluster
lifecycle misuse, worker deaths, unrecoverable runs, serving-tier
backpressure, and (new) graph-format problems.  This module re-exports
them all so callers can catch one hierarchy::

    from repro import errors
    try:
        graph = api.load_graph(path)
    except errors.GraphFormatError as exc:
        print(exc.code, exc)

Each class carries a **stable string code** (``code`` attribute), the
same codes the serve daemon puts on the wire (``serve/errors.py``
rebuilds typed exceptions from them via ``error_for_code``).  Codes are
part of the compatibility surface: renaming one breaks clients, so they
are pinned by ``tests/test_errors.py``.

Re-exports are lazy (module ``__getattr__``) so importing this module
never drags in the runtime or serving tiers.
"""

from __future__ import annotations

__all__ = [
    "ERROR_CODES",
    "GraphFormatError",
    "ClusterLifecycleError",
    "WorkerDiedError",
    "UnrecoverableRunError",
    "QueueFullError",
    "ServeError",
    "QueryTimeoutError",
    "BadQueryError",
    "error_code",
]


class GraphFormatError(ValueError):
    """A graph source could not be recognised, parsed, or mapped.

    Raised by ``api.load_graph`` (unknown format, failed sniffing, bad
    magic/version, truncated compact file) and by the compact encoder
    (unstorable vertex ids or property values).
    """

    code = "graph_format"


#: Stable string code → where the exception class lives.  The serving
#: daemon transports the subset of these raised during query handling;
#: ``error_code`` reads the same attribute off any caught exception.
ERROR_CODES = {
    "graph_format": ("repro.errors", "GraphFormatError"),
    "cluster_lifecycle": ("repro.runtime.cluster", "ClusterLifecycleError"),
    "worker_died": ("repro.runtime.faults", "WorkerDiedError"),
    "unrecoverable_run": ("repro.runtime.faults", "UnrecoverableRunError"),
    "serve_error": ("repro.serve.errors", "ServeError"),
    "queue_full": ("repro.serve.errors", "QueueFullError"),
    "timeout": ("repro.serve.errors", "QueryTimeoutError"),
    "bad_query": ("repro.serve.errors", "BadQueryError"),
}

_REEXPORTS = {name: module for code, (module, name) in ERROR_CODES.items()}


def error_code(exc: BaseException) -> str:
    """The stable string code of ``exc``, or ``"error"`` for foreign types."""
    return getattr(type(exc), "code", "error")


def __getattr__(name: str):
    module = _REEXPORTS.get(name)
    if module is None:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
    import importlib

    return getattr(importlib.import_module(module), name)


def __dir__():
    return sorted(set(globals()) | set(_REEXPORTS))
