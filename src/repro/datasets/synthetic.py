"""Scaled-down synthetic surrogates for the paper's six datasets (Table 1).

The paper evaluates on real graphs up to 131M vertices / 5.5B edges — far
beyond a pure-Python single-machine reproduction.  Each surrogate below
preserves the *characteristics the paper's analysis hinges on* at a scale
where the full platform × algorithm matrix runs in minutes:

==========  =========  ==========================  =======================
surrogate   snapshots  lifespans                   structure
==========  =========  ==========================  =======================
gplus       4          unit edges (worst case)     power-law / social
reddit      16         mixed, ~96% unit edges      power-law / social
usrn        24         static topology, dynamic    planar grid / road,
                       edge properties             large diameter
mag         24         long edge lifespans         power-law / social
twitter     16         edges span almost the       power-law / social
                       whole lifetime
webuk       12         medium lifespans            power-law / web
==========  =========  ==========================  =======================

All generators are deterministic given the seed; ``scale`` multiplies the
vertex/edge counts.  TD edge properties ``travel-time`` (always 1) and
``travel-cost`` (re-drawn per property sub-interval) are attached to every
edge, mirroring the paper's single edge property.
"""

from __future__ import annotations

import random
from typing import Callable, Iterable, Optional

from repro.core.interval import Interval
from repro.graph.builder import TemporalGraphBuilder
from repro.graph.model import TemporalGraph

TRAVEL_TIME = "travel-time"
TRAVEL_COST = "travel-cost"


def _powerlaw_pairs(
    n_vertices: int, n_edges: int, rng: random.Random
) -> list[tuple[int, int]]:
    """Degree-biased (preferential-attachment flavoured) directed pairs."""
    pairs: list[tuple[int, int]] = []
    # Seed the attractor pool with every vertex once so isolated vertices
    # stay possible but rare.
    attractors = list(range(n_vertices))
    for _ in range(n_edges):
        src = rng.randrange(n_vertices)
        dst = attractors[rng.randrange(len(attractors))]
        if dst == src:
            dst = (src + 1 + rng.randrange(n_vertices - 1)) % n_vertices
        pairs.append((src, dst))
        attractors.append(dst)
        attractors.append(src)
    return pairs


def _grid_pairs(rows: int, cols: int) -> list[tuple[int, int]]:
    """Bidirectional 4-neighbour road grid; vertex id = row * cols + col."""
    pairs = []
    for r in range(rows):
        for c in range(cols):
            vid = r * cols + c
            if c + 1 < cols:
                pairs.append((vid, vid + 1))
                pairs.append((vid + 1, vid))
            if r + 1 < rows:
                pairs.append((vid, vid + cols))
                pairs.append((vid + cols, vid))
    return pairs


def _chop(
    lifespan: Interval, rng: random.Random, mean_piece: float
) -> list[Interval]:
    """Partition ``lifespan`` into pieces of roughly ``mean_piece`` length."""
    pieces = []
    cursor = lifespan.start
    while cursor < lifespan.end:
        length = max(1, round(rng.expovariate(1.0 / mean_piece))) if mean_piece > 0 else 1
        end = min(cursor + length, lifespan.end)
        pieces.append(Interval(cursor, end))
        cursor = end
    return pieces


def _edge_lifespan(
    horizon: int, rng: random.Random, kind: str
) -> Interval:
    """Draw an edge lifespan of the requested character within the horizon."""
    if kind == "unit":
        start = rng.randrange(horizon)
        return Interval(start, start + 1)
    if kind == "full":
        return Interval(0, horizon)
    if kind == "long":
        length = max(2, min(horizon, round(rng.gauss(horizon * 0.66, horizon * 0.15))))
        start = rng.randrange(horizon - length + 1)
        return Interval(start, start + length)
    if kind == "medium":
        length = max(1, min(horizon, round(rng.gauss(horizon * 0.4, horizon * 0.2))))
        start = rng.randrange(horizon - length + 1)
        return Interval(start, start + length)
    if kind == "mixed":
        if rng.random() < 0.96:
            return _edge_lifespan(horizon, rng, "unit")
        return _edge_lifespan(horizon, rng, "long")
    raise ValueError(f"unknown lifespan kind {kind!r}")


def _build(
    name: str,
    pairs: Iterable[tuple[int, int]],
    n_vertices: int,
    horizon: int,
    rng: random.Random,
    *,
    lifespan_kind: str,
    prop_mean_piece: float,
    max_cost: int = 3,
) -> TemporalGraph:
    # max_cost defaults to a moderate spread: the paper's property sources
    # (UK road traffic, LinkBench/LDBC) vary smoothly, and highly volatile
    # random costs would induce label-correction waves none of the real
    # datasets exhibit.
    builder = TemporalGraphBuilder()
    for vid in range(n_vertices):
        builder.add_vertex(f"v{vid}", 0, horizon)
    for src, dst in pairs:
        lifespan = _edge_lifespan(horizon, rng, lifespan_kind)
        cost_pieces = [
            (piece.start, piece.end, rng.randint(1, max_cost))
            for piece in _chop(lifespan, rng, prop_mean_piece)
        ]
        builder.add_edge(
            f"v{src}", f"v{dst}", lifespan.start, lifespan.end,
            props={TRAVEL_COST: cost_pieces, TRAVEL_TIME: 1},
        )
    return builder.build()


def gplus(scale: float = 1.0, seed: int = 7) -> TemporalGraph:
    """GPlus surrogate: 4 snapshots, unit edge lifespans (ICM worst case)."""
    rng = random.Random(seed)
    n = max(20, int(120 * scale))
    m = max(60, int(700 * scale))
    return _build("gplus", _powerlaw_pairs(n, m, rng), n, 4, rng,
                  lifespan_kind="unit", prop_mean_piece=1)


def reddit(scale: float = 1.0, seed: int = 11) -> TemporalGraph:
    """Reddit surrogate: mixed lifespans, ~96% unit edges."""
    rng = random.Random(seed)
    n = max(20, int(100 * scale))
    m = max(60, int(600 * scale))
    return _build("reddit", _powerlaw_pairs(n, m, rng), n, 16, rng,
                  lifespan_kind="mixed", prop_mean_piece=2)


def usrn(scale: float = 1.0, seed: int = 13) -> TemporalGraph:
    """USRN surrogate: static planar road grid, properties change over time."""
    rng = random.Random(seed)
    rows = max(4, int(12 * scale))
    cols = max(4, int(12 * scale))
    pairs = _grid_pairs(rows, cols)
    return _build("usrn", pairs, rows * cols, 24, rng,
                  lifespan_kind="full", prop_mean_piece=5)


def mag(scale: float = 1.0, seed: int = 17) -> TemporalGraph:
    """MAG surrogate: long edge lifespans, properties change mid-life."""
    rng = random.Random(seed)
    n = max(20, int(150 * scale))
    m = max(80, int(900 * scale))
    return _build("mag", _powerlaw_pairs(n, m, rng), n, 24, rng,
                  lifespan_kind="long", prop_mean_piece=5)


def twitter(scale: float = 1.0, seed: int = 19) -> TemporalGraph:
    """Twitter surrogate: edges span nearly the whole graph lifetime."""
    rng = random.Random(seed)
    n = max(20, int(140 * scale))
    m = max(80, int(900 * scale))
    return _build("twitter", _powerlaw_pairs(n, m, rng), n, 16, rng,
                  lifespan_kind="full", prop_mean_piece=8)


def webuk(scale: float = 1.0, seed: int = 23) -> TemporalGraph:
    """WebUK surrogate: medium lifespans over a short horizon."""
    rng = random.Random(seed)
    n = max(20, int(160 * scale))
    m = max(90, int(1000 * scale))
    return _build("webuk", _powerlaw_pairs(n, m, rng), n, 12, rng,
                  lifespan_kind="medium", prop_mean_piece=5)


def locality(scale: float = 1.0, seed: int = 29) -> TemporalGraph:
    """Community-structured graph for partitioner evaluation (Sec. VII-A4).

    Vertices form dense communities with a sparse inter-community ring —
    the structure under which the paper observes hash partitioning landing
    70% of TGB's messages on half the partitions.  Intra-community edges
    are long-lived (they carry traffic every superstep), inter-community
    bridges are unit-lifespan, so an interval-aware partitioner sees an
    even stronger community signal than an edge-count one.
    """
    rng = random.Random(seed)
    communities = 8
    per_community = max(6, int(24 * scale))
    intra_edges = max(12, int(60 * scale))
    bridges_per_community = 3
    horizon = 16
    builder = TemporalGraphBuilder()
    n = communities * per_community
    for vid in range(n):
        builder.add_vertex(f"v{vid}", 0, horizon)

    def _cost_pieces(lifespan: Interval) -> list[tuple[int, int, int]]:
        return [
            (piece.start, piece.end, rng.randint(1, 3))
            for piece in _chop(lifespan, rng, 4)
        ]

    for community in range(communities):
        base = community * per_community
        for _ in range(intra_edges):
            src = base + rng.randrange(per_community)
            dst = base + rng.randrange(per_community)
            if dst == src:
                dst = base + (src - base + 1) % per_community
            lifespan = _edge_lifespan(horizon, rng, "long")
            builder.add_edge(
                f"v{src}", f"v{dst}", lifespan.start, lifespan.end,
                props={TRAVEL_COST: _cost_pieces(lifespan), TRAVEL_TIME: 1},
            )
        next_base = ((community + 1) % communities) * per_community
        for _ in range(bridges_per_community):
            src = base + rng.randrange(per_community)
            dst = next_base + rng.randrange(per_community)
            lifespan = _edge_lifespan(horizon, rng, "unit")
            builder.add_edge(
                f"v{src}", f"v{dst}", lifespan.start, lifespan.end,
                props={TRAVEL_COST: _cost_pieces(lifespan), TRAVEL_TIME: 1},
            )
    return builder.build()


#: The six Table-1 surrogates, in the paper's small→large narrative order,
#: plus the community-structured partitioner-evaluation graph.
SURROGATES: dict[str, Callable[..., TemporalGraph]] = {
    "gplus": gplus,
    "reddit": reddit,
    "usrn": usrn,
    "twitter": twitter,
    "mag": mag,
    "webuk": webuk,
    "locality": locality,
}


def load_surrogate(name: str, scale: float = 1.0, seed: Optional[int] = None) -> TemporalGraph:
    """Build a surrogate by Table-1 name (case-insensitive)."""
    try:
        factory = SURROGATES[name.lower()]
    except KeyError:
        raise KeyError(f"unknown dataset {name!r}; choose from {sorted(SURROGATES)}") from None
    if seed is None:
        return factory(scale)
    return factory(scale, seed)
