"""Datasets: the Fig-1a transit example, Table-1 surrogates, LDBC scaling."""

from .ldbc import ldbc_graph
from .synthetic import (
    SURROGATES,
    TRAVEL_COST,
    TRAVEL_TIME,
    gplus,
    load_surrogate,
    locality,
    mag,
    reddit,
    twitter,
    usrn,
    webuk,
)
from .transit import EXPECTED_SSSP_FROM_A, transit_graph

__all__ = [
    "transit_graph",
    "EXPECTED_SSSP_FROM_A",
    "SURROGATES",
    "load_surrogate",
    "gplus",
    "reddit",
    "usrn",
    "mag",
    "twitter",
    "webuk",
    "locality",
    "ldbc_graph",
    "TRAVEL_COST",
    "TRAVEL_TIME",
]
