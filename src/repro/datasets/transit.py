"""The paper's running example: a transit network as a temporal graph.

The paper never prints Fig. 1(a)'s full edge list, so this graph is
*reconstructed* to be consistent with every statement in the text:

* A's scatter is called twice for the edge to B, for the two interval
  properties ``⟨[3,5),4⟩`` and ``⟨[5,6),3⟩``, sending ``⟨[4,∞),4⟩`` and
  ``⟨[6,∞),3⟩``;
* warp at B in superstep 2 yields compute calls for ``[4,6)`` with ``{4}``
  and ``[6,∞)`` with ``{3,4}``, leaving B's state in 3 partitions;
* scatter on edge B→C for its property ``⟨[8,9),2⟩`` sends ``⟨[9,∞),5⟩``;
* E receives ``⟨[9,∞),5⟩`` from B and ``⟨[6,∞),7⟩`` from C, and warp yields
  ``⟨[6,9),∞,{7}⟩`` and ``⟨[9,∞),∞,{5,7}⟩``;
* finally F is unreachable; C and D are reached during one contiguous
  interval each with costs 3 and 2; B and E during two intervals each with
  costs {4, 3} and {7, 5}.

Travel time on every edge is 1, as in the paper's walk-through.
"""

from __future__ import annotations

from repro.graph.builder import TemporalGraphBuilder
from repro.graph.model import TemporalGraph

#: Edge property labels used by the TD algorithms, matching Alg. 1.
TRAVEL_TIME = "travel-time"
TRAVEL_COST = "travel-cost"


def transit_graph() -> TemporalGraph:
    """Build the reconstructed Fig. 1(a) transit network.

    Vertices A–F have perpetual lifespans ``[0, ∞)`` "for simplicity", as in
    the paper.  Edge intervals are the periods during which the transit
    option can be *initiated*; ``travel-cost`` varies per interval while
    ``travel-time`` is the constant 1.
    """
    b = TemporalGraphBuilder()
    for vid in "ABCDEF":
        b.add_vertex(vid)

    # A -> B: two cost regimes, the example traced in Sec. IV-A3.
    b.add_edge("A", "B", 3, 6, eid="AB", props={
        TRAVEL_COST: [(3, 5, 4), (5, 6, 3)],
        TRAVEL_TIME: 1,
    })
    # A -> C: depart at 1, arrive 2, cost 3 (the A1 -> C2 leg).
    b.add_edge("A", "C", 1, 2, eid="AC", props={TRAVEL_COST: 3, TRAVEL_TIME: 1})
    # A -> D: reachable at cost 2 during one interval.
    b.add_edge("A", "D", 2, 4, eid="AD", props={TRAVEL_COST: 2, TRAVEL_TIME: 1})
    # B -> C: property ⟨[8,9),2⟩; yields the non-improving ⟨[9,∞),5⟩ to C.
    b.add_edge("B", "C", 8, 9, eid="BC", props={TRAVEL_COST: 2, TRAVEL_TIME: 1})
    # B -> E: depart at 8, arrive 9, cost 2 (the A5 -> B6, B8 -> E9 leg).
    b.add_edge("B", "E", 8, 9, eid="BE", props={TRAVEL_COST: 2, TRAVEL_TIME: 1})
    # C -> E: depart at 5, arrive 6, cost 4 (the C5 -> E6 leg).
    b.add_edge("C", "E", 5, 6, eid="CE", props={TRAVEL_COST: 4, TRAVEL_TIME: 1})
    # E -> F exists only before E is ever reachable, so F stays unreachable
    # for *temporal* reasons even though it is topologically connected.
    b.add_edge("E", "F", 2, 4, eid="EF", props={TRAVEL_COST: 1, TRAVEL_TIME: 1})
    return b.build()


#: Expected temporal SSSP answer from source ``A`` at time 0 — the final
#: partitioned states of Fig. 2, used by tests and the quickstart example.
EXPECTED_SSSP_FROM_A: dict[str, list[tuple[int, object, object]]] = {
    # vid -> list of (start, end, cost); end None means FOREVER, cost None
    # means unreachable (infinite).
    "A": [(0, None, 0)],
    "B": [(0, 4, None), (4, 6, 4), (6, None, 3)],
    "C": [(0, 2, None), (2, None, 3)],
    "D": [(0, 3, None), (3, None, 2)],
    "E": [(0, 6, None), (6, 9, 7), (9, None, 5)],
    "F": [(0, None, None)],
}
