"""LDBC-style generator for the weak-scaling study (paper Fig. 7).

The paper generates a synthetic graph with LDBC's Facebook degree
distribution and perturbs its structure over 128 time-points using
Facebook's LinkBench distributions; the largest snapshot holds
``m × 10M`` vertices and ``m × 100M`` edges for ``m`` machines.

This generator mirrors the shape at a Python-tractable scale: a power-law
base structure sized proportionally to the machine count, with
LinkBench-flavoured churn — edges are born and die over the horizon, with
birth times skewed towards the beginning (most of the graph exists early,
then evolves) and lifespans drawn from a heavy-tailed distribution.
"""

from __future__ import annotations

import random

from repro.core.interval import Interval
from repro.graph.builder import TemporalGraphBuilder
from repro.graph.model import TemporalGraph

from .synthetic import TRAVEL_COST, TRAVEL_TIME, _powerlaw_pairs


def ldbc_graph(
    machines: int,
    *,
    vertices_per_machine: int = 200,
    edges_per_machine: int = 2000,
    horizon: int = 32,
    seed: int = 42,
) -> TemporalGraph:
    """Build the weak-scaling input for ``machines`` simulated machines.

    The per-machine load (``vertices_per_machine`` × ``machines`` vertices,
    likewise edges) is fixed, so doubling the machines doubles the graph —
    the weak-scaling contract of Fig. 7.
    """
    rng = random.Random(seed + machines)
    n = vertices_per_machine * machines
    m = edges_per_machine * machines
    builder = TemporalGraphBuilder()
    for vid in range(n):
        builder.add_vertex(f"v{vid}", 0, horizon)
    for src, dst in _powerlaw_pairs(n, m, rng):
        # LinkBench-style churn: births skew early (beta-ish draw), and
        # lifespans are heavy-tailed so many edges persist to the end.
        birth = int(horizon * min(rng.random(), rng.random()))
        length = max(1, min(horizon - birth, round(rng.paretovariate(1.2))))
        lifespan = Interval(birth, birth + length)
        builder.add_edge(
            f"v{src}", f"v{dst}", lifespan.start, lifespan.end,
            props={
                TRAVEL_COST: [(lifespan.start, lifespan.end, rng.randint(1, 9))],
                TRAVEL_TIME: 1,
            },
        )
    return builder.build()
