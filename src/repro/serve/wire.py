"""Length-prefixed request/response frames for the serving socket.

One frame = a varint byte-length prefix followed by the frame body; the
body is a one-byte format version (:data:`SERVE_WIRE_FORMAT`) followed by
one value in the engine's tagged varint payload encoding
(`repro.runtime.encoding.encode_payload` — the same codec that carries
routed message batches; **no second serializer**).  Dicts travel as sorted
``(key, value)`` item tuples, intervals as ``(start, end)`` pairs with
``None`` for an unbounded end.

Request values::

    ("query", algorithm, params_items, interval_or_None, options_items)
    ("ping",)
    ("stats",)
    ("shutdown",)

Response values::

    ("ok", result_json, meta_items)   # results_io JSON document, verbatim
    ("pong",)
    ("stats", stats_json)
    ("bye",)
    ("err", code, message)            # re-raised typed on the client side

An unknown frame version is rejected eagerly, naming both versions, so a
stale client fails loudly instead of mis-parsing.
"""

from __future__ import annotations

from typing import Any, Callable, Mapping, Optional, Tuple

from repro.runtime.encoding import (
    decode_payload,
    decode_varint,
    encode_payload,
    encode_varint,
)

__all__ = [
    "EOF",
    "SERVE_WIRE_FORMAT",
    "decode_frame",
    "decode_frame_body",
    "encode_frame",
    "encode_frame_body",
    "items_to_dict",
    "query_value",
    "read_frame",
    "write_frame",
]

#: Current serve-frame format version.  Bumped on incompatible layout
#: changes; both sides reject a mismatched version by name.
SERVE_WIRE_FORMAT = 1

#: Clean end-of-stream marker returned by :func:`read_frame`.  A distinct
#: sentinel (not ``None``) because ``None`` is a perfectly valid frame
#: value in the payload codec.
EOF = object()


def encode_frame_body(value: Any) -> bytes:
    """Format byte + tagged-payload encoding of ``value``."""
    return bytes((SERVE_WIRE_FORMAT,)) + encode_payload(value)


def decode_frame_body(body: bytes) -> Any:
    """Inverse of :func:`encode_frame_body`; rejects version mismatches
    (naming both versions) and trailing bytes."""
    if not body:
        raise ValueError("empty serve frame body")
    version = body[0]
    if version != SERVE_WIRE_FORMAT:
        raise ValueError(
            f"serve frame carries wire format {version} but this build "
            f"speaks format {SERVE_WIRE_FORMAT}; refusing to decode a "
            "mismatched frame"
        )
    value, offset = decode_payload(body, 1)
    if offset != len(body):
        raise ValueError(
            f"serve frame has {len(body) - offset} trailing byte(s) after "
            "its payload"
        )
    return value


def encode_frame(value: Any) -> bytes:
    """One wire frame: varint body length, then the body."""
    body = encode_frame_body(value)
    return encode_varint(len(body)) + body


def decode_frame(buf: bytes, offset: int = 0) -> Tuple[Any, int]:
    """Decode one frame from ``buf``; returns ``(value, next_offset)``."""
    length, offset = decode_varint(buf, offset)
    end = offset + length
    if end > len(buf):
        raise ValueError(
            f"truncated serve frame: header promises {length} bytes, "
            f"{len(buf) - offset} available"
        )
    return decode_frame_body(bytes(buf[offset:end])), end


def read_frame(recv: Callable[[int], bytes]) -> Any:
    """Read one frame from a byte stream (``recv(n)`` → up to ``n`` bytes).

    Returns :data:`EOF` on a clean end-of-stream at a frame boundary;
    raises on EOF mid-frame (a torn write) and on any decode failure.
    """
    # varint length prefix, one byte at a time (it is 1-2 bytes in practice)
    length = 0
    shift = 0
    first = True
    while True:
        chunk = recv(1)
        if not chunk:
            if first:
                return EOF
            raise ValueError("connection closed mid-frame (in length prefix)")
        first = False
        byte = chunk[0]
        length |= (byte & 0x7F) << shift
        if not byte & 0x80:
            break
        shift += 7
    body = bytearray()
    while len(body) < length:
        chunk = recv(length - len(body))
        if not chunk:
            raise ValueError(
                f"connection closed mid-frame ({len(body)}/{length} body "
                "bytes received)"
            )
        body.extend(chunk)
    return decode_frame_body(bytes(body))


def write_frame(sock, value: Any) -> None:
    """Encode ``value`` and send it whole on a socket."""
    sock.sendall(encode_frame(value))


# -- request construction helpers ---------------------------------------------


def _items(mapping: Optional[Mapping[str, Any]]) -> tuple:
    """A mapping as a canonical (sorted) item tuple — the dict spelling the
    payload codec understands, and the spelling cache keys canonicalise to."""
    if not mapping:
        return ()
    return tuple(sorted((str(k), v) for k, v in mapping.items()))


def items_to_dict(items: Any) -> dict:
    """Inverse of the item-tuple spelling (wire → dict)."""
    out = {}
    for pair in items or ():
        if not isinstance(pair, tuple) or len(pair) != 2:
            raise ValueError(f"malformed item pair {pair!r}")
        out[pair[0]] = pair[1]
    return out


def query_value(
    algorithm: str,
    params: Optional[Mapping[str, Any]] = None,
    interval: Optional[Tuple[int, Optional[int]]] = None,
    options: Optional[Mapping[str, Any]] = None,
) -> tuple:
    """The request value for one query frame."""
    return ("query", algorithm, _items(params), interval, _items(options))
