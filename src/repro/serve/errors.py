"""Typed serving errors — the backpressure and deadline contract.

Every error a :class:`~repro.serve.GraphService` can hand back carries a
stable machine-readable ``code`` so the wire layer round-trips it
losslessly: the daemon encodes ``(code, message)`` into an error frame and
the client re-raises the *same* exception type on its side.

The codes are the serving slice of the repo-wide taxonomy in
:mod:`repro.errors` (``ERROR_CODES``), which re-exports these classes;
both sides are pinned by ``tests/test_errors.py`` so a rename cannot
silently break clients.
"""

from __future__ import annotations

__all__ = [
    "BadQueryError",
    "QueryTimeoutError",
    "QueueFullError",
    "ServeError",
    "error_for_code",
]


class ServeError(Exception):
    """Base class for serving-tier failures; ``code`` is wire-stable."""

    code = "serve_error"


class QueueFullError(ServeError):
    """Backpressure: admission refused because the FIFO queue is at its
    configured ``max_queue_depth`` and every execution lane is busy.

    Rejected queries run nothing and cache nothing — the caller should
    back off and retry.  ``depth`` is the queue depth at rejection time.
    """

    code = "queue_full"

    def __init__(self, message: str, *, depth: int = 0, max_depth: int = 0):
        super().__init__(message)
        self.depth = depth
        self.max_depth = max_depth


class QueryTimeoutError(ServeError):
    """The query exceeded its deadline and was cancelled at a superstep
    boundary.  The lane's engine and executor are reusable afterwards —
    the same query re-run produces bit-identical results."""

    code = "timeout"

    def __init__(self, message: str, *, timeout_s: float = 0.0):
        super().__init__(message)
        self.timeout_s = timeout_s


class BadQueryError(ServeError):
    """The request itself is invalid: unknown algorithm, malformed params,
    or an interval outside the graph's horizon."""

    code = "bad_query"


_BY_CODE = {
    cls.code: cls for cls in (ServeError, QueueFullError, QueryTimeoutError,
                              BadQueryError)
}


def error_for_code(code: str, message: str) -> ServeError:
    """Rebuild the typed exception a wire error frame describes."""
    return _BY_CODE.get(code, ServeError)(message)
