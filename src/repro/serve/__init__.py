"""repro.serve — the long-lived query-serving tier.

Batch runs (`repro.api.run`) build an engine, execute once, and throw
everything away.  This package keeps the expensive parts resident — the
loaded graph, its partitioned placement, a warm executor per concurrency
lane — and answers ``(algorithm, params, interval, options)`` queries
against them, fronted by a FIFO admission queue with typed backpressure
and an interval-aware LRU result cache whose keys carry graph and config
fingerprints (see ``docs/serving.md``).

Entry points: :func:`repro.api.serve` builds a
:class:`~repro.serve.service.GraphService`; ``repro serve`` /
``repro query`` expose it over a Unix socket via
:class:`~repro.serve.daemon.ServeDaemon` and
:class:`~repro.serve.client.QueryClient`.
"""

from .cache import CacheStats, ResultCache
from .errors import (
    BadQueryError,
    QueryTimeoutError,
    QueueFullError,
    ServeError,
    error_for_code,
)
from .metrics_http import MetricsEndpoint
from .service import GraphService, QueryAnswer, QueryRequest, ServeMetrics

__all__ = [
    "BadQueryError",
    "CacheStats",
    "GraphService",
    "MetricsEndpoint",
    "QueryAnswer",
    "QueryRequest",
    "QueryTimeoutError",
    "QueueFullError",
    "ResultCache",
    "ServeError",
    "ServeMetrics",
    "error_for_code",
]
