"""The interval-aware result cache: LRU under a byte budget.

Keys are ``(algorithm, canonical params, query interval, graph
fingerprint, config fingerprint)`` tuples — see
:meth:`~repro.serve.service.GraphService._cache_key`.  The two
fingerprints make correctness structural rather than hopeful: a cached
answer can only be returned for the *same* graph (ids, lifespans,
topology — `repro.runtime.checkpoint.graph_fingerprint`) under the *same*
deterministic execution configuration (cluster shape, partitioner
placement, warp/state/exchange flags), so serving a hit is bit-identical
to re-running the engine by the same argument that makes checkpoints
resumable.  Anything that would change the answer changes a fingerprint,
which changes the key, which is a miss.

Values are the fully serialized response payloads (the ``results_io``
JSON document, already rendered to a string), which gives byte-budget
accounting for free and makes a hit a dict lookup plus a send — no
re-serialization on the hot path.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Any, Callable, Hashable, Optional, Tuple

__all__ = ["CacheStats", "ResultCache"]


class CacheStats:
    """Monotone hit/miss/eviction counters plus current occupancy."""

    __slots__ = ("hits", "misses", "evictions")

    def __init__(self):
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        lookups = self.lookups
        return self.hits / lookups if lookups else 0.0


class ResultCache:
    """LRU over serialized query answers, evicting by total byte size.

    ``max_bytes=0`` disables caching entirely (every ``get`` is a miss and
    ``put`` is a no-op).  An entry larger than the whole budget is never
    admitted — it would only evict everything else and then miss anyway.
    ``on_evict(entries, bytes_now)`` is called once per eviction wave so
    the service can emit one ``cache_evict`` event per ``put`` that
    displaced entries, not one per entry.
    """

    def __init__(
        self,
        max_bytes: int,
        *,
        on_evict: Optional[Callable[[int, int], None]] = None,
    ):
        if max_bytes < 0:
            raise ValueError(f"cache max_bytes must be >= 0, got {max_bytes}")
        self.max_bytes = max_bytes
        self.stats = CacheStats()
        self._on_evict = on_evict
        self._entries: "OrderedDict[Hashable, str]" = OrderedDict()
        self._bytes = 0

    def __len__(self) -> int:
        return len(self._entries)

    @property
    def bytes_used(self) -> int:
        return self._bytes

    @staticmethod
    def _size(payload: str) -> int:
        return len(payload.encode("utf-8"))

    def get(self, key: Hashable) -> Optional[str]:
        """The cached payload for ``key`` (refreshing its recency), or
        ``None`` — counting the lookup either way."""
        payload = self._entries.get(key)
        if payload is None:
            self.stats.misses += 1
            return None
        self._entries.move_to_end(key)
        self.stats.hits += 1
        return payload

    def put(self, key: Hashable, payload: str) -> None:
        """Insert (or refresh) ``key``; evicts LRU entries until the byte
        budget holds.  Oversized payloads are silently not cached."""
        size = self._size(payload)
        if size > self.max_bytes:
            return
        old = self._entries.pop(key, None)
        if old is not None:
            self._bytes -= self._size(old)
        self._entries[key] = payload
        self._bytes += size
        evicted = 0
        while self._bytes > self.max_bytes:
            _, victim = self._entries.popitem(last=False)
            self._bytes -= self._size(victim)
            evicted += 1
        if evicted:
            self.stats.evictions += evicted
            if self._on_evict is not None:
                self._on_evict(evicted, self._bytes)

    def clear(self) -> None:
        """Drop every entry (counters survive — they are lifetime totals)."""
        self._entries.clear()
        self._bytes = 0

    def keys(self) -> Tuple[Any, ...]:
        """Current keys, LRU → MRU (for tests and introspection)."""
        return tuple(self._entries)
