"""The query client: one connection to a serving daemon.

:class:`QueryClient` speaks the `repro.serve.wire` frames over a Unix
stream socket and re-raises the daemon's typed errors
(:class:`~repro.serve.errors.QueueFullError` and friends) on this side of
the wire, so remote and in-process callers handle failures identically.
"""

from __future__ import annotations

import json
import socket
import time
from typing import Any, Mapping, Optional, Tuple

from . import wire
from .errors import ServeError, error_for_code
from .service import QueryAnswer

__all__ = ["QueryClient"]


class QueryClient:
    """A connected client for one serving daemon."""

    def __init__(self, socket_path: str):
        self.socket_path = socket_path
        self._sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
        self._sock.connect(socket_path)

    @classmethod
    def connect(cls, socket_path: str, timeout_s: float = 10.0) -> "QueryClient":
        """Connect, retrying until the daemon's socket accepts (it may
        still be loading the graph) or ``timeout_s`` elapses."""
        deadline = time.monotonic() + timeout_s
        while True:
            try:
                return cls(socket_path)
            except (FileNotFoundError, ConnectionRefusedError):
                if time.monotonic() >= deadline:
                    raise ServeError(
                        f"no daemon answered on {socket_path!r} within "
                        f"{timeout_s:g}s"
                    ) from None
                time.sleep(0.05)

    def close(self) -> None:
        self._sock.close()

    def __enter__(self) -> "QueryClient":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # -- protocol -----------------------------------------------------------

    def _request(self, value: tuple) -> tuple:
        wire.write_frame(self._sock, value)
        response = wire.read_frame(self._sock.recv)
        if response is wire.EOF:
            raise ServeError("daemon closed the connection without replying")
        if not isinstance(response, tuple) or not response:
            raise ServeError(f"malformed response frame: {response!r}")
        if response[0] == "err":
            raise error_for_code(response[1], response[2])
        return response

    def ping(self) -> bool:
        """True iff the daemon answers ``pong``."""
        return self._request(("ping",))[0] == "pong"

    def stats(self) -> dict:
        """The daemon's serving counters (``GraphService.stats()``)."""
        response = self._request(("stats",))
        return json.loads(response[1])

    def shutdown(self) -> None:
        """Ask the daemon to shut down cleanly (it answers ``bye`` first)."""
        self._request(("shutdown",))

    def query(
        self,
        algorithm: str,
        *,
        params: Optional[Mapping[str, Any]] = None,
        interval: Optional[Tuple[int, Optional[int]]] = None,
        options: Optional[Mapping[str, Any]] = None,
    ) -> QueryAnswer:
        """Run one query on the daemon; returns the same
        :class:`~repro.serve.service.QueryAnswer` an in-process
        ``GraphService.query`` call yields (latency as measured by the
        service, payload byte-identical)."""
        response = self._request(
            wire.query_value(algorithm, params, interval, options)
        )
        if response[0] != "ok" or len(response) != 3:
            raise ServeError(f"unexpected query response {response[0]!r}")
        _, payload, meta_items = response
        meta = wire.items_to_dict(meta_items)
        return QueryAnswer(
            query_id=int(meta.get("query_id", 0)),
            algorithm=algorithm,
            interval=interval,
            cache_hit=bool(meta.get("cache_hit", False)),
            latency_s=float(meta.get("latency_s", 0.0)),
            payload=payload,
        )
