"""The long-lived graph service: load once, answer many queries.

A :class:`GraphService` is the serving tier the paper's interactive
use-case implies (and Granite, the follow-on path-query engine, builds
explicitly): the temporal graph is loaded and partitioned **once**, a
warm executor stays resident per concurrency lane, and each query
``(algorithm, params, interval, options)`` either hits the interval-aware
result cache or runs an engine over the (memoized) temporal slice of the
resident graph.

Three cooperating pieces:

* **scheduler** — ``serve.max_concurrency`` execution lanes behind a FIFO
  admission queue of depth ``serve.max_queue_depth``; a query arriving
  with all lanes busy and the queue full is rejected with
  :class:`~repro.serve.errors.QueueFullError` (the backpressure
  contract).  Each query may carry a deadline; expiry cancels the run at
  the next superstep boundary (:class:`_DeadlineObserver` raises inside
  the engine's event stream, which aborts the executor) and the lane is
  immediately reusable — re-running the same query yields bit-identical
  results.
* **result cache** — :class:`~repro.serve.cache.ResultCache`, LRU under a
  byte budget, keyed by ``(algorithm, canonical params, query interval,
  graph fingerprint, config fingerprint)``.
* **observability** — the service emits ``query_admitted`` /
  ``query_start`` / ``query_end`` / ``cache_hit`` / ``cache_evict``
  events into the same observers the engines it drives use, so one trace
  interleaves queries with the runs that answered them; counters live in
  :class:`ServeMetrics` (the ``SERVE_METRICS`` registry) and render via
  ``prometheus_text`` / ``render_summary``.
"""

from __future__ import annotations

import dataclasses
import hashlib
import io
import itertools
import json
import threading
import time
from collections import OrderedDict, deque
from dataclasses import dataclass, field
from typing import Any, Dict, List, Mapping, Optional, Tuple

from repro.core.config import (
    EngineConfig,
    ExecutorConfig,
    ObservabilityConfig,
    PartitioningConfig,
)
from repro.core.interval import FOREVER, Interval
from repro.core.results_io import export_states_json
from repro.obs.events import EventStream
from repro.obs.observers import JsonlTraceWriter
from repro.obs.registry import Histogram
from repro.query.slice import temporal_slice
from repro.runtime.checkpoint import graph_fingerprint
from repro.runtime.cluster import SimulatedCluster
from repro.runtime.executor import resolve_executor
from repro.runtime.partitioner import build_partitioner, partitioner_fingerprint

from .cache import ResultCache
from .errors import BadQueryError, QueryTimeoutError, QueueFullError, ServeError

__all__ = ["GraphService", "QueryAnswer", "QueryRequest", "ServeMetrics"]

#: How many distinct query intervals keep their sliced graph resident.
_SLICE_MEMO_LIMIT = 8


@dataclass
class ServeMetrics:
    """Lifetime counters of one service — the ``SERVE_METRICS`` registry's
    hot-path representation (field names must match the registry; a test
    pins them).  ``platform``/``algorithm``/``graph``/``executor`` are the
    Prometheus label set, mirroring ``RunMetrics``."""

    platform: str = "serve"
    algorithm: str = ""
    graph: str = ""
    executor: str = ""

    queries_admitted: int = 0
    queries_served: int = 0
    queries_rejected: int = 0
    queries_timed_out: int = 0
    queries_failed: int = 0
    cache_hits: int = 0
    cache_misses: int = 0
    cache_evictions: int = 0
    cache_bytes: int = 0
    cache_entries: int = 0
    cache_hit_rate: float = 0.0
    queue_depth: int = 0
    queue_depth_peak: int = 0
    query_seconds: float = 0.0
    last_query_seconds: float = 0.0
    graph_resident_bytes: int = 0
    #: Latency distribution over every finished query (served, timed out
    #: or failed) — the registry's one ``histogram``-kind metric, rendered
    #: by ``prometheus_text`` as ``_bucket``/``_sum``/``_count`` series.
    query_latency: Histogram = field(default_factory=Histogram)


@dataclass(frozen=True)
class QueryRequest:
    """One query: which algorithm, with which parameters, over which
    temporal window, under which per-query options.

    ``interval`` is ``None`` for the full resident graph or an
    ``(start, end)`` pair (half-open, ``end=None`` for unbounded) that the
    service materialises via ``temporal_slice``.  Recognised ``options``:
    ``timeout_s`` (per-query deadline, overriding
    ``ServeConfig.default_timeout_s``), ``no_cache`` (bypass the result
    cache entirely), and ``hold_s`` (hold the execution lane after
    computing — a test/ops knob for exercising backpressure
    deterministically).
    """

    algorithm: str
    params: Mapping[str, Any] = field(default_factory=dict)
    interval: Optional[Tuple[int, Optional[int]]] = None
    options: Mapping[str, Any] = field(default_factory=dict)


@dataclass(frozen=True)
class QueryAnswer:
    """A served answer: the ``results_io`` JSON document (rendered to one
    canonical string — byte equality ⇔ result equality) plus serving
    facts."""

    query_id: int
    algorithm: str
    interval: Optional[Tuple[int, Optional[int]]]
    cache_hit: bool
    latency_s: float
    payload: str

    @property
    def doc(self) -> dict:
        """The decoded result document (``algorithm``/``graph``/``vertices``)."""
        return json.loads(self.payload)


class _DeadlineObserver:
    """Cancels a run at the first superstep boundary past the deadline.

    Raising out of ``on_event`` propagates through ``EventStream.emit``
    into the engine's superstep loop, whose ``except BaseException``
    handler aborts the executor — the clean cancellation point the
    engine already guarantees for every failure.
    """

    def __init__(self, deadline: float, timeout_s: float):
        self._deadline = deadline
        self._timeout_s = timeout_s

    def on_event(self, record: Dict[str, Any]) -> None:
        if (
            record["type"] == "superstep_start"
            and time.monotonic() >= self._deadline
        ):
            raise QueryTimeoutError(
                f"query exceeded its {self._timeout_s:g}s deadline at "
                f"superstep {record['superstep']}",
                timeout_s=self._timeout_s,
            )


@dataclass
class _Lane:
    """One execution lane: its own simulated cluster (mutable traffic
    history) and resident executor instance, shared by no other query."""

    index: int
    cluster: SimulatedCluster
    executor: Any
    config: EngineConfig
    #: ``time.monotonic()`` of the lane's last scheduling transition
    #: (acquired or released) — the liveness heartbeat the metrics
    #: endpoint turns into a seconds-since gauge.
    last_beat: float = 0.0
    #: Queries this lane has executed (cache hits never take a lane).
    queries: int = 0


class GraphService:
    """Serve algorithm queries over one resident temporal graph.

    Built via :func:`repro.api.serve` (or directly); ``close()`` (or use
    as a context manager) releases the resident executors.
    """

    #: Algorithms the serving tier answers; each maps (graph, params) to a
    #: fresh program instance.  The paper's remaining algorithms need
    #: per-call graph transforms (WCC/LD/SCC/…) and stay on the batch path.
    SUPPORTED_ALGORITHMS = ("BFS", "SSSP", "PR", "EAT", "RH")

    def __init__(
        self,
        graph,
        *,
        graph_name: str = "",
        workers: int = 8,
        config: Optional[EngineConfig] = None,
        options: Optional[dict] = None,
        observe: Any = None,
    ):
        cfg = config if config is not None else EngineConfig.from_env()
        if options:
            cfg = cfg.with_options(**options)
        self.graph = graph
        self.graph_name = graph_name
        self.workers = workers
        self.serve_config = cfg.serve
        self._base_config = cfg

        # One shared observer list: service-level query events and the
        # engine runs they trigger interleave in the same trace.
        observers: List[Any] = list(cfg.observability.observers)
        if cfg.observability.trace_path is not None:
            observers.append(JsonlTraceWriter(cfg.observability.trace_path))
        extra = ObservabilityConfig.coerce(observe)
        observers.extend(extra.observers)
        if extra.trace_path is not None:
            observers.append(JsonlTraceWriter(extra.trace_path))
        self._observers = observers
        self._events = EventStream(observers) if observers else None
        self._emit_lock = threading.Lock()

        # Execution lanes: partition once per lane, keep the executor warm.
        self._lanes: List[_Lane] = []
        for index in range(cfg.serve.max_concurrency):
            cluster = SimulatedCluster(workers)
            if cfg.partitioning.kind is not None:
                cluster.partitioner = build_partitioner(
                    cfg.partitioning.kind,
                    cluster.num_workers,
                    graph,
                    seed=cfg.partitioning.seed,
                    capacity_slack=cfg.partitioning.capacity_slack,
                )
                cluster.partitioner_explicit = True
            executor = resolve_executor(
                cfg.executor.kind,
                cfg.executor.processes,
                tracer=cfg.observability.tracer,
                fault_plan=cfg.executor.fault_plan,
                from_env=cfg.executor.kind_from_env,
                exchange=cfg.exchange,
            )
            lane_config = dataclasses.replace(
                cfg,
                # The resolved instance rides the config so every run in
                # this lane reuses the same warm executor (resolve_executor
                # passes instances through untouched).
                executor=ExecutorConfig(kind=executor),
                # The lane's cluster already carries its partitioner;
                # a configured kind here would rebuild it per query.
                partitioning=PartitioningConfig(),
                # Observers are attached per run (with the per-query
                # deadline observer in front).
                observability=ObservabilityConfig(
                    tracer=cfg.observability.tracer
                ),
            )
            self._lanes.append(
                _Lane(index, cluster, executor, lane_config,
                      last_beat=time.monotonic())
            )

        from repro.graph.stats import resident_bytes

        self.metrics = ServeMetrics(
            graph=graph_name, executor=self._lanes[0].executor.name,
            graph_resident_bytes=resident_bytes(graph),
        )
        self.cache = ResultCache(
            cfg.serve.cache_bytes, on_evict=self._on_cache_evict
        )
        self._cache_lock = threading.Lock()

        # Scheduler state: FIFO tickets + free-lane pool under one condition.
        self._cond = threading.Condition()
        self._waiting: deque = deque()
        self._free_lanes: deque = deque(self._lanes)
        self._closed = False

        self._qids = itertools.count(1)
        self._qid_lock = threading.Lock()

        self._graph_fp: Optional[str] = None
        self._config_fp: Optional[str] = None
        self._slices: "OrderedDict[Tuple[int, Optional[int]], Any]" = OrderedDict()
        self._slice_lock = threading.Lock()

    # -- context management -------------------------------------------------

    def __enter__(self) -> "GraphService":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def close(self) -> None:
        """Stop admitting queries and release the resident executors.

        Idempotent.  In-flight queries finish (their lanes return to the
        pool before the executors are closed); queued queries that have
        not yet acquired a lane fail with :class:`ServeError`.
        """
        with self._cond:
            if self._closed:
                return
            self._closed = True
            deadline = time.monotonic() + 10.0
            while len(self._free_lanes) < len(self._lanes):
                remaining = deadline - time.monotonic()
                if remaining <= 0 or not self._cond.wait(timeout=remaining):
                    break
            self._cond.notify_all()
        for lane in self._lanes:
            try:
                lane.executor.close()
            except Exception:
                lane.executor.abort()
        if self._events is not None:
            self._events.close()

    # -- fingerprints & cache keys ------------------------------------------

    @property
    def graph_fp(self) -> str:
        """The resident graph's structural fingerprint (computed once)."""
        if self._graph_fp is None:
            self._graph_fp = graph_fingerprint(self.graph)
        return self._graph_fp

    @property
    def config_fp(self) -> str:
        """Fingerprint of everything deterministic about how this service
        executes queries: cluster shape and cost models, the actual
        vertex→worker placement, and the warp/state flags.  The executor
        is excluded for the same reason checkpoints are
        executor-portable — serial and parallel answers are
        bit-identical, so they may share cache entries.
        """
        if self._config_fp is None:
            cfg = self._base_config
            cluster = self._lanes[0].cluster
            payload = {
                "num_workers": cluster.num_workers,
                "partitioner": partitioner_fingerprint(cluster.partitioner),
                "varint_encoding": cluster.varint_encoding,
                "model_network": cluster.model_network,
                "network": dataclasses.asdict(cluster.network),
                "compute_model": dataclasses.asdict(cluster.compute_model),
                "warp": dataclasses.asdict(cfg.warp),
                "state": dataclasses.asdict(cfg.state),
                "max_supersteps": cfg.max_supersteps,
            }
            blob = json.dumps(payload, sort_keys=True, default=repr).encode()
            self._config_fp = hashlib.sha256(blob).hexdigest()
        return self._config_fp

    def _cache_key(
        self,
        algorithm: str,
        params: Tuple[Tuple[str, Any], ...],
        interval: Optional[Tuple[int, Optional[int]]],
    ) -> tuple:
        return (algorithm, params, interval, self.graph_fp, self.config_fp)

    # -- request validation --------------------------------------------------

    def _canonical_interval(
        self, interval: Any
    ) -> Optional[Tuple[int, Optional[int]]]:
        if interval is None:
            return None
        if isinstance(interval, Interval):
            start, end = interval.start, interval.end
            return (start, None if end >= FOREVER else end)
        try:
            start, end = interval
        except (TypeError, ValueError):
            raise BadQueryError(
                f"interval must be None, an Interval, or a (start, end) "
                f"pair; got {interval!r}"
            ) from None
        if not isinstance(start, int) or start < 0:
            raise BadQueryError(
                f"interval start must be a non-negative int, got {start!r}"
            )
        if end is not None and (not isinstance(end, int) or end <= start):
            raise BadQueryError(
                f"interval end must be None or an int > start, "
                f"got [{start!r}, {end!r})"
            )
        return (start, end)

    def _graph_for(self, interval: Optional[Tuple[int, Optional[int]]]):
        """The resident graph, or the (memoized) temporal slice for a
        bounded query interval."""
        if interval is None:
            return self.graph
        with self._slice_lock:
            sliced = self._slices.get(interval)
            if sliced is not None:
                self._slices.move_to_end(interval)
                return sliced
        start, end = interval
        window = Interval(start, FOREVER if end is None else end)
        try:
            sliced = temporal_slice(self.graph, window)
        except ValueError as exc:
            raise BadQueryError(
                f"cannot slice the resident graph to "
                f"[{start}, {'inf' if end is None else end}): {exc}"
            ) from exc
        if sliced.num_vertices == 0:
            raise BadQueryError(
                f"interval [{start}, {'inf' if end is None else end}) "
                "selects no vertices of the resident graph"
            )
        with self._slice_lock:
            self._slices[interval] = sliced
            while len(self._slices) > _SLICE_MEMO_LIMIT:
                self._slices.popitem(last=False)
        return sliced

    def _program_for(self, algorithm: str, params: Mapping[str, Any], graph):
        from repro.algorithms.runners import default_source
        from repro.algorithms.td.eat import TemporalEAT
        from repro.algorithms.td.reach import TemporalReachability
        from repro.algorithms.td.sssp import TemporalSSSP
        from repro.algorithms.ti.bfs import TemporalBFS
        from repro.algorithms.ti.pagerank import TemporalPageRank

        if algorithm not in self.SUPPORTED_ALGORITHMS:
            raise BadQueryError(
                f"unknown algorithm {algorithm!r} (the serving tier answers "
                f"{', '.join(self.SUPPORTED_ALGORITHMS)})"
            )
        allowed = {"source"} if algorithm != "PR" else set()
        unknown = set(params) - allowed
        if unknown:
            raise BadQueryError(
                f"{algorithm} does not take parameter(s) "
                f"{sorted(unknown)} (allowed: {sorted(allowed) or 'none'})"
            )
        if algorithm == "PR":
            return TemporalPageRank(graph)
        source = params.get("source")
        if source is None:
            source = default_source(graph)
        elif not graph.has_vertex(source):
            raise BadQueryError(
                f"source {source!r} is not a vertex of the queried graph"
            )
        factory = {
            "BFS": TemporalBFS,
            "SSSP": TemporalSSSP,
            "EAT": TemporalEAT,
            "RH": TemporalReachability,
        }[algorithm]
        return factory(source)

    # -- events & metrics ----------------------------------------------------

    def _emit(self, type: str, data: Dict[str, Any], wall=None) -> None:
        if self._events is None:
            return
        with self._emit_lock:
            self._events.emit(type, data=data, wall=wall)

    def _on_cache_evict(self, evicted: int, bytes_now: int) -> None:
        self.metrics.cache_evictions += evicted
        self._emit(
            "cache_evict",
            {"evicted_entries": evicted, "cache_bytes": bytes_now},
        )

    def _sync_cache_metrics(self) -> None:
        stats = self.cache.stats
        m = self.metrics
        m.cache_hits = stats.hits
        m.cache_misses = stats.misses
        m.cache_bytes = self.cache.bytes_used
        m.cache_entries = len(self.cache)
        m.cache_hit_rate = stats.hit_rate

    def _finish(self, latency: float, status: str, query_id: int) -> None:
        m = self.metrics
        m.query_seconds += latency
        m.last_query_seconds = latency
        m.query_latency.observe(latency)
        if status == "ok":
            m.queries_served += 1
        elif status == "timeout":
            m.queries_timed_out += 1
        else:
            m.queries_failed += 1
        self._emit(
            "query_end",
            {"query_id": query_id, "status": status},
            wall={"latency_s": latency},
        )

    # -- scheduling ----------------------------------------------------------

    def _acquire_lane(self, deadline: Optional[float]) -> _Lane:
        with self._cond:
            if self._closed:
                raise ServeError("service is closed")
            if not self._free_lanes and (
                len(self._waiting) >= self.serve_config.max_queue_depth
            ):
                self.metrics.queries_rejected += 1
                raise QueueFullError(
                    f"admission queue is full "
                    f"({len(self._waiting)} waiting, depth limit "
                    f"{self.serve_config.max_queue_depth}, all "
                    f"{len(self._lanes)} lane(s) busy)",
                    depth=len(self._waiting),
                    max_depth=self.serve_config.max_queue_depth,
                )
            ticket = object()
            self._waiting.append(ticket)
            self.metrics.queue_depth = len(self._waiting)
            self.metrics.queue_depth_peak = max(
                self.metrics.queue_depth_peak, len(self._waiting)
            )
            try:
                while not (self._waiting[0] is ticket and self._free_lanes):
                    if self._closed:
                        raise ServeError("service is closed")
                    remaining = None
                    if deadline is not None:
                        remaining = deadline - time.monotonic()
                        if remaining <= 0:
                            raise QueryTimeoutError(
                                "query deadline expired while waiting for "
                                "an execution lane"
                            )
                    self._cond.wait(timeout=remaining)
            except BaseException:
                self._waiting.remove(ticket)
                self.metrics.queue_depth = len(self._waiting)
                self._cond.notify_all()
                raise
            self._waiting.popleft()
            self.metrics.queue_depth = len(self._waiting)
            lane = self._free_lanes.popleft()
            lane.last_beat = time.monotonic()
            lane.queries += 1
            self._cond.notify_all()
            return lane

    def _release_lane(self, lane: _Lane) -> None:
        with self._cond:
            lane.last_beat = time.monotonic()
            self._free_lanes.append(lane)
            self._cond.notify_all()

    def heartbeats(self) -> List[Dict[str, Any]]:
        """Liveness snapshot of every execution lane, for the metrics
        endpoint's per-worker gauges: lane index, busy flag, queries
        executed, and seconds since the lane last changed hands.  A busy
        lane with a growing age is a stuck or long-running query — the
        serving tier's straggler signal."""
        now = time.monotonic()
        with self._cond:
            free = {id(lane) for lane in self._free_lanes}
            return [
                {
                    "lane": lane.index,
                    "busy": id(lane) not in free,
                    "queries": lane.queries,
                    "age_s": max(0.0, now - lane.last_beat),
                }
                for lane in self._lanes
            ]

    # -- the query path ------------------------------------------------------

    def query(
        self,
        algorithm: str,
        *,
        params: Optional[Mapping[str, Any]] = None,
        interval: Any = None,
        options: Optional[Mapping[str, Any]] = None,
    ) -> QueryAnswer:
        """Answer one query (convenience wrapper over :meth:`submit`)."""
        return self.submit(
            QueryRequest(
                algorithm=algorithm,
                params=dict(params or {}),
                interval=interval,
                options=dict(options or {}),
            )
        )

    def submit(self, request: QueryRequest) -> QueryAnswer:
        """Answer ``request``: from cache when possible, otherwise through
        an execution lane.  Raises the typed serving errors
        (:class:`QueueFullError`, :class:`QueryTimeoutError`,
        :class:`BadQueryError`)."""
        algorithm = request.algorithm
        params = tuple(
            sorted((str(k), v) for k, v in (request.params or {}).items())
        )
        interval = self._canonical_interval(request.interval)
        options = dict(request.options or {})
        timeout_s = options.get(
            "timeout_s", self.serve_config.default_timeout_s
        )
        if timeout_s is not None and timeout_s <= 0:
            raise BadQueryError(f"timeout_s must be positive, got {timeout_s!r}")
        use_cache = not options.get("no_cache", False)

        with self._qid_lock:
            query_id = next(self._qids)
        start_iv = interval[0] if interval else None
        end_iv = interval[1] if interval else None

        key = self._cache_key(algorithm, params, interval)
        t0 = time.monotonic()

        # Cache hits are answered inline — they need no lane, which is
        # exactly what makes them cheap and keeps them out of the queue.
        if use_cache:
            with self._cache_lock:
                payload = self.cache.get(key)
                self._sync_cache_metrics()
            if payload is not None:
                self.metrics.queries_admitted += 1
                self._emit(
                    "query_admitted",
                    {
                        "query_id": query_id,
                        "algorithm": algorithm,
                        "queue_depth": self.metrics.queue_depth,
                    },
                )
                self._emit(
                    "cache_hit",
                    {
                        "query_id": query_id,
                        "algorithm": algorithm,
                        "interval_start": start_iv,
                        "interval_end": end_iv,
                    },
                )
                self._emit(
                    "query_start",
                    {
                        "query_id": query_id,
                        "algorithm": algorithm,
                        "interval_start": start_iv,
                        "interval_end": end_iv,
                        "cache_hit": True,
                    },
                )
                latency = time.monotonic() - t0
                self._finish(latency, "ok", query_id)
                return QueryAnswer(
                    query_id=query_id,
                    algorithm=algorithm,
                    interval=interval,
                    cache_hit=True,
                    latency_s=latency,
                    payload=payload,
                )

        # Miss (or cache bypass): validate early, then go through admission.
        graph = self._graph_for(interval)
        program = self._program_for(algorithm, dict(params), graph)

        deadline = (
            time.monotonic() + timeout_s if timeout_s is not None else None
        )
        try:
            lane = self._acquire_lane(deadline)
        except QueryTimeoutError:
            # Expired while still queued: never admitted, never started —
            # no lifecycle events, but the deadline miss is counted.
            self.metrics.queries_timed_out += 1
            raise
        self.metrics.queries_admitted += 1
        self._emit(
            "query_admitted",
            {
                "query_id": query_id,
                "algorithm": algorithm,
                "queue_depth": self.metrics.queue_depth,
            },
        )
        self._emit(
            "query_start",
            {
                "query_id": query_id,
                "algorithm": algorithm,
                "interval_start": start_iv,
                "interval_end": end_iv,
                "cache_hit": False,
            },
        )
        try:
            payload = self._execute(
                lane, graph, program, deadline, timeout_s, options
            )
        except QueryTimeoutError:
            self._finish(time.monotonic() - t0, "timeout", query_id)
            raise
        except ServeError:
            self._finish(time.monotonic() - t0, "error", query_id)
            raise
        except Exception as exc:
            self._finish(time.monotonic() - t0, "error", query_id)
            raise ServeError(f"query execution failed: {exc}") from exc
        finally:
            self._release_lane(lane)

        if use_cache:
            with self._cache_lock:
                self.cache.put(key, payload)
                self._sync_cache_metrics()
        latency = time.monotonic() - t0
        self._finish(latency, "ok", query_id)
        return QueryAnswer(
            query_id=query_id,
            algorithm=algorithm,
            interval=interval,
            cache_hit=False,
            latency_s=latency,
            payload=payload,
        )

    def _execute(
        self, lane, graph, program, deadline, timeout_s, options
    ) -> str:
        """Run the engine on ``lane`` and render the canonical payload."""
        from repro import api

        run_observers: List[Any] = []
        if deadline is not None:
            # First in line: a timed-out superstep is cancelled before any
            # trace writer records its start.
            run_observers.append(_DeadlineObserver(deadline, timeout_s))
        run_observers.extend(self._observers)
        result = api.run(
            graph,
            program,
            cluster=lane.cluster,
            graph_name=self.graph_name,
            config=lane.config,
            observe=run_observers or None,
        )
        hold_s = options.get("hold_s")
        if hold_s:
            time.sleep(float(hold_s))
        doc = export_states_json(result, io.StringIO())
        return json.dumps(doc, sort_keys=True, separators=(",", ":"),
                          default=str)

    # -- introspection -------------------------------------------------------

    def stats(self) -> Dict[str, Any]:
        """A JSON-friendly snapshot of the serving counters."""
        out = {
            name: getattr(self.metrics, name)
            for name in (
                "queries_admitted", "queries_served", "queries_rejected",
                "queries_timed_out", "queries_failed", "cache_hits",
                "cache_misses", "cache_evictions", "cache_bytes",
                "cache_entries", "cache_hit_rate", "queue_depth",
                "queue_depth_peak", "query_seconds", "last_query_seconds",
                "graph_resident_bytes",
            )
        }
        out["graph"] = self.graph_name
        out["executor"] = self.metrics.executor
        out["lanes"] = len(self._lanes)
        out["max_queue_depth"] = self.serve_config.max_queue_depth
        out["supported_algorithms"] = list(self.SUPPORTED_ALGORITHMS)
        return out
