"""A tiny Prometheus scrape endpoint over a live :class:`GraphService`.

``repro serve --metrics-port N`` starts one of these next to the query
daemon: a stdlib ``ThreadingHTTPServer`` answering ``GET /metrics`` with
the text exposition format — the service's ``SERVE_METRICS`` registry
(via :func:`repro.obs.exporters.prometheus_text`, including the query
latency histogram) followed by one gauge pair per execution lane from
:meth:`GraphService.heartbeats`:

* ``repro_serve_lane_queries_total{lane="i"}`` — queries the lane ran;
* ``repro_serve_lane_idle_seconds{lane="i",busy="0|1"}`` — seconds since
  the lane last changed hands (a busy lane with a growing age is a stuck
  or long-running query).

No external dependencies, no auth, loopback by default — this is an
operational scrape surface, not an API.
"""

from __future__ import annotations

import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any

from repro.obs.exporters import prometheus_text

__all__ = ["MetricsEndpoint", "render_scrape"]


def render_scrape(service: Any) -> str:
    """The full scrape body: registry metrics plus per-lane heartbeats."""
    lines = [prometheus_text(service.metrics).rstrip("\n")]
    beats = service.heartbeats()
    lines.append(
        "# HELP repro_serve_lane_queries_total "
        "queries executed by this lane (cache hits take no lane)"
    )
    lines.append("# TYPE repro_serve_lane_queries_total counter")
    for beat in beats:
        lines.append(
            f'repro_serve_lane_queries_total{{lane="{beat["lane"]}"}} '
            f'{beat["queries"]}'
        )
    lines.append(
        "# HELP repro_serve_lane_idle_seconds "
        "seconds since this lane last started or finished a query"
    )
    lines.append("# TYPE repro_serve_lane_idle_seconds gauge")
    for beat in beats:
        busy = "1" if beat["busy"] else "0"
        lines.append(
            f'repro_serve_lane_idle_seconds{{lane="{beat["lane"]}",'
            f'busy="{busy}"}} {repr(float(beat["age_s"]))}'
        )
    return "\n".join(lines) + "\n"


class MetricsEndpoint:
    """Serve ``GET /metrics`` for one :class:`GraphService` on a
    background thread.

    ``port=0`` binds an ephemeral port; read the actual one from
    ``.port`` after :meth:`start`.  ``stop()`` is idempotent and joins
    the server thread, so the CLI can always call it on the way out.
    """

    def __init__(self, service: Any, port: int, host: str = "127.0.0.1"):
        self._service = service
        self._host = host
        self._requested_port = port
        self._httpd = None
        self._thread = None

    @property
    def port(self) -> int:
        if self._httpd is None:
            raise RuntimeError("metrics endpoint is not started")
        return self._httpd.server_address[1]

    def start(self) -> "MetricsEndpoint":
        service = self._service

        class Handler(BaseHTTPRequestHandler):
            def do_GET(self) -> None:  # noqa: N802 (http.server API)
                if self.path.split("?", 1)[0] != "/metrics":
                    self.send_error(404, "only /metrics is served here")
                    return
                try:
                    body = render_scrape(service).encode("utf-8")
                except Exception as exc:  # pragma: no cover - render bug
                    self.send_error(500, f"metrics render failed: {exc}")
                    return
                self.send_response(200)
                self.send_header(
                    "Content-Type",
                    "text/plain; version=0.0.4; charset=utf-8",
                )
                self.send_header("Content-Length", str(len(body)))
                self.end_headers()
                self.wfile.write(body)

            def log_message(self, *args: Any) -> None:
                pass  # scrapes are high-frequency; stay quiet

        self._httpd = ThreadingHTTPServer(
            (self._host, self._requested_port), Handler
        )
        self._httpd.daemon_threads = True
        self._thread = threading.Thread(
            target=self._httpd.serve_forever,
            name="repro-serve-metrics",
            daemon=True,
        )
        self._thread.start()
        return self

    def stop(self) -> None:
        if self._httpd is None:
            return
        self._httpd.shutdown()
        self._httpd.server_close()
        self._httpd = None
        if self._thread is not None:
            self._thread.join(timeout=10)
            self._thread = None

    def __enter__(self) -> "MetricsEndpoint":
        return self.start()

    def __exit__(self, *exc: Any) -> None:
        self.stop()
