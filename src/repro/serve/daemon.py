"""The serving daemon: a Unix-socket front end over one GraphService.

One :class:`ServeDaemon` owns a listening ``AF_UNIX`` socket and serves
each connection on its own thread; all connections share the single
resident :class:`~repro.serve.service.GraphService`, whose scheduler is
what bounds concurrency — the daemon itself accepts freely and lets
admission control (and its :class:`~repro.serve.errors.QueueFullError`
backpressure) do the limiting.

The protocol is the frame vocabulary of `repro.serve.wire`.  Every
:class:`~repro.serve.errors.ServeError` raised while answering a request
becomes an ``("err", code, message)`` frame — a failed query never tears
down the connection.  A ``("shutdown",)`` frame answers ``("bye",)`` and
then stops the daemon cleanly (drain threads, close the service, unlink
the socket).
"""

from __future__ import annotations

import json
import os
import socket
import threading
from typing import Any, List, Optional

from . import wire
from .errors import BadQueryError, ServeError
from .service import GraphService, QueryRequest

__all__ = ["ServeDaemon"]


class ServeDaemon:
    """Serve one :class:`GraphService` over a Unix stream socket."""

    def __init__(self, service: GraphService, socket_path: str):
        self.service = service
        self.socket_path = socket_path
        self._listener: Optional[socket.socket] = None
        self._threads: List[threading.Thread] = []
        self._stop = threading.Event()
        self._closed = False

    # -- lifecycle ----------------------------------------------------------

    def start(self) -> None:
        """Bind and listen (idempotent); a stale socket file is replaced."""
        if self._listener is not None:
            return
        try:
            os.unlink(self.socket_path)
        except FileNotFoundError:
            pass
        listener = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
        listener.bind(self.socket_path)
        listener.listen(64)
        # A short accept timeout keeps the loop responsive to shutdown
        # requests arriving on connection threads.
        listener.settimeout(0.2)
        self._listener = listener

    def serve_forever(self) -> None:
        """Accept and serve connections until :meth:`request_shutdown`."""
        self.start()
        try:
            while not self._stop.is_set():
                try:
                    conn, _ = self._listener.accept()
                except socket.timeout:
                    continue
                except OSError:
                    break
                thread = threading.Thread(
                    target=self._serve_connection, args=(conn,), daemon=True
                )
                thread.start()
                self._threads.append(thread)
        finally:
            self.close()

    def request_shutdown(self) -> None:
        """Ask the accept loop to wind down (safe from any thread/signal)."""
        self._stop.set()

    def close(self) -> None:
        """Stop accepting, drain connection threads, close the service,
        and remove the socket file.  Idempotent."""
        if self._closed:
            return
        self._closed = True
        self._stop.set()
        if self._listener is not None:
            self._listener.close()
        for thread in self._threads:
            thread.join(timeout=10.0)
        self.service.close()
        try:
            os.unlink(self.socket_path)
        except FileNotFoundError:
            pass

    def __enter__(self) -> "ServeDaemon":
        self.start()
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # -- per-connection protocol --------------------------------------------

    def _serve_connection(self, conn: socket.socket) -> None:
        with conn:
            while True:
                try:
                    value = wire.read_frame(conn.recv)
                except (ValueError, OSError):
                    return  # torn or garbage frame: drop the connection
                if value is wire.EOF:
                    return  # clean EOF
                response = self._dispatch(value)
                try:
                    wire.write_frame(conn, response)
                except OSError:
                    return
                if response[0] == "bye":
                    return

    def _dispatch(self, value: Any) -> tuple:
        try:
            if not isinstance(value, tuple) or not value:
                raise BadQueryError(
                    f"malformed request frame: expected a tagged tuple, "
                    f"got {type(value).__name__}"
                )
            kind = value[0]
            if kind == "ping":
                return ("pong",)
            if kind == "stats":
                return ("stats", json.dumps(self.service.stats(),
                                            sort_keys=True))
            if kind == "shutdown":
                self.request_shutdown()
                return ("bye",)
            if kind == "query":
                return self._answer_query(value)
            raise BadQueryError(f"unknown request kind {kind!r}")
        except ServeError as exc:
            return ("err", exc.code, str(exc))
        except Exception as exc:  # never tear down the connection
            return ("err", "serve_error", f"{type(exc).__name__}: {exc}")

    def _answer_query(self, value: tuple) -> tuple:
        try:
            _, algorithm, params_items, interval, options_items = value
        except ValueError:
            raise BadQueryError(
                f"malformed query frame: expected 5 elements, got {len(value)}"
            ) from None
        if interval is not None:
            interval = tuple(interval)
        answer = self.service.submit(
            QueryRequest(
                algorithm=algorithm,
                params=wire.items_to_dict(params_items),
                interval=interval,
                options=wire.items_to_dict(options_items),
            )
        )
        meta = (
            ("cache_hit", answer.cache_hit),
            ("latency_s", answer.latency_s),
            ("query_id", answer.query_id),
        )
        return ("ok", answer.payload, meta)
