"""Incremental ICM over a growing temporal graph (paper Sec. VIII).

The paper's future work proposes extending ICM "to process real-time
temporal graphs of a streaming nature".  This engine provides the
append-only core of that extension, in the spirit of Tegra's
pause-shift-resume and GraphInc's memoisation:

* the graph grows — new vertices, new edges (valid-time appends);
* instead of recomputing from scratch, the previous run's partitioned
  states are **resumed** and only the consequences of the new entities are
  propagated: new vertices are initialised, and each new edge's source
  re-scatters its *current* state over the edge's lifespan.

This is sound exactly for **monotone** programs (states only improve under
message re-delivery: min/max/or folds — SSSP, EAT, RH, TMST, BFS, WCC,
LD, FAST), which declare ``incremental_safe = True``.  Deletions would
require over-approximation rollback and are out of scope, as in GraphInc.
"""

from __future__ import annotations

import itertools
from typing import Any, Optional

from repro import api
from repro.core.config import EngineConfig
from repro.core.engine import IcmResult
from repro.core.interval import FOREVER, Interval
from repro.core.program import IntervalProgram
from repro.graph.builder import PropertySpec, _normalise_spec
from repro.graph.model import TemporalEdge, TemporalGraph, TemporalVertex
from repro.runtime.cluster import SimulatedCluster
from repro.runtime.metrics import RunMetrics


class StreamingIntervalEngine:
    """Owns a mutable temporal graph and keeps an ICM result fresh.

    Usage::

        stream = StreamingIntervalEngine(TemporalSSSP("A"))
        stream.add_vertex("A"); stream.add_vertex("B")
        stream.add_edge("A", "B", 0, 5, props={"travel-cost": 2})
        result = stream.compute()          # full run
        stream.add_edge("A", "B", 7, 9, props={"travel-cost": 1})
        result = stream.compute()          # incremental: resumes states
    """

    def __init__(
        self,
        program: IntervalProgram,
        *,
        cluster: Optional[SimulatedCluster] = None,
        graph_name: str = "stream",
        config: Optional[EngineConfig] = None,
        observe: Any = None,
        **engine_options: Any,
    ):
        if not program.incremental_safe:
            raise ValueError(
                f"{program.name} is not marked incremental_safe; streaming "
                "recomputation requires a monotone program"
            )
        self.program = program
        self.cluster = cluster or SimulatedCluster()
        self.graph_name = graph_name
        self.config = config
        #: Observability shared by every refresh: a trace path accumulates
        #: one ``run_start``-delimited segment per compute().
        self.observe = observe
        # Validate eagerly: a typo'd option otherwise only surfaces when
        # compute() builds its engine — possibly many appends later.
        (config or EngineConfig()).with_options(**engine_options)
        self.engine_options = engine_options
        self.graph = TemporalGraph()
        self._eids = itertools.count()
        self._states: Optional[dict[Any, Any]] = None
        self._new_edges: list[TemporalEdge] = []
        #: Cumulative metrics over the initial run and every refresh.
        self.total_metrics = RunMetrics(
            platform="GRAPHITE-streaming", algorithm=program.name, graph=graph_name
        )
        self.refreshes = 0

    # -- graph mutation ----------------------------------------------------

    def add_vertex(self, vid: Any, start: int = 0, end: int = FOREVER,
                   props: Optional[dict[str, PropertySpec]] = None) -> None:
        """Append a vertex (constraint 1: ids never re-occur)."""
        if self.graph.has_vertex(vid):
            raise ValueError(f"vertex {vid!r} already exists (constraint 1)")
        vertex = TemporalVertex(vid, Interval(start, end))
        if props:
            for label, spec in props.items():
                for iv, value in _normalise_spec(spec, vertex.lifespan):
                    if not iv.within(vertex.lifespan):
                        raise ValueError(f"property {label!r} outside lifespan")
                    vertex.properties.add(label, iv, value)
        self.graph._add_vertex(vertex)

    def add_edge(self, src: Any, dst: Any, start: int = 0, end: int = FOREVER,
                 *, eid: Any = None,
                 props: Optional[dict[str, PropertySpec]] = None) -> Any:
        """Append an edge; its effects propagate on the next ``compute``."""
        if eid is None:
            eid = f"se{next(self._eids)}"
        for endpoint in (src, dst):
            if not self.graph.has_vertex(endpoint):
                raise ValueError(f"edge references unknown vertex {endpoint!r}")
        lifespan = Interval(start, end)
        for endpoint in (src, dst):
            if not lifespan.within(self.graph.vertex(endpoint).lifespan):
                raise ValueError(
                    f"edge lifespan {lifespan} exceeds endpoint lifespan (constraint 2)"
                )
        edge = TemporalEdge(eid, src, dst, lifespan)
        if props:
            for label, spec in props.items():
                for iv, value in _normalise_spec(spec, lifespan):
                    if not iv.within(lifespan):
                        raise ValueError(f"property {label!r} outside edge lifespan")
                    edge.properties.add(label, iv, value)
        self.graph._add_edge(edge)
        self._new_edges.append(edge)
        return eid

    @property
    def pending_updates(self) -> int:
        """New edges not yet folded into the computed result."""
        return len(self._new_edges)

    # -- computation -------------------------------------------------------

    def compute(self) -> IcmResult:
        """(Re)compute: full on first call, incremental afterwards."""
        engine = api.build_engine(
            self.graph, self.program, cluster=self.cluster,
            graph_name=self.graph_name, config=self.config,
            options=self.engine_options, observe=self.observe,
        )
        if self._states is None:
            result = engine.run()
        else:
            rescatter: dict[Any, list[Interval]] = {}
            for edge in self._new_edges:
                if edge.src in self._states:
                    rescatter.setdefault(edge.src, []).append(edge.lifespan)
            result = engine.run(warm_states=self._states, rescatter=rescatter)
            self.refreshes += 1
        self._states = result.states
        self._new_edges = []
        self.total_metrics.merge(result.metrics)
        return result
