"""Streaming extension: incremental ICM over append-only temporal graphs."""

from .engine import StreamingIntervalEngine

__all__ = ["StreamingIntervalEngine"]
