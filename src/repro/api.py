"""The public front door: configured runs with first-class observability.

Every in-tree consumer (CLI, runners, streaming, benchmarks) builds
GRAPHITE engines through this module; direct
:class:`~repro.core.engine.IntervalCentricEngine` construction elsewhere
is a lint failure.  The three entry points:

* :func:`build_engine` — construct an engine from an
  :class:`~repro.core.config.EngineConfig` (plus flat option overrides
  and an ``observe=`` shorthand);
* :func:`run` — build and execute in one call, returning the
  :class:`~repro.core.engine.IcmResult`;
* :func:`compare` — one algorithm across every applicable platform (a
  one-row slice of the paper's Table 2).

Quickstart::

    from repro import api
    from repro.datasets import transit_graph
    from repro.algorithms.td.sssp import TemporalSSSP

    result = api.run(transit_graph(), TemporalSSSP("A"))
    result = api.run(transit_graph(), TemporalSSSP("A"),
                     observe="sssp.trace")        # JSON-lines event trace
    outcomes = api.compare("SSSP", transit_graph())

``observe=`` accepts a trace-file path, any observer object (something
with ``on_event``), an iterable of observers, or a full
:class:`~repro.core.config.ObservabilityConfig`.
"""

from __future__ import annotations

import dataclasses
from typing import Any, Optional

from repro.core.config import (
    CheckpointConfig,
    EngineConfig,
    ExchangeConfig,
    ExecutorConfig,
    ObservabilityConfig,
    PartitioningConfig,
    ServeConfig,
    StateConfig,
    WarpConfig,
)
from repro.core.engine import IcmResult, IntervalCentricEngine
from repro.runtime.cluster import SimulatedCluster

__all__ = [
    "CheckpointConfig",
    "EngineConfig",
    "ExchangeConfig",
    "ExecutorConfig",
    "IcmResult",
    "IntervalCentricEngine",
    "ObservabilityConfig",
    "PartitioningConfig",
    "ServeConfig",
    "StateConfig",
    "WarpConfig",
    "build_engine",
    "compare",
    "run",
    "serve",
]


def _effective_config(
    config: Optional[EngineConfig],
    options: Optional[dict],
    observe: Any,
) -> EngineConfig:
    cfg = config if config is not None else EngineConfig.from_env()
    if options:
        cfg = cfg.with_options(**options)
    if observe is not None:
        cfg = dataclasses.replace(
            cfg,
            observability=cfg.observability.merged_with(
                ObservabilityConfig.coerce(observe)
            ),
        )
    return cfg


def build_engine(
    graph,
    program,
    *,
    cluster: Optional[SimulatedCluster] = None,
    graph_name: str = "",
    config: Optional[EngineConfig] = None,
    options: Optional[dict] = None,
    observe: Any = None,
    platform: str = "GRAPHITE",
) -> IntervalCentricEngine:
    """Construct a configured engine (without running it).

    ``config`` defaults to :meth:`EngineConfig.from_env`; ``options`` are
    flat overrides in legacy-kwarg names (``{"executor": "parallel"}``,
    ``{"partitioner": "greedy"}``) applied via
    :meth:`EngineConfig.with_options` — no deprecation warnings, this is
    the supported programmatic spelling; ``observe`` adds observability on
    top (path / observer / iterable / :class:`ObservabilityConfig`);
    ``platform`` is the label stamped on the run's metrics and
    ``run_start`` event (override it when wrapping the engine as a
    baseline platform).
    """
    cfg = _effective_config(config, options, observe)
    return IntervalCentricEngine(
        graph, program, cluster=cluster, graph_name=graph_name, config=cfg,
        platform=platform,
    )


def run(
    graph,
    program,
    *,
    cluster: Optional[SimulatedCluster] = None,
    graph_name: str = "",
    config: Optional[EngineConfig] = None,
    options: Optional[dict] = None,
    observe: Any = None,
    platform: str = "GRAPHITE",
    warm_states: Optional[dict] = None,
    rescatter: Optional[dict] = None,
    resume_from: Optional[str] = None,
) -> IcmResult:
    """Build an engine and execute it to convergence.

    ``warm_states``/``rescatter``/``resume_from`` pass straight through to
    :meth:`IntervalCentricEngine.run`.
    """
    engine = build_engine(
        graph,
        program,
        cluster=cluster,
        graph_name=graph_name,
        config=config,
        options=options,
        observe=observe,
        platform=platform,
    )
    return engine.run(
        warm_states=warm_states, rescatter=rescatter, resume_from=resume_from
    )


def compare(
    algorithm: str,
    graph,
    *,
    platforms: Optional[tuple] = None,
    cluster: Optional[SimulatedCluster] = None,
    workers: int = 8,
    graph_name: str = "",
    config: Optional[EngineConfig] = None,
    options: Optional[dict] = None,
    observe: Any = None,
    **runner_kwargs: Any,
):
    """Run ``algorithm`` on every applicable platform; returns the
    :class:`~repro.algorithms.runners.RunOutcome` list in platform order.

    A fresh ``SimulatedCluster(workers)`` is built per platform unless an
    explicit ``cluster`` is given (sharing one cluster across platforms
    would let one platform's traffic history leak into another's model).
    GRAPHITE runs honour ``config``/``options``/``observe``; baseline
    platforms have no engine to configure, but when ``observe`` is given
    their outcomes are still recorded into the shared trace as a
    synthesized ``run_start``/``run_end`` pair tagged with the platform
    name — so a multi-platform comparison trace stays attributable
    per-platform in ``repro report`` and ``scripts/diff_traces.py``.
    """
    from repro.algorithms.runners import platforms_for, run_algorithm

    outcomes = []
    for platform in platforms or platforms_for(algorithm):
        outcome = run_algorithm(
            algorithm,
            platform,
            graph,
            cluster=cluster or SimulatedCluster(workers),
            graph_name=graph_name,
            config=config,
            icm_options=options,
            observe=observe,
            **runner_kwargs,
        )
        if observe is not None and platform != "GRAPHITE":
            _emit_baseline_run_events(observe, algorithm, graph_name,
                                      outcome.metrics)
        outcomes.append(outcome)
    return outcomes


def _emit_baseline_run_events(observe, algorithm, graph_name, metrics) -> None:
    """Record a baseline platform's run into a shared comparison trace.

    Baseline engines emit no structured events of their own; this
    synthesizes the run-level bracket (``run_start``/``run_end``) from
    their :class:`~repro.runtime.metrics.RunMetrics` so every run in a
    ``compare(..., observe=...)`` trace carries its platform tag.
    Partition facts are empty — baselines do not report placement.
    """
    from repro.obs.events import EventStream
    from repro.obs.observers import JsonlTraceWriter

    obs = ObservabilityConfig.coerce(observe)
    observers = list(obs.observers)
    if obs.trace_path is not None:
        observers.append(JsonlTraceWriter(obs.trace_path))
    if not observers:
        return
    stream = EventStream(observers)
    stream.emit(
        "run_start",
        data={
            "algorithm": metrics.algorithm or algorithm,
            "graph": metrics.graph or graph_name,
            "platform": metrics.platform,
            "resumed_from": None,
            "partitioner": "",
            "partition_edge_cut": 0.0,
            "worker_vertex_load": [],
            "worker_edge_load": [],
        },
        wall={"executor": metrics.executor or "serial"},
    )
    stream.emit(
        "run_end",
        data={
            "supersteps": metrics.supersteps,
            "compute_calls": metrics.compute_calls,
            "scatter_calls": metrics.scatter_calls,
            "messages_sent": metrics.messages_sent,
            "message_bytes": metrics.message_bytes,
            "modeled_makespan_s": metrics.modeled_makespan,
        },
        wall={"makespan_s": metrics.makespan},
    )
    stream.close()


def serve(
    graph,
    *,
    graph_name: str = "",
    workers: int = 8,
    config: Optional[EngineConfig] = None,
    options: Optional[dict] = None,
    observe: Any = None,
):
    """Build a long-lived :class:`~repro.serve.GraphService` for ``graph``.

    The service loads and partitions the graph once, keeps a warm executor
    resident per concurrency lane, and answers
    :class:`~repro.serve.QueryRequest`\\ s through an admission queue and
    an interval-aware result cache.  ``config``/``options``/``observe``
    mean exactly what they mean for :func:`run`; the serving knobs live in
    ``config.serve`` (:class:`ServeConfig`, flat options
    ``serve_max_concurrency``/``serve_queue_depth``/``serve_cache_bytes``/
    ``serve_timeout_s``, env ``REPRO_SERVE_*``).
    """
    from repro.serve.service import GraphService

    cfg = _effective_config(config, options, None)
    return GraphService(
        graph,
        graph_name=graph_name,
        workers=workers,
        config=cfg,
        observe=observe,
    )
