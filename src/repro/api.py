"""The public front door: configured runs with first-class observability.

Every in-tree consumer (CLI, runners, streaming, benchmarks) builds
GRAPHITE engines through this module; direct
:class:`~repro.core.engine.IntervalCentricEngine` construction elsewhere
is a lint failure.  The three entry points:

* :func:`build_engine` — construct an engine from an
  :class:`~repro.core.config.EngineConfig` (plus flat option overrides
  and an ``observe=`` shorthand);
* :func:`run` — build and execute in one call, returning the
  :class:`~repro.core.engine.IcmResult`;
* :func:`compare` — one algorithm across every applicable platform (a
  one-row slice of the paper's Table 2).

Quickstart::

    from repro import api
    from repro.datasets import transit_graph
    from repro.algorithms.td.sssp import TemporalSSSP

    result = api.run(transit_graph(), TemporalSSSP("A"))
    result = api.run(transit_graph(), TemporalSSSP("A"),
                     observe="sssp.trace")        # JSON-lines event trace
    outcomes = api.compare("SSSP", transit_graph())

``observe=`` accepts a trace-file path, any observer object (something
with ``on_event``), an iterable of observers, or a full
:class:`~repro.core.config.ObservabilityConfig`.
"""

from __future__ import annotations

import dataclasses
from typing import Any, Optional

from repro.core.config import (
    CheckpointConfig,
    EngineConfig,
    ExchangeConfig,
    ExecutorConfig,
    ObservabilityConfig,
    PartitioningConfig,
    ServeConfig,
    StateConfig,
    WarpConfig,
)
from repro.core.engine import IcmResult, IntervalCentricEngine
from repro.errors import GraphFormatError
from repro.runtime.cluster import SimulatedCluster

__all__ = [
    "CheckpointConfig",
    "EngineConfig",
    "ExchangeConfig",
    "ExecutorConfig",
    "GraphFormatError",
    "IcmResult",
    "IntervalCentricEngine",
    "ObservabilityConfig",
    "PartitioningConfig",
    "ServeConfig",
    "StateConfig",
    "WarpConfig",
    "build_engine",
    "compare",
    "load_graph",
    "run",
    "serve",
]


def _effective_config(
    config: Optional[EngineConfig],
    options: Optional[dict],
    observe: Any,
) -> EngineConfig:
    cfg = config if config is not None else EngineConfig.from_env()
    if options:
        cfg = cfg.with_options(**options)
    if observe is not None:
        cfg = dataclasses.replace(
            cfg,
            observability=cfg.observability.merged_with(
                ObservabilityConfig.coerce(observe)
            ),
        )
    return cfg


def build_engine(
    graph,
    program,
    *,
    cluster: Optional[SimulatedCluster] = None,
    graph_name: str = "",
    config: Optional[EngineConfig] = None,
    options: Optional[dict] = None,
    observe: Any = None,
    platform: str = "GRAPHITE",
) -> IntervalCentricEngine:
    """Construct a configured engine (without running it).

    ``config`` defaults to :meth:`EngineConfig.from_env`; ``options`` are
    flat overrides in legacy-kwarg names (``{"executor": "parallel"}``,
    ``{"partitioner": "greedy"}``) applied via
    :meth:`EngineConfig.with_options` — no deprecation warnings, this is
    the supported programmatic spelling; ``observe`` adds observability on
    top (path / observer / iterable / :class:`ObservabilityConfig`);
    ``platform`` is the label stamped on the run's metrics and
    ``run_start`` event (override it when wrapping the engine as a
    baseline platform).
    """
    cfg = _effective_config(config, options, observe)
    return IntervalCentricEngine(
        graph, program, cluster=cluster, graph_name=graph_name, config=cfg,
        platform=platform,
    )


def run(
    graph,
    program,
    *,
    cluster: Optional[SimulatedCluster] = None,
    graph_name: str = "",
    config: Optional[EngineConfig] = None,
    options: Optional[dict] = None,
    observe: Any = None,
    platform: str = "GRAPHITE",
    warm_states: Optional[dict] = None,
    rescatter: Optional[dict] = None,
    resume_from: Optional[str] = None,
) -> IcmResult:
    """Build an engine and execute it to convergence.

    ``warm_states``/``rescatter``/``resume_from`` pass straight through to
    :meth:`IntervalCentricEngine.run`.
    """
    engine = build_engine(
        graph,
        program,
        cluster=cluster,
        graph_name=graph_name,
        config=config,
        options=options,
        observe=observe,
        platform=platform,
    )
    return engine.run(
        warm_states=warm_states, rescatter=rescatter, resume_from=resume_from
    )


def compare(
    algorithm: str,
    graph,
    *,
    platforms: Optional[tuple] = None,
    cluster: Optional[SimulatedCluster] = None,
    workers: int = 8,
    graph_name: str = "",
    config: Optional[EngineConfig] = None,
    options: Optional[dict] = None,
    observe: Any = None,
    **runner_kwargs: Any,
):
    """Run ``algorithm`` on every applicable platform; returns the
    :class:`~repro.algorithms.runners.RunOutcome` list in platform order.

    A fresh ``SimulatedCluster(workers)`` is built per platform unless an
    explicit ``cluster`` is given (sharing one cluster across platforms
    would let one platform's traffic history leak into another's model).
    GRAPHITE runs honour ``config``/``options``/``observe``; baseline
    platforms have no engine to configure, but when ``observe`` is given
    their outcomes are still recorded into the shared trace as a
    synthesized ``run_start``/``run_end`` pair tagged with the platform
    name — so a multi-platform comparison trace stays attributable
    per-platform in ``repro report`` and ``scripts/diff_traces.py``.
    """
    from repro.algorithms.runners import platforms_for, run_algorithm

    outcomes = []
    for platform in platforms or platforms_for(algorithm):
        outcome = run_algorithm(
            algorithm,
            platform,
            graph,
            cluster=cluster or SimulatedCluster(workers),
            graph_name=graph_name,
            config=config,
            icm_options=options,
            observe=observe,
            **runner_kwargs,
        )
        if observe is not None and platform != "GRAPHITE":
            _emit_baseline_run_events(observe, algorithm, graph_name,
                                      outcome.metrics)
        outcomes.append(outcome)
    return outcomes


def _emit_baseline_run_events(observe, algorithm, graph_name, metrics) -> None:
    """Record a baseline platform's run into a shared comparison trace.

    Baseline engines emit no structured events of their own; this
    synthesizes the run-level bracket (``run_start``/``run_end``) from
    their :class:`~repro.runtime.metrics.RunMetrics` so every run in a
    ``compare(..., observe=...)`` trace carries its platform tag.
    Partition facts are empty — baselines do not report placement.
    """
    from repro.obs.events import EventStream
    from repro.obs.observers import JsonlTraceWriter

    obs = ObservabilityConfig.coerce(observe)
    observers = list(obs.observers)
    if obs.trace_path is not None:
        observers.append(JsonlTraceWriter(obs.trace_path))
    if not observers:
        return
    stream = EventStream(observers)
    stream.emit(
        "run_start",
        data={
            "algorithm": metrics.algorithm or algorithm,
            "graph": metrics.graph or graph_name,
            "platform": metrics.platform,
            "resumed_from": None,
            "partitioner": "",
            "partition_edge_cut": 0.0,
            "worker_vertex_load": [],
            "worker_edge_load": [],
        },
        wall={"executor": metrics.executor or "serial"},
    )
    stream.emit(
        "run_end",
        data={
            "supersteps": metrics.supersteps,
            "compute_calls": metrics.compute_calls,
            "scatter_calls": metrics.scatter_calls,
            "messages_sent": metrics.messages_sent,
            "message_bytes": metrics.message_bytes,
            "modeled_makespan_s": metrics.modeled_makespan,
        },
        wall={"makespan_s": metrics.makespan},
    )
    stream.close()


def serve(
    graph,
    *,
    graph_name: str = "",
    workers: int = 8,
    config: Optional[EngineConfig] = None,
    options: Optional[dict] = None,
    observe: Any = None,
):
    """Build a long-lived :class:`~repro.serve.GraphService` for ``graph``.

    The service loads and partitions the graph once, keeps a warm executor
    resident per concurrency lane, and answers
    :class:`~repro.serve.QueryRequest`\\ s through an admission queue and
    an interval-aware result cache.  ``config``/``options``/``observe``
    mean exactly what they mean for :func:`run`; the serving knobs live in
    ``config.serve`` (:class:`ServeConfig`, flat options
    ``serve_max_concurrency``/``serve_queue_depth``/``serve_cache_bytes``/
    ``serve_timeout_s``, env ``REPRO_SERVE_*``).
    """
    from repro.serve.service import GraphService

    cfg = _effective_config(config, options, None)
    return GraphService(
        graph,
        graph_name=graph_name,
        workers=workers,
        config=cfg,
        observe=observe,
    )


# -- graph loading -------------------------------------------------------------

#: Formats ``load_graph`` understands.  ``auto`` sniffs; the rest force.
GRAPH_FORMATS = ("auto", "dataset", "text", "binary", "compact", "snap", "contacts")


def _dataset_names() -> list:
    from repro.datasets import SURROGATES

    return ["transit", *sorted(SURROGATES)]


def _sniff_format(source) -> str:
    """Decide the format of ``source`` by looking, never by extension.

    Binary files are recognised by the ``ITGR`` magic (the version varint
    picks v1 object-stream vs v2 compact); text graphs by a leading
    ``V``/``VP``/``E``/``EP`` record; names that match a built-in dataset
    (and are not files) load the dataset.  SNAP-style numeric event lists
    sniff as ``snap`` — a contact sequence is indistinguishable by eye,
    so pass ``format="contacts"`` explicitly for those.
    """
    if hasattr(source, "read"):
        raise GraphFormatError(
            "cannot sniff the format of an open stream; pass format= explicitly"
        )
    import os

    name = str(source)
    if not os.path.exists(name):
        datasets = _dataset_names()
        if name.lower() in datasets:
            return "dataset"
        raise GraphFormatError(
            f"{name!r} is neither a file nor a named dataset "
            f"(datasets: {', '.join(datasets)})"
        )
    with open(name, "rb") as fh:
        head = fh.read(64)
    if head[:4] == b"ITGR":
        version = head[4] if len(head) > 4 else -1
        if version == 1:
            return "binary"
        if version == 2:
            return "compact"
        raise GraphFormatError(
            f"{name}: ITGR file with unsupported version {version} "
            f"(readable versions: 1, 2)"
        )
    try:
        with open(name, "r", encoding="utf-8") as fh:
            first = ""
            for line in fh:
                line = line.strip()
                if line and not line.startswith("#"):
                    first = line
                    break
    except (UnicodeDecodeError, OSError) as exc:
        raise GraphFormatError(f"{name}: unrecognisable graph file ({exc})") from exc
    tokens = first.split()
    if tokens and tokens[0] in ("V", "VP", "E", "EP"):
        return "text"
    if 2 <= len(tokens) <= 4:
        try:
            [float(t) for t in tokens[1:]]
            return "snap"
        except ValueError:
            pass
    raise GraphFormatError(
        f"{name}: cannot sniff graph format from first line {first!r}; "
        f"pass format= (one of {', '.join(GRAPH_FORMATS[1:])})"
    )


def load_graph(
    source,
    format: str = "auto",
    *,
    store: Optional[str] = None,
    **options,
):
    """Load a temporal graph from anywhere — the one front door.

    ``source`` may be a file path (text format, binary v1, compact v2 —
    sniffed from content when ``format="auto"``), a named built-in
    dataset (``"transit"`` or any Table-1 surrogate name), or an open
    handle (with an explicit ``format``).  Compact files are mmap'd
    read-only, so concurrently serving processes share their pages.

    ``store`` picks the in-memory representation: ``"compact"`` freezes a
    heap result into :class:`~repro.graph.compact.CompactGraph`,
    ``"heap"`` leaves heap graphs alone, ``None`` defers to
    ``REPRO_GRAPH_STORE``.  Remaining keyword ``options`` go to the
    underlying loader (``scale``/``seed`` for datasets, ``bucket``/
    ``merge_gap``/... for the event-list parsers, ``map=False`` to read
    a compact file into private memory).

    Raises
    ------
    GraphFormatError
        Unknown format, failed sniffing, bad magic/version, or a source
        that is neither a file nor a dataset name.
    """
    from repro.graph.compact import CompactGraph, resolve_graph_store

    if format not in GRAPH_FORMATS:
        raise GraphFormatError(
            f"unknown graph format {format!r}; expected one of "
            f"{', '.join(GRAPH_FORMATS)}"
        )
    fmt = _sniff_format(source) if format == "auto" else format

    if fmt == "dataset":
        from repro.datasets import load_surrogate, transit_graph

        name = str(source).lower()
        scale = options.pop("scale", 1.0)
        seed = options.pop("seed", None)
        if name == "transit":
            graph = transit_graph()
        else:
            try:
                graph = load_surrogate(name, scale=scale, seed=seed)
            except KeyError as exc:
                raise GraphFormatError(str(exc.args[0])) from exc
    elif fmt == "text":
        from repro.graph.io import load_graph as _load_text

        try:
            graph = _load_text(source)
        except GraphFormatError:
            raise
        except ValueError as exc:
            raise GraphFormatError(f"text graph: {exc}") from exc
    elif fmt == "binary":
        from repro.graph.binary_io import load_graph_binary

        try:
            graph = load_graph_binary(source)
        except GraphFormatError:
            raise
        except ValueError as exc:
            raise GraphFormatError(f"binary graph: {exc}") from exc
    elif fmt == "compact":
        if hasattr(source, "read"):
            graph = CompactGraph.from_bytes(source.read())
        else:
            graph = CompactGraph.load(source, map=options.pop("map", True))
    elif fmt == "snap":
        from repro.graph.parsers import load_snap_edgelist

        graph = load_snap_edgelist(source, **options)
        options = {}
    else:  # contacts
        from repro.graph.parsers import load_contact_sequence

        graph = load_contact_sequence(source, **options)
        options = {}

    if options and fmt not in ("snap", "contacts"):
        raise GraphFormatError(
            f"options {sorted(options)} are not understood by the "
            f"{fmt!r} loader"
        )
    return resolve_graph_store(graph, store)
