"""The public front door: configured runs with first-class observability.

Every in-tree consumer (CLI, runners, streaming, benchmarks) builds
GRAPHITE engines through this module; direct
:class:`~repro.core.engine.IntervalCentricEngine` construction elsewhere
is a lint failure.  The three entry points:

* :func:`build_engine` — construct an engine from an
  :class:`~repro.core.config.EngineConfig` (plus flat option overrides
  and an ``observe=`` shorthand);
* :func:`run` — build and execute in one call, returning the
  :class:`~repro.core.engine.IcmResult`;
* :func:`compare` — one algorithm across every applicable platform (a
  one-row slice of the paper's Table 2).

Quickstart::

    from repro import api
    from repro.datasets import transit_graph
    from repro.algorithms.td.sssp import TemporalSSSP

    result = api.run(transit_graph(), TemporalSSSP("A"))
    result = api.run(transit_graph(), TemporalSSSP("A"),
                     observe="sssp.trace")        # JSON-lines event trace
    outcomes = api.compare("SSSP", transit_graph())

``observe=`` accepts a trace-file path, any observer object (something
with ``on_event``), an iterable of observers, or a full
:class:`~repro.core.config.ObservabilityConfig`.
"""

from __future__ import annotations

import dataclasses
from typing import Any, Optional

from repro.core.config import (
    CheckpointConfig,
    EngineConfig,
    ExchangeConfig,
    ExecutorConfig,
    ObservabilityConfig,
    PartitioningConfig,
    StateConfig,
    WarpConfig,
)
from repro.core.engine import IcmResult, IntervalCentricEngine
from repro.runtime.cluster import SimulatedCluster

__all__ = [
    "CheckpointConfig",
    "EngineConfig",
    "ExchangeConfig",
    "ExecutorConfig",
    "IcmResult",
    "IntervalCentricEngine",
    "ObservabilityConfig",
    "PartitioningConfig",
    "StateConfig",
    "WarpConfig",
    "build_engine",
    "compare",
    "run",
]


def _effective_config(
    config: Optional[EngineConfig],
    options: Optional[dict],
    observe: Any,
) -> EngineConfig:
    cfg = config if config is not None else EngineConfig.from_env()
    if options:
        cfg = cfg.with_options(**options)
    if observe is not None:
        cfg = dataclasses.replace(
            cfg,
            observability=cfg.observability.merged_with(
                ObservabilityConfig.coerce(observe)
            ),
        )
    return cfg


def build_engine(
    graph,
    program,
    *,
    cluster: Optional[SimulatedCluster] = None,
    graph_name: str = "",
    config: Optional[EngineConfig] = None,
    options: Optional[dict] = None,
    observe: Any = None,
) -> IntervalCentricEngine:
    """Construct a configured engine (without running it).

    ``config`` defaults to :meth:`EngineConfig.from_env`; ``options`` are
    flat overrides in legacy-kwarg names (``{"executor": "parallel"}``,
    ``{"partitioner": "greedy"}``) applied via
    :meth:`EngineConfig.with_options` — no deprecation warnings, this is
    the supported programmatic spelling; ``observe`` adds observability on
    top (path / observer / iterable / :class:`ObservabilityConfig`).
    """
    cfg = _effective_config(config, options, observe)
    return IntervalCentricEngine(
        graph, program, cluster=cluster, graph_name=graph_name, config=cfg
    )


def run(
    graph,
    program,
    *,
    cluster: Optional[SimulatedCluster] = None,
    graph_name: str = "",
    config: Optional[EngineConfig] = None,
    options: Optional[dict] = None,
    observe: Any = None,
    warm_states: Optional[dict] = None,
    rescatter: Optional[dict] = None,
    resume_from: Optional[str] = None,
) -> IcmResult:
    """Build an engine and execute it to convergence.

    ``warm_states``/``rescatter``/``resume_from`` pass straight through to
    :meth:`IntervalCentricEngine.run`.
    """
    engine = build_engine(
        graph,
        program,
        cluster=cluster,
        graph_name=graph_name,
        config=config,
        options=options,
        observe=observe,
    )
    return engine.run(
        warm_states=warm_states, rescatter=rescatter, resume_from=resume_from
    )


def compare(
    algorithm: str,
    graph,
    *,
    platforms: Optional[tuple] = None,
    cluster: Optional[SimulatedCluster] = None,
    workers: int = 8,
    graph_name: str = "",
    config: Optional[EngineConfig] = None,
    options: Optional[dict] = None,
    observe: Any = None,
    **runner_kwargs: Any,
):
    """Run ``algorithm`` on every applicable platform; returns the
    :class:`~repro.algorithms.runners.RunOutcome` list in platform order.

    A fresh ``SimulatedCluster(workers)`` is built per platform unless an
    explicit ``cluster`` is given (sharing one cluster across platforms
    would let one platform's traffic history leak into another's model).
    GRAPHITE runs honour ``config``/``options``/``observe``; baseline
    platforms have no engine to configure.
    """
    from repro.algorithms.runners import platforms_for, run_algorithm

    outcomes = []
    for platform in platforms or platforms_for(algorithm):
        outcomes.append(
            run_algorithm(
                algorithm,
                platform,
                graph,
                cluster=cluster or SimulatedCluster(workers),
                graph_name=graph_name,
                config=config,
                icm_options=options,
                observe=observe,
                **runner_kwargs,
            )
        )
    return outcomes
