"""Command-line interface: ``python -m repro <command>``.

Commands
--------
``run``       Execute one algorithm on one platform over a surrogate
              dataset and print its metrics.
``compare``   Run an algorithm on every applicable platform (a one-row
              slice of the paper's Table 2).
``datasets``  Print Table-1 style statistics for the built-in surrogates.
``convert``   Dump a surrogate dataset to a graph file (text, binary,
              or compact columnar).
``trace``     Render a Fig-2-style execution trace of an ICM run.
``report``    Rebuild a Table-4-style breakdown from a saved event trace.
``journeys``  Enumerate time-respecting journeys between two vertices.
``serve``     Run a long-lived query daemon over a resident graph.
``query``     Query (or inspect / shut down) a running daemon.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Optional, Sequence

from repro import api
from repro.algorithms import ALL_ALGORITHMS, run_algorithm
from repro.datasets import SURROGATES
from repro.graph.stats import dataset_stats
from repro.obs.exporters import (
    prometheus_text,
    read_trace,
    render_report,
    render_summary,
    render_timeline,
    render_workers,
)
from repro.runtime.cluster import SimulatedCluster

DATASET_CHOICES = ("transit", *sorted(SURROGATES))


def _load(name: str, scale: float):
    return api.load_graph(name, format="dataset", scale=scale)


def add_engine_flags(parser: argparse.ArgumentParser) -> None:
    """The engine-selection flags every engine-running command shares
    (``run``, ``compare``, ``trace``, ``serve``, …).  One definition site:
    a flag added or renamed here reaches all of them identically —
    :func:`engine_options` is its parsing counterpart and a regression
    test pins the two against drift."""
    parser.add_argument("--executor", choices=("serial", "parallel"),
                        default=None,
                        help="execution backend for GRAPHITE runs "
                             "(default: REPRO_EXECUTOR env var or serial)")
    parser.add_argument("--processes", type=int, default=None,
                        help="worker processes for --executor parallel "
                             "(default: one per available core)")
    parser.add_argument("--partitioner",
                        choices=("hash", "range", "greedy", "interval_greedy"),
                        default=None,
                        help="vertex-to-worker placement for GRAPHITE runs "
                             "(default: REPRO_PARTITIONER env var or hash)")
    parser.add_argument("--exchange", choices=("star", "peer"),
                        default=None,
                        help="parallel barrier data plane: 'star' routes "
                             "batches through the master, 'peer' ships them "
                             "over direct worker-to-worker pipes "
                             "(default: REPRO_EXCHANGE env var or star)")


def engine_options(args: argparse.Namespace) -> dict:
    """Map the :func:`add_engine_flags` flags (plus the run-only
    checkpoint flags) to flat engine options for
    :meth:`EngineConfig.with_options` — shared by ``run``, ``compare``
    and ``serve`` so the two daemons of the CLI can never drift apart in
    how they configure an engine."""
    options: dict = {}
    if getattr(args, "executor", None) is not None:
        options["executor"] = args.executor
    if getattr(args, "processes", None) is not None:
        options["executor_processes"] = args.processes
    if getattr(args, "partitioner", None) is not None:
        options["partitioner"] = args.partitioner
    if getattr(args, "exchange", None) is not None:
        options["exchange"] = args.exchange
    if getattr(args, "checkpoint_every", None) is not None:
        options["checkpoint_every"] = args.checkpoint_every
    if getattr(args, "checkpoint_dir", None) is not None:
        options["checkpoint_dir"] = args.checkpoint_dir
    return options


# Backwards-compatible alias (the helper predates the serving tier).
_icm_options = engine_options


def cmd_run(args: argparse.Namespace) -> int:
    graph = _load(args.dataset, args.scale)
    outcome = run_algorithm(
        args.algorithm, args.platform, graph,
        cluster=SimulatedCluster(args.workers),
        graph_name=args.dataset,
        icm_options=engine_options(args),
        observe=args.trace_out,
        resume_from=args.resume,
    )
    print(f"{args.algorithm} on {args.dataset} "
          f"({graph.num_vertices} vertices, {graph.num_edges} edges):")
    print(render_summary(outcome.metrics))
    if args.trace_out is not None:
        print(f"  trace written to {args.trace_out}")
    if args.metrics_out is not None:
        with open(args.metrics_out, "w", encoding="utf-8") as fh:
            fh.write(prometheus_text(outcome.metrics))
        print(f"  metrics written to {args.metrics_out}")
    return 0


def cmd_compare(args: argparse.Namespace) -> int:
    graph = _load(args.dataset, args.scale)
    print(f"{args.algorithm} on {args.dataset}: platform comparison")
    print(f"  {'platform':10s} {'calls':>9s} {'messages':>9s} {'makespan':>12s}")
    base: Optional[float] = None
    outcomes = api.compare(
        args.algorithm, graph, workers=args.workers,
        graph_name=args.dataset, options=engine_options(args),
    )
    for outcome in outcomes:
        metrics = outcome.metrics
        if base is None:
            base = metrics.modeled_makespan
        ratio = metrics.modeled_makespan / base
        print(f"  {outcome.platform:10s} {metrics.compute_calls:9d} "
              f"{metrics.total_messages:9d} {metrics.modeled_makespan * 1e3:9.3f} ms "
              f"({ratio:.2f}x)")
    return 0


def cmd_datasets(args: argparse.Namespace) -> int:
    print(f"{'name':9s} {'|V|':>6s} {'|E|':>6s} {'snaps':>6s} "
          f"{'E-life':>7s} {'P-life':>7s}")
    for name in DATASET_CHOICES:
        graph = _load(name, args.scale)
        stats = dataset_stats(graph, name)
        print(f"{name:9s} {stats.interval_v:6d} {stats.interval_e:6d} "
              f"{stats.num_snapshots:6d} {stats.avg_edge_lifespan:7.2f} "
              f"{stats.avg_property_lifespan:7.2f}")
    return 0


def cmd_convert(args: argparse.Namespace) -> int:
    graph = _load(args.dataset, args.scale)
    if args.format == "text":
        from repro.graph.io import dump_graph

        dump_graph(graph, args.output)
    elif args.format == "binary":
        from repro.graph.binary_io import dump_graph_binary

        dump_graph_binary(graph, args.output)
    else:  # compact
        from repro.graph.compact import CompactGraph

        CompactGraph.from_temporal(graph).dump(args.output)
    print(f"wrote {graph.num_vertices} vertices / {graph.num_edges} edges "
          f"to {args.output} ({args.format})")
    return 0


def cmd_trace(args: argparse.Namespace) -> int:
    from repro.algorithms.runners import default_source
    from repro.core.tracing import ExecutionTracer

    graph = _load(args.dataset, args.scale)
    source = default_source(graph)
    tracer = ExecutionTracer()
    # Only GRAPHITE runs are traceable; build the program like the runner.
    from repro.algorithms.td.eat import TemporalEAT
    from repro.algorithms.td.reach import TemporalReachability
    from repro.algorithms.td.sssp import TemporalSSSP
    from repro.algorithms.ti.bfs import TemporalBFS

    programs = {
        "SSSP": lambda: TemporalSSSP(source),
        "EAT": lambda: TemporalEAT(source),
        "RH": lambda: TemporalReachability(source),
        "BFS": lambda: TemporalBFS(source),
    }
    if args.algorithm not in programs:
        print(f"trace supports {sorted(programs)}; got {args.algorithm}")
        return 2
    if args.executor == "parallel":
        print("trace requires the serial executor (tracing hooks run in-process)")
        return 2
    engine = api.build_engine(
        graph, programs[args.algorithm](), graph_name=args.dataset,
        options={"tracer": tracer, "executor": "serial"},
    )
    engine.run()
    vertices = set(args.vertices) if args.vertices else None
    print(f"{args.algorithm} on {args.dataset} from source {source!r}:")
    print(tracer.render(vertices=vertices))
    return 0


def cmd_report(args: argparse.Namespace) -> int:
    try:
        records = read_trace(args.trace)
    except (OSError, ValueError) as exc:
        print(f"cannot read trace: {exc}")
        return 2
    if args.workers:
        print(f"per-worker phase breakdown of {args.trace}:")
        print(render_workers(records))
    elif args.timeline:
        print(f"timeline of {args.trace}:")
        print(render_timeline(records))
    else:
        print(f"report from {args.trace} ({len(records)} events):")
        print(render_report(records))
    return 0


def cmd_journeys(args: argparse.Namespace) -> int:
    from repro.core.interval import Interval
    from repro.query.paths import find_journeys

    graph = _load(args.dataset, args.scale)
    for vid in (args.source, args.target):
        if not graph.has_vertex(vid):
            print(f"no vertex {vid!r} in {args.dataset}; "
                  f"ids look like: {graph.vertex_ids()[:5]}")
            return 2
    window = Interval(0, args.by if args.by is not None else graph.time_horizon())
    journeys = find_journeys(
        graph, args.source, args.target,
        window=window, max_legs=args.max_legs, max_results=args.limit,
    )
    if not journeys:
        print(f"no time-respecting journey {args.source} → {args.target} "
              f"within {window} and ≤{args.max_legs} legs")
        return 1
    print(f"{len(journeys)} journey(s) {args.source} → {args.target} within {window}:")
    for journey in journeys:
        print(f"  arr {journey.arrival:>3}  cost {journey.cost:>3}  "
              f"dur {journey.duration:>3}  {journey}")
    return 0


def cmd_serve(args: argparse.Namespace) -> int:
    import signal

    from repro.serve.daemon import ServeDaemon

    if args.graph is not None:
        # A graph file beats the dataset flags; compact files are mmap'd,
        # so a restarted daemon shares the OS page cache with its
        # predecessor instead of re-decoding the graph.
        graph = api.load_graph(args.graph)
        graph_name = args.graph
    else:
        graph = _load(args.dataset, args.scale)
        graph_name = args.dataset
    options = engine_options(args)
    if args.max_concurrency is not None:
        options["serve_max_concurrency"] = args.max_concurrency
    if args.queue_depth is not None:
        options["serve_queue_depth"] = args.queue_depth
    if args.cache_bytes is not None:
        options["serve_cache_bytes"] = args.cache_bytes
    if args.timeout is not None:
        options["serve_timeout_s"] = args.timeout
    service = api.serve(
        graph, graph_name=graph_name, workers=args.workers,
        options=options, observe=args.trace_out,
    )
    daemon = ServeDaemon(service, args.socket)
    daemon.start()

    def _stop(signum, frame):
        daemon.request_shutdown()

    signal.signal(signal.SIGTERM, _stop)
    signal.signal(signal.SIGINT, _stop)
    print(f"serving {graph_name} ({graph.num_vertices} vertices, "
          f"{graph.num_edges} edges) on {args.socket}", flush=True)
    endpoint = None
    if args.metrics_port is not None:
        from repro.serve.metrics_http import MetricsEndpoint

        endpoint = MetricsEndpoint(service, args.metrics_port).start()
        print(f"metrics on http://127.0.0.1:{endpoint.port}/metrics",
              flush=True)
    try:
        daemon.serve_forever()
    finally:
        if endpoint is not None:
            endpoint.stop()
    if args.metrics_out is not None:
        with open(args.metrics_out, "w", encoding="utf-8") as fh:
            fh.write(prometheus_text(service.metrics))
        print(f"  metrics written to {args.metrics_out}")
    print("shut down cleanly:")
    print(render_summary(service.metrics))
    return 0


def cmd_query(args: argparse.Namespace) -> int:
    from repro.serve.client import QueryClient
    from repro.serve.errors import ServeError

    try:
        with QueryClient.connect(args.socket) as client:
            if args.stats:
                print(json.dumps(client.stats(), indent=2, sort_keys=True))
                return 0
            if args.shutdown:
                client.shutdown()
                print("daemon shutting down")
                return 0
            if args.algorithm is None:
                print("query needs an algorithm (or --stats / --shutdown)")
                return 2
            params = {"source": args.source} if args.source else {}
            options: dict = {}
            if args.timeout is not None:
                options["timeout_s"] = args.timeout
            if args.no_cache:
                options["no_cache"] = True
            answer = client.query(
                args.algorithm,
                params=params,
                interval=tuple(args.interval) if args.interval else None,
                options=options,
            )
    except ServeError as exc:
        print(f"query failed [{exc.code}]: {exc}")
        return 1
    if args.json:
        print(answer.payload)
        return 0
    doc = answer.doc
    window = (f"[{answer.interval[0]}, {answer.interval[1]})"
              if answer.interval else "full horizon")
    print(f"{answer.algorithm} over {window}: "
          f"{len(doc['vertices'])} vertices, "
          f"{'cache hit' if answer.cache_hit else 'computed'}, "
          f"{answer.latency_s * 1e3:.3f} ms (--json for full results)")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="GRAPHITE / interval-centric temporal graph computing",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    def add_common(p):
        p.add_argument("--dataset", choices=DATASET_CHOICES, default="twitter")
        p.add_argument("--scale", type=float, default=0.5,
                       help="surrogate size multiplier (default 0.5)")
        p.add_argument("--workers", type=int, default=8,
                       help="simulated cluster size (default 8)")
        add_engine_flags(p)

    p_run = sub.add_parser("run", help="run one algorithm on one platform")
    p_run.add_argument("algorithm", choices=ALL_ALGORITHMS)
    p_run.add_argument("--platform", default="GRAPHITE")
    p_run.add_argument("--checkpoint-every", type=int, default=None,
                       metavar="N",
                       help="write a checkpoint every N supersteps "
                            "(GRAPHITE; default: REPRO_CHECKPOINT_EVERY or off)")
    p_run.add_argument("--checkpoint-dir", default=None, metavar="DIR",
                       help="checkpoint directory (default: REPRO_CHECKPOINT_DIR "
                            "or a temporary directory)")
    p_run.add_argument("--resume", default=None, metavar="DIR",
                       help="resume a GRAPHITE run from a checkpoint directory "
                            "written by --checkpoint-every; continues at "
                            "superstep N+1 with bit-identical results")
    p_run.add_argument("--trace-out", default=None, metavar="FILE",
                       help="append a JSON-lines event trace of the run "
                            "(GRAPHITE; read it back with `repro report`)")
    p_run.add_argument("--metrics-out", default=None, metavar="FILE",
                       help="write the run's metrics in Prometheus text format")
    add_common(p_run)
    p_run.set_defaults(fn=cmd_run)

    p_cmp = sub.add_parser("compare", help="run on every applicable platform")
    p_cmp.add_argument("algorithm", choices=ALL_ALGORITHMS)
    add_common(p_cmp)
    p_cmp.set_defaults(fn=cmd_compare)

    p_ds = sub.add_parser("datasets", help="show surrogate dataset statistics")
    p_ds.add_argument("--scale", type=float, default=0.5)
    p_ds.set_defaults(fn=cmd_datasets)

    p_cv = sub.add_parser("convert", help="dump a dataset to a graph file")
    p_cv.add_argument("output", help="output file path")
    p_cv.add_argument("--format", choices=("text", "binary", "compact"),
                      default="text",
                      help="output encoding: human-readable text, the v1 "
                           "binary object stream, or the v2 compact columnar "
                           "image (mmap-able; `repro serve --graph` loads it "
                           "zero-copy)")
    add_common(p_cv)
    p_cv.set_defaults(fn=cmd_convert)

    p_rp = sub.add_parser("report", help="summarise a saved event trace")
    p_rp.add_argument("trace", help="JSON-lines trace file written by "
                                    "`repro run --trace-out`")
    p_rp.add_argument("--timeline", action="store_true",
                      help="per-superstep phase table instead of the "
                           "per-algorithm breakdown")
    p_rp.add_argument("--workers", action="store_true",
                      help="per-worker phase breakdown with straggler "
                           "(max/mean) imbalance ratios, from the trace's "
                           "worker_span records")
    p_rp.set_defaults(fn=cmd_report)

    p_tr = sub.add_parser("trace", help="render an execution trace")
    p_tr.add_argument("algorithm", choices=("SSSP", "EAT", "RH", "BFS"))
    p_tr.add_argument("--vertices", nargs="*", default=None,
                      help="restrict the trace to these vertex ids")
    add_common(p_tr)
    p_tr.set_defaults(fn=cmd_trace)

    p_jn = sub.add_parser("journeys", help="enumerate time-respecting journeys")
    p_jn.add_argument("source")
    p_jn.add_argument("target")
    p_jn.add_argument("--by", type=int, default=None,
                      help="arrive before this time-point (default: horizon)")
    p_jn.add_argument("--max-legs", type=int, default=4)
    p_jn.add_argument("--limit", type=int, default=20)
    add_common(p_jn)
    p_jn.set_defaults(fn=cmd_journeys)

    p_sv = sub.add_parser("serve",
                          help="serve queries over a resident graph")
    p_sv.add_argument("--socket", required=True, metavar="PATH",
                      help="Unix socket path to listen on")
    p_sv.add_argument("--graph", default=None, metavar="PATH",
                      help="serve this graph file instead of a surrogate "
                           "dataset (any api.load_graph format; compact "
                           "files are mmap'd read-only)")
    p_sv.add_argument("--max-concurrency", type=int, default=None,
                      help="execution lanes (default: REPRO_SERVE_CONCURRENCY "
                           "or 1)")
    p_sv.add_argument("--queue-depth", type=int, default=None,
                      help="admission queue depth before queries are "
                           "rejected (default: REPRO_SERVE_QUEUE_DEPTH or 8)")
    p_sv.add_argument("--cache-bytes", type=int, default=None,
                      help="result cache byte budget, 0 disables "
                           "(default: REPRO_SERVE_CACHE_BYTES or 16 MiB)")
    p_sv.add_argument("--timeout", type=float, default=None, metavar="S",
                      help="default per-query deadline in seconds "
                           "(default: REPRO_SERVE_TIMEOUT_S or none)")
    p_sv.add_argument("--trace-out", default=None, metavar="FILE",
                      help="append a JSON-lines event trace of all queries "
                           "and the runs answering them")
    p_sv.add_argument("--metrics-out", default=None, metavar="FILE",
                      help="write serving metrics in Prometheus text format "
                           "on shutdown")
    p_sv.add_argument("--metrics-port", type=int, default=None, metavar="PORT",
                      help="serve live Prometheus metrics (plus per-lane "
                           "heartbeat gauges) over HTTP GET /metrics on "
                           "127.0.0.1:PORT while the daemon runs (0 picks "
                           "a free port, printed at startup)")
    add_common(p_sv)
    p_sv.set_defaults(fn=cmd_serve)

    p_q = sub.add_parser("query", help="query a running serve daemon")
    p_q.add_argument("algorithm", nargs="?",
                     choices=("BFS", "SSSP", "PR", "EAT", "RH"),
                     help="algorithm to query (omit with --stats/--shutdown)")
    p_q.add_argument("--socket", required=True, metavar="PATH",
                     help="the daemon's Unix socket path")
    p_q.add_argument("--source", default=None,
                     help="source vertex id (default: highest out-degree)")
    p_q.add_argument("--interval", nargs=2, type=int, default=None,
                     metavar=("START", "END"),
                     help="half-open query interval; omit for the full graph")
    p_q.add_argument("--timeout", type=float, default=None, metavar="S",
                     help="per-query deadline in seconds")
    p_q.add_argument("--no-cache", action="store_true",
                     help="bypass the daemon's result cache")
    p_q.add_argument("--json", action="store_true",
                     help="print the full result JSON document")
    p_q.add_argument("--stats", action="store_true",
                     help="print the daemon's serving counters and exit")
    p_q.add_argument("--shutdown", action="store_true",
                     help="ask the daemon to shut down cleanly and exit")
    p_q.set_defaults(fn=cmd_query)
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    return args.fn(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
