"""GRAPHITE: an interval-centric model for computing over temporal graphs.

A from-scratch Python reproduction of Gandhi & Simmhan, *An
Interval-centric Model for Distributed Computing over Temporal Graphs*
(ICDE 2020): the ICM programming abstraction with its time-warp operator,
a simulated distributed BSP runtime, the four baseline platforms of the
paper's evaluation, and the 12 temporal graph algorithms it studies.

Quickstart
----------
>>> from repro import api
>>> from repro.datasets import transit_graph
>>> from repro.algorithms.td.sssp import TemporalSSSP
>>> result = api.run(transit_graph(), TemporalSSSP("A"))
>>> result.value_at("E", 10)  # cheapest time-respecting cost, arriving by 10
5

Engines are configured through :class:`repro.api.EngineConfig` and
observed through `repro.obs` (structured run events, metric registry,
exporters); see ``api.run(..., observe="run.trace")`` and the
``repro report`` CLI command.
"""

from . import api
from .core import (
    FOREVER,
    IcmResult,
    Interval,
    IntervalCentricEngine,
    IntervalMessage,
    IntervalProgram,
    PartitionedState,
    time_join,
    time_warp,
)
from .graph import TemporalGraph, TemporalGraphBuilder

__version__ = "1.0.0"

__all__ = [
    "FOREVER",
    "Interval",
    "IntervalMessage",
    "IntervalProgram",
    "IntervalCentricEngine",
    "IcmResult",
    "PartitionedState",
    "time_join",
    "time_warp",
    "TemporalGraph",
    "TemporalGraphBuilder",
    "__version__",
]
