"""Unified (algorithm × platform) runner layer for the benchmark harness.

The paper's evaluation runs 12 algorithms on up to 5 platforms per graph.
This module maps an ``(algorithm, platform)`` pair to the right engine,
program and graph preparation, returning the run's :class:`RunMetrics`
and the raw platform result for equivalence checks.

Platform coverage follows the paper exactly: the TI algorithms (BFS, WCC,
SCC, PR) are compared on GRAPHITE / MSB / Chlonos, the TD algorithms
(SSSP, EAT, FAST, LD, TMST, RH, LCC, TC) on GRAPHITE / TGB / GoFFish.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Optional

from repro import api
from repro.baselines.chlonos import run_chlonos
from repro.baselines.goffish import GoffishEngine
from repro.baselines.msb import run_msb
from repro.baselines.tgb import run_tgb
from repro.core.config import EngineConfig
from repro.graph.model import TemporalGraph
from repro.graph.transform import build_snapshot_replica_graph
from repro.runtime.cluster import SimulatedCluster
from repro.runtime.metrics import RunMetrics

from .td.eat import GoffishEAT, TemporalEAT, TgbEAT
from .td.fast import GoffishFAST, TemporalFAST, TgbFAST
from .td.lcc import GoffishLCC, SnapshotLCC, TemporalLCC
from .td.ld import GoffishLD, TemporalLD, TgbLD
from .td.reach import GoffishReachability, TemporalReachability, TgbReachability
from .td.sssp import GoffishSSSP, TemporalSSSP, TgbSSSP
from .td.tc import GoffishTC, SnapshotTC, TemporalTC
from .td.tmst import GoffishTMST, TemporalTMST, TgbTMST
from .ti.bfs import SnapshotBFS, TemporalBFS
from .ti.pagerank import SnapshotPageRank, TemporalPageRank
from .ti.scc import run_chlonos_scc, run_icm_scc, run_snapshot_scc
from .ti.wcc import SnapshotWCC, TemporalWCC, make_undirected

TI_ALGORITHMS = ("BFS", "WCC", "SCC", "PR")
TD_ALGORITHMS = ("SSSP", "EAT", "FAST", "LD", "TMST", "RH", "LCC", "TC")
ALL_ALGORITHMS = TI_ALGORITHMS + TD_ALGORITHMS

TI_PLATFORMS = ("GRAPHITE", "MSB", "Chlonos")
TD_PLATFORMS = ("GRAPHITE", "TGB", "GoFFish")


def platforms_for(algorithm: str) -> tuple[str, ...]:
    """The paper's platform set for an algorithm (TI vs TD matrix)."""
    return TI_PLATFORMS if algorithm in TI_ALGORITHMS else TD_PLATFORMS


@dataclass
class RunOutcome:
    """Metrics plus the raw platform result of one run."""

    algorithm: str
    platform: str
    metrics: RunMetrics
    result: Any


def default_source(graph: TemporalGraph) -> Any:
    """A deterministic interesting source: the max out-degree vertex."""
    return max(graph.vertex_ids(), key=lambda vid: (len(graph.out_edges(vid)), str(vid)))


def default_target(graph: TemporalGraph) -> Any:
    """A deterministic interesting target: the max in-degree vertex."""
    return max(graph.vertex_ids(), key=lambda vid: (len(graph.in_edges(vid)), str(vid)))


def run_algorithm(
    algorithm: str,
    platform: str,
    graph: TemporalGraph,
    *,
    cluster: Optional[SimulatedCluster] = None,
    graph_name: str = "",
    source: Any = None,
    target: Any = None,
    deadline: Optional[int] = None,
    horizon: Optional[int] = None,
    batch_size: Optional[int] = None,
    icm_options: Optional[dict[str, Any]] = None,
    config: Optional[EngineConfig] = None,
    observe: Any = None,
    resume_from: Optional[str] = None,
) -> RunOutcome:
    """Execute one (algorithm, platform) cell of the evaluation matrix.

    GRAPHITE engines are built through `repro.api`: ``config`` is the base
    :class:`EngineConfig` (default: ``EngineConfig.from_env()``),
    ``icm_options`` are flat option overrides, and ``observe`` attaches
    structured-event observers (baseline platforms have no engine to
    observe).  ``resume_from`` continues a GRAPHITE run from a checkpoint
    directory (see `repro.runtime.checkpoint`); it applies to
    single-engine GRAPHITE algorithms only — SCC's peeling loop runs many
    engines per call.
    """
    if algorithm not in ALL_ALGORITHMS:
        raise ValueError(f"unknown algorithm {algorithm!r}")
    if platform not in platforms_for(algorithm):
        raise ValueError(f"{platform} does not run {algorithm} in the paper's matrix")
    if resume_from is not None and (platform != "GRAPHITE" or algorithm == "SCC"):
        raise ValueError(
            "resume_from requires a single-engine GRAPHITE run "
            f"(got {platform}/{algorithm})"
        )
    cluster = cluster or SimulatedCluster()
    if horizon is None:
        horizon = graph.time_horizon()
    if source is None:
        source = default_source(graph)
    if target is None:
        target = default_target(graph)
    if deadline is None:
        deadline = horizon - 1
    icm_options = icm_options or {}

    def icm(g, program):
        return api.run(
            g, program, cluster=cluster, graph_name=graph_name,
            config=config, options=icm_options, observe=observe,
            resume_from=resume_from,
        )

    # --- TI ------------------------------------------------------------------
    if algorithm == "BFS":
        if platform == "GRAPHITE":
            res = icm(graph, TemporalBFS(source))
            return RunOutcome(algorithm, platform, res.metrics, res)
        runner = run_msb if platform == "MSB" else run_chlonos
        kwargs = {} if platform == "MSB" else {"batch_size": batch_size}
        res = runner(graph, lambda t: SnapshotBFS(source), horizon=horizon,
                     cluster=cluster, graph_name=graph_name, **kwargs)
        return RunOutcome(algorithm, platform, res.metrics, res)

    if algorithm == "WCC":
        undirected = make_undirected(graph)
        if platform == "GRAPHITE":
            res = icm(undirected, TemporalWCC())
            return RunOutcome(algorithm, platform, res.metrics, res)
        runner = run_msb if platform == "MSB" else run_chlonos
        kwargs = {} if platform == "MSB" else {"batch_size": batch_size}
        res = runner(undirected, lambda t: SnapshotWCC(), horizon=horizon,
                     cluster=cluster, graph_name=graph_name, **kwargs)
        return RunOutcome(algorithm, platform, res.metrics, res)

    if algorithm == "SCC":
        if platform == "GRAPHITE":
            res = run_icm_scc(
                graph, cluster=cluster, graph_name=graph_name,
                icm_options=icm_options, config=config, observe=observe,
            )
            return RunOutcome(algorithm, platform, res.metrics, res)
        if platform == "MSB":
            values, metrics = run_snapshot_scc(
                graph, horizon=horizon, cluster=cluster, graph_name=graph_name
            )
            return RunOutcome(algorithm, platform, metrics, values)
        values, metrics = run_chlonos_scc(
            graph, batch_size=batch_size, horizon=horizon,
            cluster=cluster, graph_name=graph_name,
        )
        return RunOutcome(algorithm, platform, metrics, values)

    if algorithm == "PR":
        if platform == "GRAPHITE":
            res = icm(graph, TemporalPageRank(graph))
            return RunOutcome(algorithm, platform, res.metrics, res)
        runner = run_msb if platform == "MSB" else run_chlonos
        kwargs = {} if platform == "MSB" else {"batch_size": batch_size}
        res = runner(graph, lambda t: SnapshotPageRank(), horizon=horizon,
                     cluster=cluster, graph_name=graph_name, **kwargs)
        return RunOutcome(algorithm, platform, res.metrics, res)

    # --- TD ------------------------------------------------------------------
    icm_programs = {
        "SSSP": lambda: (graph, TemporalSSSP(source)),
        "EAT": lambda: (graph, TemporalEAT(source)),
        "FAST": lambda: (graph, TemporalFAST(source, horizon=horizon)),
        "LD": lambda: (graph.reversed(), TemporalLD(target, deadline)),
        "TMST": lambda: (graph, TemporalTMST(source)),
        "RH": lambda: (graph, TemporalReachability(source)),
        "LCC": lambda: (graph, TemporalLCC()),
        "TC": lambda: (graph, TemporalTC()),
    }
    if platform == "GRAPHITE":
        g, program = icm_programs[algorithm]()
        res = icm(g, program)
        res.metrics.algorithm = algorithm
        return RunOutcome(algorithm, platform, res.metrics, res)

    if platform == "TGB":
        if algorithm in ("LCC", "TC"):
            replica = build_snapshot_replica_graph(graph, horizon=horizon)
            program = SnapshotLCC() if algorithm == "LCC" else SnapshotTC()
            res = run_tgb(graph, program, transformed=replica, horizon=horizon,
                          cluster=cluster, graph_name=graph_name)
            return RunOutcome(algorithm, platform, res.metrics, res)
        tgb_programs = {
            "SSSP": lambda: TgbSSSP(source),
            "EAT": lambda: TgbEAT(source),
            "FAST": lambda: TgbFAST(source),
            "TMST": lambda: TgbTMST(source),
            "RH": lambda: TgbReachability(source),
        }
        if algorithm == "LD":
            from repro.graph.transform import build_transformed_graph

            transformed = build_transformed_graph(graph, horizon=horizon).reversed()
            res = run_tgb(graph, TgbLD(target, deadline), transformed=transformed,
                          horizon=horizon, cluster=cluster, graph_name=graph_name)
            return RunOutcome(algorithm, platform, res.metrics, res)
        res = run_tgb(graph, tgb_programs[algorithm](), horizon=horizon,
                      cluster=cluster, graph_name=graph_name)
        return RunOutcome(algorithm, platform, res.metrics, res)

    # GoFFish
    gof_programs = {
        "SSSP": lambda: (graph, GoffishSSSP(source), 1),
        "EAT": lambda: (graph, GoffishEAT(source), 1),
        "FAST": lambda: (graph, GoffishFAST(source), 1),
        "LD": lambda: (graph.reversed(), GoffishLD(target, deadline), -1),
        "TMST": lambda: (graph, GoffishTMST(source), 1),
        "RH": lambda: (graph, GoffishReachability(source), 1),
        "LCC": lambda: (graph, GoffishLCC(), 1),
        "TC": lambda: (graph, GoffishTC(), 1),
    }
    g, program, direction = gof_programs[algorithm]()
    engine = GoffishEngine(
        g, program, horizon=horizon, cluster=cluster,
        graph_name=graph_name, direction=direction,
    )
    res = engine.run()
    return RunOutcome(algorithm, platform, res.metrics, res)
