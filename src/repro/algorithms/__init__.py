"""The 12 TI and TD algorithms of the paper's evaluation (Sec. V, VII-A1)."""

from .runners import (
    ALL_ALGORITHMS,
    TD_ALGORITHMS,
    TD_PLATFORMS,
    TI_ALGORITHMS,
    TI_PLATFORMS,
    RunOutcome,
    default_source,
    default_target,
    platforms_for,
    run_algorithm,
)

__all__ = [
    "TI_ALGORITHMS",
    "TD_ALGORITHMS",
    "ALL_ALGORITHMS",
    "TI_PLATFORMS",
    "TD_PLATFORMS",
    "platforms_for",
    "run_algorithm",
    "RunOutcome",
    "default_source",
    "default_target",
]
