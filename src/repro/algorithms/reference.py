"""Brute-force reference implementations used by the test-suite.

These are deliberately *independent* of the ICM engine, the warp operator,
and the transformed-graph machinery: snapshot algorithms work on adjacency
sets, temporal algorithms on a dense ``(vertex, time)`` dynamic-programming
grid with explicit waiting and edge relaxations.  Slow but obviously
correct on the small graphs tests use.
"""

from __future__ import annotations

from typing import Any, Optional

from repro.core.interval import FOREVER, Interval
from repro.graph.model import TemporalGraph
from repro.graph.snapshots import StaticGraph

INF = FOREVER


# -- per-snapshot (TI) references ---------------------------------------------


def snapshot_bfs(snap: StaticGraph, source: Any) -> dict[Any, int]:
    """Hop distances from ``source`` (INF when unreachable or absent)."""
    dist = {vid: INF for vid in snap.vertex_ids()}
    if not snap.has_vertex(source):
        return dist
    dist[source] = 0
    frontier = [source]
    while frontier:
        nxt = []
        for u in frontier:
            for edge in snap.out_edges(u):
                if dist[edge.dst] > dist[u] + 1:
                    dist[edge.dst] = dist[u] + 1
                    nxt.append(edge.dst)
        frontier = nxt
    return dist


def snapshot_wcc(snap: StaticGraph) -> dict[Any, Any]:
    """Weakly connected component labels (minimum vid per component)."""
    parent = {vid: vid for vid in snap.vertex_ids()}

    def find(x):
        while parent[x] != x:
            parent[x] = parent[parent[x]]
            x = parent[x]
        return x

    for edge in snap.edges():
        ra, rb = find(edge.src), find(edge.dst)
        if ra != rb:
            parent[ra] = rb
    groups: dict[Any, list[Any]] = {}
    for vid in snap.vertex_ids():
        groups.setdefault(find(vid), []).append(vid)
    labels = {}
    for members in groups.values():
        label = min(members)
        for vid in members:
            labels[vid] = label
    return labels


def snapshot_scc(snap: StaticGraph) -> dict[Any, Any]:
    """Strongly connected component labels via iterative Tarjan."""
    index: dict[Any, int] = {}
    lowlink: dict[Any, int] = {}
    on_stack: set[Any] = set()
    stack: list[Any] = []
    components: list[list[Any]] = []
    counter = [0]

    for root in snap.vertex_ids():
        if root in index:
            continue
        work = [(root, iter(snap.out_edges(root)))]
        index[root] = lowlink[root] = counter[0]
        counter[0] += 1
        stack.append(root)
        on_stack.add(root)
        while work:
            node, edges = work[-1]
            advanced = False
            for edge in edges:
                w = edge.dst
                if w not in index:
                    index[w] = lowlink[w] = counter[0]
                    counter[0] += 1
                    stack.append(w)
                    on_stack.add(w)
                    work.append((w, iter(snap.out_edges(w))))
                    advanced = True
                    break
                if w in on_stack:
                    lowlink[node] = min(lowlink[node], index[w])
            if advanced:
                continue
            work.pop()
            if work:
                parent_node = work[-1][0]
                lowlink[parent_node] = min(lowlink[parent_node], lowlink[node])
            if lowlink[node] == index[node]:
                comp = []
                while True:
                    w = stack.pop()
                    on_stack.discard(w)
                    comp.append(w)
                    if w == node:
                        break
                components.append(comp)

    labels: dict[Any, Any] = {}
    for comp in components:
        label = min(comp)
        for vid in comp:
            labels[vid] = label
    return labels


def snapshot_pagerank(
    snap: StaticGraph, supersteps: int = 10, damping: float = 0.85
) -> dict[Any, float]:
    """PageRank matching the Pregel schedule exactly.

    Superstep 1 initialises ranks to ``1/N``; supersteps 2..K apply
    ``rank = (1-d)/N + d * Σ_in rank/deg`` using the sender's rank from the
    previous superstep.  Dangling mass is dropped, as in the paper's
    fixed-superstep formulation.
    """
    n = snap.num_vertices
    if n == 0:
        return {}
    rank = {vid: 1.0 / n for vid in snap.vertex_ids()}
    for _ in range(2, supersteps + 1):
        incoming = {vid: 0.0 for vid in snap.vertex_ids()}
        for vid in snap.vertex_ids():
            degree = len(snap.out_edges(vid))
            if degree == 0:
                continue
            share = rank[vid] / degree
            for edge in snap.out_edges(vid):
                incoming[edge.dst] += share
        rank = {
            vid: (1.0 - damping) / n + damping * incoming[vid]
            for vid in snap.vertex_ids()
        }
    return rank


def snapshot_lcc(snap: StaticGraph) -> dict[Any, float]:
    """Directed LCC: edges within the out-neighbour set over ``d (d-1)``.

    ``d`` is the out-*edge* count (multigraph convention shared with the
    platform implementations); membership in ``N(v)`` is by distinct
    neighbour, edges within ``N(v)`` are counted per edge instance.
    """
    out_sets = {vid: {e.dst for e in snap.out_edges(vid)} for vid in snap.vertex_ids()}
    lcc = {}
    for vid in snap.vertex_ids():
        neighbours = out_sets[vid]
        degree = len(snap.out_edges(vid))
        possible = degree * (degree - 1)
        if possible == 0:
            lcc[vid] = 0.0
            continue
        count = 0
        for w in neighbours:
            for edge in snap.out_edges(w):
                if edge.dst in neighbours and edge.dst != w:
                    count += 1
        lcc[vid] = count / possible
    return lcc


def snapshot_tc(snap: StaticGraph) -> dict[Any, int]:
    """Per-vertex directed-3-cycle closing counts (each cycle seen at each
    of its three rotations, i.e. the global count is ``sum/3``)."""
    counts = {vid: 0 for vid in snap.vertex_ids()}
    for u in snap.vertex_ids():
        for e1 in snap.out_edges(u):
            v = e1.dst
            for e2 in snap.out_edges(v):
                w = e2.dst
                for e3 in snap.out_edges(w):
                    if e3.dst == u:
                        counts[w] += 1
    return counts


# -- temporal (TD) references: dense (vertex, time) DP grids --------------------


def _alive(graph: TemporalGraph, vid: Any, t: int) -> bool:
    return graph.vertex(vid).lifespan.contains_point(t)


def _edge_relaxations(graph: TemporalGraph, horizon: int, time_label: str):
    """Yield ``(src, t_dep, dst, t_arr, props)`` for every departure point."""
    window = Interval(0, horizon)
    for e in graph.edges():
        for piece_iv, piece in e.pieces(window):
            travel = piece.get(time_label, 1)
            for t in piece_iv.points():
                yield e.src, t, e.dst, t + travel, piece


def temporal_sssp_grid(
    graph: TemporalGraph,
    source: Any,
    *,
    horizon: Optional[int] = None,
    cost_label: str = "travel-cost",
    time_label: str = "travel-time",
) -> dict[Any, list[int]]:
    """``cost[vid][t]`` = min travel cost of a journey arriving by ``t``."""
    if horizon is None:
        horizon = graph.time_horizon()
    cost = {v.vid: [INF] * horizon for v in graph.vertices()}
    for t in range(horizon):
        if _alive(graph, source, t):
            cost[source][t] = 0
    changed = True
    while changed:
        changed = False
        for vid, row in cost.items():
            for t in range(1, horizon):
                if row[t] > row[t - 1] and _alive(graph, vid, t) and _alive(graph, vid, t - 1):
                    row[t] = row[t - 1]
                    changed = True
        for src, t_dep, dst, t_arr, piece in _edge_relaxations(graph, horizon, time_label):
            if t_arr >= horizon or cost[src][t_dep] >= INF or not _alive(graph, dst, t_arr):
                continue
            candidate = cost[src][t_dep] + piece.get(cost_label, 1)
            if candidate < cost[dst][t_arr]:
                cost[dst][t_arr] = candidate
                changed = True
    return cost


def temporal_eat(
    graph: TemporalGraph,
    source: Any,
    *,
    horizon: Optional[int] = None,
    time_label: str = "travel-time",
) -> dict[Any, Optional[int]]:
    """Earliest time-respecting arrival per vertex, or ``None``."""
    if horizon is None:
        horizon = graph.time_horizon()
    reach = temporal_reach_grid(graph, source, horizon=horizon, time_label=time_label)
    out: dict[Any, Optional[int]] = {}
    for vid, row in reach.items():
        out[vid] = next((t for t in range(horizon) if row[t]), None)
    return out


def temporal_reach_grid(
    graph: TemporalGraph,
    source: Any,
    *,
    horizon: Optional[int] = None,
    time_label: str = "travel-time",
) -> dict[Any, list[bool]]:
    """``reach[vid][t]`` = a journey from the source can be at ``vid`` at ``t``."""
    if horizon is None:
        horizon = graph.time_horizon()
    reach = {v.vid: [False] * horizon for v in graph.vertices()}
    for t in range(horizon):
        if _alive(graph, source, t):
            reach[source][t] = True
    changed = True
    while changed:
        changed = False
        for vid, row in reach.items():
            for t in range(1, horizon):
                if not row[t] and row[t - 1] and _alive(graph, vid, t) and _alive(graph, vid, t - 1):
                    row[t] = True
                    changed = True
        for src, t_dep, dst, t_arr, _ in _edge_relaxations(graph, horizon, time_label):
            if (t_arr < horizon and reach[src][t_dep] and not reach[dst][t_arr]
                    and _alive(graph, dst, t_arr)):
                reach[dst][t_arr] = True
                changed = True
    return reach


def temporal_fast(
    graph: TemporalGraph,
    source: Any,
    *,
    horizon: Optional[int] = None,
    time_label: str = "travel-time",
) -> dict[Any, Optional[int]]:
    """Minimum journey duration per destination: enumerate every start.

    For each possible start time ``s`` the source can depart at, compute
    earliest arrivals of journeys starting no earlier than ``s``; duration
    is ``arrival - s``; take the minimum over ``s``.
    """
    if horizon is None:
        horizon = graph.time_horizon()
    best: dict[Any, Optional[int]] = {v.vid: None for v in graph.vertices()}
    src_life = graph.vertex(source).lifespan
    for s in range(src_life.start, min(src_life.end, horizon)):
        reach = {v.vid: [False] * horizon for v in graph.vertices()}
        for t in range(s, horizon):
            if _alive(graph, source, t):
                reach[source][t] = True
        changed = True
        while changed:
            changed = False
            for vid, row in reach.items():
                for t in range(1, horizon):
                    if not row[t] and row[t - 1] and _alive(graph, vid, t) and _alive(graph, vid, t - 1):
                        row[t] = True
                        changed = True
            for src, t_dep, dst, t_arr, _ in _edge_relaxations(graph, horizon, time_label):
                if (t_arr < horizon and reach[src][t_dep] and not reach[dst][t_arr]
                        and _alive(graph, dst, t_arr)):
                    reach[dst][t_arr] = True
                    changed = True
        for vid, row in reach.items():
            if vid == source:
                continue
            arrival = next((t for t in range(horizon) if row[t]), None)
            if arrival is not None and arrival >= s:
                duration = arrival - s
                if best[vid] is None or duration < best[vid]:
                    best[vid] = duration
    best[source] = 0 if any(_alive(graph, source, t) for t in range(horizon)) else None
    return best


def temporal_ld(
    graph: TemporalGraph,
    target: Any,
    deadline: int,
    *,
    horizon: Optional[int] = None,
    time_label: str = "travel-time",
) -> dict[Any, Optional[int]]:
    """Latest departure per vertex to reach ``target`` by ``deadline``.

    Backward DP: ``ok[vid][t]`` = being at ``vid`` at ``t`` allows reaching
    the target by the deadline; LD = max ``t`` with a *departure* at ``t``
    (or the deadline itself for the target).
    """
    if horizon is None:
        horizon = graph.time_horizon()
    ok = {v.vid: [False] * horizon for v in graph.vertices()}
    for t in range(min(deadline + 1, horizon)):
        if _alive(graph, target, t):
            ok[target][t] = True
    departures: dict[Any, set[int]] = {v.vid: set() for v in graph.vertices()}
    changed = True
    while changed:
        changed = False
        for vid, row in ok.items():
            for t in range(horizon - 2, -1, -1):
                if not row[t] and row[t + 1] and _alive(graph, vid, t) and _alive(graph, vid, t + 1):
                    row[t] = True
                    changed = True
        for src, t_dep, dst, t_arr, _ in _edge_relaxations(graph, horizon, time_label):
            if t_arr < horizon and _alive(graph, dst, t_arr) and ok[dst][t_arr]:
                if t_dep not in departures[src]:
                    departures[src].add(t_dep)
                    changed = True
                if not ok[src][t_dep]:
                    ok[src][t_dep] = True
                    changed = True
    out: dict[Any, Optional[int]] = {}
    for vid in ok:
        if vid == target:
            out[vid] = deadline if any(ok[target]) else None
        else:
            out[vid] = max(departures[vid]) if departures[vid] else None
    return out


def temporal_tmst_arrivals(
    graph: TemporalGraph,
    source: Any,
    *,
    horizon: Optional[int] = None,
    time_label: str = "travel-time",
) -> dict[Any, Optional[int]]:
    """Earliest arrivals (the TMST tree's node labels)."""
    return temporal_eat(graph, source, horizon=horizon, time_label=time_label)
