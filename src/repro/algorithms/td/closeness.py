"""Temporal closeness centrality (extension algorithm).

The paper's introduction motivates TD centrality measures for estimating
information-propagation delays in social networks.  This module provides
*harmonic temporal closeness*: for vertex ``v``,

    ``C(v) = Σ_{u ≠ v} 1 / (eat_v(u) − start_v)``

where ``eat_v(u)`` is the earliest time-respecting arrival at ``u`` of a
journey leaving ``v`` at its first active time-point — unreachable
vertices contribute 0 (the harmonic form handles disconnectedness, which
is the norm under time-respecting reachability).

Computed by running the interval-centric EAT program once per source, so
it exercises the ICM engine as a subroutine the way a library user would.
"""

from __future__ import annotations

from typing import Any, Iterable, Optional

from repro import api
from repro.core.config import EngineConfig
from repro.graph.model import TemporalGraph
from repro.runtime.cluster import SimulatedCluster
from repro.runtime.metrics import RunMetrics

from .eat import NEVER, TemporalEAT, earliest_arrival


def temporal_closeness(
    graph: TemporalGraph,
    sources: Optional[Iterable[Any]] = None,
    *,
    cluster: Optional[SimulatedCluster] = None,
    graph_name: str = "",
    time_label: str = "travel-time",
    config: Optional[EngineConfig] = None,
    observe: Any = None,
) -> tuple[dict[Any, float], RunMetrics]:
    """Harmonic temporal closeness for each source (default: all vertices).

    Returns the closeness map and the accumulated run metrics of the
    underlying per-source EAT executions; ``observe`` is shared by every
    per-source run.
    """
    cluster = cluster or SimulatedCluster()
    if sources is None:
        sources = graph.vertex_ids()
    total = RunMetrics(platform="GRAPHITE", algorithm="CLOSENESS", graph=graph_name)
    closeness: dict[Any, float] = {}
    for source in sources:
        result = api.run(
            graph, TemporalEAT(source, time_label=time_label),
            cluster=cluster, graph_name=graph_name,
            config=config, observe=observe,
        )
        total.merge(result.metrics)
        start = graph.vertex(source).lifespan.start
        score = 0.0
        for vid, state in result.states.items():
            if vid == source:
                continue
            arrival = earliest_arrival(state)
            if arrival is not None and arrival > start:
                score += 1.0 / (arrival - start)
        closeness[source] = score
    total.platform, total.algorithm = "GRAPHITE", "CLOSENESS"
    return closeness, total


def most_central(closeness: dict[Any, float], k: int = 1) -> list[tuple[Any, float]]:
    """Top-k vertices by closeness (ties broken by id for determinism)."""
    ranked = sorted(closeness.items(), key=lambda item: (-item[1], str(item[0])))
    return ranked[:k]
