"""Time-minimum spanning tree (TD) — Huang et al. [9], paper Sec. V.

"To find the TMST from a given source, we add the parent vertex ID to the
state and the message value, in addition to replacing travel cost with
arrival time, to rebuild the tree."  The result is the tree of earliest
time-respecting arrivals, with parent pointers for reconstruction; ties on
arrival time break towards the smaller parent id so all platforms agree.
"""

from __future__ import annotations

from typing import Any, Optional

from repro.core.combiner import tuple_min_combiner
from repro.core.interval import FOREVER, Interval
from repro.core.program import IntervalProgram
from repro.core.state import PartitionedState
from repro.baselines.goffish import GoffishProgram
from repro.baselines.tgb import ChainForwardingProgram

#: ``(arrival, parent)`` for "not reached"; compares greater than any real
#: arrival, and the parent slot is a string so tuple comparison stays valid
#: when real parents are strings.
UNREACHED = (FOREVER, "")


class TemporalTMST(IntervalProgram):
    """Interval-centric TMST: earliest arrival plus parent pointer."""

    name = "TMST"
    incremental_safe = True

    def __init__(self, source: Any, time_label: str = "travel-time"):
        self.source = source
        self.time_label = time_label
        self.combiner = tuple_min_combiner()

    def init(self, ctx) -> None:
        ctx.set_state(ctx.lifespan, UNREACHED)

    def compute(self, ctx, interval: Interval, state, messages: list[tuple]) -> None:
        if ctx.superstep == 1:
            if ctx.vertex_id == self.source:
                ctx.set_state(interval, (ctx.lifespan.start, ctx.vertex_id))
            return
        best = min(messages, default=UNREACHED)
        if best < state:
            ctx.set_state(interval, best)

    def scatter(self, ctx, edge, interval: Interval, state):
        if state[0] >= FOREVER:
            return None
        travel_time = edge.get(self.time_label, 1)
        arrival = interval.start + travel_time
        return [(Interval(arrival, FOREVER), (arrival, ctx.vertex_id))]


def tmst_parent(state: PartitionedState) -> Optional[tuple[int, Any]]:
    """``(arrival, parent)`` of the earliest arrival, or ``None``."""
    best = min(value for _, value in state)
    return None if best[0] >= FOREVER else best


def tmst_tree(states: dict[Any, PartitionedState], source: Any) -> dict[Any, tuple[int, Any]]:
    """Rebuild the spanning tree: vid → (arrival, parent), source excluded."""
    tree: dict[Any, tuple[int, Any]] = {}
    for vid, state in states.items():
        if vid == source:
            continue
        entry = tmst_parent(state)
        if entry is not None:
            tree[vid] = entry
    return tree


class TgbTMST(ChainForwardingProgram):
    """TMST on the transformed graph: replica value = (arrival, parent)."""

    name = "TMST"

    def __init__(self, source: Any):
        self.source = source
        self.combiner = tuple_min_combiner()

    def init(self, ctx) -> None:
        ctx.value = UNREACHED

    def absorb(self, ctx, messages: list[tuple]) -> bool:
        if ctx.superstep == 1:
            vid, t = ctx.vertex_id
            if vid == self.source:
                ctx.value = (t, vid)
                return True
            return False
        best = min(messages, default=UNREACHED)
        if best < ctx.value:
            ctx.value = best
            return True
        return False

    def emit(self, ctx, edge) -> Any:
        # The application edge lands on replica (v, t_arr).
        return (edge.dst[1], ctx.vertex_id[0])


class GoffishTMST(GoffishProgram):
    """GoFFish-TS TMST: earliest arrival with parent, explicit state pass."""

    name = "TMST"

    def __init__(self, source: Any, time_label: str = "travel-time"):
        self.source = source
        self.time_label = time_label

    def init(self, ctx) -> None:
        ctx.value = UNREACHED

    def compute(self, ctx, messages: list[tuple]) -> None:
        if ctx.vertex_id == self.source and ctx.value == UNREACHED:
            ctx.value = (ctx.time, ctx.vertex_id)
        best = min((tuple(m) for m in messages), default=UNREACHED)
        if best < ctx.value:
            ctx.value = best
        if ctx.value[0] >= FOREVER or ctx.time < ctx.value[0]:
            return
        for edge, props in ctx.temporal_out_edges():
            travel_time = props.get(self.time_label, 1)
            arrival = ctx.time + travel_time
            ctx.send_temporal(edge.dst, arrival, (arrival, ctx.vertex_id))
        ctx.keep_alive()
