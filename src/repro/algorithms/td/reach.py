"""Time-respecting reachability (TD) — Wu et al. [21], paper Sec. V.

"For RH, we replace the travel-cost in the message with a flag to help test
if a vertex-pair is reachable."  The state per interval answers: is there a
time-respecting journey from the source arriving at or before this
interval?
"""

from __future__ import annotations

from typing import Any

from repro.core.combiner import or_combiner
from repro.core.interval import FOREVER, Interval
from repro.core.program import IntervalProgram
from repro.core.state import PartitionedState
from repro.baselines.goffish import GoffishProgram
from repro.baselines.tgb import ChainForwardingProgram


class TemporalReachability(IntervalProgram):
    """Interval-centric time-respecting reachability from ``source``."""

    name = "RH"
    incremental_safe = True

    def __init__(self, source: Any, time_label: str = "travel-time"):
        self.source = source
        self.time_label = time_label
        self.combiner = or_combiner()

    def init(self, ctx) -> None:
        ctx.set_state(ctx.lifespan, False)

    def compute(self, ctx, interval: Interval, state: bool, messages: list[bool]) -> None:
        if ctx.superstep == 1:
            if ctx.vertex_id == self.source:
                ctx.set_state(interval, True)
            return
        if not state and any(messages):
            ctx.set_state(interval, True)

    def scatter(self, ctx, edge, interval: Interval, state: bool):
        if not state:
            return None
        travel_time = edge.get(self.time_label, 1)
        return [(Interval(interval.start + travel_time, FOREVER), True)]


def is_reachable(state: PartitionedState) -> bool:
    """Whether the vertex is reachable at any time."""
    return any(value for _, value in state)


class TgbReachability(ChainForwardingProgram):
    """Reachability flags over the transformed graph."""

    name = "RH"

    def __init__(self, source: Any):
        self.source = source
        self.combiner = or_combiner()

    def init(self, ctx) -> None:
        ctx.value = False

    def absorb(self, ctx, messages: list[bool]) -> bool:
        if ctx.superstep == 1:
            if ctx.vertex_id[0] == self.source:
                ctx.value = True
                return True
            return False
        if not ctx.value and any(messages):
            ctx.value = True
            return True
        return False

    def emit(self, ctx, edge) -> Any:
        return True


class GoffishReachability(GoffishProgram):
    """GoFFish-TS reachability with explicit state passing."""

    name = "RH"

    def __init__(self, source: Any, time_label: str = "travel-time"):
        self.source = source
        self.time_label = time_label

    def init(self, ctx) -> None:
        ctx.value = False

    def compute(self, ctx, messages: list[bool]) -> None:
        if ctx.vertex_id == self.source:
            ctx.value = True
        if any(messages):
            ctx.value = True
        if not ctx.value:
            return
        for edge, props in ctx.temporal_out_edges():
            travel_time = props.get(self.time_label, 1)
            ctx.send_temporal(edge.dst, ctx.time + travel_time, True)
        ctx.keep_alive()
        ctx.send_temporal(ctx.vertex_id, ctx.time + 1, True)
