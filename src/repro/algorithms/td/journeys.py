"""Journey reconstruction for temporal shortest paths.

``TemporalSSSP`` answers *how much* a time-respecting journey costs; a
transit user also wants the itinerary.  ``TemporalSSSPJourneys`` carries
``(cost, departure, parent)`` through the same Alg.-1 recursion, and
:func:`reconstruct_journey` walks the parent pointers backwards to yield
the legs — e.g. the paper's ``A --dep 5--> B --dep 8--> E`` at cost 5.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Optional

from repro.core.combiner import MessageCombiner
from repro.core.engine import IcmResult
from repro.core.interval import FOREVER, Interval
from repro.core.program import IntervalProgram
from repro.graph.model import TemporalGraph

#: ``(cost, departure_at_parent, parent)`` for "not reached".
UNREACHED = (FOREVER, -1, None)


def _best(a, b):
    """Total order: cost, then departure, then parent id (for ties)."""
    return min(a, b, key=lambda x: (x[0], x[1], repr(x[2])))


class TemporalSSSPJourneys(IntervalProgram):
    """Temporal SSSP whose states remember how each cost was achieved."""

    name = "SSSP-journeys"
    incremental_safe = True

    def __init__(self, source: Any, cost_label: str = "travel-cost",
                 time_label: str = "travel-time"):
        self.source = source
        self.cost_label = cost_label
        self.time_label = time_label
        self.combiner = MessageCombiner(_best, "journey-min", selective=True)

    def init(self, ctx) -> None:
        ctx.set_state(ctx.lifespan, UNREACHED)

    def compute(self, ctx, interval: Interval, state, messages) -> None:
        if ctx.superstep == 1:
            if ctx.vertex_id == self.source:
                ctx.set_state(interval, (0, -1, None))
            return
        best = state
        for message in messages:
            best = _best(best, tuple(message))
        if best != state:
            ctx.set_state(interval, best)

    def scatter(self, ctx, edge, interval: Interval, state):
        cost = state[0]
        if cost >= FOREVER:
            return None
        travel_time = edge.get(self.time_label, 1)
        travel_cost = edge.get(self.cost_label, 1)
        departure = interval.start
        return [(
            Interval(departure + travel_time, FOREVER),
            (cost + travel_cost, departure, ctx.vertex_id),
        )]


@dataclass(frozen=True)
class Leg:
    """One ride of a journey: depart ``src`` at ``departure``, arrive at
    ``dst`` at ``arrival``, paying ``cost``."""

    src: Any
    dst: Any
    departure: int
    arrival: int
    cost: int

    def __str__(self) -> str:
        return (f"{self.src} --dep {self.departure}, cost {self.cost}--> "
                f"{self.dst} (arr {self.arrival})")


def reconstruct_journey(
    result: IcmResult,
    graph: TemporalGraph,
    source: Any,
    target: Any,
    at: int,
    *,
    time_label: str = "travel-time",
) -> Optional[list[Leg]]:
    """The optimal journey from ``source`` arriving at ``target`` by ``at``.

    Returns ``None`` when the target is unreachable by that time; the
    empty journey when target is the source.  Walks parent pointers
    backwards, so it needs the :class:`TemporalSSSPJourneys` result.
    """
    legs: list[Leg] = []
    vertex = target
    t = at
    guard = graph.num_vertices * 4 + 8
    while vertex != source:
        if guard == 0:
            raise RuntimeError("journey reconstruction did not terminate")
        guard -= 1
        cost, departure, parent = result.states[vertex].value_at(t)
        if cost >= FOREVER or parent is None:
            return None
        # Find the edge used: parent → vertex, alive at the departure.
        arrival = None
        leg_cost = None
        for edge in graph.out_edges(parent):
            if edge.dst != vertex or not edge.lifespan.contains_point(departure):
                continue
            travel_time = edge.properties.value_at(time_label, departure) or 1
            candidate_arrival = departure + travel_time
            if candidate_arrival > t:
                continue
            parent_cost = result.states[parent].value_at(departure)[0]
            if parent_cost >= FOREVER:
                continue
            if cost - parent_cost == (
                edge.properties.value_at("travel-cost", departure) or 1
            ):
                arrival = candidate_arrival
                leg_cost = cost - parent_cost
                break
        if arrival is None:
            return None  # inconsistent state (should not happen)
        legs.append(Leg(parent, vertex, departure, arrival, leg_cost))
        vertex = parent
        t = departure
    legs.reverse()
    return legs


def journey_cost(legs: Optional[list[Leg]]) -> Optional[int]:
    """Total cost of a reconstructed journey."""
    if legs is None:
        return None
    return sum(leg.cost for leg in legs)
