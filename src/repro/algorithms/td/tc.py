"""Triangle counting (TD) — paper Sec. V, fixed 3 supersteps.

"In TC, each vertex messages its two-hop neighbors to see if they are
adjacent to the initial vertex."  We count *concurrent* directed triangles
``u→v→w→u``: each is valid over the interval where all three edges are
alive together, which warp's triple alignment produces for free.

Each directed 3-cycle is detected once per rotation (at the vertex closing
it), so the global per-time-point triangle count is the vertex-state sum
divided by three.
"""

from __future__ import annotations

from typing import Any

from repro.core.interval import FOREVER, Interval
from repro.core.program import IntervalProgram
from repro.core.state import PartitionedState
from repro.baselines.goffish import GoffishProgram
from repro.baselines.vcm import VertexProgram
from repro.graph.transform import CHAIN

SEED = ("seed",)


class TemporalTC(IntervalProgram):
    """Interval-centric concurrent triangle counting (3 supersteps)."""

    name = "TC"
    fixed_supersteps = 3

    def compute(self, ctx, interval: Interval, state, messages: list[Any]) -> None:
        step = ctx.superstep
        if step == 1:
            ctx.set_state(interval, SEED)
        elif step == 2:
            # Keep multiplicity: parallel edges close distinct triangles.
            origins = sorted(m[1] for m in messages if m[0] == "nbr")
            if origins:
                ctx.set_state(interval, ("wedge", tuple(origins)))
        else:  # step == 3: close wedges against our out-edges
            deltas: dict[int, int] = {}
            for m in messages:
                if m[0] != "fwd":
                    continue
                for origin in m[1]:
                    for edge in ctx.out_edges():
                        if edge.dst != origin:
                            continue
                        overlap = edge.lifespan.intersect(interval)
                        if overlap is not None:
                            deltas[overlap.start] = deltas.get(overlap.start, 0) + 1
                            deltas[overlap.end] = deltas.get(overlap.end, 0) - 1
            bounds = sorted({interval.start, interval.end, *deltas})
            running = 0
            for lo, hi in zip(bounds, bounds[1:]):
                running += deltas.get(lo, 0)
                if lo >= interval.start and hi <= interval.end:
                    ctx.set_state(Interval(lo, hi), ("tc", running))

    def scatter(self, ctx, edge, interval: Interval, state):
        if state == SEED:
            return [(interval, ("nbr", ctx.vertex_id))]
        if state and state[0] == "wedge":
            return [(interval, ("fwd", state[1]))]
        return None


def tc_count(state_value) -> int:
    """Project a per-interval TC state value to a triangle count."""
    if state_value and state_value[0] == "tc":
        return state_value[1]
    return 0


def global_triangles(states: dict[Any, PartitionedState], t: int) -> int:
    """Graph-wide triangle count at time-point ``t`` (rotations folded)."""
    total = 0
    for state in states.values():
        if state.lifespan.contains_point(t):
            total += tc_count(state.value_at(t))
    assert total % 3 == 0, "each directed 3-cycle must be seen exactly 3 times"
    return total // 3


class SnapshotTC(VertexProgram):
    """Per-snapshot TC for the TGB replica graph (CHAIN edges skipped)."""

    name = "TC"
    fixed_supersteps = 3

    def init(self, ctx) -> None:
        ctx.value = ("tc", 0)

    def _neighbors(self, ctx):
        return [e for e in ctx.out_edges() if not e.get(CHAIN)]

    def compute(self, ctx, messages: list[Any]) -> None:
        step = ctx.superstep
        if step == 1:
            for edge in self._neighbors(ctx):
                ctx.send(edge.dst, ("nbr", ctx.vertex_id))
        elif step == 2:
            origins = tuple(sorted((m[1] for m in messages if m[0] == "nbr"), key=repr))
            if origins:
                for edge in self._neighbors(ctx):
                    ctx.send(edge.dst, ("fwd", origins))
        else:
            adjacent = {e.dst for e in self._neighbors(ctx)}
            count = 0
            for m in messages:
                if m[0] != "fwd":
                    continue
                for origin in m[1]:
                    if origin in adjacent:
                        count += sum(1 for e in self._neighbors(ctx) if e.dst == origin)
            ctx.value = ("tc", count)


class GoffishTC(GoffishProgram):
    """GoFFish-TS TC: three inner supersteps in every snapshot."""

    name = "TC"
    inner_fixed_supersteps = 3

    def init(self, ctx) -> None:
        ctx.value = ("tc", 0)

    def compute(self, ctx, messages: list[Any]) -> None:
        step = ctx.superstep
        if step == 1:
            ctx.value = ("tc", 0)
            for edge in ctx.out_edges():
                ctx.send(edge.dst, ("nbr", ctx.vertex_id))
        elif step == 2:
            origins = tuple(sorted((m[1] for m in messages if m[0] == "nbr"), key=repr))
            if origins:
                for edge in ctx.out_edges():
                    ctx.send(edge.dst, ("fwd", origins))
        else:
            adjacent = {e.dst for e in ctx.out_edges()}
            count = 0
            for m in messages:
                if m[0] != "fwd":
                    continue
                for origin in m[1]:
                    if origin in adjacent:
                        count += sum(1 for e in ctx.out_edges() if e.dst == origin)
            ctx.value = ("tc", count)
