"""Fastest path duration (TD) — Wu et al. [6], paper Sec. V.

FAST minimises total journey duration (arrival − start), where the journey
may begin at *any* time the source is active.  Per the paper, "its message
will include the time at which the journey started at the source for each
path, and the state maintains the arrival time at a vertex interval".

Two facts make a compact interval-centric formulation possible:

* once two journeys co-exist at a vertex during an interval, only the one
  with the **latest start** matters for every downstream arrival (future
  departures are identical); and
* the **duration at the vertex itself** is fixed at arrival, so it is
  carried in the message as ``(start, arrival)``.

State is therefore the pair ``(latest_start, best_duration)`` per interval.
The source explodes each edge-piece departure window into per-time-point
journeys (one message per distinct start), which is inherent to FAST — the
transformed-graph baseline pays the same by having one replica per
departure point.

FAST is one of the two payload shapes for which we define no combiner
(start and duration are optimised in opposite directions, so a single
associative fold cannot preserve both).
"""

from __future__ import annotations

from typing import Any, Optional

from repro.core.combiner import max_combiner
from repro.core.interval import FOREVER, Interval
from repro.core.program import IntervalProgram
from repro.core.state import PartitionedState
from repro.baselines.goffish import GoffishProgram
from repro.baselines.tgb import ChainForwardingProgram

#: ``(latest_start, best_duration)`` for "no journey yet".
NO_JOURNEY = (-1, FOREVER)

#: Marker state for the source vertex, which originates journeys.
SOURCE = "__source__"


class TemporalFAST(IntervalProgram):
    """Interval-centric fastest path durations from ``source``.

    ``horizon`` bounds the departure enumeration at the source when edge
    pieces are unbounded (open-ended departure windows).
    """

    name = "FAST"
    incremental_safe = True

    def __init__(self, source: Any, time_label: str = "travel-time",
                 horizon: Optional[int] = None):
        self.source = source
        self.time_label = time_label
        self.horizon = horizon

    def init(self, ctx) -> None:
        ctx.set_state(ctx.lifespan, NO_JOURNEY)

    def compute(self, ctx, interval: Interval, state, messages: list[tuple[int, int]]) -> None:
        if ctx.superstep == 1:
            if ctx.vertex_id == self.source:
                ctx.set_state(interval, SOURCE)
            return
        if state == SOURCE:
            return
        latest_start, best_duration = state
        new_start = max((s for s, _ in messages), default=-1)
        new_duration = min((a - s for s, a in messages), default=FOREVER)
        if new_start > latest_start or new_duration < best_duration:
            ctx.set_state(
                interval, (max(latest_start, new_start), min(best_duration, new_duration))
            )

    def scatter(self, ctx, edge, interval: Interval, state):
        travel_time = edge.get(self.time_label, 1)
        if state == SOURCE:
            # One journey per distinct departure time-point in the window.
            window = interval
            if window.is_unbounded:
                if self.horizon is None:
                    raise ValueError("FAST needs a horizon for unbounded departure windows")
                clipped = window.intersect(Interval(0, self.horizon))
                if clipped is None:
                    return None
                window = clipped
            return [
                (Interval(t + travel_time, FOREVER), (t, t + travel_time))
                for t in window.points()
            ]
        latest_start, _ = state
        if latest_start < 0:
            return None
        arrival = interval.start + travel_time
        return [(Interval(arrival, FOREVER), (latest_start, arrival))]


def fastest_duration(state: PartitionedState) -> Optional[int]:
    """Project a final FAST state to the overall minimum duration."""
    best = FOREVER
    for _, value in state:
        if value == SOURCE:
            return 0
        if value != NO_JOURNEY:
            best = min(best, value[1])
    return None if best >= FOREVER else best


class TgbFAST(ChainForwardingProgram):
    """FAST on the transformed graph.

    Replica value = latest journey start reaching the replica; the duration
    at replica ``(v, t)`` is then ``t - value``.  Source replicas seed their
    own time as the start.
    """

    name = "FAST"

    def __init__(self, source: Any):
        self.source = source
        self.combiner = max_combiner()

    def init(self, ctx) -> None:
        ctx.value = -1

    def absorb(self, ctx, messages: list[int]) -> bool:
        if ctx.superstep == 1:
            if ctx.vertex_id[0] == self.source:
                ctx.value = ctx.vertex_id[1]
                return True
            return False
        best = max(messages, default=-1)
        if best > ctx.value:
            ctx.value = best
            return True
        return False

    def emit(self, ctx, edge) -> Any:
        return ctx.value


def tgb_fastest_duration(result, vid: Any) -> Optional[int]:
    """Minimum duration over a vertex's replicas in a TGB FAST result."""
    best = None
    for t, start in result.replicas_of(vid):
        if start is not None and start >= 0:
            duration = t - start
            if best is None or duration < best:
                best = duration
    return best


class GoffishFAST(GoffishProgram):
    """GoFFish-TS fastest path: state = (latest_start, best_duration)."""

    name = "FAST"

    def __init__(self, source: Any, time_label: str = "travel-time"):
        self.source = source
        self.time_label = time_label

    def init(self, ctx) -> None:
        ctx.value = NO_JOURNEY

    def compute(self, ctx, messages: list[tuple[int, int]]) -> None:
        latest_start, best_duration = ctx.value
        for s, a in messages:
            if s > latest_start:
                latest_start = s
            if a - s < best_duration:
                best_duration = a - s
        is_source = ctx.vertex_id == self.source
        if is_source:
            best_duration = 0
        ctx.value = (latest_start, best_duration)
        if not is_source and latest_start < 0:
            return
        for edge, props in ctx.temporal_out_edges():
            travel_time = props.get(self.time_label, 1)
            # The source originates a fresh journey at this departure
            # point; other vertices continue their latest-started journey.
            start = ctx.time if is_source else latest_start
            ctx.send_temporal(
                edge.dst, ctx.time + travel_time, (start, ctx.time + travel_time)
            )
        ctx.keep_alive()
