"""Temporal single-source shortest path (paper Alg. 1, Wu et al. [6]).

Finds time-respecting paths with the least travel cost from a source vertex
to every other vertex, *per interval of arrival*: multiple solutions may
exist for one destination, each minimal for its own arrival interval.

The ICM formulation is near-identical to non-temporal Pregel SSSP — warp
guarantees that every message cost in ``compute`` applies to the whole
active sub-interval, so the user logic is a plain ``min``.
"""

from __future__ import annotations

from typing import Any

from repro.core.combiner import min_combiner
from repro.core.interval import FOREVER, Interval
from repro.core.program import IntervalProgram
from repro.baselines.goffish import GoffishProgram
from repro.baselines.tgb import ChainForwardingProgram

#: Cost sentinel for "not (yet) reachable".
INFINITY = FOREVER


class TemporalSSSP(IntervalProgram):
    """Interval-centric temporal SSSP (Alg. 1 verbatim).

    Parameters
    ----------
    source:
        Source vertex id; the journey starts at the beginning of the
        source's lifespan.
    cost_label / time_label:
        Edge property labels for the travel cost and travel time; missing
        labels default to cost 1 and travel time 1.
    """

    name = "SSSP"
    incremental_safe = True

    def __init__(self, source: Any, cost_label: str = "travel-cost", time_label: str = "travel-time"):
        self.source = source
        self.cost_label = cost_label
        self.time_label = time_label
        self.combiner = min_combiner()

    def init(self, ctx) -> None:
        ctx.set_state(ctx.lifespan, INFINITY)

    def compute(self, ctx, interval: Interval, state: int, messages: list[int]) -> None:
        if ctx.superstep == 1:
            if ctx.vertex_id == self.source:
                ctx.set_state(interval, 0)
            return
        best = min(messages, default=INFINITY)
        if best < state:
            ctx.set_state(interval, best)

    def scatter(self, ctx, edge, interval: Interval, state: int):
        if state >= INFINITY:
            return None
        travel_time = edge.get(self.time_label, 1)
        travel_cost = edge.get(self.cost_label, 1)
        # The journey departs no earlier than the start of the overlap of
        # the updated state and the edge piece, arriving travel_time later;
        # the cost is valid from that arrival time onwards.
        return [(Interval(interval.start + travel_time, FOREVER), state + travel_cost)]


class TgbSSSP(ChainForwardingProgram):
    """Vertex-centric SSSP on the time-expanded transformed graph.

    Replica values are min travel costs; chain edges forward the value to
    later replicas of the same vertex (waiting costs nothing), application
    edges add the travel cost.  ``TgbResult.pointwise`` then matches the ICM
    state at every time-point.
    """

    name = "SSSP"

    def __init__(self, source: Any):
        self.source = source
        self.combiner = min_combiner()

    def init(self, ctx) -> None:
        ctx.value = INFINITY

    def absorb(self, ctx, messages: list[int]) -> bool:
        if ctx.superstep == 1:
            if ctx.vertex_id[0] == self.source:
                ctx.value = 0
                return True
            return False
        best = min(messages, default=INFINITY)
        if best < ctx.value:
            ctx.value = best
            return True
        return False

    def emit(self, ctx, edge) -> Any:
        return ctx.value + edge.get("cost", 1)


class GoffishSSSP(GoffishProgram):
    """GoFFish-TS temporal SSSP: per-snapshot compute, temporal messages.

    Vertex state persists across snapshots on disk (``keep_alive``), and —
    since the model shares neither compute nor messages across snapshots —
    a reached vertex re-sends its cost along every alive out-edge at every
    snapshot.  That per-time-point messaging is exactly the overhead the
    paper's evaluation charges to this platform.
    """

    name = "SSSP"

    def __init__(self, source: Any, cost_label: str = "travel-cost", time_label: str = "travel-time"):
        self.source = source
        self.cost_label = cost_label
        self.time_label = time_label

    def init(self, ctx) -> None:
        ctx.value = INFINITY

    def compute(self, ctx, messages: list[int]) -> None:
        if ctx.vertex_id == self.source and ctx.value > 0:
            ctx.value = 0
        best = min(messages, default=INFINITY)
        if best < ctx.value:
            ctx.value = best
        if ctx.value >= INFINITY:
            return
        for edge, props in ctx.temporal_out_edges():
            travel_time = props.get(self.time_label, 1)
            travel_cost = props.get(self.cost_label, 1)
            ctx.send_temporal(edge.dst, ctx.time + travel_time, ctx.value + travel_cost)
        ctx.keep_alive()
