"""Earliest arrival time (TD) — Wu et al. [6], paper Sec. V.

Derived from temporal SSSP by "just replacing the travel cost in the
message with the vertex departure time instead": the state tracks the
earliest time-respecting arrival at a vertex, and the algorithm cares only
about the first arrival, not subsequent arrival intervals.
"""

from __future__ import annotations

from typing import Any, Optional

from repro.core.combiner import min_combiner
from repro.core.interval import FOREVER, Interval
from repro.core.program import IntervalProgram
from repro.core.state import PartitionedState
from repro.baselines.goffish import GoffishProgram
from repro.baselines.tgb import ChainForwardingProgram

#: Arrival sentinel for "not reachable".
NEVER = FOREVER


class TemporalEAT(IntervalProgram):
    """Interval-centric earliest arrival time from ``source``."""

    name = "EAT"
    incremental_safe = True

    def __init__(self, source: Any, time_label: str = "travel-time"):
        self.source = source
        self.time_label = time_label
        self.combiner = min_combiner()

    def init(self, ctx) -> None:
        ctx.set_state(ctx.lifespan, NEVER)

    def compute(self, ctx, interval: Interval, state: int, messages: list[int]) -> None:
        if ctx.superstep == 1:
            if ctx.vertex_id == self.source:
                ctx.set_state(interval, ctx.lifespan.start)
            return
        best = min(messages, default=NEVER)
        if best < state:
            ctx.set_state(interval, best)

    def scatter(self, ctx, edge, interval: Interval, state: int):
        if state >= NEVER:
            return None
        travel_time = edge.get(self.time_label, 1)
        arrival = interval.start + travel_time
        return [(Interval(arrival, FOREVER), arrival)]


def earliest_arrival(state: PartitionedState) -> Optional[int]:
    """Project a final EAT state to the single earliest arrival time."""
    best = min(value for _, value in state)
    return None if best >= NEVER else best


class TgbEAT(ChainForwardingProgram):
    """EAT on the transformed graph: replica value = min arrival time."""

    name = "EAT"

    def __init__(self, source: Any):
        self.source = source
        self.combiner = min_combiner()

    def init(self, ctx) -> None:
        ctx.value = NEVER

    def absorb(self, ctx, messages: list[int]) -> bool:
        if ctx.superstep == 1:
            if ctx.vertex_id[0] == self.source:
                ctx.value = ctx.vertex_id[1]
                return True
            return False
        best = min(messages, default=NEVER)
        if best < ctx.value:
            ctx.value = best
            return True
        return False

    def emit(self, ctx, edge) -> Any:
        # The application edge targets replica (v, t_arr): arriving *is*
        # the payload.
        return edge.dst[1]


class GoffishEAT(GoffishProgram):
    """GoFFish-TS earliest arrival: temporal messages carry arrivals."""

    name = "EAT"

    def __init__(self, source: Any, time_label: str = "travel-time"):
        self.source = source
        self.time_label = time_label

    def init(self, ctx) -> None:
        ctx.value = NEVER

    def compute(self, ctx, messages: list[int]) -> None:
        if ctx.vertex_id == self.source and ctx.value >= NEVER:
            ctx.value = ctx.time
        best = min(messages, default=NEVER)
        if best < ctx.value:
            ctx.value = best
        if ctx.value >= NEVER or ctx.time < ctx.value:
            return
        for edge, props in ctx.temporal_out_edges():
            travel_time = props.get(self.time_label, 1)
            ctx.send_temporal(edge.dst, ctx.time + travel_time, ctx.time + travel_time)
        ctx.keep_alive()
        ctx.send_temporal(ctx.vertex_id, ctx.time + 1, ctx.value)
