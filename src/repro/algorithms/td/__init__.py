"""Time-dependent algorithms: SSSP, EAT, FAST, LD, TMST, RH, LCC, TC."""

from .closeness import most_central, temporal_closeness
from .eat import GoffishEAT, TemporalEAT, TgbEAT, earliest_arrival
from .fast import (
    GoffishFAST,
    TemporalFAST,
    TgbFAST,
    fastest_duration,
    tgb_fastest_duration,
)
from .journeys import (
    Leg,
    TemporalSSSPJourneys,
    journey_cost,
    reconstruct_journey,
)
from .kcore import TemporalKCore, in_core, run_temporal_kcore
from .lcc import GoffishLCC, SnapshotLCC, TemporalLCC, lcc_value
from .ld import GoffishLD, TemporalLD, TgbLD, latest_departure, tgb_latest_departure
from .reach import (
    GoffishReachability,
    TemporalReachability,
    TgbReachability,
    is_reachable,
)
from .sssp import INFINITY, GoffishSSSP, TemporalSSSP, TgbSSSP
from .tc import GoffishTC, SnapshotTC, TemporalTC, global_triangles, tc_count
from .tmst import GoffishTMST, TemporalTMST, TgbTMST, tmst_parent, tmst_tree

__all__ = [
    "TemporalSSSP",
    "TgbSSSP",
    "GoffishSSSP",
    "INFINITY",
    "TemporalEAT",
    "TgbEAT",
    "GoffishEAT",
    "earliest_arrival",
    "TemporalFAST",
    "TgbFAST",
    "GoffishFAST",
    "fastest_duration",
    "tgb_fastest_duration",
    "TemporalLD",
    "TgbLD",
    "GoffishLD",
    "latest_departure",
    "tgb_latest_departure",
    "TemporalTMST",
    "TgbTMST",
    "GoffishTMST",
    "tmst_parent",
    "tmst_tree",
    "TemporalReachability",
    "TgbReachability",
    "GoffishReachability",
    "is_reachable",
    "TemporalLCC",
    "SnapshotLCC",
    "GoffishLCC",
    "lcc_value",
    "TemporalTC",
    "SnapshotTC",
    "GoffishTC",
    "tc_count",
    "global_triangles",
    "temporal_closeness",
    "most_central",
    "TemporalSSSPJourneys",
    "reconstruct_journey",
    "journey_cost",
    "Leg",
    "TemporalKCore",
    "run_temporal_kcore",
    "in_core",
]
