"""Latest departure time (TD) — Wu et al. [6], paper Sec. V.

"LD lets one depart late and reach within a bound.  Unlike SSSP, it
reverse-traverses from sink to source, in space and time" — the ICM program
therefore runs on the *reversed* graph, and its messages extend backwards,
``[0, t_max + 1)``: being at the upstream vertex at or before ``t_max``
suffices to catch the departure.  Warp ensures the temporal bounds are not
violated.

``LD(v)`` is the latest time one can depart vertex ``v`` and still reach
the target by the deadline.
"""

from __future__ import annotations

from typing import Any, Optional

from repro.core.combiner import max_combiner
from repro.core.interval import Interval
from repro.core.program import IntervalProgram
from repro.core.state import PartitionedState
from repro.baselines.goffish import GoffishProgram
from repro.baselines.tgb import ChainForwardingProgram
from repro.graph.model import TemporalGraph

#: Departure sentinel for "cannot reach the target in time".
IMPOSSIBLE = -1


class TemporalLD(IntervalProgram):
    """Interval-centric latest departure towards ``target`` by ``deadline``.

    Run this program on ``graph.reversed()`` — each reversed edge piece
    still describes the *original* departure window and travel time.
    """

    name = "LD"
    incremental_safe = True

    def __init__(self, target: Any, deadline: int, time_label: str = "travel-time"):
        self.target = target
        self.deadline = deadline
        self.time_label = time_label
        self.combiner = max_combiner()

    def init(self, ctx) -> None:
        ctx.set_state(ctx.lifespan, IMPOSSIBLE)

    def compute(self, ctx, interval: Interval, state: int, messages: list[int]) -> None:
        if ctx.superstep == 1:
            if ctx.vertex_id == self.target:
                horizon = min(self.deadline + 1, ctx.lifespan.end)
                if ctx.lifespan.start < horizon:
                    ctx.set_state(Interval(ctx.lifespan.start, horizon), self.deadline)
            return
        best = max(messages, default=IMPOSSIBLE)
        if best > state:
            ctx.set_state(interval, best)

    def scatter(self, ctx, edge, interval: Interval, state: int):
        if state <= IMPOSSIBLE:
            return None
        travel_time = edge.get(self.time_label, 1)
        # Original departures in this piece land at t + travel_time, which
        # must be no later than the downstream latest departure.
        t_max = min(interval.end - 1, state - travel_time)
        if t_max < interval.start:
            return None
        return [(Interval(0, t_max + 1), t_max)]


def latest_departure(state: PartitionedState) -> Optional[int]:
    """Project a final LD state to the overall latest departure."""
    best = max(value for _, value in state)
    return None if best <= IMPOSSIBLE else best


class TgbLD(ChainForwardingProgram):
    """LD on the *reversed* transformed graph.

    Replica values are booleans: "departing here reaches the target by the
    deadline".  Reversed application edges walk from arrival replicas back
    to departure replicas; reversed chain edges let earlier replicas
    inherit feasibility (waiting).  ``LD(v)`` = max feasible replica time.
    """

    name = "LD"

    def __init__(self, target: Any, deadline: int):
        self.target = target
        self.deadline = deadline

    def init(self, ctx) -> None:
        ctx.value = False

    def absorb(self, ctx, messages: list[bool]) -> bool:
        if ctx.superstep == 1:
            vid, t = ctx.vertex_id
            if vid == self.target and t <= self.deadline:
                ctx.value = True
                return True
            return False
        if not ctx.value and any(messages):
            ctx.value = True
            return True
        return False

    def emit(self, ctx, edge) -> Any:
        return True


def tgb_latest_departure(result, vid: Any, deadline: int) -> Optional[int]:
    """Max feasible departure time over a vertex's replicas (≤ deadline)."""
    best = None
    for t, feasible in result.replicas_of(vid):
        if feasible and t <= deadline and (best is None or t > best):
            best = t
    return best


class GoffishLD(GoffishProgram):
    """GoFFish-TS latest departure: backward snapshot iteration.

    Run with ``GoffishEngine(graph.reversed(), ..., direction=-1)``.  The
    value is the latest feasible departure; temporal messages target
    *earlier* snapshots.

    Holds per-run broadcast bookkeeping — use a fresh instance per engine
    run (as :func:`repro.algorithms.run_algorithm` does).
    """

    name = "LD"

    def __init__(self, target: Any, deadline: int, time_label: str = "travel-time"):
        self.target = target
        self.deadline = deadline
        self.time_label = time_label
        self._broadcast: dict[Any, tuple[int, int]] = {}

    def init(self, ctx) -> None:
        ctx.value = IMPOSSIBLE

    def compute(self, ctx, messages: list[int]) -> None:
        if ctx.vertex_id == self.target:
            # Being at the target before the deadline always suffices.
            ctx.value = max(ctx.value, self.deadline)
        best = max(messages, default=IMPOSSIBLE)
        if best > ctx.value:
            ctx.value = best
        if ctx.value <= IMPOSSIBLE:
            return
        t = ctx.time
        ctx.keep_alive()  # state persists backwards in iteration order
        # Broadcast only on the first visit at this snapshot or when the
        # value improved, otherwise inner messages would ping-pong forever.
        if self._broadcast.get(ctx.vertex_id) == (t, ctx.value):
            return
        self._broadcast[ctx.vertex_id] = (t, ctx.value)
        for edge, props in ctx.temporal_out_edges():
            # Reversed edge: the original departs upstream at t, arriving
            # t + travel_time, which must not exceed our latest departure.
            travel_time = props.get(self.time_label, 1)
            if t + travel_time <= ctx.value:
                ctx.send(edge.dst, t)  # same-snapshot (inner) message
