"""Local clustering coefficient (TD) — paper Sec. V, fixed 4 supersteps.

"Each interval vertex quantifies how close its neighbors are to forming a
clique.  Each vertex messages its neighbors, which then message their
neighbors to check the ones adjacent to the initial vertex.  This
edge-count is sent back to the initial vertex to compute its LCC."

Neighbourhoods are *time-respecting*: an edge ``w→x`` counts towards
``LCC(v)`` only over the interval where ``v→w``, ``v→x`` and ``w→x`` are
all concurrently alive — warp's alignment of the forwarded neighbour lists
with the stored neighbour sets yields exactly that triple overlap.

Directed convention: ``N(v)`` is the out-neighbour set, and the coefficient
is ``#directed edges within N(v) / (d (d - 1))`` per interval.

LCC message groups mix tags and sets, so no combiner is defined (one of the
two non-commutative algorithms the paper calls out).
"""

from __future__ import annotations

from typing import Any

from repro.core.interval import Interval
from repro.core.program import IntervalProgram
from repro.baselines.goffish import GoffishProgram
from repro.baselines.vcm import VertexProgram
from repro.graph.transform import CHAIN

SEED = ("seed",)


class TemporalLCC(IntervalProgram):
    """Interval-centric local clustering coefficient (4 supersteps)."""

    name = "LCC"
    fixed_supersteps = 4

    def compute(self, ctx, interval: Interval, state, messages: list[Any]) -> None:
        step = ctx.superstep
        if step == 1:
            ctx.set_state(interval, SEED)
        elif step == 2:
            origins = sorted({m[1] for m in messages if m[0] == "nbr"})
            if origins:
                ctx.set_state(interval, ("origins", tuple(origins)))
        elif step == 3:
            my_origins = set(state[1]) if state and state[0] == "origins" else set()
            if not my_origins:
                return
            for m in messages:
                if m[0] != "fwd":
                    continue
                for origin in m[1]:
                    if origin in my_origins:
                        # The edge this "fwd" travelled is an edge between
                        # two of origin's neighbours; report it back.
                        ctx.send(origin, interval, ("cnt", 1))
        else:  # step == 4: fold the reports into the coefficient
            count = sum(1 for m in messages if m[0] == "cnt")
            for segment, degree in ctx.out_degree_segments(interval):
                possible = degree * (degree - 1)
                value = count / possible if possible > 0 else 0.0
                ctx.set_state(segment, ("lcc", value))

    def scatter(self, ctx, edge, interval: Interval, state):
        if state == SEED:
            return [(interval, ("nbr", ctx.vertex_id))]
        if state and state[0] == "origins":
            return [(interval, ("fwd", state[1]))]
        return None


def lcc_value(state_value) -> float:
    """Project a final per-interval LCC state value to a float."""
    if state_value and state_value[0] == "lcc":
        return state_value[1]
    return 0.0


class SnapshotLCC(VertexProgram):
    """Per-snapshot LCC for the TGB replica graph (CHAIN edges skipped)."""

    name = "LCC"
    fixed_supersteps = 4

    def init(self, ctx) -> None:
        ctx.value = None

    def _neighbors(self, ctx):
        return [e for e in ctx.out_edges() if not e.get(CHAIN)]

    def compute(self, ctx, messages: list[Any]) -> None:
        step = ctx.superstep
        if step == 1:
            for edge in self._neighbors(ctx):
                ctx.send(edge.dst, ("nbr", ctx.vertex_id))
        elif step == 2:
            origins = tuple(sorted({m[1] for m in messages if m[0] == "nbr"}, key=repr))
            ctx.value = ("origins", origins)
            if origins:
                for edge in self._neighbors(ctx):
                    ctx.send(edge.dst, ("fwd", origins))
        elif step == 3:
            my_origins = set(ctx.value[1]) if ctx.value and ctx.value[0] == "origins" else set()
            if not my_origins:
                return
            for m in messages:
                if m[0] != "fwd":
                    continue
                for origin in m[1]:
                    if origin in my_origins:
                        ctx.send(origin, ("cnt", 1))
        else:
            count = sum(1 for m in messages if m[0] == "cnt")
            degree = len(self._neighbors(ctx))
            possible = degree * (degree - 1)
            ctx.value = ("lcc", count / possible if possible > 0 else 0.0)


class GoffishLCC(GoffishProgram):
    """GoFFish-TS LCC: four inner supersteps in every snapshot."""

    name = "LCC"
    inner_fixed_supersteps = 4

    def init(self, ctx) -> None:
        ctx.value = None

    def compute(self, ctx, messages: list[Any]) -> None:
        step = ctx.superstep
        if step == 1:
            ctx.value = None
            for edge in ctx.out_edges():
                ctx.send(edge.dst, ("nbr", ctx.vertex_id))
        elif step == 2:
            origins = tuple(sorted({m[1] for m in messages if m[0] == "nbr"}, key=repr))
            ctx.value = ("origins", origins)
            if origins:
                for edge in ctx.out_edges():
                    ctx.send(edge.dst, ("fwd", origins))
        elif step == 3:
            my_origins = set(ctx.value[1]) if ctx.value and ctx.value[0] == "origins" else set()
            if not my_origins:
                return
            for m in messages:
                if m[0] != "fwd":
                    continue
                for origin in m[1]:
                    if origin in my_origins:
                        ctx.send(origin, ("cnt", 1))
        else:
            count = sum(1 for m in messages if m[0] == "cnt")
            degree = ctx.out_degree()
            possible = degree * (degree - 1)
            ctx.value = ("lcc", count / possible if possible > 0 else 0.0)
