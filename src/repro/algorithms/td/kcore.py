"""Temporal k-core decomposition (extension algorithm).

The k-core of a graph is the maximal subgraph in which every vertex has
degree ≥ k; on a temporal graph, membership varies per time-point as edges
appear and disappear.  The interval-centric formulation peels per
*interval*: a vertex that drops below ``k`` over some sub-interval dies
there and notifies its neighbours over exactly the overlap of that
sub-interval with each incident edge — warp alignment then decrements the
neighbours' per-interval degrees, cascading until stable.

Run on an *undirected view* (``make_undirected``); degree is the out-degree
of that view (multi-edges count, as everywhere else in the library).
"""

from __future__ import annotations

from typing import Any, Optional

from repro import api
from repro.core.combiner import sum_combiner
from repro.core.config import EngineConfig
from repro.core.engine import IcmResult
from repro.core.interval import Interval
from repro.core.program import IntervalProgram
from repro.graph.model import TemporalGraph
from repro.graph.snapshots import StaticGraph
from repro.runtime.cluster import SimulatedCluster

#: Marker for intervals where the vertex has left the core.
DEAD = "__dead__"


class TemporalKCore(IntervalProgram):
    """Interval-centric k-core peeling; state = live degree or ``DEAD``."""

    name = "KCORE"

    def __init__(self, k: int):
        if k < 1:
            raise ValueError("k must be >= 1")
        self.k = k
        self.combiner = sum_combiner()

    def compute(self, ctx, interval: Interval, state, messages: list[int]) -> None:
        if ctx.superstep == 1:
            for segment, degree in ctx.out_degree_segments(interval):
                ctx.set_state(segment, DEAD if degree < self.k else degree)
            return
        if state == DEAD:
            return
        drops = sum(messages)
        remaining = state - drops
        ctx.set_state(interval, DEAD if remaining < self.k else remaining)

    def scatter(self, ctx, edge, interval: Interval, state):
        # Only deaths propagate; surviving-degree updates are local.
        if state == DEAD:
            return [(interval, 1)]
        return None


def in_core(state_value) -> bool:
    """Whether a per-interval state value denotes core membership."""
    return state_value != DEAD and state_value is not None


def run_temporal_kcore(
    graph: TemporalGraph,
    k: int,
    *,
    cluster: Optional[SimulatedCluster] = None,
    graph_name: str = "",
    config: Optional[EngineConfig] = None,
    observe: Any = None,
) -> IcmResult:
    """Convenience driver: mirrors edges, runs the peeling, returns states.

    ``result.value_at(vid, t)`` is the vertex's remaining degree at ``t``
    (≥ k) or :data:`DEAD`.
    """
    from repro.algorithms.ti.wcc import make_undirected

    undirected = make_undirected(graph)
    return api.run(
        undirected, TemporalKCore(k),
        cluster=cluster or SimulatedCluster(), graph_name=graph_name,
        config=config, observe=observe,
    )


def snapshot_kcore(snapshot: StaticGraph, k: int) -> set[Any]:
    """Reference: iterative peeling of one (already-undirected) snapshot."""
    degree = {vid: len(snapshot.out_edges(vid)) for vid in snapshot.vertex_ids()}
    alive = {vid for vid, d in degree.items() if d >= k}
    changed = True
    while changed:
        changed = False
        for vid in list(alive):
            live_degree = sum(
                1 for e in snapshot.out_edges(vid) if e.dst in alive
            )
            if live_degree < k:
                alive.discard(vid)
                changed = True
    return alive
