"""Weakly connected components (TI) — per-snapshot min-label propagation.

WCC treats edges as undirected; since ICM (like Pregel) scatters along
directed out-edges only, the algorithm runs over an *undirected view* of
the graph that mirrors every edge.  Component labels are the minimum vertex
id in the component, per time-point.
"""

from __future__ import annotations

from typing import Any

from repro.core.combiner import min_combiner
from repro.core.interval import Interval
from repro.core.program import IntervalProgram
from repro.baselines.vcm import VcmContext, VertexProgram
from repro.graph.model import TemporalEdge, TemporalGraph, TemporalVertex


def make_undirected(graph: TemporalGraph) -> TemporalGraph:
    """Mirror every edge so min-label floods both directions.

    Reverse edges reuse the original's lifespan and share its property set;
    their ids get a ``~rev`` suffix to keep constraint 1.
    """
    out = TemporalGraph()
    for v in graph.vertices():
        nv = TemporalVertex(v.vid, v.lifespan)
        nv.properties = v.properties
        out._add_vertex(nv)
    for e in graph.edges():
        fwd = TemporalEdge(e.eid, e.src, e.dst, e.lifespan)
        fwd.properties = e.properties
        out._add_edge(fwd)
        rev = TemporalEdge(f"{e.eid}~rev", e.dst, e.src, e.lifespan)
        rev.properties = e.properties
        out._add_edge(rev)
    return out


class TemporalWCC(IntervalProgram):
    """Interval-centric WCC; run it on ``make_undirected(graph)``."""

    name = "WCC"
    incremental_safe = True

    def __init__(self) -> None:
        self.combiner = min_combiner()

    def init(self, ctx) -> None:
        ctx.set_state(ctx.lifespan, ctx.vertex_id)

    def compute(self, ctx, interval: Interval, state: Any, messages: list[Any]) -> None:
        if ctx.superstep == 1:
            # Re-assert the label so every vertex scatters in superstep 1.
            ctx.set_state(interval, ctx.vertex_id)
            return
        best = min(messages)
        if best < state:
            ctx.set_state(interval, best)

    # Default scatter forwards the updated label over the overlap interval.


class SnapshotWCC(VertexProgram):
    """Per-snapshot vertex-centric WCC; run on undirected snapshots."""

    name = "WCC"

    def __init__(self) -> None:
        self.combiner = min_combiner()

    def init(self, ctx: VcmContext) -> None:
        ctx.value = ctx.vertex_id

    def compute(self, ctx: VcmContext, messages: list[Any]) -> None:
        if ctx.superstep == 1:
            ctx.send_to_neighbors(ctx.value)
            return
        best = min(messages)
        if best < ctx.value:
            ctx.value = best
            ctx.send_to_neighbors(best)
