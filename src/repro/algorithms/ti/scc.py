"""Strongly connected components (TI) — per-snapshot, via min-label peeling.

The distributed SCC algorithm (after Yan et al., "Pregel algorithms for
graph connectivity problems") peels components in rounds:

1. **Forward pass** — every unassigned vertex floods the minimum vertex id
   that can reach it along out-edges (``fwd``);
2. **Backward pass** — likewise along in-edges (``bwd``);
3. **Assignment** — vertices with ``fwd == bwd == c`` form the SCC of ``c``
   (``c`` reaches them and they reach ``c``); they are removed, and the next
   round runs on the remainder.

Every round assigns at least the SCC of the minimum unassigned vertex in
each weakly connected region, so the loop terminates.

Temporally, all of the above holds *per time-point*: the ICM passes run
once over the interval graph, and the blocked/unassigned status lives in a
partitioned state, so one round of passes advances every snapshot at once.
The per-snapshot baselines run the same peeling independently per snapshot.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Optional

from repro import api
from repro.core.combiner import min_combiner
from repro.core.config import EngineConfig
from repro.core.interval import Interval
from repro.core.program import IntervalProgram
from repro.core.state import PartitionedState
from repro.baselines.vcm import VcmContext, VertexCentricEngine, VertexProgram
from repro.graph.model import TemporalGraph
from repro.graph.snapshots import StaticGraph, snapshot_at
from repro.runtime.cluster import SimulatedCluster
from repro.runtime.metrics import RunMetrics

#: Marker for intervals already assigned to a component (they neither
#: propagate nor absorb labels in later passes).
BLOCKED = "__blocked__"


class MinLabelPass(IntervalProgram):
    """One ICM flooding pass of minimum labels over unassigned intervals.

    ``assigned`` maps vid → PartitionedState whose values are either a
    component id or ``None`` (unassigned); assigned sub-intervals act as
    removed vertices.
    """

    name = "SCC-pass"

    def __init__(self, assigned: dict[Any, PartitionedState]):
        self.assigned = assigned
        self.combiner = min_combiner()

    def init(self, ctx) -> None:
        for interval, comp in self.assigned[ctx.vertex_id]:
            ctx.set_state(interval, BLOCKED if comp is not None else ctx.vertex_id)

    def compute(self, ctx, interval: Interval, state: Any, messages: list[Any]) -> None:
        if state == BLOCKED:
            return
        if ctx.superstep == 1:
            ctx.set_state(interval, state)  # trigger the initial flood
            return
        best = min(messages)
        if best < state:
            ctx.set_state(interval, best)

    def scatter(self, ctx, edge, interval: Interval, state: Any):
        if state == BLOCKED:
            return None
        return [(interval, state)]


@dataclass
class SccResult:
    """Per-vertex partitioned component ids (``None`` = degenerate/absent)."""

    components: dict[Any, PartitionedState]
    metrics: RunMetrics
    rounds: int = 0

    def component_at(self, vid: Any, t: int) -> Any:
        return self.components[vid].value_at(t)


def run_icm_scc(
    graph: TemporalGraph,
    *,
    cluster: Optional[SimulatedCluster] = None,
    graph_name: str = "",
    max_rounds: int = 10_000,
    icm_options: Optional[dict] = None,
    config: Optional[EngineConfig] = None,
    observe: Any = None,
) -> SccResult:
    """Peeling driver running paired forward/backward ICM passes.

    ``observe`` is shared by every pass: a trace path collects one
    ``run_start``-delimited segment per engine run, which ``repro
    report`` aggregates back into a single SCC row.
    """
    cluster = cluster or SimulatedCluster()
    icm_options = icm_options or {}
    reversed_graph = graph.reversed()
    assigned = {
        v.vid: PartitionedState(v.lifespan, None) for v in graph.vertices()
    }
    total = RunMetrics(platform="GRAPHITE", algorithm="SCC", graph=graph_name)
    rounds = 0
    while _has_unassigned(assigned) and rounds < max_rounds:
        rounds += 1
        fwd = api.run(
            graph, MinLabelPass(assigned), cluster=cluster,
            graph_name=graph_name, config=config, options=icm_options,
            observe=observe,
        )
        bwd = api.run(
            reversed_graph, MinLabelPass(assigned), cluster=cluster,
            graph_name=graph_name, config=config, options=icm_options,
            observe=observe,
        )
        total.merge(fwd.metrics)
        total.merge(bwd.metrics)
        progressed = _assign_matching(assigned, fwd.states, bwd.states)
        if not progressed:
            raise RuntimeError("SCC peeling made no progress (invariant violated)")
    total.platform, total.algorithm, total.graph = "GRAPHITE", "SCC", graph_name
    return SccResult(components=assigned, metrics=total, rounds=rounds)


def _has_unassigned(assigned: dict[Any, PartitionedState]) -> bool:
    for state in assigned.values():
        for _, comp in state:
            if comp is None:
                return True
    return False


def _assign_matching(
    assigned: dict[Any, PartitionedState],
    fwd_states: dict[Any, PartitionedState],
    bwd_states: dict[Any, PartitionedState],
) -> bool:
    """Assign intervals where forward and backward labels agree."""
    progressed = False
    for vid, comp_state in assigned.items():
        fwd = fwd_states[vid]
        bwd = bwd_states[vid]
        for interval, comp in list(comp_state):
            if comp is not None:
                continue
            for sub, f_label in fwd.slices(interval):
                for sub2, b_label in bwd.slices(sub):
                    if f_label == BLOCKED or b_label == BLOCKED:
                        continue
                    if f_label == b_label:
                        comp_state.set(sub2, f_label)
                        progressed = True
    return progressed


# -- per-snapshot baseline -----------------------------------------------------


class SnapshotMinLabelPass(VertexProgram):
    """One VCM flooding pass over a snapshot's unassigned vertices."""

    name = "SCC-pass"

    def __init__(self, assigned: dict[Any, Any]):
        self.assigned = assigned
        self.combiner = min_combiner()

    def init(self, ctx: VcmContext) -> None:
        ctx.value = BLOCKED if self.assigned.get(ctx.vertex_id) is not None else ctx.vertex_id

    def compute(self, ctx: VcmContext, messages: list[Any]) -> None:
        if ctx.value == BLOCKED:
            return
        if ctx.superstep == 1:
            ctx.send_to_neighbors(ctx.value)
            return
        best = min(messages)
        if best < ctx.value:
            ctx.value = best
            ctx.send_to_neighbors(best)


def scc_on_snapshot(
    snapshot: StaticGraph,
    *,
    cluster: Optional[SimulatedCluster] = None,
    platform: str = "MSB",
    graph_name: str = "",
) -> tuple[dict[Any, Any], RunMetrics]:
    """Peeling SCC on one static snapshot; returns vid → component id."""
    cluster = cluster or SimulatedCluster()
    reversed_snap = snapshot.reversed()
    assigned: dict[Any, Any] = {vid: None for vid in snapshot.vertex_ids()}
    total = RunMetrics(platform=platform, algorithm="SCC", graph=graph_name)
    while any(comp is None for comp in assigned.values()):
        fwd = VertexCentricEngine(
            snapshot, SnapshotMinLabelPass(assigned), cluster=cluster,
            platform=platform, graph_name=graph_name,
        ).run()
        bwd = VertexCentricEngine(
            reversed_snap, SnapshotMinLabelPass(assigned), cluster=cluster,
            platform=platform, graph_name=graph_name,
        ).run()
        total.merge(fwd.metrics)
        total.merge(bwd.metrics)
        progressed = False
        for vid, comp in assigned.items():
            if comp is None and fwd.values[vid] == bwd.values[vid] != BLOCKED:
                assigned[vid] = fwd.values[vid]
                progressed = True
        if not progressed:
            raise RuntimeError("snapshot SCC peeling made no progress")
    total.platform, total.algorithm = platform, "SCC"
    return assigned, total


class ChlonosMinLabelPass(VertexProgram):
    """Min-label pass for Chlonos replicas: blocked status is per (vid, t)."""

    name = "SCC-pass"

    def __init__(self, assigned: dict[tuple[Any, int], Any]):
        self.assigned = assigned
        self.combiner = min_combiner()

    def init(self, ctx) -> None:
        key = (ctx.vertex_id, ctx.time)
        ctx.value = BLOCKED if self.assigned.get(key) is not None else ctx.vertex_id

    def compute(self, ctx, messages: list[Any]) -> None:
        if ctx.value == BLOCKED:
            return
        if ctx.superstep == 1:
            ctx.send_to_neighbors(ctx.value)
            return
        best = min(messages)
        if best < ctx.value:
            ctx.value = best
            ctx.send_to_neighbors(best)


def run_chlonos_scc(
    graph: TemporalGraph,
    *,
    batch_size: Optional[int] = None,
    horizon: Optional[int] = None,
    cluster: Optional[SimulatedCluster] = None,
    graph_name: str = "",
    max_rounds: int = 10_000,
) -> tuple[dict[int, dict[Any, Any]], RunMetrics]:
    """Chlonos-style SCC: batched peeling passes with message sharing."""
    from repro.baselines.chlonos import run_chlonos

    if horizon is None:
        horizon = graph.time_horizon()
    cluster = cluster or SimulatedCluster()
    reversed_graph = graph.reversed()
    assigned: dict[tuple[Any, int], Any] = {}
    for t in range(horizon):
        for v in graph.vertices():
            if v.lifespan.contains_point(t):
                assigned[(v.vid, t)] = None
    total = RunMetrics(platform="Chlonos", algorithm="SCC", graph=graph_name)
    rounds = 0
    while any(comp is None for comp in assigned.values()) and rounds < max_rounds:
        rounds += 1
        fwd = run_chlonos(
            graph, lambda t: ChlonosMinLabelPass(assigned), batch_size=batch_size,
            horizon=horizon, cluster=cluster, graph_name=graph_name,
        )
        bwd = run_chlonos(
            reversed_graph, lambda t: ChlonosMinLabelPass(assigned), batch_size=batch_size,
            horizon=horizon, cluster=cluster, graph_name=graph_name,
        )
        total.merge(fwd.metrics)
        total.merge(bwd.metrics)
        progressed = False
        for (vid, t), comp in assigned.items():
            if comp is None:
                f_label = fwd.value_at(vid, t)
                b_label = bwd.value_at(vid, t)
                if f_label == b_label and f_label != BLOCKED:
                    assigned[(vid, t)] = f_label
                    progressed = True
        if not progressed:
            raise RuntimeError("Chlonos SCC peeling made no progress")
    values: dict[int, dict[Any, Any]] = {}
    for (vid, t), comp in assigned.items():
        values.setdefault(t, {})[vid] = comp
    total.platform, total.algorithm, total.graph = "Chlonos", "SCC", graph_name
    return values, total


def run_snapshot_scc(
    graph: TemporalGraph,
    *,
    horizon: Optional[int] = None,
    cluster: Optional[SimulatedCluster] = None,
    platform: str = "MSB",
    graph_name: str = "",
) -> tuple[dict[int, dict[Any, Any]], RunMetrics]:
    """MSB-style SCC: independent peeling per snapshot."""
    if horizon is None:
        horizon = graph.time_horizon()
    cluster = cluster or SimulatedCluster()
    values: dict[int, dict[Any, Any]] = {}
    total = RunMetrics(platform=platform, algorithm="SCC", graph=graph_name)
    for t in range(horizon):
        snap = snapshot_at(graph, t)
        if snap.num_vertices == 0:
            values[t] = {}
            continue
        comp, metrics = scc_on_snapshot(
            snap, cluster=cluster, platform=platform, graph_name=graph_name
        )
        values[t] = comp
        total.merge(metrics)
    total.platform, total.algorithm, total.graph = platform, "SCC", graph_name
    return values, total
