"""Breadth-first search (TI) — per-snapshot hop distances from a source.

The ICM variant reuses the classic vertex-centric BFS logic verbatim for
``compute``; ICM "by default assigns appropriate intervals to the states
and messages" (paper Sec. V), so the one interval graph run yields the BFS
distance for *every* snapshot at once: the state value at time-point ``t``
equals the BFS distance in snapshot ``S_t``.
"""

from __future__ import annotations

from typing import Any

from repro.core.combiner import min_combiner
from repro.core.interval import FOREVER, Interval
from repro.core.program import IntervalProgram
from repro.baselines.vcm import VcmContext, VertexProgram

#: Distance sentinel for "not reachable".
UNREACHED = FOREVER


class TemporalBFS(IntervalProgram):
    """Interval-centric BFS from ``source`` over all snapshots at once."""

    name = "BFS"
    incremental_safe = True

    def __init__(self, source: Any):
        self.source = source
        self.combiner = min_combiner()

    def init(self, ctx) -> None:
        ctx.set_state(ctx.lifespan, UNREACHED)

    def compute(self, ctx, interval: Interval, state: int, messages: list[int]) -> None:
        if ctx.superstep == 1:
            if ctx.vertex_id == self.source:
                ctx.set_state(interval, 0)
            return
        best = min(messages, default=UNREACHED)
        if best < state:
            ctx.set_state(interval, best)

    def scatter(self, ctx, edge, interval: Interval, state: int):
        if state >= UNREACHED:
            return None
        # TI semantics: the hop stays within each snapshot, so the message
        # interval is inherited from the (state ∩ edge) overlap.
        return [(interval, state + 1)]


class SnapshotBFS(VertexProgram):
    """Per-snapshot vertex-centric BFS (the MSB / Chlonos user logic)."""

    name = "BFS"

    def __init__(self, source: Any):
        self.source = source
        self.combiner = min_combiner()

    def init(self, ctx: VcmContext) -> None:
        ctx.value = UNREACHED

    def compute(self, ctx: VcmContext, messages: list[int]) -> None:
        if ctx.superstep == 1:
            if ctx.vertex_id == self.source:
                ctx.value = 0
                ctx.send_to_neighbors(1)
            return
        best = min(messages, default=UNREACHED)
        if best < ctx.value:
            ctx.value = best
            ctx.send_to_neighbors(best + 1)
