"""PageRank (TI) — per-snapshot rank over the evolving topology.

The fixed-superstep Pregel formulation (10 rounds, damping 0.85):

    ``rank = (1 - d) / N_t + d * Σ_in rank_nbr / deg_nbr(t)``

Both ``N_t`` (vertices alive at ``t``) and out-degrees vary over time; the
ICM variant handles this by splitting state updates at vertex-count change
points and message emission at out-degree change points
(:meth:`VertexContext.out_degree_segments`), so one interval-graph run
matches the per-snapshot baseline pointwise.
"""

from __future__ import annotations

from typing import Optional

from repro.core.combiner import sum_combiner
from repro.core.interval import FOREVER, Interval
from repro.core.program import IntervalProgram
from repro.baselines.vcm import VcmContext, VertexProgram
from repro.graph.model import TemporalGraph

DAMPING = 0.85
DEFAULT_SUPERSTEPS = 10


def vertex_count_timeline(graph: TemporalGraph) -> list[tuple[Interval, int]]:
    """Piecewise-constant count of alive vertices over the graph lifespan."""
    deltas: dict[int, int] = {}
    for v in graph.vertices():
        deltas[v.lifespan.start] = deltas.get(v.lifespan.start, 0) + 1
        if not v.lifespan.is_unbounded:
            deltas[v.lifespan.end] = deltas.get(v.lifespan.end, 0) - 1
    bounds = sorted(deltas)
    timeline: list[tuple[Interval, int]] = []
    count = 0
    for idx, b in enumerate(bounds):
        count += deltas[b]
        end = bounds[idx + 1] if idx + 1 < len(bounds) else FOREVER
        if count > 0 and b < end:
            timeline.append((Interval(b, end), count))
    return timeline


class TemporalPageRank(IntervalProgram):
    """Interval-centric PageRank over every snapshot at once."""

    name = "PR"

    def __init__(self, graph: TemporalGraph, supersteps: int = DEFAULT_SUPERSTEPS,
                 damping: float = DAMPING):
        self.fixed_supersteps = supersteps
        self.damping = damping
        self.combiner = sum_combiner()
        self._counts = vertex_count_timeline(graph)

    def _count_segments(self, interval: Interval) -> list[tuple[Interval, int]]:
        out = []
        for iv, n in self._counts:
            common = iv.intersect(interval)
            if common is not None:
                out.append((common, n))
        return out

    def compute(self, ctx, interval: Interval, state, messages: list[float]) -> None:
        if ctx.superstep == 1:
            for seg, n in self._count_segments(interval):
                ctx.set_state(seg, 1.0 / n)
            return
        total = sum(messages)
        for seg, n in self._count_segments(interval):
            ctx.set_state(seg, (1.0 - self.damping) / n + self.damping * total)

    def scatter(self, ctx, edge, interval: Interval, state: float):
        if ctx.superstep >= self.fixed_supersteps:
            return None
        out = []
        for seg, degree in ctx.out_degree_segments(interval):
            if degree > 0:
                out.append((seg, state / degree))
        return out


class SnapshotPageRank(VertexProgram):
    """Per-snapshot vertex-centric PageRank (MSB / Chlonos user logic)."""

    name = "PR"

    def __init__(self, supersteps: int = DEFAULT_SUPERSTEPS, damping: float = DAMPING):
        self.fixed_supersteps = supersteps
        self.damping = damping
        self.combiner = sum_combiner()

    def init(self, ctx: VcmContext) -> None:
        ctx.value = 1.0 / ctx.num_vertices

    def compute(self, ctx: VcmContext, messages: list[float]) -> None:
        if ctx.superstep > 1:
            total = sum(messages)
            ctx.value = (1.0 - self.damping) / ctx.num_vertices + self.damping * total
        if ctx.superstep < self.fixed_supersteps:
            degree = ctx.out_degree()
            if degree > 0:
                share = ctx.value / degree
                for edge in ctx.out_edges():
                    ctx.send(edge.dst, share)
