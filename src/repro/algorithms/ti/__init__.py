"""Time-independent algorithms: BFS, WCC, SCC, PageRank."""

from .bfs import SnapshotBFS, TemporalBFS, UNREACHED
from .pagerank import SnapshotPageRank, TemporalPageRank, vertex_count_timeline
from .scc import SccResult, run_chlonos_scc, run_icm_scc, run_snapshot_scc
from .wcc import SnapshotWCC, TemporalWCC, make_undirected

__all__ = [
    "TemporalBFS",
    "SnapshotBFS",
    "UNREACHED",
    "TemporalWCC",
    "SnapshotWCC",
    "make_undirected",
    "TemporalPageRank",
    "SnapshotPageRank",
    "vertex_count_timeline",
    "run_icm_scc",
    "run_snapshot_scc",
    "run_chlonos_scc",
    "SccResult",
]
