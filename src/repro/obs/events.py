"""Structured run events: the typed, schema-versioned trace stream.

A run emits a sequence of :class:`RunEvent` records — superstep phases,
barrier exchanges, checkpoint writes, worker deaths, rollbacks — the
structured replacement for scraping logs or the vertex-level
``ExecutionTracer``.  Each record is a flat JSON-friendly dict:

``v``
    Schema version (:data:`EVENT_SCHEMA_VERSION`).  Bumped only on
    incompatible layout changes; readers must check it.
``seq``
    Monotone sequence number within the run, 0-based.
``type``
    One of :data:`EVENT_TYPES`.
``superstep``
    The 1-based superstep the event belongs to, or ``None`` for
    run-level events (``run_start``/``run_end``).
``data``
    The event's **logical** payload: deterministic, model-level facts
    (call counts, message counts, modeled times).  Serial and parallel
    executions of the same run produce identical ``data``.
``wall``
    Measured/environmental facts — wall-clock durations, file paths,
    process exit codes, executor names.  Excluded when diffing traces
    for logical equivalence (:func:`logical_view`).

The split between ``data`` and ``wall`` is the schema's central design
decision: it is what lets CI diff a serial trace against a parallel one
and what keeps replayed supersteps after fault recovery honest (the
replay re-emits the same logical events; only ``wall`` differs).
"""

from __future__ import annotations

import json
from typing import Any, Callable, Dict, List, Optional, Tuple

__all__ = [
    "EVENT_SCHEMA_VERSION",
    "EVENT_TYPES",
    "EventStream",
    "WORKER_SPAN_PHASES",
    "logical_view",
    "validate_event",
]

#: Current trace-record schema version.  v2 added the partitioning facts
#: to ``run_start`` (fingerprint, edge cut, per-worker loads); v3 added
#: the local/remote byte split to ``barrier_exchange``; v4 added the
#: serving-tier lifecycle events (``query_admitted`` / ``query_start`` /
#: ``query_end`` / ``cache_hit`` / ``cache_evict``) emitted by
#: `repro.serve`; v5 added the per-worker ``worker_span`` phase records.
EVENT_SCHEMA_VERSION = 5

#: The phases every ``worker_span`` record times, in execution order:
#: vertex computation, the scatter time-join, wire encoding of outbound
#: batches, waiting on peer frames (peer topology; 0 under star), and
#: idle time at the barrier before this superstep's command arrived.
WORKER_SPAN_PHASES = (
    "compute", "scatter", "encode", "exchange_wait", "barrier_wait",
)

#: Event type → required ``data`` keys.  ``superstep`` must be ``None``
#: for the types in :data:`RUN_LEVEL_TYPES` and a positive int otherwise.
EVENT_TYPES: Dict[str, Tuple[str, ...]] = {
    # run lifecycle
    "run_start": ("algorithm", "graph", "platform", "resumed_from",
                  "partitioner", "partition_edge_cut",
                  "worker_vertex_load", "worker_edge_load"),
    "run_end": ("supersteps", "compute_calls", "scatter_calls",
                "messages_sent", "message_bytes", "modeled_makespan_s"),
    # superstep phases
    "superstep_start": (),
    "compute_phase": ("compute_calls", "warp_calls",
                      "warp_suppressed_vertices", "combiner_reductions"),
    "scatter_phase": ("scatter_calls", "messages", "message_bytes"),
    "barrier_exchange": ("local_messages", "remote_messages",
                         "local_bytes", "remote_bytes"),
    "superstep_end": ("active", "modeled_compute_s", "modeled_messaging_s"),
    # per-worker phase spans (schema v5) — one record per executor worker
    # per superstep, between ``barrier_exchange`` and ``superstep_end``.
    # ``data`` carries only what is deterministic *for a fixed executor
    # shape* (the worker id and the constant phase list); every duration
    # is a measured wall fact.  Because serial runs emit one span and an
    # N-process parallel run emits N, ``worker_span`` is the one type the
    # cross-executor logical diff skips (`exporters.logical_sequence`).
    "worker_span": ("worker", "phases"),
    # durability & recovery
    "checkpoint_write": (),
    "worker_death": ("worker",),
    "rollback": ("to_superstep", "replayed_supersteps"),
    # serving tier (`repro.serve`) — interleaved with run events when the
    # service shares its observers with the engines it drives
    "query_admitted": ("query_id", "algorithm", "queue_depth"),
    "query_start": ("query_id", "algorithm", "interval_start",
                    "interval_end", "cache_hit"),
    "query_end": ("query_id", "status"),
    "cache_hit": ("query_id", "algorithm", "interval_start", "interval_end"),
    "cache_evict": ("evicted_entries", "cache_bytes"),
}

#: Types whose ``superstep`` is ``None`` (events about the whole run).
RUN_LEVEL_TYPES = frozenset({
    "run_start", "run_end",
    "query_admitted", "query_start", "query_end", "cache_hit", "cache_evict",
})

_RECORD_KEYS = frozenset({"v", "seq", "type", "superstep", "data", "wall"})


def validate_event(record: Any) -> None:
    """Raise ``ValueError`` unless ``record`` is a valid current-version
    trace record."""
    if not isinstance(record, dict):
        raise ValueError(f"trace record must be a dict, got {type(record).__name__}")
    keys = set(record)
    if keys != _RECORD_KEYS:
        missing = sorted(_RECORD_KEYS - keys)
        extra = sorted(keys - _RECORD_KEYS)
        raise ValueError(
            f"trace record keys mismatch (missing {missing}, extra {extra})"
        )
    if record["v"] != EVENT_SCHEMA_VERSION:
        raise ValueError(
            f"unsupported trace schema version {record['v']!r} "
            f"(this reader speaks v{EVENT_SCHEMA_VERSION})"
        )
    if not isinstance(record["seq"], int) or record["seq"] < 0:
        raise ValueError(f"bad seq {record['seq']!r}")
    etype = record["type"]
    if etype not in EVENT_TYPES:
        raise ValueError(f"unknown event type {etype!r}")
    superstep = record["superstep"]
    if etype in RUN_LEVEL_TYPES:
        if superstep is not None:
            raise ValueError(f"{etype} must have superstep=None, got {superstep!r}")
    else:
        if not isinstance(superstep, int) or superstep < 1:
            raise ValueError(
                f"{etype} needs a positive superstep, got {superstep!r}"
            )
    data = record["data"]
    if not isinstance(data, dict):
        raise ValueError(f"data must be a dict, got {type(data).__name__}")
    required = EVENT_TYPES[etype]
    if set(data) != set(required):
        raise ValueError(
            f"{etype} data keys {sorted(data)} != schema {sorted(required)}"
        )
    if not isinstance(record["wall"], dict):
        raise ValueError(f"wall must be a dict, got {type(record['wall']).__name__}")


def logical_view(record: Dict[str, Any]) -> Tuple[str, Optional[int], Tuple]:
    """The deterministic projection of a record, for cross-executor diffs.

    Drops ``seq`` (identical anyway when sequences match) and all of
    ``wall``; ``data`` is flattened to a sorted item tuple so the result
    is order-insensitive to JSON key order (and hashable for the all-scalar
    event types; ``run_start`` carries load *lists* and is not).
    """
    return (
        record["type"],
        record["superstep"],
        tuple(sorted(record["data"].items())),
    )


class EventStream:
    """Emission side of the event stream: builds, validates and fans out.

    Owned by the engine; ``None`` when no observers are configured so the
    hot path pays a single attribute check per potential event.  ``seq``
    restarts at 0 for each ``run()`` and keeps counting across fault
    recovery attempts within that run (replays re-emit their supersteps).
    """

    def __init__(self, observers):
        self._observers = list(observers)
        self._seq = 0

    def emit(
        self,
        type: str,
        *,
        superstep: Optional[int] = None,
        data: Optional[Dict[str, Any]] = None,
        wall: Optional[Dict[str, Any]] = None,
    ) -> Dict[str, Any]:
        record = {
            "v": EVENT_SCHEMA_VERSION,
            "seq": self._seq,
            "type": type,
            "superstep": superstep,
            "data": data if data is not None else {},
            "wall": wall if wall is not None else {},
        }
        validate_event(record)
        self._seq += 1
        for observer in self._observers:
            observer.on_event(record)
        return record

    def close(self) -> None:
        for observer in self._observers:
            close: Optional[Callable[[], None]] = getattr(observer, "close", None)
            if close is not None:
                close()


def encode_event(record: Dict[str, Any]) -> str:
    """One compact JSON line (no trailing newline) for a record."""
    return json.dumps(record, separators=(",", ":"), sort_keys=True)


def decode_event(line: str) -> Dict[str, Any]:
    """Parse and validate one JSON-lines trace record."""
    record = json.loads(line)
    validate_event(record)
    return record
