"""Structured observability for interval-centric runs.

``repro.obs`` is the run-visibility layer the paper's evaluation
(Sec. VII) implicitly demands: per-superstep compute/messaging splits,
message and byte counts, checkpoint/recovery costs — produced as a typed,
schema-versioned event stream plus a declarative metric registry, and
rendered by exporters (JSON-lines trace, Prometheus text, human tables).

Quickstart::

    from repro import api
    from repro.obs import InMemoryEvents

    mem = InMemoryEvents()
    result = api.run(graph, program, observe=mem)
    for etype, superstep, data in mem.logical():
        ...

    api.run(graph, program, observe="run.trace")  # JSON-lines file
    # then:  python -m repro report run.trace

Design guarantees:

* observability never perturbs modeled quantities — a fully-instrumented
  run reports the same counters and modeled makespan as a bare one;
* serial and parallel executors emit **identical logical event
  sequences** (wall-clock facts are segregated into each record's
  ``wall`` field);
* observability configuration never enters the checkpoint config
  fingerprint — traced runs resume untraced checkpoints and vice versa.
"""

from repro.obs.events import (
    EVENT_SCHEMA_VERSION,
    EVENT_TYPES,
    EventStream,
    WORKER_SPAN_PHASES,
    logical_view,
    validate_event,
)
from repro.obs.exporters import (
    logical_sequence,
    prometheus_text,
    read_trace,
    render_report,
    render_summary,
    render_timeline,
    render_workers,
    split_runs,
)
from repro.obs.observers import InMemoryEvents, JsonlTraceWriter, RunObserver
from repro.obs.registry import (
    RECOVERY_METRICS,
    RUN_METRICS,
    SERVE_METRICS,
    Histogram,
    MetricRegistry,
    MetricSpec,
)

__all__ = [
    "EVENT_SCHEMA_VERSION",
    "EVENT_TYPES",
    "EventStream",
    "Histogram",
    "InMemoryEvents",
    "JsonlTraceWriter",
    "MetricRegistry",
    "MetricSpec",
    "RECOVERY_METRICS",
    "RUN_METRICS",
    "RunObserver",
    "SERVE_METRICS",
    "WORKER_SPAN_PHASES",
    "logical_sequence",
    "logical_view",
    "prometheus_text",
    "read_trace",
    "render_report",
    "render_summary",
    "render_timeline",
    "render_workers",
    "split_runs",
    "validate_event",
]
