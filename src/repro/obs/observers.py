"""Run observers: consumers of the structured event stream.

An observer is anything with ``on_event(record)`` (and optionally
``close()``); the two concrete ones here cover the common cases —
in-memory capture for tests/analysis and an append-only JSON-lines
trace file for ``repro run --trace-out`` / ``repro report``.
"""

from __future__ import annotations

import os
from typing import Any, Dict, List, Optional, Tuple

from repro.obs.events import encode_event, logical_view

__all__ = ["InMemoryEvents", "JsonlTraceWriter", "RunObserver"]


class RunObserver:
    """Base class (duck-typed — subclassing is optional)."""

    def on_event(self, record: Dict[str, Any]) -> None:  # pragma: no cover
        raise NotImplementedError

    def close(self) -> None:
        """Flush/release resources; the stream calls this at run end."""


class InMemoryEvents(RunObserver):
    """Collects every record in a list; handy for tests and notebooks."""

    def __init__(self):
        self.records: List[Dict[str, Any]] = []

    def on_event(self, record: Dict[str, Any]) -> None:
        self.records.append(record)

    def logical(self) -> List[Tuple[str, Optional[int], Tuple]]:
        """The deterministic event sequence (type, superstep, data items).

        ``worker_span`` records are excluded, matching
        :func:`repro.obs.exporters.logical_sequence`: span *count* is a
        property of the executor shape, so keeping them would make a
        serial run logically differ from a parallel one by construction.
        """
        return [
            logical_view(r) for r in self.records if r["type"] != "worker_span"
        ]

    def of_type(self, type: str) -> List[Dict[str, Any]]:
        return [r for r in self.records if r["type"] == type]


class JsonlTraceWriter(RunObserver):
    """Appends records to a JSON-lines trace file.

    Opens lazily on the first event and **appends**: engines that share a
    config (SCC's peeling rounds, streaming refreshes) accumulate their
    runs into one combined trace, which ``repro report`` then splits back
    into runs on ``run_start`` markers.  ``close()`` is safe to call many
    times; a later event simply reopens the file.

    Every record is flushed as it is written, so a run killed without
    warning (SIGKILL, OOM) leaves a trace readable up to its last
    complete record — ``read_trace`` drops at most one torn trailing
    line.  Events are superstep-granular, so the per-event flush is in
    the observability overhead the benchmark gate already caps.
    """

    def __init__(self, path):
        self.path = os.fspath(path)
        self._fh = None

    def on_event(self, record: Dict[str, Any]) -> None:
        if self._fh is None:
            parent = os.path.dirname(self.path)
            if parent:
                os.makedirs(parent, exist_ok=True)
            self._fh = open(self.path, "a", encoding="utf-8")
        self._fh.write(encode_event(record))
        self._fh.write("\n")
        self._fh.flush()

    def close(self) -> None:
        if self._fh is not None:
            self._fh.close()
            self._fh = None
