"""The metric registry: one declarative schema for every run metric.

Before this module existed the metric name lists lived in three places —
``RunMetrics``'s dataclass fields, the checkpoint writer's
``_METRIC_COUNTERS``/``_METRIC_FLOATS`` snapshot tuples, and the parallel
executor's ``_COUNT_FIELDS`` worker-fold tuple — and nothing tied them
together.  :data:`RUN_METRICS` is now the single authority: the dataclass
stays the hot-path representation (plain attribute increments, no dict
indirection), while the checkpoint and executor derive their tuples from
the registry, and the exporters derive names, units and help strings.

This module deliberately imports **nothing** from the rest of ``repro``
(field names are strings, validated lazily by a test) so it can sit below
``repro.runtime`` in the import graph.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Optional, Tuple

__all__ = [
    "Histogram",
    "MetricRegistry",
    "MetricSpec",
    "RECOVERY_METRICS",
    "RUN_METRICS",
    "SERVE_METRICS",
]

#: Default latency buckets (seconds) — Prometheus-style upper bounds.
DEFAULT_BUCKETS = (0.001, 0.005, 0.01, 0.05, 0.1, 0.5, 1.0, 5.0)


class Histogram:
    """A fixed-bucket histogram, the hot-path value of a ``histogram``-kind
    metric.

    Prometheus semantics: ``bounds`` are inclusive upper bounds of the
    finite buckets, an implicit ``+Inf`` bucket catches the rest, and
    :meth:`cumulative` returns the non-decreasing per-``le`` counts the
    text exposition format wants.  No locking — observers already
    serialise on the owning service's metric updates.
    """

    __slots__ = ("bounds", "counts", "sum", "count")

    def __init__(self, bounds=DEFAULT_BUCKETS):
        self.bounds = tuple(sorted(float(b) for b in bounds))
        if not self.bounds:
            raise ValueError("histogram needs at least one bucket bound")
        self.counts = [0] * (len(self.bounds) + 1)  # +1: the +Inf bucket
        self.sum = 0.0
        self.count = 0

    def observe(self, value: float) -> None:
        self.sum += value
        self.count += 1
        for i, bound in enumerate(self.bounds):
            if value <= bound:
                self.counts[i] += 1
                return
        self.counts[-1] += 1

    def cumulative(self):
        """``(le, cumulative_count)`` pairs, finite bounds then ``+Inf``."""
        total = 0
        out = []
        for bound, n in zip(self.bounds, self.counts):
            total += n
            out.append((bound, total))
        out.append((float("inf"), total + self.counts[-1]))
        return out


@dataclass(frozen=True)
class MetricSpec:
    """One metric's schema entry.

    ``value`` is the Python representation (``"int"``/``"float"``;
    ``histogram``-kind metrics hold a :class:`Histogram` and declare
    ``"float"`` for their observed values); ``kind`` the semantic class
    (``counter`` monotone within a run, ``gauge`` a high-water mark,
    ``time`` a duration, ``histogram`` a bucketed distribution);
    ``modeled`` marks quantities produced by the deterministic cluster
    model — bit-identical across executors — as opposed to measured
    wall-clock facts; ``worker_field`` marks counters folded from
    parallel worker reports at the barrier.
    """

    name: str
    value: str  # "int" | "float"
    kind: str  # "counter" | "gauge" | "time" | "histogram"
    unit: str
    help: str
    modeled: bool = True
    worker_field: bool = False

    def __post_init__(self):
        if self.value not in ("int", "float"):
            raise ValueError(f"bad value type {self.value!r} for {self.name}")
        if self.kind not in ("counter", "gauge", "time", "histogram"):
            raise ValueError(f"bad kind {self.kind!r} for {self.name}")


class MetricRegistry:
    """An ordered, name-addressable collection of :class:`MetricSpec`."""

    def __init__(self, name: str, specs: Tuple[MetricSpec, ...]):
        self.name = name
        self.specs = tuple(specs)
        self._by_name = {s.name: s for s in self.specs}
        if len(self._by_name) != len(self.specs):
            raise ValueError(f"duplicate metric names in registry {name!r}")

    def __iter__(self) -> Iterator[MetricSpec]:
        return iter(self.specs)

    def __contains__(self, name: str) -> bool:
        return name in self._by_name

    def get(self, name: str) -> Optional[MetricSpec]:
        return self._by_name.get(name)

    def names(
        self,
        *,
        value: Optional[str] = None,
        worker_field: Optional[bool] = None,
        modeled: Optional[bool] = None,
    ) -> Tuple[str, ...]:
        """Metric names, optionally filtered, in declaration order."""
        out = []
        for spec in self.specs:
            if value is not None and spec.value != value:
                continue
            if worker_field is not None and spec.worker_field != worker_field:
                continue
            if modeled is not None and spec.modeled != modeled:
                continue
            out.append(spec.name)
        return tuple(out)


#: Every ``RunMetrics`` numeric field.  Declaration order is load-bearing:
#: the ``int`` slice (in order) is the checkpoint manifest's counter tuple,
#: the ``float`` slice its float tuple, and the ``worker_field=True`` slice
#: the parallel executor's per-worker fold list — changing the order would
#: change the on-disk checkpoint layout.
RUN_METRICS = MetricRegistry(
    "run",
    (
        MetricSpec("compute_calls", "int", "counter", "calls",
                   "compute() invocations across all vertices",
                   worker_field=True),
        MetricSpec("scatter_calls", "int", "counter", "calls",
                   "scatter() invocations across all vertices",
                   worker_field=True),
        MetricSpec("messages_sent", "int", "counter", "messages",
                   "application messages sent"),
        MetricSpec("message_bytes", "int", "counter", "bytes",
                   "wire-encoded application message payload"),
        MetricSpec("local_messages", "int", "counter", "messages",
                   "messages delivered within a worker partition"),
        MetricSpec("remote_messages", "int", "counter", "messages",
                   "messages crossing worker partitions"),
        MetricSpec("system_messages", "int", "counter", "messages",
                   "replica state-transfer (system) messages"),
        MetricSpec("supersteps", "int", "counter", "supersteps",
                   "BSP supersteps executed"),
        MetricSpec("warp_calls", "int", "counter", "calls",
                   "time-warp merge invocations", worker_field=True),
        MetricSpec("warp_suppressed_vertices", "int", "counter", "vertices",
                   "vertex activations that skipped warp for time-point "
                   "execution", worker_field=True),
        MetricSpec("combiner_reductions", "int", "counter", "messages",
                   "messages folded away by combiners", worker_field=True),
        MetricSpec("shared_messages", "int", "counter", "messages",
                   "messages avoided by interval sharing"),
        MetricSpec("peak_inflight_messages", "int", "gauge", "messages",
                   "largest single-superstep message volume"),
        MetricSpec("exchange_bytes", "int", "counter", "bytes",
                   "real bytes shipped between worker processes",
                   modeled=False),
        MetricSpec("exchange_raw_bytes", "int", "counter", "bytes",
                   "bytes the exchange would have shipped without "
                   "sender-side combining", modeled=False),
        MetricSpec("compute_plus_time", "float", "time", "seconds",
                   "measured wall-time of compute (and scatter) phases",
                   modeled=False),
        MetricSpec("modeled_compute_time", "float", "time", "seconds",
                   "modeled distributed compute: sum of per-superstep "
                   "max-worker cost"),
        MetricSpec("worker_wall_time", "float", "time", "seconds",
                   "measured per-superstep max worker wall-clock, summed",
                   modeled=False),
        MetricSpec("exchange_time", "float", "time", "seconds",
                   "measured barrier-exchange wall-time", modeled=False),
        MetricSpec("messaging_time", "float", "time", "seconds",
                   "modeled exclusive message-delivery time"),
        MetricSpec("barrier_time", "float", "time", "seconds",
                   "modeled barrier synchronization time"),
        MetricSpec("load_time", "float", "time", "seconds",
                   "graph loading wall-time (excluded from makespan)",
                   modeled=False),
        MetricSpec("makespan", "float", "time", "seconds",
                   "measured wall-time from first to last superstep",
                   modeled=False),
        MetricSpec("modeled_makespan", "float", "time", "seconds",
                   "modeled cluster makespan (max compute + transfer + "
                   "barrier per superstep)"),
        MetricSpec("local_message_bytes", "int", "counter", "bytes",
                   "wire-encoded payload of messages staying within a "
                   "worker partition"),
        MetricSpec("remote_message_bytes", "int", "counter", "bytes",
                   "wire-encoded payload crossing worker partitions (the "
                   "barrier-exchange traffic partitioning exists to cut)"),
        MetricSpec("partition_edge_cut", "float", "gauge", "fraction",
                   "fraction of graph edges whose endpoints live on "
                   "different workers"),
        MetricSpec("partition_imbalance", "float", "gauge", "ratio",
                   "max per-worker vertex load over the even-split ideal"),
    ),
)

#: ``RecoveryMetrics`` fields — the durability layer's operational story,
#: kept apart from the run registry because none of it exists in an
#: uninterrupted run's model.
RECOVERY_METRICS = MetricRegistry(
    "recovery",
    (
        MetricSpec("checkpoints_written", "int", "counter", "checkpoints",
                   "checkpoints written during the run", modeled=False),
        MetricSpec("checkpoint_bytes", "int", "counter", "bytes",
                   "total bytes of shard/manifest files written",
                   modeled=False),
        MetricSpec("checkpoint_seconds", "float", "time", "seconds",
                   "wall-clock spent snapshotting and writing checkpoints",
                   modeled=False),
        MetricSpec("restarts", "int", "counter", "restarts",
                   "worker-process deaths recovered from", modeled=False),
        MetricSpec("replayed_supersteps", "int", "counter", "supersteps",
                   "supersteps re-executed during recovery replays",
                   modeled=False),
        MetricSpec("recovery_seconds", "float", "time", "seconds",
                   "wall-clock spent tearing down and respawning after "
                   "crashes", modeled=False),
    ),
)

#: ``ServeMetrics`` fields — the query-serving tier's operational story
#: (`repro.serve`).  A third registry: serving counters accumulate across
#: many runs of one long-lived :class:`~repro.serve.GraphService`, so they
#: can never live in the per-run registry (whose declaration order is also
#: frozen by the checkpoint layout).
SERVE_METRICS = MetricRegistry(
    "serve",
    (
        MetricSpec("queries_admitted", "int", "counter", "queries",
                   "queries accepted past admission control", modeled=False),
        MetricSpec("queries_served", "int", "counter", "queries",
                   "queries answered successfully (cached or computed)",
                   modeled=False),
        MetricSpec("queries_rejected", "int", "counter", "queries",
                   "queries rejected by queue-full backpressure",
                   modeled=False),
        MetricSpec("queries_timed_out", "int", "counter", "queries",
                   "queries cancelled at their deadline", modeled=False),
        MetricSpec("queries_failed", "int", "counter", "queries",
                   "queries that raised an execution error", modeled=False),
        MetricSpec("cache_hits", "int", "counter", "queries",
                   "queries answered from the result cache", modeled=False),
        MetricSpec("cache_misses", "int", "counter", "queries",
                   "queries that had to run an engine", modeled=False),
        MetricSpec("cache_evictions", "int", "counter", "entries",
                   "cache entries evicted under the byte budget",
                   modeled=False),
        MetricSpec("cache_bytes", "int", "gauge", "bytes",
                   "bytes currently held by the result cache", modeled=False),
        MetricSpec("cache_entries", "int", "gauge", "entries",
                   "entries currently held by the result cache",
                   modeled=False),
        MetricSpec("cache_hit_rate", "float", "gauge", "fraction",
                   "cache hits over all cache lookups so far", modeled=False),
        MetricSpec("queue_depth", "int", "gauge", "queries",
                   "queries currently waiting for an execution lane",
                   modeled=False),
        MetricSpec("queue_depth_peak", "int", "gauge", "queries",
                   "largest admission-queue depth observed", modeled=False),
        MetricSpec("query_seconds", "float", "time", "seconds",
                   "wall-clock spent answering queries, summed",
                   modeled=False),
        MetricSpec("last_query_seconds", "float", "gauge", "seconds",
                   "wall-clock latency of the most recent query",
                   modeled=False),
        MetricSpec("graph_resident_bytes", "int", "gauge", "bytes",
                   "resident bytes of the served graph's backing store "
                   "(exact for a compact graph, modeled for heap graphs)",
                   modeled=False),
        MetricSpec("query_latency", "float", "histogram", "seconds",
                   "distribution of per-query wall-clock latency",
                   modeled=False),
    ),
)
