"""Exporters: every rendering of run metrics and traces in one place.

Three output formats over the same data:

* :func:`render_summary` — the human metric table (used by the CLI, by
  ``repro report`` and by benchmark logs; formerly ``cli._print_metrics``);
* :func:`prometheus_text` — Prometheus text exposition of a
  :class:`~repro.runtime.metrics.RunMetrics`, names/types/help derived
  from the metric registry;
* :func:`render_report` / :func:`render_timeline` — Table-4-style
  per-algorithm breakdown and a per-superstep phase timeline, regenerated
  from a saved JSON-lines trace rather than a live run.
"""

from __future__ import annotations

import warnings
from typing import Any, Dict, Iterable, List, Optional, Tuple

from repro.obs.events import WORKER_SPAN_PHASES, decode_event, logical_view
from repro.obs.registry import RECOVERY_METRICS, RUN_METRICS, SERVE_METRICS

__all__ = [
    "logical_sequence",
    "prometheus_text",
    "read_trace",
    "render_report",
    "render_summary",
    "render_timeline",
    "render_workers",
    "split_runs",
]


# -- metrics ------------------------------------------------------------------


def _is_serve_metrics(metrics) -> bool:
    """Serving-tier counters (`repro.serve.ServeMetrics`) vs run metrics."""
    return hasattr(metrics, "queries_served")


def render_summary(metrics) -> str:
    """The standard human-readable metric table (one run).

    Layout matches the historic ``cli._print_metrics`` exactly for the
    core rows; durability rows appear only when checkpointing or
    recovery actually happened.  A :class:`~repro.serve.ServeMetrics`
    renders the serving-tier table instead (one long-lived service, many
    runs).
    """
    if _is_serve_metrics(metrics):
        return _render_serve_summary(metrics)
    rows = [
        ("platform", metrics.platform),
        ("algorithm", metrics.algorithm),
        ("supersteps", metrics.supersteps),
        ("compute calls", metrics.compute_calls),
        ("scatter calls", metrics.scatter_calls),
        ("messages", metrics.messages_sent),
        ("system messages", metrics.system_messages),
        ("message bytes", metrics.message_bytes),
        ("local / remote", f"{metrics.local_messages} / {metrics.remote_messages}"),
        ("modeled makespan", f"{metrics.modeled_makespan * 1e3:.3f} ms"),
        ("  compute+", f"{metrics.modeled_compute_time * 1e3:.3f} ms"),
        ("  messaging", f"{metrics.messaging_time * 1e3:.3f} ms"),
        ("  barriers", f"{metrics.barrier_time * 1e3:.3f} ms"),
        ("wall time", f"{metrics.makespan * 1e3:.3f} ms"),
    ]
    recovery = getattr(metrics, "recovery", None)
    if recovery is not None and (
        recovery.checkpoints_written or recovery.restarts
    ):
        rows.append(("checkpoints",
                     f"{recovery.checkpoints_written} "
                     f"({recovery.checkpoint_bytes} bytes, "
                     f"{recovery.checkpoint_seconds * 1e3:.3f} ms)"))
        rows.append(("restarts",
                     f"{recovery.restarts} "
                     f"({recovery.replayed_supersteps} supersteps replayed)"))
    width = max(len(label) for label, _ in rows)
    return "\n".join(f"  {label.ljust(width)}  {value}" for label, value in rows)


def _render_serve_summary(metrics) -> str:
    """The serving-tier metric table (one service lifetime)."""
    lookups = metrics.cache_hits + metrics.cache_misses
    rows = [
        ("graph", metrics.graph),
        ("executor", metrics.executor),
        ("queries admitted", metrics.queries_admitted),
        ("queries served", metrics.queries_served),
        ("  rejected / timed out / failed",
         f"{metrics.queries_rejected} / {metrics.queries_timed_out} / "
         f"{metrics.queries_failed}"),
        ("cache hits / misses", f"{metrics.cache_hits} / {metrics.cache_misses}"),
        ("cache hit rate",
         f"{metrics.cache_hit_rate:.3f}" if lookups else "n/a"),
        ("cache bytes",
         f"{metrics.cache_bytes} ({metrics.cache_entries} entries, "
         f"{metrics.cache_evictions} evicted)"),
        ("queue depth", f"{metrics.queue_depth} (peak {metrics.queue_depth_peak})"),
        ("query time", f"{metrics.query_seconds * 1e3:.3f} ms total, "
                       f"{metrics.last_query_seconds * 1e3:.3f} ms last"),
    ]
    width = max(len(label) for label, _ in rows)
    return "\n".join(f"  {label.ljust(width)}  {value}" for label, value in rows)


def _prom_name(spec) -> str:
    name = f"repro_{spec.name}"
    if spec.kind in ("time", "histogram") and spec.unit == "seconds" \
            and not name.endswith("_seconds"):
        name += "_seconds"
    if spec.kind == "counter":
        name += "_total"
    return name


def _prom_escape(value: Any) -> str:
    """Label-value escaping per the text exposition format: backslash,
    double quote, and line feed."""
    return (
        str(value)
        .replace("\\", "\\\\")
        .replace('"', '\\"')
        .replace("\n", "\\n")
    )


def _prom_labels(pairs: Iterable[Tuple[str, str]]) -> str:
    inner = ",".join(
        '%s="%s"' % (k, _prom_escape(v)) for k, v in pairs if v
    )
    return "{%s}" % inner if inner else ""


def _prom_float(value: float) -> str:
    """A float sample value; Prometheus spells infinities ``+Inf``/``-Inf``."""
    if value == float("inf"):
        return "+Inf"
    if value == float("-inf"):
        return "-Inf"
    return repr(float(value))


def prometheus_text(metrics) -> str:
    """Prometheus text-format exposition of one run's metrics.

    Counter/gauge/histogram typing, units and help strings all come from
    the metric registry, so this stays in lockstep with ``RunMetrics`` —
    and with ``ServeMetrics``, which expose the serving registry instead
    (including its ``histogram``-kind latency distribution, rendered as
    the standard ``_bucket``/``_sum``/``_count`` series).
    """
    label_pairs = (
        ("platform", metrics.platform),
        ("algorithm", metrics.algorithm),
        ("graph", metrics.graph),
        ("executor", metrics.executor),
    )
    labels = _prom_labels(label_pairs)
    lines: List[str] = []

    def emit_histogram(name, labelled, histogram):
        base = [(k, v) for k, v in labelled if v]
        for le, count in histogram.cumulative():
            bucket = _prom_labels((*base, ("le", _prom_float(le))))
            lines.append(f"{name}_bucket{bucket} {count}")
        lines.append(f"{name}_sum{labels} {_prom_float(histogram.sum)}")
        lines.append(f"{name}_count{labels} {histogram.count}")

    def emit(registry, source):
        for spec in registry:
            name = _prom_name(spec)
            value = getattr(source, spec.name)
            if spec.kind == "histogram":
                lines.append(f"# HELP {name} {spec.help}")
                lines.append(f"# TYPE {name} histogram")
                emit_histogram(name, label_pairs, value)
                continue
            prom_type = "counter" if spec.kind == "counter" else "gauge"
            lines.append(f"# HELP {name} {spec.help}")
            lines.append(f"# TYPE {name} {prom_type}")
            if spec.value == "int":
                lines.append(f"{name}{labels} {value}")
            else:
                lines.append(f"{name}{labels} {_prom_float(value)}")

    if _is_serve_metrics(metrics):
        emit(SERVE_METRICS, metrics)
        return "\n".join(lines) + "\n"
    emit(RUN_METRICS, metrics)
    recovery = getattr(metrics, "recovery", None)
    if recovery is not None:
        emit(RECOVERY_METRICS, recovery)
    return "\n".join(lines) + "\n"


# -- traces -------------------------------------------------------------------


def read_trace(path) -> List[Dict[str, Any]]:
    """Load and validate every record of a JSON-lines trace file.

    A malformed record mid-file is corruption and raises.  A malformed
    *final* record is the signature of a run killed mid-write (the trace
    writer flushes per event, so everything up to the torn line is
    intact) — it is dropped with a warning instead, which is what lets
    post-mortem tooling read the trace of a SIGKILLed run.
    """
    records = []
    bad: Optional[Tuple[int, str, ValueError]] = None
    with open(path, "r", encoding="utf-8") as fh:
        for lineno, line in enumerate(fh, start=1):
            line = line.strip()
            if not line:
                continue
            if bad is not None:
                # The malformed line was not the last one: corruption.
                raise ValueError(f"{path}:{bad[0]}: {bad[2]}") from None
            try:
                records.append(decode_event(line))
            except ValueError as exc:
                bad = (lineno, line, exc)
    if bad is not None:
        warnings.warn(
            f"{path}:{bad[0]}: dropping truncated trailing trace record "
            f"(run killed mid-write?): {bad[2]}",
            stacklevel=2,
        )
    return records


def logical_sequence(records) -> List[Tuple[str, Optional[int], Tuple]]:
    """The trace's deterministic projection — what CI diffs across
    executors (wall-clock facts stripped).

    ``worker_span`` records are excluded: their count is a property of
    the executor shape (one per worker per superstep), so a serial trace
    and an N-process parallel trace of the same run legitimately differ
    there.  Cross-*topology* span comparison (star vs peer at equal
    process counts) is ``scripts/diff_traces.py``'s separate check.
    """
    return [logical_view(r) for r in records if r["type"] != "worker_span"]


def split_runs(records) -> List[List[Dict[str, Any]]]:
    """Split a (possibly multi-run) trace on ``run_start`` markers."""
    runs: List[List[Dict[str, Any]]] = []
    for record in records:
        if record["type"] == "run_start" or not runs:
            runs.append([])
        runs[-1].append(record)
    return runs


def render_timeline(records) -> str:
    """A per-superstep phase table for one run's records.

    After fault recovery a superstep may appear twice (the replay
    re-emits it); the latest emission wins, matching the state that
    actually survived.
    """
    steps: Dict[int, Dict[str, Any]] = {}
    for record in records:
        superstep = record["superstep"]
        if superstep is None:
            continue
        row = steps.setdefault(superstep, {})
        data = record["data"]
        if record["type"] == "compute_phase":
            row["compute"] = data["compute_calls"]
            row["warp"] = data["warp_calls"]
        elif record["type"] == "scatter_phase":
            row["scatter"] = data["scatter_calls"]
            row["messages"] = data["messages"]
            row["bytes"] = data["message_bytes"]
        elif record["type"] == "superstep_end":
            row["active"] = data["active"]
            row["compute_ms"] = data["modeled_compute_s"] * 1e3
            row["messaging_ms"] = data["modeled_messaging_s"] * 1e3
        elif record["type"] == "checkpoint_write":
            row["ckpt"] = True
    header = (f"  {'step':>4s} {'compute':>8s} {'warp':>6s} {'scatter':>8s} "
              f"{'messages':>9s} {'bytes':>8s} {'active':>7s} "
              f"{'compute':>10s} {'messaging':>10s}")
    lines = [header]
    for superstep in sorted(steps):
        row = steps[superstep]
        mark = "*" if row.get("ckpt") else " "
        lines.append(
            f"  {superstep:4d} {row.get('compute', 0):8d} "
            f"{row.get('warp', 0):6d} {row.get('scatter', 0):8d} "
            f"{row.get('messages', 0):9d} {row.get('bytes', 0):8d} "
            f"{row.get('active', 0):7d} "
            f"{row.get('compute_ms', 0.0):7.3f} ms "
            f"{row.get('messaging_ms', 0.0):7.3f} ms{mark}"
        )
    if len(lines) > 1 and any(steps[s].get("ckpt") for s in steps):
        lines.append("  (* = checkpoint written at this superstep)")
    return "\n".join(lines)


def render_report(records) -> str:
    """A Table-4-style per-algorithm breakdown regenerated from a trace.

    Runs sharing (platform, algorithm, graph) — e.g. SCC's peeling
    rounds appended to one trace file — are aggregated into one row.
    """
    groups: Dict[Tuple[str, str, str], Dict[str, Any]] = {}
    order: List[Tuple[str, str, str]] = []
    for run in split_runs(records):
        start = next((r for r in run if r["type"] == "run_start"), None)
        end = next((r for r in run if r["type"] == "run_end"), None)
        if start is None or end is None:
            continue
        key = (
            start["data"]["platform"],
            start["data"]["algorithm"],
            start["data"]["graph"],
        )
        if key not in groups:
            groups[key] = {
                "runs": 0, "supersteps": 0, "compute_calls": 0,
                "scatter_calls": 0, "messages_sent": 0, "message_bytes": 0,
                "modeled_makespan_s": 0.0,
            }
            order.append(key)
        agg = groups[key]
        agg["runs"] += 1
        for field in ("supersteps", "compute_calls", "scatter_calls",
                      "messages_sent", "message_bytes", "modeled_makespan_s"):
            agg[field] += end["data"][field]
    header = (f"  {'platform':10s} {'algorithm':14s} {'graph':10s} "
              f"{'runs':>5s} {'steps':>6s} {'calls':>9s} {'messages':>9s} "
              f"{'bytes':>9s} {'makespan':>12s}")
    lines = [header]
    for key in order:
        platform, algorithm, graph = key
        agg = groups[key]
        lines.append(
            f"  {platform:10s} {algorithm:14s} {graph:10s} "
            f"{agg['runs']:5d} {agg['supersteps']:6d} "
            f"{agg['compute_calls']:9d} {agg['messages_sent']:9d} "
            f"{agg['message_bytes']:9d} "
            f"{agg['modeled_makespan_s'] * 1e3:9.3f} ms"
        )
    if len(lines) == 1:
        lines.append("  (no completed runs in trace)")
    return "\n".join(lines)


def render_workers(records) -> str:
    """Per-worker, per-phase wall-clock breakdown with imbalance ratios.

    Aggregates every ``worker_span`` record (schema v5) across the trace:
    one row per worker with its total seconds in each phase, then one
    imbalance line per phase — max over mean across workers, the
    straggler metric the paper's load-balance discussion (Table 4,
    Figs. 7–9) reasons about.  Replayed supersteps after fault recovery
    keep only their latest emission, matching ``render_timeline``.
    """
    # (superstep, worker) → phase dict; later emissions win.
    latest: Dict[Tuple[int, int], Dict[str, float]] = {}
    for record in records:
        if record["type"] != "worker_span":
            continue
        wall = record["wall"]
        latest[(record["superstep"], record["data"]["worker"])] = {
            phase: wall.get(f"{phase}_s", 0.0) for phase in WORKER_SPAN_PHASES
        }
    if not latest:
        return "  (no worker_span records in trace — schema v5 required)"
    per_worker: Dict[int, Dict[str, float]] = {}
    for (_superstep, worker), spans in latest.items():
        agg = per_worker.setdefault(
            worker, {phase: 0.0 for phase in WORKER_SPAN_PHASES}
        )
        for phase, seconds in spans.items():
            agg[phase] += seconds
    columns = (*WORKER_SPAN_PHASES, "total")

    def row(label: str, cells) -> str:
        return f"  {label:>8s}" + "".join(f" {cell:>14s}" for cell in cells)

    lines = [row("worker", columns)]
    for worker in sorted(per_worker):
        agg = per_worker[worker]
        cells = [f"{agg[phase] * 1e3:.3f} ms" for phase in WORKER_SPAN_PHASES]
        cells.append(f"{sum(agg.values()) * 1e3:.3f} ms")
        lines.append(row(str(worker), cells))

    def imbalance(values) -> str:
        mean = sum(values) / len(values)
        return f"{max(values) / mean:.2f}x" if mean > 0 else "n/a"

    ratio_cells = [
        imbalance([per_worker[w][phase] for w in per_worker])
        for phase in WORKER_SPAN_PHASES
    ]
    ratio_cells.append(
        imbalance([sum(per_worker[w].values()) for w in per_worker])
    )
    lines.append(row("max/mean", ratio_cells))
    lines.append(
        f"  ({len(latest)} spans over "
        f"{len({s for s, _ in latest})} superstep(s), "
        f"{len(per_worker)} worker(s); max/mean near 1.00x = balanced)"
    )
    return "\n".join(lines)
