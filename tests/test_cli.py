"""Tests for the command-line interface."""

import pytest

from repro.cli import main


class TestRun:
    def test_run_default(self, capsys):
        assert main(["run", "SSSP", "--dataset", "transit", "--scale", "0.3"]) == 0
        out = capsys.readouterr().out
        assert "SSSP on transit" in out
        assert "compute calls" in out
        assert "modeled makespan" in out

    def test_run_baseline_platform(self, capsys):
        assert main(["run", "BFS", "--platform", "MSB",
                     "--dataset", "gplus", "--scale", "0.3"]) == 0
        assert "MSB" in capsys.readouterr().out

    def test_bad_platform_for_algorithm(self):
        with pytest.raises(ValueError):
            main(["run", "BFS", "--platform", "TGB", "--dataset", "gplus",
                  "--scale", "0.3"])


class TestCompare:
    def test_compare_td(self, capsys):
        assert main(["compare", "EAT", "--dataset", "reddit", "--scale", "0.25"]) == 0
        out = capsys.readouterr().out
        for platform in ("GRAPHITE", "TGB", "GoFFish"):
            assert platform in out

    def test_compare_ti(self, capsys):
        assert main(["compare", "WCC", "--dataset", "gplus", "--scale", "0.25"]) == 0
        out = capsys.readouterr().out
        for platform in ("GRAPHITE", "MSB", "Chlonos"):
            assert platform in out


class TestDatasetsAndConvert:
    def test_datasets(self, capsys):
        assert main(["datasets", "--scale", "0.25"]) == 0
        out = capsys.readouterr().out
        for name in ("transit", "gplus", "twitter", "webuk"):
            assert name in out

    def test_convert_roundtrip(self, tmp_path, capsys):
        target = tmp_path / "graph.tg"
        assert main(["convert", str(target), "--dataset", "transit"]) == 0
        from repro.graph.io import load_graph

        graph = load_graph(target)
        assert graph.num_vertices == 6

    def test_unknown_command(self):
        with pytest.raises(SystemExit):
            main(["bogus"])


class TestJourneys:
    def test_journeys_transit(self, capsys):
        assert main(["journeys", "A", "E", "--dataset", "transit", "--by", "12"]) == 0
        out = capsys.readouterr().out
        assert "A --dep" in out and "E (arr" in out

    def test_no_journey(self, capsys):
        assert main(["journeys", "A", "F", "--dataset", "transit"]) == 1
        assert "no time-respecting journey" in capsys.readouterr().out

    def test_unknown_vertex(self, capsys):
        assert main(["journeys", "A", "ZZZ", "--dataset", "transit"]) == 2


class TestTrace:
    def test_trace_transit(self, capsys):
        assert main(["trace", "SSSP", "--dataset", "transit"]) == 0
        out = capsys.readouterr().out
        assert "=== superstep 1 ===" in out
        assert "scatter" in out and "send" in out

    def test_trace_restricted_vertices(self, capsys):
        assert main(["trace", "SSSP", "--dataset", "transit",
                     "--vertices", "E"]) == 0
        out = capsys.readouterr().out
        assert "compute 'E'" in out
        assert "compute 'B'" not in out
