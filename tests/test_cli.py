"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, engine_options, main


class TestRun:
    def test_run_default(self, capsys):
        assert main(["run", "SSSP", "--dataset", "transit", "--scale", "0.3"]) == 0
        out = capsys.readouterr().out
        assert "SSSP on transit" in out
        assert "compute calls" in out
        assert "modeled makespan" in out

    def test_run_baseline_platform(self, capsys):
        assert main(["run", "BFS", "--platform", "MSB",
                     "--dataset", "gplus", "--scale", "0.3"]) == 0
        assert "MSB" in capsys.readouterr().out

    def test_bad_platform_for_algorithm(self):
        with pytest.raises(ValueError):
            main(["run", "BFS", "--platform", "TGB", "--dataset", "gplus",
                  "--scale", "0.3"])


class TestCompare:
    def test_compare_td(self, capsys):
        assert main(["compare", "EAT", "--dataset", "reddit", "--scale", "0.25"]) == 0
        out = capsys.readouterr().out
        for platform in ("GRAPHITE", "TGB", "GoFFish"):
            assert platform in out

    def test_compare_ti(self, capsys):
        assert main(["compare", "WCC", "--dataset", "gplus", "--scale", "0.25"]) == 0
        out = capsys.readouterr().out
        for platform in ("GRAPHITE", "MSB", "Chlonos"):
            assert platform in out


class TestDatasetsAndConvert:
    def test_datasets(self, capsys):
        assert main(["datasets", "--scale", "0.25"]) == 0
        out = capsys.readouterr().out
        for name in ("transit", "gplus", "twitter", "webuk"):
            assert name in out

    def test_convert_roundtrip(self, tmp_path, capsys):
        target = tmp_path / "graph.tg"
        assert main(["convert", str(target), "--dataset", "transit"]) == 0
        from repro.graph.io import load_graph

        graph = load_graph(target)
        assert graph.num_vertices == 6

    def test_unknown_command(self):
        with pytest.raises(SystemExit):
            main(["bogus"])


class TestJourneys:
    def test_journeys_transit(self, capsys):
        assert main(["journeys", "A", "E", "--dataset", "transit", "--by", "12"]) == 0
        out = capsys.readouterr().out
        assert "A --dep" in out and "E (arr" in out

    def test_no_journey(self, capsys):
        assert main(["journeys", "A", "F", "--dataset", "transit"]) == 1
        assert "no time-respecting journey" in capsys.readouterr().out

    def test_unknown_vertex(self, capsys):
        assert main(["journeys", "A", "ZZZ", "--dataset", "transit"]) == 2


class TestEngineFlagConsolidation:
    """`repro run` and `repro serve` share one flag-definition site
    (``add_engine_flags``) and one parser (``engine_options``): the same
    flags must parse to the same engine options under both commands."""

    FLAGS = ["--executor", "parallel", "--processes", "3",
             "--partitioner", "greedy", "--exchange", "peer"]

    def test_run_and_serve_parse_engine_flags_identically(self):
        parser = build_parser()
        run_args = parser.parse_args(["run", "SSSP", *self.FLAGS])
        serve_args = parser.parse_args(
            ["serve", "--socket", "/tmp/x.sock", *self.FLAGS])
        assert engine_options(run_args) == engine_options(serve_args) == {
            "executor": "parallel",
            "executor_processes": 3,
            "partitioner": "greedy",
            "exchange": "peer",
        }

    def test_compare_parses_engine_flags_identically_too(self):
        parser = build_parser()
        cmp_args = parser.parse_args(["compare", "EAT", *self.FLAGS])
        run_args = parser.parse_args(["run", "EAT", *self.FLAGS])
        assert engine_options(cmp_args) == engine_options(run_args)

    def test_unset_flags_contribute_no_options(self):
        args = build_parser().parse_args(["run", "SSSP"])
        assert engine_options(args) == {}

    def test_run_only_checkpoint_flags_still_parse(self):
        args = build_parser().parse_args(
            ["run", "SSSP", "--checkpoint-every", "2",
             "--checkpoint-dir", "/tmp/ckpt"])
        options = engine_options(args)
        assert options["checkpoint_every"] == 2
        assert options["checkpoint_dir"] == "/tmp/ckpt"


class TestServeAndQuery:
    def test_serve_and_query_session(self, tmp_path, capsys):
        """A real daemon subprocess session: serve, query cold/warm,
        stats, shutdown."""
        import json
        import subprocess
        import sys
        import time

        sock = str(tmp_path / "cli.sock")
        daemon = subprocess.Popen(
            [sys.executable, "-m", "repro", "serve", "--socket", sock,
             "--dataset", "transit", "--workers", "4"],
            stdout=subprocess.PIPE, stderr=subprocess.STDOUT,
        )
        try:
            assert main(["query", "SSSP", "--socket", sock,
                         "--source", "A"]) == 0
            assert "computed" in capsys.readouterr().out
            assert main(["query", "SSSP", "--socket", sock,
                         "--source", "A"]) == 0
            assert "cache hit" in capsys.readouterr().out
            assert main(["query", "--socket", sock, "--stats"]) == 0
            stats = json.loads(capsys.readouterr().out)
            assert stats["cache_hits"] == 1
            assert main(["query", "--socket", sock, "--shutdown"]) == 0
        finally:
            try:
                daemon.wait(timeout=20)
            except subprocess.TimeoutExpired:
                daemon.kill()
                daemon.wait()
        assert daemon.returncode == 0

    def test_query_json_output(self, tmp_path, capsys):
        import json
        import subprocess
        import sys

        sock = str(tmp_path / "cli2.sock")
        daemon = subprocess.Popen(
            [sys.executable, "-m", "repro", "serve", "--socket", sock,
             "--dataset", "transit", "--workers", "4"],
            stdout=subprocess.PIPE, stderr=subprocess.STDOUT,
        )
        try:
            assert main(["query", "BFS", "--socket", sock, "--source", "A",
                         "--interval", "0", "3", "--json"]) == 0
            doc = json.loads(capsys.readouterr().out)
            assert doc["algorithm"] == "BFS"
            assert doc["vertices"]
            assert main(["query", "--socket", sock, "--shutdown"]) == 0
        finally:
            try:
                daemon.wait(timeout=20)
            except subprocess.TimeoutExpired:
                daemon.kill()
                daemon.wait()

    def test_query_without_daemon_fails_cleanly(self, tmp_path, capsys):
        assert main(["query", "BFS", "--socket",
                     str(tmp_path / "nobody.sock")]) == 1
        out = capsys.readouterr().out
        assert "query failed" in out

    def test_query_needs_algorithm_or_action(self, tmp_path, capsys):
        """An algorithm-less query against a live daemon is usage error 2."""
        import subprocess
        import sys

        sock = str(tmp_path / "cli3.sock")
        daemon = subprocess.Popen(
            [sys.executable, "-m", "repro", "serve", "--socket", sock,
             "--dataset", "transit", "--workers", "4"],
            stdout=subprocess.PIPE, stderr=subprocess.STDOUT,
        )
        try:
            assert main(["query", "--socket", sock]) == 2
            assert main(["query", "--socket", sock, "--shutdown"]) == 0
        finally:
            try:
                daemon.wait(timeout=20)
            except subprocess.TimeoutExpired:
                daemon.kill()
                daemon.wait()


class TestTrace:
    def test_trace_transit(self, capsys):
        assert main(["trace", "SSSP", "--dataset", "transit"]) == 0
        out = capsys.readouterr().out
        assert "=== superstep 1 ===" in out
        assert "scatter" in out and "send" in out

    def test_trace_restricted_vertices(self, capsys):
        assert main(["trace", "SSSP", "--dataset", "transit",
                     "--vertices", "E"]) == 0
        out = capsys.readouterr().out
        assert "compute 'E'" in out
        assert "compute 'B'" not in out
