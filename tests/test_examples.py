"""Smoke tests: every shipped example must run end to end."""

import importlib.util
import sys
from pathlib import Path

import pytest

EXAMPLES = sorted((Path(__file__).parent.parent / "examples").glob("*.py"))


@pytest.mark.parametrize("path", EXAMPLES, ids=lambda p: p.stem)
def test_example_runs(path, capsys):
    spec = importlib.util.spec_from_file_location(f"example_{path.stem}", path)
    module = importlib.util.module_from_spec(spec)
    sys.modules[spec.name] = module
    try:
        spec.loader.exec_module(module)
        module.main()
    finally:
        sys.modules.pop(spec.name, None)
    out = capsys.readouterr().out
    assert len(out) > 100, f"{path.stem} produced almost no output"


def test_examples_exist():
    assert len(EXAMPLES) >= 3, "the repo promises at least three examples"
    names = {p.stem for p in EXAMPLES}
    assert "quickstart" in names
