"""End-to-end: the one-command reproduction script produces a complete
report at a tiny scale."""

import subprocess
import sys
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent.parent


def test_reproduce_script(tmp_path):
    output = tmp_path / "report.md"
    proc = subprocess.run(
        [sys.executable, str(REPO / "scripts" / "reproduce.py"),
         "--scale", "0.25", "--output", str(output)],
        capture_output=True, text=True, timeout=900,
    )
    assert proc.returncode == 0, proc.stderr[-2000:]
    report = output.read_text()
    for heading in (
        "# Reproduction report",
        "## Fig 1",
        "## Fig 2",
        "## Fig 3",
        "## Table 1",
        "## Table 2",
        "## Fig 4",
        "## Fig 5",
        "## Fig 6a",
        "## Fig 6b",
        "## Fig 6c",
        "## Fig 7",
        "## Sec VII-B8",
        "## Ablation — message encoding",
        "## Extension — incremental streaming",
    ):
        assert heading in report, heading
    # Every section embeds an actual table, not an empty block.
    assert report.count("```") >= 2 * 16
    assert "GRAPHITE" in report or "gplus" in report
