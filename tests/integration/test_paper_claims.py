"""Integration tests for the paper's qualitative evaluation claims.

Each test pins one claim from Sec. VII at our (scaled-down) dataset sizes:
the *shape* — who wins and roughly why — not absolute numbers.
"""

import pytest

from repro.algorithms import run_algorithm
from repro.algorithms.td.sssp import TemporalSSSP
from repro.algorithms.ti.bfs import SnapshotBFS, TemporalBFS
from repro.baselines.msb import run_msb
from repro.core.engine import IntervalCentricEngine
from repro.datasets import gplus, twitter, usrn
from repro.graph.stats import dataset_stats, memory_footprint


class TestLongLifespanAdvantage:
    """Sec. VII-B3: ICM out-performs for graphs with longer lifespans."""

    def test_ti_sharing_on_twitter_surrogate(self):
        g = twitter(scale=0.5)
        icm = run_algorithm("BFS", "GRAPHITE", g)
        msb = run_algorithm("BFS", "MSB", g)
        chl = run_algorithm("BFS", "Chlonos", g)
        # Fewer compute calls *and* messages than MSB (paper: ≈27×/28×).
        assert msb.metrics.compute_calls > 3 * icm.metrics.compute_calls
        assert msb.metrics.messages_sent > 3 * icm.metrics.messages_sent
        # Chlonos shares messages but not compute.
        assert chl.metrics.compute_calls == msb.metrics.compute_calls
        assert chl.metrics.messages_sent < msb.metrics.messages_sent

    def test_td_sharing_on_twitter_surrogate(self):
        g = twitter(scale=0.5)
        icm = run_algorithm("EAT", "GRAPHITE", g)
        tgb = run_algorithm("EAT", "TGB", g)
        gof = run_algorithm("EAT", "GoFFish", g)
        assert gof.metrics.compute_calls > 2 * icm.metrics.compute_calls
        assert gof.metrics.messages_sent > 2 * icm.metrics.messages_sent
        assert tgb.metrics.compute_calls > icm.metrics.compute_calls
        # TGB pays extra replica state-transfer traffic.
        assert tgb.metrics.system_messages > 0


class TestUnitLifespanWorstCase:
    """Sec. VII-B5: no sharing is possible on unit-lifespan graphs, and all
    platforms degenerate to per-snapshot behaviour (Sec. VII-B1)."""

    def test_message_counts_match_on_gplus(self):
        g = gplus(scale=0.5)
        icm = run_algorithm("BFS", "GRAPHITE", g)
        msb = run_algorithm("BFS", "MSB", g)
        chl = run_algorithm("BFS", "Chlonos", g)
        # Identical message production: nothing spans adjacent snapshots,
        # so ICM's scatter invocations equal MSB's sends exactly.  (ICM may
        # put slightly fewer on the wire after dominated-duplicate pruning.)
        assert icm.metrics.scatter_calls == msb.metrics.messages_sent
        assert icm.metrics.messages_sent <= msb.metrics.messages_sent
        assert chl.metrics.messages_sent == msb.metrics.messages_sent
        # MSB and Chlonos have identical compute calls.
        assert chl.metrics.compute_calls == msb.metrics.compute_calls
        # ICM's calls differ only by superstep-1 consolidation (one call
        # per vertex instead of one per vertex per snapshot).
        assert icm.metrics.compute_calls <= msb.metrics.compute_calls

    def test_warp_suppression_kicks_in_on_gplus(self):
        g = gplus(scale=0.5)
        engine = IntervalCentricEngine(g, TemporalBFS("v0"))
        result = engine.run()
        assert result.metrics.warp_suppressed_vertices > 0


class TestStaticTopology:
    """Sec. VII-B6: USRN has a fixed topology; ICM's interval run matches
    single-snapshot work for TI algorithms without manual hints."""

    def test_icm_bfs_on_usrn_costs_one_snapshot(self):
        g = usrn(scale=1.0)
        icm = run_algorithm("BFS", "GRAPHITE", g)
        msb = run_algorithm("BFS", "MSB", g)
        horizon = g.time_horizon()
        # MSB re-runs every snapshot; ICM's one run is ≈ one snapshot's
        # worth of calls, i.e. about horizon× fewer.
        assert msb.metrics.compute_calls >= 0.8 * horizon * icm.metrics.compute_calls

    def test_usrn_has_large_diameter_many_supersteps(self):
        g = usrn(scale=1.0)
        icm = run_algorithm("BFS", "GRAPHITE", g)
        # Grid diameter ≈ rows+cols; far more supersteps than social graphs.
        social = run_algorithm("BFS", "GRAPHITE", twitter(scale=1.0))
        assert icm.metrics.supersteps > 2 * social.metrics.supersteps


class TestMemoryFootprint:
    """Sec. VII-B4 / Fig. 6a: the interval graph is far more compact than
    the transformed graph for large, long-lived graphs."""

    @pytest.mark.parametrize("factory", [twitter, usrn])
    def test_transformed_blowup(self, factory):
        g = factory(scale=0.4)
        sizes = memory_footprint(g)
        assert sizes["transformed"] > 2 * sizes["interval"]

    def test_gplus_transformed_modest(self):
        """Unit lifespans: the transformed graph stays comparable."""
        g = gplus(scale=0.4)
        sizes = memory_footprint(g)
        stats = dataset_stats(g, "gplus")
        assert stats.avg_edge_lifespan == 1.0
        assert sizes["transformed"] < 4 * sizes["interval"]


class TestCombinerAndSuppressionKnobs:
    """Fig. 6b/6c: the engineering optimisations help where the paper says."""

    def test_combiner_reduces_compute_time_inputs(self):
        g = twitter(scale=0.4)
        on = IntervalCentricEngine(g, TemporalSSSP("v0")).run()
        off = IntervalCentricEngine(
            g, TemporalSSSP("v0"),
            enable_warp_combiner=False, enable_receiver_combiner=False,
        ).run()
        # Same compute outcome...
        for vid in g.vertex_ids():
            assert on.states[vid].partitions() == off.states[vid].partitions()
        # ...but the combiner run folded messages and sent fewer.
        assert on.metrics.messages_sent <= off.metrics.messages_sent
        assert on.metrics.combiner_reductions > 0

    def test_suppression_reduces_warp_calls_on_gplus(self):
        g = gplus(scale=0.5)
        on = IntervalCentricEngine(g, TemporalBFS("v0")).run()
        off = IntervalCentricEngine(
            g, TemporalBFS("v0"), enable_warp_suppression=False
        ).run()
        assert on.metrics.warp_calls < off.metrics.warp_calls
        for vid in g.vertex_ids():
            assert on.states[vid].partitions() == off.states[vid].partitions()

    def test_suppression_correct_for_combiner_less_lcc(self):
        """The time-point path must also be exact for multi-tag message
        groups (LCC has no combiner to hide behind)."""
        from repro.algorithms.reference import snapshot_lcc
        from repro.algorithms.td.lcc import TemporalLCC, lcc_value
        from repro.graph.snapshots import snapshot_at

        g = gplus(scale=0.4)
        on = IntervalCentricEngine(g, TemporalLCC()).run()
        off = IntervalCentricEngine(
            g, TemporalLCC(), enable_warp_suppression=False
        ).run()
        assert on.metrics.warp_suppressed_vertices > 0
        for t in range(g.time_horizon()):
            expected = snapshot_lcc(snapshot_at(g, t))
            for vid, value in expected.items():
                assert lcc_value(on.value_at(vid, t)) == pytest.approx(value), (vid, t)
                assert lcc_value(off.value_at(vid, t)) == pytest.approx(value), (vid, t)
