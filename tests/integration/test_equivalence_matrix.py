"""Integration: every (algorithm × platform) cell runs and the platforms
produce conceptually equivalent outcomes (paper Sec. VII-B1)."""

import pytest

from repro.algorithms import (
    ALL_ALGORITHMS,
    TD_ALGORITHMS,
    TI_ALGORITHMS,
    platforms_for,
    run_algorithm,
)
from repro.datasets import reddit

GRAPH = reddit(scale=0.25)
GRAPH_NAME = "reddit-small"


@pytest.mark.parametrize("algorithm", ALL_ALGORITHMS)
def test_every_platform_runs(algorithm):
    for platform in platforms_for(algorithm):
        outcome = run_algorithm(algorithm, platform, GRAPH, graph_name=GRAPH_NAME)
        metrics = outcome.metrics
        assert metrics.compute_calls > 0, (algorithm, platform)
        assert metrics.supersteps > 0, (algorithm, platform)
        assert metrics.platform == platform or metrics.platform == "GRAPHITE"


def test_unknown_algorithm_rejected():
    with pytest.raises(ValueError):
        run_algorithm("BOGUS", "GRAPHITE", GRAPH)


def test_platform_matrix_matches_paper():
    """TI on GRAPHITE/MSB/Chlonos; TD on GRAPHITE/TGB/GoFFish."""
    for algorithm in TI_ALGORITHMS:
        assert platforms_for(algorithm) == ("GRAPHITE", "MSB", "Chlonos")
        with pytest.raises(ValueError):
            run_algorithm(algorithm, "TGB", GRAPH)
    for algorithm in TD_ALGORITHMS:
        assert platforms_for(algorithm) == ("GRAPHITE", "TGB", "GoFFish")
        with pytest.raises(ValueError):
            run_algorithm(algorithm, "MSB", GRAPH)


class TestCrossPlatformEquivalence:
    """Sample result agreement through the runner layer (the per-algorithm
    suites verify against references exhaustively; here we pin the runner's
    own wiring — sources, targets, reversals — to be consistent)."""

    def test_bfs_values_agree(self):
        icm = run_algorithm("BFS", "GRAPHITE", GRAPH)
        msb = run_algorithm("BFS", "MSB", GRAPH)
        chl = run_algorithm("BFS", "Chlonos", GRAPH)
        horizon = GRAPH.time_horizon()
        for vid in GRAPH.vertex_ids():
            for t in range(horizon):
                assert (
                    icm.result.value_at(vid, t)
                    == msb.result.values[t][vid]
                    == chl.result.values[t][vid]
                ), (vid, t)

    def test_sssp_values_agree(self):
        from repro.algorithms.td.sssp import INFINITY

        icm = run_algorithm("SSSP", "GRAPHITE", GRAPH)
        tgb = run_algorithm("SSSP", "TGB", GRAPH)
        gof = run_algorithm("SSSP", "GoFFish", GRAPH)
        horizon = GRAPH.time_horizon()
        for vid in GRAPH.vertex_ids():
            for t in range(horizon):
                expected = icm.result.value_at(vid, t)
                assert tgb.result.pointwise(vid, t, default=INFINITY) == expected
                assert gof.result.value_at(vid, t, default=INFINITY) == expected

    def test_lcc_values_agree(self):
        from repro.algorithms.td.lcc import lcc_value

        icm = run_algorithm("LCC", "GRAPHITE", GRAPH)
        tgb = run_algorithm("LCC", "TGB", GRAPH)
        horizon = GRAPH.time_horizon()
        for vid in GRAPH.vertex_ids():
            for t in range(horizon):
                assert lcc_value(icm.result.value_at(vid, t)) == pytest.approx(
                    lcc_value(tgb.result.replica_values.get((vid, t)))
                ), (vid, t)
