"""Tests for the streaming (incremental) ICM engine.

Core contract: after any sequence of appends, ``compute()`` returns
states pointwise-identical to a from-scratch run on the final graph —
while touching far less than the whole graph.
"""

import random

import pytest

from repro.algorithms.td.eat import TemporalEAT
from repro.algorithms.td.sssp import TemporalSSSP
from repro.algorithms.ti.pagerank import SnapshotPageRank, TemporalPageRank
from repro.core.engine import IntervalCentricEngine
from repro.core.state import states_equal_pointwise
from repro.graph.builder import TemporalGraphBuilder
from repro.streaming import StreamingIntervalEngine

HORIZON = 12


def full_run(graph, program):
    return IntervalCentricEngine(graph, program).run()


class TestBasics:
    def test_rejects_non_monotone_programs(self):
        b = TemporalGraphBuilder()
        b.add_vertex("a")
        g = b.build()
        with pytest.raises(ValueError, match="incremental_safe"):
            StreamingIntervalEngine(TemporalPageRank(g))

    def test_first_compute_is_full_run(self):
        stream = StreamingIntervalEngine(TemporalSSSP("a"))
        stream.add_vertex("a", 0, HORIZON)
        stream.add_vertex("b", 0, HORIZON)
        stream.add_edge("a", "b", 1, 4, props={"travel-cost": 2, "travel-time": 1})
        result = stream.compute()
        assert result.value_at("b", 5) == 2
        assert stream.refreshes == 0

    def test_constraint_checks(self):
        stream = StreamingIntervalEngine(TemporalSSSP("a"))
        stream.add_vertex("a", 0, 5)
        with pytest.raises(ValueError, match="constraint 1"):
            stream.add_vertex("a")
        with pytest.raises(ValueError, match="unknown vertex"):
            stream.add_edge("a", "zzz")
        with pytest.raises(ValueError, match="constraint 2"):
            stream.add_edge("a", "a", 0, 9)

    def test_engine_options_validated_at_construction(self):
        # Regression: a typo'd option used to surface only when compute()
        # built its engine — possibly many appends later.
        with pytest.raises(TypeError, match="unknown engine option"):
            StreamingIntervalEngine(TemporalSSSP("a"), chekpoint_every=3)
        with pytest.raises(ValueError, match="partitioner kind"):
            StreamingIntervalEngine(TemporalSSSP("a"), partitioner="metis")

    def test_valid_engine_options_accepted(self):
        stream = StreamingIntervalEngine(TemporalSSSP("a"), checkpoint_every=0)
        stream.add_vertex("a", 0, HORIZON)
        assert stream.compute().value_at("a", 1) == 0

    def test_pending_updates_counter(self):
        stream = StreamingIntervalEngine(TemporalSSSP("a"))
        stream.add_vertex("a", 0, HORIZON)
        stream.add_vertex("b", 0, HORIZON)
        stream.compute()
        stream.add_edge("a", "b", 0, 2)
        assert stream.pending_updates == 1
        stream.compute()
        assert stream.pending_updates == 0


class TestIncrementalEquivalence:
    def _stream_vs_scratch(self, seed, program_factory, checkpoints=4):
        """Random append stream; after each checkpoint compare with a
        from-scratch run on the same graph."""
        rng = random.Random(seed)
        n = 8
        stream = StreamingIntervalEngine(program_factory())
        for i in range(n):
            stream.add_vertex(f"v{i}", 0, HORIZON)
        for checkpoint in range(checkpoints):
            for _ in range(rng.randint(1, 5)):
                src = rng.randrange(n)
                dst = rng.randrange(n)
                if dst == src:
                    dst = (dst + 1) % n
                start = rng.randrange(HORIZON - 1)
                end = rng.randint(start + 1, HORIZON)
                stream.add_edge(
                    f"v{src}", f"v{dst}", start, end,
                    props={"travel-cost": rng.randint(1, 3), "travel-time": 1},
                )
            incremental = stream.compute()
            scratch = full_run(stream.graph, program_factory())
            for vid in stream.graph.vertex_ids():
                assert states_equal_pointwise(
                    incremental.states[vid], scratch.states[vid]
                ), (seed, checkpoint, vid)

    @pytest.mark.parametrize("seed", [1, 2, 3, 4, 5, 6])
    def test_sssp_streams_match_scratch(self, seed):
        self._stream_vs_scratch(seed, lambda: TemporalSSSP("v0"))

    @pytest.mark.parametrize("seed", [7, 8, 9])
    def test_eat_streams_match_scratch(self, seed):
        self._stream_vs_scratch(seed, lambda: TemporalEAT("v0"))

    def test_new_vertices_incrementally(self):
        stream = StreamingIntervalEngine(TemporalSSSP("a"))
        stream.add_vertex("a", 0, HORIZON)
        stream.add_vertex("b", 0, HORIZON)
        stream.add_edge("a", "b", 0, 5, props={"travel-cost": 1, "travel-time": 1})
        stream.compute()
        # A vertex arriving later, immediately wired in.
        stream.add_vertex("c", 0, HORIZON)
        stream.add_edge("b", "c", 3, 8, props={"travel-cost": 2, "travel-time": 1})
        result = stream.compute()
        scratch = full_run(stream.graph, TemporalSSSP("a"))
        for vid in ("a", "b", "c"):
            assert states_equal_pointwise(result.states[vid], scratch.states[vid])

    def test_refresh_touches_less_than_scratch(self):
        """The economics: a refresh after one new edge must cost far fewer
        compute calls than recomputing the whole graph."""
        stream = StreamingIntervalEngine(TemporalSSSP("v0"))
        n = 30
        for i in range(n):
            stream.add_vertex(f"v{i}", 0, HORIZON)
        for i in range(n - 1):
            stream.add_edge(f"v{i}", f"v{i + 1}", 0, HORIZON,
                            props={"travel-cost": 1, "travel-time": 1})
        stream.compute()
        scratch_calls = full_run(stream.graph, TemporalSSSP("v0")).metrics.compute_calls
        # Append one fringe edge near the end of the chain.
        stream.add_edge("v27", "v29", 2, 6, props={"travel-cost": 1, "travel-time": 1})
        refresh = stream.compute()
        assert refresh.metrics.compute_calls < scratch_calls / 3

    def test_cumulative_metrics(self):
        stream = StreamingIntervalEngine(TemporalEAT("a"))
        stream.add_vertex("a", 0, HORIZON)
        stream.add_vertex("b", 0, HORIZON)
        stream.compute()
        first_total = stream.total_metrics.compute_calls
        stream.add_edge("a", "b", 0, 4, props={"travel-time": 1})
        stream.compute()
        assert stream.refreshes == 1
        assert stream.total_metrics.compute_calls > first_total
