"""Invariants of the metrics bookkeeping across engines and platforms."""

import pytest

from repro.algorithms import ALL_ALGORITHMS, platforms_for, run_algorithm
from repro.datasets import reddit

GRAPH = reddit(scale=0.25)


@pytest.mark.parametrize("algorithm", ["BFS", "PR", "SSSP", "EAT", "LCC"])
def test_icm_makespan_decomposes(algorithm):
    """modeled makespan = modeled compute + messaging + barriers (ICM)."""
    metrics = run_algorithm(algorithm, "GRAPHITE", GRAPH).metrics
    total = metrics.modeled_compute_time + metrics.messaging_time + metrics.barrier_time
    assert metrics.modeled_makespan == pytest.approx(total, rel=1e-9)


@pytest.mark.parametrize("algorithm", ["BFS", "SSSP"])
def test_superstep_details_sum_to_totals(algorithm):
    metrics = run_algorithm(algorithm, "GRAPHITE", GRAPH).metrics
    detail = metrics.supersteps_detail
    assert len(detail) == metrics.supersteps
    assert sum(s.compute_calls for s in detail) == metrics.compute_calls
    assert sum(s.scatter_calls for s in detail) == metrics.scatter_calls
    assert sum(s.messages for s in detail) == metrics.messages_sent
    assert sum(s.messaging_time for s in detail) == pytest.approx(metrics.messaging_time)
    assert sum(s.max_worker_compute_time for s in detail) == pytest.approx(
        metrics.modeled_compute_time
    )


def test_local_plus_remote_equals_total_everywhere():
    for algorithm in ALL_ALGORITHMS:
        for platform in platforms_for(algorithm):
            metrics = run_algorithm(algorithm, platform, GRAPH).metrics
            assert (
                metrics.local_messages + metrics.remote_messages
                == metrics.total_messages
            ), (algorithm, platform)
            assert metrics.message_bytes >= metrics.total_messages, (
                algorithm, platform)  # every message costs ≥ 1 byte


def test_scatter_calls_bound_messages_for_icm():
    """ICM messages come only from scatter returns (plus direct sends),
    and coalescing/domination can only shrink them."""
    for algorithm in ("SSSP", "EAT", "RH", "TMST", "BFS"):
        metrics = run_algorithm(algorithm, "GRAPHITE", GRAPH).metrics
        assert metrics.messages_sent <= metrics.scatter_calls, algorithm


def test_wall_clock_fields_populated():
    metrics = run_algorithm("SSSP", "GRAPHITE", GRAPH).metrics
    assert metrics.makespan > 0
    assert metrics.compute_plus_time > 0
    assert metrics.load_time >= 0
