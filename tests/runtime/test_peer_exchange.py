"""Peer-to-peer barrier exchange: configuration, recovery, and combining.

The exchange data plane (`repro.runtime.executor` + ``ExchangeConfig``)
must be invisible to results: star and peer topologies, with combining on
or off, all produce states, aggregates, counters and modeled times bitwise
identical to serial — including across a worker SIGKILLed *mid exchange*,
after some of its batches are already on the wire (the hardest recovery
window: part of the superstep's traffic exists, the rest never will).
"""

import json

import pytest

from repro.algorithms import run_algorithm
from repro.core.config import EngineConfig, ExchangeConfig
from repro.core.engine import IntervalCentricEngine
from repro.datasets import transit_graph
from repro.runtime.checkpoint import (
    EXCHANGE_FINGERPRINT,
    CheckpointError,
    latest_checkpoint,
)
from repro.runtime.cluster import SimulatedCluster
from repro.runtime.executor import ParallelExecutor
from repro.runtime.faults import FaultPlan

EXACT_FIELDS = (
    "supersteps",
    "compute_calls",
    "scatter_calls",
    "messages_sent",
    "message_bytes",
    "local_messages",
    "remote_messages",
    "local_message_bytes",
    "remote_message_bytes",
    "combiner_reductions",
    "modeled_makespan",
    "modeled_compute_time",
    "messaging_time",
    "barrier_time",
)


def _partitions(result):
    states = result.components if hasattr(result, "components") else result.states
    return {vid: list(state) for vid, state in states.items()}


def _run(algorithm, *, resume_from=None, **icm_options):
    return run_algorithm(
        algorithm, "GRAPHITE", transit_graph(),
        cluster=SimulatedCluster(5), graph_name="transit",
        icm_options=icm_options or {"executor": "serial"},
        resume_from=resume_from,
    )


def _assert_identical(ref, other):
    assert _partitions(ref.result) == _partitions(other.result)
    if hasattr(ref.result, "aggregates"):
        assert ref.result.aggregates == other.result.aggregates
    for fld in EXACT_FIELDS:
        assert getattr(ref.metrics, fld) == getattr(other.metrics, fld), fld


# -- configuration surface -----------------------------------------------------


def test_exchange_config_rejects_unknown_topology():
    with pytest.raises(ValueError, match="ring.*star, peer"):
        ExchangeConfig(topology="ring")


def test_env_exchange_topology(monkeypatch):
    monkeypatch.setenv("REPRO_EXCHANGE", "peer")
    assert EngineConfig.from_env().exchange.topology == "peer"
    monkeypatch.delenv("REPRO_EXCHANGE")
    assert EngineConfig.from_env().exchange.topology == "star"


def test_env_exchange_rejects_typo(monkeypatch):
    monkeypatch.setenv("REPRO_EXCHANGE", "mesh")
    with pytest.raises(ValueError, match="REPRO_EXCHANGE"):
        EngineConfig.from_env()


def test_exchange_options_flow_to_executor():
    cfg = EngineConfig().with_options(exchange="peer", exchange_combine=False)
    assert cfg.exchange == ExchangeConfig(topology="peer", combine=False)


# -- equivalence with combining off -------------------------------------------


@pytest.mark.parametrize("topology", ("star", "peer"))
def test_combining_off_still_bit_identical(topology):
    ref = _run("SSSP")
    plain = _run(
        "SSSP", executor="parallel", executor_processes=2,
        exchange=topology, exchange_combine=False,
    )
    _assert_identical(ref, plain)


def test_combining_cuts_wire_bytes_on_peer():
    """The point of the tentpole: the same run ships fewer real bytes with
    sender-side combining than without, and ``exchange_raw_bytes`` (what an
    uncombined wire would carry) is invariant.  The transit graph is too
    sparse for two same-(dst, interval) messages to meet in one sender
    process, so this uses the denser twitter surrogate."""
    from repro.datasets import load_surrogate

    graph = load_surrogate("twitter", scale=0.3)

    def _go(combine):
        return run_algorithm(
            "BFS", "GRAPHITE", graph,
            cluster=SimulatedCluster(8), graph_name="twitter",
            icm_options={
                "executor": "parallel", "executor_processes": 2,
                "exchange": "peer", "exchange_combine": combine,
            },
        )

    combined = _go(True)
    plain = _go(False)
    assert combined.metrics.exchange_raw_bytes == plain.metrics.exchange_raw_bytes
    assert combined.metrics.exchange_bytes < plain.metrics.exchange_bytes


# -- mid-exchange death --------------------------------------------------------


@pytest.mark.parametrize("topology", ("star", "peer"))
@pytest.mark.parametrize("algorithm", ("BFS", "SSSP", "PR"))
def test_killed_mid_exchange_recovers_bit_identical(algorithm, topology, tmp_path):
    """SIGKILL between the first and last outbound batch of a superstep.

    The victim dies with its batches partially shipped (peer: first frame
    already at its peer; star: batches encoded, report never sent).
    Rollback must discard the half-delivered exchange entirely and replay
    to results bitwise identical to an uninterrupted serial run.
    """
    ref = _run(algorithm)
    for superstep in sorted({2, ref.metrics.supersteps}):
        plan = FaultPlan.parse(f"kill:{superstep % 2}@{superstep}:exchange")
        executor = ParallelExecutor(
            processes=2, fault_plan=plan,
            exchange=ExchangeConfig(topology=topology),
        )
        crashed = _run(
            algorithm,
            executor=executor,
            checkpoint_every=1,
            checkpoint_dir=str(tmp_path / f"{topology}-{superstep}"),
        )
        _assert_identical(ref, crashed)
        assert plan.pending() == 0, "the exchange-phase kill never fired"
        assert crashed.metrics.recovery.restarts >= 1


def test_checkpoints_are_topology_portable(tmp_path):
    """A checkpoint written under the peer topology resumes under star (and
    serial) — the manifest's exchange fingerprint names the wire format,
    not the topology."""
    full = _run(
        "SSSP", executor="parallel", executor_processes=2, exchange="peer",
        checkpoint_every=2, checkpoint_dir=str(tmp_path),
    )
    ckpt = latest_checkpoint(tmp_path)
    assert ckpt is not None
    manifest = json.loads((ckpt / "manifest.json").read_text())
    assert manifest["exchange"] == EXCHANGE_FINGERPRINT
    for opts in (
        {"executor": "serial"},
        {"executor": "parallel", "executor_processes": 2, "exchange": "star"},
    ):
        resumed = _run("SSSP", resume_from=str(ckpt), **opts)
        _assert_identical(full, resumed)


def test_resume_refuses_incompatible_exchange_fingerprint(tmp_path):
    """A manifest claiming a different routed-batch wire version is refused
    with both versions named, before any shard is decoded."""
    _run(
        "SSSP", executor="serial",
        checkpoint_every=2, checkpoint_dir=str(tmp_path),
    )
    ckpt = latest_checkpoint(tmp_path)
    manifest_path = ckpt / "manifest.json"
    manifest = json.loads(manifest_path.read_text())
    manifest["exchange"] = "routed-batch-v1"
    manifest_path.write_text(json.dumps(manifest, indent=1, sort_keys=True))
    with pytest.raises(CheckpointError, match="routed-batch-v1.*routed-batch-v2"):
        _run("SSSP", executor="serial", resume_from=str(ckpt))


def test_peer_exchange_ships_fewer_report_bytes_than_star():
    """Peer frames replace the pickled batch payloads inside step reports;
    the measured exchange byte total must stay in the same ballpark (same
    batches, same wire format) while the raw/combined split is identical."""
    star = _run(
        "SSSP", executor="parallel", executor_processes=2, exchange="star",
    )
    peer = _run(
        "SSSP", executor="parallel", executor_processes=2, exchange="peer",
    )
    assert star.metrics.exchange_raw_bytes == peer.metrics.exchange_raw_bytes
    # star counts encoded batch bytes, peer counts sent frames (one per
    # peer per superstep, empty frames included) — both nonzero here.
    assert star.metrics.exchange_bytes > 0
    assert peer.metrics.exchange_bytes > 0
