"""Superstep lifecycle guards and the ``model_network=False`` fast path."""

import pytest

from repro.core.messages import message
from repro.runtime.cluster import ClusterLifecycleError, SimulatedCluster
from repro.runtime.metrics import RunMetrics


class TestLifecycleGuards:
    def test_send_outside_superstep(self):
        cluster = SimulatedCluster(2)
        with pytest.raises(ClusterLifecycleError, match="outside an open superstep"):
            cluster.send("a", "b", message(0, 1, 5), RunMetrics())

    def test_begin_twice(self):
        cluster = SimulatedCluster(2)
        cluster.begin_superstep(1)
        with pytest.raises(ClusterLifecycleError, match="still open"):
            cluster.begin_superstep(2)

    def test_end_without_begin(self):
        cluster = SimulatedCluster(2)
        with pytest.raises(ClusterLifecycleError, match="without begin_superstep"):
            cluster.end_superstep(RunMetrics())

    def test_compute_accounting_outside_superstep(self):
        cluster = SimulatedCluster(2)
        with pytest.raises(ClusterLifecycleError):
            cluster.add_compute_time("a", 1.0)
        with pytest.raises(ClusterLifecycleError):
            cluster.add_shard_compute(0, 1.0)
        with pytest.raises(ClusterLifecycleError):
            cluster.record_traffic(RunMetrics(), app=1)

    def test_reset_recovers_crashed_run(self):
        cluster = SimulatedCluster(2)
        metrics = RunMetrics()
        cluster.begin_superstep(1)
        cluster.send("a", "b", message(0, 1, 5), metrics)
        # The run dies before end_superstep; reset() discards the open step
        # and its queued messages so the next run starts clean.
        cluster.reset()
        inboxes = cluster.begin_superstep(1)
        assert inboxes == {}
        assert not cluster.has_pending_messages()
        cluster.end_superstep(metrics)

    def test_is_a_runtime_error(self):
        assert issubclass(ClusterLifecycleError, RuntimeError)


class TestModelNetworkDisabled:
    def test_counts_kept_but_no_bytes(self):
        cluster = SimulatedCluster(2, model_network=False)
        metrics = RunMetrics()
        cluster.begin_superstep(1)
        cluster.send("a", "b", message(0, 1, 5), metrics)
        cluster.send("a", "a", message(0, 1, 6), metrics)
        step = cluster.end_superstep(metrics)
        assert metrics.messages_sent == 2
        assert metrics.local_messages + metrics.remote_messages == 2
        assert metrics.message_bytes == 0
        assert step.bytes == 0

    def test_no_transfer_or_barrier_charges(self):
        cluster = SimulatedCluster(2, model_network=False)
        metrics = RunMetrics()
        cluster.begin_superstep(1)
        cluster.send("a", "b", message(0, 1, 5), metrics)
        step = cluster.end_superstep(metrics)
        assert step.messaging_time == 0.0
        assert metrics.barrier_time == 0.0
        assert metrics.modeled_makespan == step.max_worker_compute_time

    def test_record_traffic_respects_flag(self):
        cluster = SimulatedCluster(2, model_network=False)
        metrics = RunMetrics()
        cluster.begin_superstep(1)
        cluster.record_traffic(metrics, app=3, local=1, remote=2,
                               bytes_total=100, bytes_remote=60)
        step = cluster.end_superstep(metrics)
        assert metrics.messages_sent == 3
        assert metrics.message_bytes == 0
        assert step.bytes == 0

    def test_engine_runs_with_network_disabled(self):
        from repro.algorithms.ti.bfs import TemporalBFS
        from repro.core.engine import IntervalCentricEngine
        from repro.datasets import transit_graph

        graph = transit_graph()
        source = graph.vertex_ids()[0]

        def run(**kwargs):
            return IntervalCentricEngine(
                graph, TemporalBFS(source),
                cluster=SimulatedCluster(4, model_network=False), **kwargs
            ).run()

        serial = run()
        parallel = run(executor="parallel", executor_processes=2)
        assert serial.metrics.message_bytes == 0
        assert parallel.metrics.message_bytes == 0
        assert serial.metrics.barrier_time == 0.0
        assert {v: list(s) for v, s in serial.states.items()} == \
               {v: list(s) for v, s in parallel.states.items()}
        assert serial.metrics.modeled_makespan == parallel.metrics.modeled_makespan
