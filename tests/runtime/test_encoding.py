"""Tests for the varint wire encoding (paper Sec. VI, interval messages)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.interval import FOREVER, Interval
from repro.core.messages import IntervalMessage, message
from repro.runtime.encoding import (
    ROUTED_BATCH_FORMAT,
    _decode_routed_entries,
    decode_interval,
    decode_message,
    decode_payload,
    decode_routed_batch,
    decode_varint,
    encode_interval,
    encode_message,
    encode_payload,
    encode_routed_batch,
    encode_varint,
    encoded_message_size,
    interval_size,
    payload_size,
    routed_entry_size,
    varint_size,
)


class TestVarint:
    @pytest.mark.parametrize("n", [0, 1, 127, 128, 300, 2**20, 2**62])
    def test_roundtrip(self, n):
        value, offset = decode_varint(encode_varint(n))
        assert value == n

    @pytest.mark.parametrize("n,size", [(0, 1), (127, 1), (128, 2), (2**14, 3)])
    def test_size(self, n, size):
        assert varint_size(n) == size
        assert len(encode_varint(n)) == size

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            encode_varint(-1)


class TestIntervalCodec:
    @pytest.mark.parametrize("iv", [
        Interval(0, 1), Interval(5, 6), Interval(3, 100),
        Interval(0), Interval(12345),
    ])
    def test_roundtrip(self, iv):
        decoded, _ = decode_interval(encode_interval(iv))
        assert decoded == iv

    def test_unit_interval_saves_end_point(self):
        """Unit-length intervals transmit one time-point plus a flag."""
        assert interval_size(Interval(5, 6)) < interval_size(Interval(5, 600))

    def test_unbounded_interval_saves_end_point(self):
        """'Those that span till ∞' pass just the start and a flag,
        saving the 8-byte long (paper Sec. VI)."""
        assert interval_size(Interval(5)) == interval_size(Interval(5, 6))

    def test_fixed_width_mode_is_16_bytes(self):
        assert interval_size(Interval(3, 9), varint=False) == 16

    def test_size_matches_encoding(self):
        for iv in [Interval(0, 1), Interval(7), Interval(2, 900)]:
            assert interval_size(iv) == len(encode_interval(iv))


class TestPayloadCodec:
    @pytest.mark.parametrize("value", [
        None, True, False, 0, 42, -17, 3.5, "hello", "",
        (1, 2, 3), ("a", (2, False), None), FOREVER,
        FOREVER + 1, FOREVER + 12345, 2 * FOREVER, FOREVER**2,
    ])
    def test_roundtrip(self, value):
        decoded, _ = decode_payload(encode_payload(value))
        if isinstance(value, list):
            value = tuple(value)
        assert decoded == value

    def test_big_int_is_not_clamped_to_forever(self):
        """Regression: any int above FOREVER used to decode as exactly
        FOREVER, silently corrupting e.g. FOREVER + weight cost sums."""
        for value in (FOREVER + 1, FOREVER + 7, FOREVER + 2**40):
            decoded, _ = decode_payload(encode_payload(value))
            assert decoded == value

    def test_unsupported_type(self):
        with pytest.raises(TypeError):
            encode_payload({"a": 1})

    def test_size_matches_encoding(self):
        for value in [None, 42, -3, 2.5, "xyz", (1, "a", None)]:
            assert payload_size(value) == len(encode_payload(value))


class TestMessageCodec:
    def test_roundtrip(self):
        msg = message(4, 9, (3, "B"))
        assert decode_message(encode_message(msg)) == msg

    def test_trailing_bytes_rejected(self):
        raw = encode_message(message(0, 1, 5)) + b"\x00"
        with pytest.raises(ValueError):
            decode_message(raw)

    def test_varint_shrinks_messages_substantially(self):
        """The headline claim: message sizes drop 59-78% with varints.

        For the dominant message shape (small interval + small int cost),
        the varint layout must cut the fixed-width size by at least half.
        """
        msgs = [message(t, t + 1, t % 9) for t in range(64)]
        msgs += [IntervalMessage(Interval(t), t % 9) for t in range(64)]
        varint_bytes = sum(encoded_message_size(m, varint=True) for m in msgs)
        fixed_bytes = sum(encoded_message_size(m, varint=False) for m in msgs)
        drop = 1 - varint_bytes / fixed_bytes
        assert 0.5 < drop < 0.95


@given(
    st.integers(min_value=0, max_value=2**40),
    st.one_of(st.just(None), st.integers(min_value=1, max_value=2**20)),
)
@settings(max_examples=200, deadline=None)
def test_interval_roundtrip_property(start, length):
    iv = Interval(start, FOREVER if length is None else start + length)
    decoded, consumed = decode_interval(encode_interval(iv))
    assert decoded == iv
    assert consumed == interval_size(iv)


payloads = st.recursive(
    st.one_of(
        st.none(),
        st.booleans(),
        # The full int range, including "infinite cost" sums above FOREVER
        # (e.g. FOREVER + weight in SSSP/EAT) and their negatives.
        st.integers(min_value=-(2**80), max_value=2**80),
        st.integers(min_value=FOREVER - 4, max_value=FOREVER + 2**20),
        st.floats(allow_nan=False, allow_infinity=False),
        st.text(max_size=20),
    ),
    lambda inner: st.tuples(inner, inner),
    max_leaves=6,
)


@given(payloads)
@settings(max_examples=300, deadline=None)
def test_payload_roundtrip_property(value):
    decoded, consumed = decode_payload(encode_payload(value))
    assert decoded == value
    assert consumed == payload_size(value)


def test_fixed_width_mode_charges_full_length_prefixes():
    """Regression: fixed-width mode used to charge varint-sized length
    prefixes for strings and tuples, understating the baseline the paper's
    59–78% byte-drop claim is measured against."""
    assert payload_size("abc", varint=False) == 1 + 8 + 3
    assert payload_size((1, 2), varint=False) == 1 + 8 + 2 * (1 + 8)
    assert payload_size((), varint=False) == 1 + 8


@given(
    st.integers(min_value=0, max_value=2**40),
    st.one_of(st.just(None), st.integers(min_value=1, max_value=2**20)),
    payloads,
)
@settings(max_examples=200, deadline=None)
def test_message_roundtrip_property(start, length, value):
    msg = IntervalMessage(
        Interval(start, FOREVER if length is None else start + length), value
    )
    decoded = decode_message(encode_message(msg))
    assert decoded == msg
    assert len(encode_message(msg)) == encoded_message_size(msg)


# -- routed batches (wire format 2) -------------------------------------------

_SCAN_S = 5e-7  # ComputeModel.per_message_scan_s default

routed_entries = st.lists(
    st.tuples(
        st.integers(min_value=0, max_value=2**40),  # sender seq
        payloads,                                   # destination vertex id
        st.integers(min_value=0, max_value=2**30),  # interval start
        st.integers(min_value=1, max_value=2**20),  # interval length
        payloads,                                   # message value
        st.integers(min_value=1, max_value=2**20),  # raw message count
    ),
    max_size=30,
)


def _build_entries(raw):
    """Mixed 3-tuple (count 1) and 5-tuple (combined) routed entries, with
    the charge the sender would compute: ``count * per_message_scan_s``."""
    entries = []
    for seq, dst, start, length, value, count in raw:
        msg = IntervalMessage(Interval(start, start + length), value)
        if count == 1:
            entries.append((seq, dst, msg))
        else:
            entries.append((seq, dst, msg, count, count * _SCAN_S))
    return entries


@given(routed_entries)
@settings(max_examples=200, deadline=None)
def test_routed_batch_roundtrip_property(raw):
    entries = _build_entries(raw)
    buf = encode_routed_batch(entries)
    assert buf[0] == ROUTED_BATCH_FORMAT
    decoded = decode_routed_batch(buf)
    assert decoded == entries
    # Combined entries must carry their exact float charge through the wire
    # (struct '<d' is lossless) and it must equal count x scan cost — the
    # receiver recomputes the charge from the integer count, and the tests
    # here pin that both spellings agree bit-for-bit.
    for entry in decoded:
        if len(entry) == 5:
            assert entry[4] == entry[3] * _SCAN_S


@given(routed_entries)
@settings(max_examples=100, deadline=None)
def test_routed_batch_decodes_from_offset_in_larger_buffer(raw):
    """The peer exchange decodes frames out of an oversized reusable
    receive buffer: decode must honour the offset and report where the
    batch ended instead of demanding an exact-length buffer."""
    entries = _build_entries(raw)
    frame = encode_routed_batch(entries)
    buf = bytearray(b"\xff" * 7)
    buf += frame
    buf += b"\xee" * 11
    decoded, end = _decode_routed_entries(buf, 7)
    assert decoded == entries
    assert end == 7 + len(frame)


def test_routed_batch_rejects_old_format_naming_both_versions():
    """A format-1 batch (no leading format byte — its first byte is the
    entry-count varint) must be refused with both wire versions named, not
    misdecoded."""
    legacy_first_byte = bytes([1])  # count varint of a 1-entry v1 batch
    with pytest.raises(ValueError, match=r"format 1.*format 2|format 2.*format 1"):
        decode_routed_batch(legacy_first_byte + b"\x00" * 8)


def test_routed_batch_rejects_future_format():
    with pytest.raises(ValueError, match="format 7"):
        decode_routed_batch(bytes([7]) + b"\x00" * 4)


def test_routed_batch_rejects_trailing_bytes():
    buf = encode_routed_batch([(0, "v1", message(0, 1, 5))]) + b"\x00"
    with pytest.raises(ValueError, match="trailing"):
        decode_routed_batch(buf)


def test_routed_entry_size_matches_uncombined_encoding():
    """``routed_entry_size`` is the per-entry byte accounting behind
    ``exchange_raw_bytes``: it must equal exactly what one uncombined
    3-tuple entry contributes to an encoded batch."""
    entries = [
        (7, "stop:42", message(3, 9, 14)),
        (123456, ("line", 8), IntervalMessage(Interval(0, 2**20), -5.5)),
    ]
    for entry in entries:
        alone = len(encode_routed_batch([entry]))
        empty = len(encode_routed_batch([]))
        assert routed_entry_size(*entry) == alone - empty
