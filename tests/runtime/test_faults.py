"""FaultPlan semantics and the worker-failure taxonomy."""

import pickle

import pytest

from repro.runtime.faults import FaultAction, FaultPlan, WorkerDiedError


class TestFaultPlan:
    def test_kill_single(self):
        plan = FaultPlan.kill(2, 5)
        assert plan.actions == [FaultAction(2, 5)]

    def test_victims_fire_once(self):
        plan = FaultPlan.kill(1, 3)
        assert plan.victims(2, 4) == []
        assert plan.victims(3, 4) == [1]
        # the replay of superstep 3 must not re-kill the respawned worker
        assert plan.victims(3, 4) == []
        assert plan.pending() == 0

    def test_victims_wrap_modulo_process_count(self):
        assert FaultPlan.kill(5, 1).victims(1, 2) == [1]

    def test_same_superstep_kills_dedupe(self):
        plan = FaultPlan([FaultAction(0, 2), FaultAction(2, 2)])
        assert plan.victims(2, 2) == [0]

    def test_seeded_is_deterministic(self):
        a = FaultPlan.seeded(42, kills=2)
        b = FaultPlan.seeded(42, kills=2)
        assert [(x.worker, x.superstep) for x in a.actions] == [
            (x.worker, x.superstep) for x in b.actions
        ]
        supersteps = [x.superstep for x in a.actions]
        assert len(set(supersteps)) == 2
        assert all(2 <= s <= 6 for s in supersteps)

    def test_parse_kill_specs(self):
        plan = FaultPlan.parse("kill:1@3,0@5")
        assert [(a.worker, a.superstep) for a in plan.actions] == [(1, 3), (0, 5)]

    def test_parse_seed(self):
        assert FaultPlan.parse("seed:7").actions == FaultPlan.seeded(7).actions

    @pytest.mark.parametrize("spec", ["", "kill", "kill:1", "kill:a@b",
                                      "seed:x", "chaos:1@2"])
    def test_parse_rejects_garbage(self, spec):
        # every rejection names the offending spec so the env var is
        # diagnosable from the traceback alone
        with pytest.raises(ValueError, match="fault plan|kill spec"):
            FaultPlan.parse(spec)

    def test_repr_marks_fired(self):
        plan = FaultPlan.kill(1, 3)
        plan.victims(3, 2)
        assert "1@3*" in repr(plan)


class TestWorkerDiedError:
    def test_message_names_worker_and_superstep(self):
        err = WorkerDiedError(worker=2, superstep=5, exitcode=-9)
        assert "worker 2" in str(err)
        assert "superstep 5" in str(err)
        assert "-9" in str(err)

    def test_pickle_roundtrip(self):
        err = WorkerDiedError(worker=1, superstep=4, exitcode=-9)
        back = pickle.loads(pickle.dumps(err))
        assert (back.worker, back.superstep, back.exitcode) == (1, 4, -9)
