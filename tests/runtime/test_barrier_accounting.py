"""Barrier accounting: traffic classification, compute attribution, load.

Runs the same program under both executors — with a non-default partitioner
seed, so vertex→worker placement differs from every other test — and checks
that the barrier folds per-worker quantities identically.
"""

import pytest

from repro.algorithms.td.sssp import TemporalSSSP
from repro.algorithms.runners import default_source
from repro.core.engine import IntervalCentricEngine
from repro.datasets import transit_graph
from repro.runtime.cluster import SimulatedCluster
from repro.runtime.partitioner import HashPartitioner

WORKERS = 3
SEED = 7


def _cluster():
    return SimulatedCluster(WORKERS, partitioner=HashPartitioner(WORKERS, seed=SEED))


def _run(executor):
    graph = transit_graph()
    engine = IntervalCentricEngine(
        graph, TemporalSSSP(default_source(graph)), cluster=_cluster(),
        executor=executor, executor_processes=2,
    )
    return engine.run()


@pytest.fixture(scope="module")
def runs():
    return {"serial": _run("serial"), "parallel": _run("parallel")}


@pytest.mark.parametrize("executor", ["serial", "parallel"])
def test_local_remote_split_is_exhaustive(runs, executor):
    metrics = runs[executor].metrics
    assert metrics.messages_sent > 0
    assert metrics.local_messages + metrics.remote_messages == (
        metrics.messages_sent + metrics.system_messages
    )
    # With 3 workers and a spread-out transit graph some traffic must cross.
    assert metrics.remote_messages > 0


def test_traffic_classification_matches_partitioner(runs):
    serial, parallel = runs["serial"].metrics, runs["parallel"].metrics
    assert serial.local_messages == parallel.local_messages
    assert serial.remote_messages == parallel.remote_messages
    assert serial.message_bytes == parallel.message_bytes


@pytest.mark.parametrize("executor", ["serial", "parallel"])
def test_per_worker_compute_attribution(runs, executor):
    metrics = runs[executor].metrics
    details = metrics.supersteps_detail
    assert len(details) == metrics.supersteps
    # Every superstep that processed vertices charged its slowest worker.
    assert any(step.max_worker_compute_time > 0 for step in details)
    assert metrics.modeled_compute_time == pytest.approx(
        sum(step.max_worker_compute_time for step in details)
    )


def test_modeled_compute_identical_across_executors(runs):
    # Per-shard sums fold in canonical order, so even the float sums agree
    # bitwise between executors.
    serial = [s.max_worker_compute_time for s in runs["serial"].metrics.supersteps_detail]
    parallel = [s.max_worker_compute_time for s in runs["parallel"].metrics.supersteps_detail]
    assert serial == parallel


def test_worker_load_is_placement_only():
    graph = transit_graph()
    vids = graph.vertex_ids()
    load_a = _cluster().worker_load(vids)
    load_b = _cluster().worker_load(vids)
    assert load_a == load_b
    assert sum(load_a) == graph.num_vertices
    # seed=7 places vertices differently from the default seed.
    default = SimulatedCluster(WORKERS).worker_load(vids)
    assert sum(default) == graph.num_vertices


def test_serial_has_single_wall_time_per_step(runs):
    for step in runs["serial"].metrics.supersteps_detail:
        assert len(step.worker_wall_times) == 1
        assert step.worker_wall_times[0] == step.compute_time


def test_parallel_reports_real_exchange(runs):
    metrics = runs["parallel"].metrics
    # 2 processes over 3 shards: shard 2 shares a process with shard 0, so
    # some remote-shard traffic crosses a real pipe and is varint-encoded.
    assert metrics.exchange_bytes > 0
    assert len(metrics.supersteps_detail[0].worker_wall_times) == 2
    assert metrics.worker_wall_time > 0
    # Serial runs never touch the wire.
    assert runs["serial"].metrics.exchange_bytes == 0
