"""Property-based tests: invariants every partitioner must hold.

The partitioners feed shard ownership, checkpoint fingerprints and the
locality metrics, so their contracts are load-bearing: every vertex gets
exactly one worker in range, greedy respects its capacity bound, ties
spread instead of piling onto worker 0, and the assignment is a pure
function of (graph, kind, seed) — independent of process hash salt.
"""

import os
import subprocess
import sys
import textwrap

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graph.builder import TemporalGraphBuilder
from repro.runtime.partitioner import (
    PARTITIONER_KINDS,
    GreedyEdgeCutPartitioner,
    RangePartitioner,
    build_partitioner,
    partitioner_fingerprint,
)

HORIZON = 12
WORKERS = st.integers(min_value=1, max_value=6)


@st.composite
def graphs(draw):
    """A small random temporal graph with v0..vN ids and valid lifespans."""
    n = draw(st.integers(min_value=1, max_value=24))
    builder = TemporalGraphBuilder()
    for i in range(n):
        builder.add_vertex(f"v{i}", 0, HORIZON)
    n_edges = draw(st.integers(min_value=0, max_value=3 * n))
    for _ in range(n_edges):
        src = draw(st.integers(min_value=0, max_value=n - 1))
        dst = draw(st.integers(min_value=0, max_value=n - 1))
        if dst == src:
            dst = (src + 1) % n
        if n == 1:
            continue
        start = draw(st.integers(min_value=0, max_value=HORIZON - 1))
        end = draw(st.integers(min_value=start + 1, max_value=HORIZON))
        builder.add_edge(f"v{src}", f"v{dst}", start, end)
    return builder.build()


@given(graphs(), WORKERS, st.sampled_from(PARTITIONER_KINDS))
@settings(max_examples=60, deadline=None)
def test_total_assignment_in_range(graph, workers, kind):
    p = build_partitioner(kind, workers, graph)
    for vid in graph.vertex_ids():
        assert 0 <= p.worker_of(vid) < workers


@given(graphs(), WORKERS, st.sampled_from(PARTITIONER_KINDS))
@settings(max_examples=60, deadline=None)
def test_edge_cut_is_a_fraction(graph, workers, kind):
    p = build_partitioner(kind, workers, graph)
    assert 0.0 <= p.edge_cut(graph) <= 1.0
    if workers == 1:
        assert p.edge_cut(graph) == 0.0


@given(graphs(), WORKERS, st.sampled_from(["greedy", "interval_greedy"]),
       st.floats(min_value=1.0, max_value=1.5))
@settings(max_examples=60, deadline=None)
def test_greedy_respects_capacity(graph, workers, kind, slack):
    p = build_partitioner(kind, workers, graph, capacity_slack=slack)
    loads = [0] * workers
    for vid in graph.vertex_ids():
        loads[p.worker_of(vid)] += 1
    capacity = max(1.0, slack * graph.num_vertices / workers)
    # The capacity term only *damps* affinity; a vertex whose neighbours all
    # sit on a full worker can still exceed it by the final placement, so
    # the hard bound is capacity + 1 (the LDG guarantee).
    assert max(loads) <= capacity + 1


@given(graphs(), WORKERS, st.sampled_from(PARTITIONER_KINDS),
       st.integers(min_value=0, max_value=3))
@settings(max_examples=60, deadline=None)
def test_same_inputs_same_assignment(graph, workers, kind, seed):
    a = build_partitioner(kind, workers, graph, seed=seed)
    b = build_partitioner(kind, workers, graph, seed=seed)
    assert partitioner_fingerprint(a) == partitioner_fingerprint(b)
    for vid in graph.vertex_ids():
        assert a.worker_of(vid) == b.worker_of(vid)


@given(graphs(), WORKERS)
@settings(max_examples=40, deadline=None)
def test_greedy_seeds_change_fingerprint_not_totality(graph, workers):
    base = build_partitioner("greedy", workers, graph, seed=0)
    shuffled = build_partitioner("greedy", workers, graph, seed=1)
    # Different stream order must still place every vertex...
    for vid in graph.vertex_ids():
        assert 0 <= shuffled.worker_of(vid) < workers
    # ...and the fingerprint must name the seed even when the assignment
    # happens to coincide (tiny graphs), so resumes never cross seeds.
    assert partitioner_fingerprint(base) != partitioner_fingerprint(shuffled)


@given(st.integers(min_value=1, max_value=30), WORKERS)
@settings(max_examples=60, deadline=None)
def test_greedy_spreads_isolated_vertices(n, workers):
    """No-placed-neighbour ties break least-loaded, not 'worker 0'.

    This is the regression the rewrite fixes: the old scorer gave every
    worker the same score for an isolated vertex and ``max`` kept the
    first, piling every early vertex onto worker 0.
    """
    builder = TemporalGraphBuilder()
    for i in range(n):
        builder.add_vertex(f"v{i}", 0, 4)
    p = GreedyEdgeCutPartitioner(workers, builder.build())
    loads = [0] * workers
    for i in range(n):
        loads[p.worker_of(f"v{i}")] += 1
    assert max(loads) - min(loads) <= 1


@given(st.integers(min_value=1, max_value=40), WORKERS)
@settings(max_examples=60, deadline=None)
def test_range_is_contiguous_in_natural_order(n, workers):
    """Worker index is monotone along v0 < v1 < ... < vN (natural order).

    Regression for the repr-sorted assignment, which interleaved v2 and
    v10 across workers while claiming contiguity.
    """
    ids = [f"v{i}" for i in range(n)]
    p = RangePartitioner(workers, ids)
    assigned = [p.worker_of(vid) for vid in ids]
    assert assigned == sorted(assigned)
    assert assigned[0] == 0


_SUBPROCESS_SCRIPT = textwrap.dedent(
    """
    from repro.graph.builder import TemporalGraphBuilder
    from repro.runtime.partitioner import PARTITIONER_KINDS, build_partitioner

    builder = TemporalGraphBuilder()
    for i in range(23):
        builder.add_vertex(f"v{i}", 0, 8)
    for i in range(23):
        builder.add_edge(f"v{i}", f"v{(i * 7 + 3) % 23}", i % 7, 8)
    graph = builder.build()
    for kind in PARTITIONER_KINDS:
        p = build_partitioner(kind, 4, graph, seed=2)
        print(kind, p.fingerprint())
        print([p.worker_of(f"v{i}") for i in range(23)])
    """
)


def test_assignment_stable_across_hash_seeds():
    """Fingerprints and assignments ignore the interpreter's hash salt."""
    outputs = []
    for hash_seed in ("0", "4242"):
        src = os.path.join(os.path.dirname(__file__), "..", "..", "src")
        env = dict(os.environ, PYTHONHASHSEED=hash_seed)
        env["PYTHONPATH"] = os.pathsep.join(
            p for p in (env.get("PYTHONPATH"), os.path.abspath(src)) if p
        )
        proc = subprocess.run(
            [sys.executable, "-c", _SUBPROCESS_SCRIPT],
            capture_output=True, text=True, env=env, check=True,
        )
        outputs.append(proc.stdout)
    assert outputs[0] == outputs[1]
    assert "interval_greedy" in outputs[0]
