"""Property tests for the checkpoint shard format and routed-batch codec.

The checkpoint format *is* the wire format (`repro.runtime.encoding`), so
these properties pin both at once: any payload/interval/batch the executors
can ship between processes must round-trip through a checkpoint shard —
including the awkward corners (empty batches, interval bounds at and beyond
the ``FOREVER`` sentinel, unicode vertex ids, checkpoints with no shards).
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.interval import FOREVER, Interval
from repro.core.messages import IntervalMessage
from repro.core.state import PartitionedState
from repro.runtime.checkpoint import (
    CheckpointError,
    ExecutorSnapshot,
    decode_shard,
    encode_shard,
    load_checkpoint,
    write_checkpoint,
)
from repro.runtime.encoding import decode_routed_batch, encode_routed_batch
from repro.runtime.metrics import RunMetrics

# -- strategies ---------------------------------------------------------------

# Vertex ids as they appear across the algorithm suite: strings (unicode
# included — real datasets carry station/user names), ints, and tuples.
vertex_ids = st.one_of(
    st.text(min_size=1, max_size=8),
    st.integers(min_value=0, max_value=2**40),
    st.tuples(st.text(max_size=4), st.integers(min_value=0, max_value=99)),
)

# Message/state payloads: every tag of the wire codec, including the
# big-int path (values at and beyond the FOREVER sentinel).
payloads = st.recursive(
    st.one_of(
        st.none(),
        st.booleans(),
        st.integers(min_value=-(2**70), max_value=2**70),
        st.sampled_from([FOREVER, FOREVER + 1, -FOREVER, 2**62 - 1]),
        st.floats(allow_nan=False, allow_infinity=True),
        st.text(max_size=12),
    ),
    lambda children: st.tuples(children, children),
    max_leaves=4,
)

# Interval bounds stress the varint/flag paths: unit, unbounded, and
# big-int starts (the paper's FOREVER sentinel is 2**62).
starts = st.one_of(
    st.integers(min_value=0, max_value=100),
    st.integers(min_value=2**32, max_value=2**61),
)
intervals = starts.flatmap(
    lambda s: st.one_of(
        st.just(Interval(s)),  # unbounded (till FOREVER)
        st.just(Interval(s, s + 1)),  # unit
        st.integers(min_value=s + 1, max_value=FOREVER).map(
            lambda e: Interval(s, e)
        ),
    )
)

messages = st.builds(IntervalMessage, intervals, payloads)
entries = st.lists(
    st.tuples(st.integers(min_value=0, max_value=2**20), vertex_ids, messages),
    max_size=12,
)


def _states(draw_values, lifespan: Interval) -> PartitionedState:
    state = PartitionedState(lifespan, draw_values[0], coalesce=False)
    span = lifespan.end - lifespan.start
    for i, value in enumerate(draw_values[1:], start=1):
        if i >= span:
            break
        state.set(Interval(lifespan.start + i, lifespan.start + i + 1), value)
    return state


# -- routed batch round-trip ---------------------------------------------------


class TestRoutedBatchRoundTrip:
    @given(batch=entries)
    @settings(max_examples=150, deadline=None)
    def test_roundtrip(self, batch):
        assert decode_routed_batch(encode_routed_batch(batch)) == batch

    def test_empty_batch(self):
        assert decode_routed_batch(encode_routed_batch([])) == []

    def test_big_int_interval_bounds(self):
        batch = [
            (0, "v", IntervalMessage(Interval(2**61, FOREVER), FOREVER + 7)),
            (1, "v", IntervalMessage(Interval(0), -FOREVER)),
        ]
        assert decode_routed_batch(encode_routed_batch(batch)) == batch

    def test_unicode_vertex_ids(self):
        batch = [(3, "駅🚉", IntervalMessage(Interval(1, 2), "значение"))]
        assert decode_routed_batch(encode_routed_batch(batch)) == batch


# -- shard round-trip ----------------------------------------------------------


class TestShardRoundTrip:
    @given(
        vids=st.lists(vertex_ids, min_size=1, max_size=5, unique=True),
        values=st.lists(payloads, min_size=1, max_size=5),
        start=st.integers(min_value=0, max_value=50),
        span=st.integers(min_value=1, max_value=20),
        pending=entries,
    )
    @settings(max_examples=100, deadline=None)
    def test_roundtrip(self, vids, values, start, span, pending):
        lifespan = Interval(start, start + span)
        states = [(vid, _states(values, lifespan)) for vid in vids]
        blob = encode_shard(states, pending)
        back_states, back_pending = decode_shard(blob, coalesce=False)
        assert back_pending == pending
        assert set(back_states) == set(vids)
        for vid, state in states:
            assert back_states[vid].parts() == state.parts()
            assert list(back_states[vid]) == list(state)

    def test_empty_shard(self):
        states, pending = decode_shard(encode_shard([], []))
        assert states == {} and pending == []

    def test_bad_magic_rejected(self):
        with pytest.raises(CheckpointError, match="magic"):
            decode_shard(b"NOPE" + b"\x00" * 8)

    def test_partition_boundaries_survive_verbatim(self):
        """No re-coalescing on load: equal adjacent values keep their
        boundary, so a resumed run's partition walk is bit-identical."""
        state = PartitionedState(Interval(0, 10), "x", coalesce=True)
        state._starts = [0, 5]
        state._ends = [5, 10]
        state._values = ["same", "same"]
        back, _ = decode_shard(encode_shard([("v", state)], []))
        assert back["v"].parts() == (Interval(0, 10), [5, 10], ["same", "same"])


# -- manifest round-trip -------------------------------------------------------


class TestManifest:
    def test_zero_shard_checkpoint(self, tmp_path):
        """A checkpoint of an empty computation: no shard files at all."""
        info = write_checkpoint(
            tmp_path,
            superstep=3,
            snapshot=ExecutorSnapshot(states={}, pending=[]),
            aggregates={},
            metrics=RunMetrics(),
            config_hash="cafe",
            num_workers=4,
            worker_of=lambda vid: 0,
        )
        assert not list(info.path.glob("shard-*.bin"))
        ckpt = load_checkpoint(info.path)
        assert ckpt.superstep == 3
        assert ckpt.states == {} and ckpt.pending == []
        assert ckpt.config_hash == "cafe"

    @given(aggs=st.dictionaries(st.text(max_size=8), payloads, max_size=5))
    @settings(max_examples=50, deadline=None)
    def test_aggregates_roundtrip(self, aggs, tmp_path_factory):
        root = tmp_path_factory.mktemp("aggs")
        info = write_checkpoint(
            root,
            superstep=1,
            snapshot=ExecutorSnapshot(states={}, pending=[]),
            aggregates=aggs,
            metrics=RunMetrics(),
            config_hash="",
            num_workers=1,
            worker_of=lambda vid: 0,
        )
        assert load_checkpoint(info.path).aggregates == aggs

    def test_pending_merge_is_stable_across_shards(self, tmp_path):
        """Same-seq entries from different shards keep per-shard order."""
        msgs = [
            (7, "a", IntervalMessage(Interval(0, 1), 1)),
            (7, "a", IntervalMessage(Interval(0, 1), 2)),
            (5, "b", IntervalMessage(Interval(0, 1), 3)),
        ]
        info = write_checkpoint(
            tmp_path,
            superstep=1,
            snapshot=ExecutorSnapshot(states={}, pending=msgs),
            aggregates={},
            metrics=RunMetrics(),
            config_hash="",
            num_workers=2,
            worker_of=lambda vid: 0 if vid == "a" else 1,
        )
        ckpt = load_checkpoint(info.path)
        assert ckpt.pending == [msgs[2], msgs[0], msgs[1]]
