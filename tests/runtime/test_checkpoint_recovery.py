"""Checkpoint/recovery acceptance: crash anywhere, resume bit-identical.

The durability contract (`repro.runtime.checkpoint` + `repro.runtime.faults`):
a run checkpointed at a barrier and continued — whether explicitly via
``run(resume_from=...)`` or implicitly by the engine recovering a killed
worker process — must produce final states, aggregates, counters and modeled
times **bitwise identical** to an uninterrupted run.  These tests hold that
contract across the whole algorithm matrix, under real SIGKILLs.
"""

import os

import pytest

from repro.algorithms import ALL_ALGORITHMS, run_algorithm
from repro.core.engine import IntervalCentricEngine
from repro.datasets import transit_graph
from repro.runtime.checkpoint import (
    CheckpointError,
    config_fingerprint,
    latest_checkpoint,
    load_checkpoint,
)
from repro.runtime.cluster import SimulatedCluster
from repro.runtime.executor import ParallelExecutor
from repro.runtime.faults import FaultPlan, UnrecoverableRunError, WorkerDiedError, kill_process

#: Metric fields that must match *exactly* between an uninterrupted run and
#: a checkpointed / killed / resumed one (superset of the executor
#: equivalence contract — recovery must not leak into the modeled story).
EXACT_FIELDS = (
    "supersteps",
    "compute_calls",
    "scatter_calls",
    "messages_sent",
    "system_messages",
    "message_bytes",
    "local_messages",
    "remote_messages",
    "warp_calls",
    "warp_suppressed_vertices",
    "combiner_reductions",
    "peak_inflight_messages",
    "modeled_makespan",
    "modeled_compute_time",
    "messaging_time",
    "barrier_time",
)


def _partitions(result):
    states = result.components if hasattr(result, "components") else result.states
    return {vid: list(state) for vid, state in states.items()}


def _run(algorithm, *, resume_from=None, **icm_options):
    return run_algorithm(
        algorithm, "GRAPHITE", transit_graph(),
        cluster=SimulatedCluster(5), graph_name="transit",
        icm_options=icm_options or {"executor": "serial"},
        resume_from=resume_from,
    )


def _assert_identical(ref, other):
    assert _partitions(ref.result) == _partitions(other.result)
    if hasattr(ref.result, "aggregates"):
        assert ref.result.aggregates == other.result.aggregates
    for fld in EXACT_FIELDS:
        assert getattr(ref.metrics, fld) == getattr(other.metrics, fld), fld


# -- the acceptance sweep ------------------------------------------------------


@pytest.mark.parametrize("algorithm", ALL_ALGORITHMS)
def test_killed_at_every_checkpointed_superstep(algorithm, tmp_path):
    """Real SIGKILL at each superstep; recovery replays to identical results.

    ``checkpoint_every=1`` makes every superstep a rollback point; killing
    at superstep *s* forces a rollback to the checkpoint at *s−1* (or a
    from-scratch replay for *s*=1, before any checkpoint exists).
    """
    ref = _run(algorithm)
    for superstep in range(1, ref.metrics.supersteps + 1):
        ckpt_dir = tmp_path / f"kill-{superstep}"
        executor = ParallelExecutor(
            processes=2, fault_plan=FaultPlan.kill(superstep % 2, superstep)
        )
        crashed = _run(
            algorithm,
            executor=executor,
            checkpoint_every=1,
            checkpoint_dir=str(ckpt_dir),
        )
        _assert_identical(ref, crashed)
        if executor.fault_plan.pending() == 0:  # the kill actually fired
            assert crashed.metrics.recovery.restarts >= 1


@pytest.mark.parametrize("algorithm", [a for a in ALL_ALGORITHMS if a != "SCC"])
def test_resume_from_every_checkpoint(algorithm, tmp_path):
    """Explicit ``resume_from`` at every checkpoint reproduces the run.

    (SCC is excluded here only because its peeling loop runs many engines
    per call, so a single resume directory is ambiguous — its durability is
    covered by the kill sweep above, where recovery is engine-internal.)
    """
    ref = _run(algorithm)
    full = _run(
        algorithm, executor="serial",
        checkpoint_every=1, checkpoint_dir=str(tmp_path),
    )
    _assert_identical(ref, full)
    steps = sorted(p for p in os.listdir(tmp_path) if p.startswith("step-"))
    assert steps, "checkpointed run wrote no checkpoints"
    assert full.metrics.recovery.checkpoints_written == len(steps)
    assert full.metrics.recovery.checkpoint_bytes > 0
    for step in steps:
        resumed = _run(algorithm, resume_from=str(tmp_path / step))
        _assert_identical(ref, resumed)


@pytest.mark.parametrize(
    "writer,reader",
    [("serial", "parallel"), ("parallel", "serial")],
    ids=["serial-to-parallel", "parallel-to-serial"],
)
def test_checkpoints_are_executor_portable(writer, reader, tmp_path):
    """A checkpoint written under one executor resumes under the other."""
    ref = _run("SSSP")
    _run(
        "SSSP", executor=writer, executor_processes=2,
        checkpoint_every=1, checkpoint_dir=str(tmp_path),
    )
    first = sorted(p for p in os.listdir(tmp_path) if p.startswith("step-"))[0]
    resumed = _run(
        "SSSP", resume_from=str(tmp_path / first),
        executor=reader, executor_processes=2,
    )
    _assert_identical(ref, resumed)


def test_resume_root_uses_latest_checkpoint(tmp_path):
    """Passing the checkpoint *root* resumes from the newest step."""
    ref = _run("WCC")
    _run("WCC", executor="serial", checkpoint_every=1, checkpoint_dir=str(tmp_path))
    resumed = _run("WCC", resume_from=str(tmp_path))
    _assert_identical(ref, resumed)
    latest = latest_checkpoint(tmp_path)
    assert latest is not None
    assert load_checkpoint(latest).superstep == ref.metrics.supersteps


# -- recovery semantics --------------------------------------------------------


def test_recovery_without_checkpoints_replays_from_scratch():
    ref = _run("SSSP")
    crashed = _run(
        "SSSP",
        executor=ParallelExecutor(processes=2, fault_plan=FaultPlan.kill(0, 2)),
    )
    _assert_identical(ref, crashed)
    assert crashed.metrics.recovery.restarts == 1
    assert crashed.metrics.recovery.replayed_supersteps == 2


def test_retry_limit_exhaustion_raises_unrecoverable(tmp_path):
    # Two deaths at distinct supersteps: each needs its own restart, one
    # more than max_restarts=1 absorbs.
    plan = FaultPlan.parse("kill:0@2,1@3")
    with pytest.raises(UnrecoverableRunError) as err:
        run_algorithm(
            "SSSP", "GRAPHITE", transit_graph(),
            cluster=SimulatedCluster(5), graph_name="transit",
            icm_options={
                "executor": ParallelExecutor(processes=2, fault_plan=plan),
                "checkpoint_every": 1,
                "checkpoint_dir": str(tmp_path),
                "max_restarts": 1,
            },
        )
    assert isinstance(err.value.__cause__, WorkerDiedError)


def test_recovery_metrics_account_the_crash(tmp_path):
    crashed = _run(
        "PR",
        executor=ParallelExecutor(processes=2, fault_plan=FaultPlan.kill(1, 4)),
        checkpoint_every=2,
        checkpoint_dir=str(tmp_path),
    )
    rec = crashed.metrics.recovery
    assert rec.restarts == 1
    # killed at superstep 4, latest checkpoint at 2 -> supersteps 3..4 lost
    assert rec.replayed_supersteps == 2
    assert rec.checkpoints_written > 0
    assert rec.checkpoint_bytes > 0


# -- close() propagation (satellite bugfix) ------------------------------------


class _KillAfterCollect(ParallelExecutor):
    """Kills worker 0 after the final collect — the death only a close()
    exit-code check can see (the old close() silently swallowed it)."""

    def collect_states(self):
        states = super().collect_states()
        kill_process(self._procs[0].pid)
        self._procs[0].join(timeout=10)
        return states


def test_close_propagates_worker_death():
    with pytest.raises(UnrecoverableRunError) as err:
        run_algorithm(
            "BFS", "GRAPHITE", transit_graph(),
            cluster=SimulatedCluster(5), graph_name="transit",
            icm_options={
                "executor": _KillAfterCollect(processes=2),
                "max_restarts": 0,
            },
        )
    died = err.value.__cause__
    assert isinstance(died, WorkerDiedError)
    assert died.worker == 0
    assert died.exitcode is not None and died.exitcode != 0


# -- checkpoint validation -----------------------------------------------------


def test_resume_rejects_config_mismatch(tmp_path):
    _run("SSSP", executor="serial", checkpoint_every=1, checkpoint_dir=str(tmp_path))
    step = sorted(p for p in os.listdir(tmp_path) if p.startswith("step-"))[0]
    with pytest.raises(CheckpointError, match="different configuration"):
        _run(
            "SSSP", resume_from=str(tmp_path / step),
            enable_warp_suppression=False,
        )


def test_resume_rejects_missing_checkpoint(tmp_path):
    with pytest.raises(CheckpointError, match="no checkpoint found"):
        _run("SSSP", resume_from=str(tmp_path / "nowhere"))


def test_load_rejects_corrupt_shard(tmp_path):
    _run("SSSP", executor="serial", checkpoint_every=1, checkpoint_dir=str(tmp_path))
    step = latest_checkpoint(tmp_path)
    shard = next(p for p in sorted(step.iterdir()) if p.name.startswith("shard-"))
    blob = bytearray(shard.read_bytes())
    blob[len(blob) // 2] ^= 0xFF
    shard.write_bytes(bytes(blob))
    with pytest.raises(CheckpointError, match="checksum"):
        load_checkpoint(step)


def test_load_rejects_corrupt_manifest(tmp_path):
    _run("SSSP", executor="serial", checkpoint_every=1, checkpoint_dir=str(tmp_path))
    step = latest_checkpoint(tmp_path)
    (step / "manifest.json").write_text("{not json", encoding="utf-8")
    with pytest.raises(CheckpointError, match="manifest"):
        load_checkpoint(step)


def test_config_fingerprint_ignores_executor():
    g = transit_graph()
    kwargs = dict(cluster=SimulatedCluster(5), graph_name="transit")
    serial = IntervalCentricEngine(g, _any_program(), executor="serial", **kwargs)
    parallel = IntervalCentricEngine(g, _any_program(), executor="parallel", **kwargs)
    assert config_fingerprint(serial) == config_fingerprint(parallel)

    flipped = IntervalCentricEngine(
        g, _any_program(), enable_warp_combiner=False, **kwargs
    )
    assert config_fingerprint(serial) != config_fingerprint(flipped)


# -- environment knob validation (satellite bugfix) ----------------------------


def test_invalid_checkpoint_every_env(monkeypatch):
    monkeypatch.setenv("REPRO_CHECKPOINT_EVERY", "sometimes")
    with pytest.raises(ValueError, match="REPRO_CHECKPOINT_EVERY"):
        IntervalCentricEngine(transit_graph(), _any_program())


def test_checkpoint_every_env_applies(monkeypatch, tmp_path):
    monkeypatch.setenv("REPRO_CHECKPOINT_EVERY", "2")
    monkeypatch.setenv("REPRO_CHECKPOINT_DIR", str(tmp_path))
    ref = _run("SSSP")
    run = _run("SSSP", executor="serial")
    _assert_identical(ref, run)
    assert run.metrics.recovery.checkpoints_written > 0
    assert any(p.startswith("step-") for p in os.listdir(tmp_path))


def _any_program():
    from repro.algorithms.runners import default_source
    from repro.algorithms.td.sssp import TemporalSSSP

    return TemporalSSSP(default_source(transit_graph()))
